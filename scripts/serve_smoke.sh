#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the otem-serve subsystem: boots the
# server on an ephemeral port, hits /healthz and one /v1/simulate, checks
# the cache reports a hit on the second identical request, then SIGTERMs
# and requires a clean graceful-drain exit. Run via `make serve-smoke`.
set -eu

cd "$(dirname "$0")/.."
go build -o bin/otem-serve ./cmd/otem-serve

tmpdir=$(mktemp -d)
portfile="$tmpdir/addr"
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

bin/otem-serve -addr 127.0.0.1:0 -portfile "$portfile" &
pid=$!

# Wait for the listener (the portfile is written once bound).
i=0
while [ ! -s "$portfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server never wrote $portfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$portfile")
base="http://$addr"
echo "serve-smoke: server up on $addr"

curl -fsS "$base/healthz" | grep -q '"status": "ok"'
echo "serve-smoke: healthz ok"

body='{"method":"Parallel","cycle":"NYCC"}'
curl -fsS -X POST -d "$body" "$base/v1/simulate" | grep -q '"schema": "otem.result/v1"'
echo "serve-smoke: simulate ok"

# The second identical request must be served from the deterministic
# result cache.
xcache=$(curl -fsS -D - -o /dev/null -X POST -d "$body" "$base/v1/simulate" | tr -d '\r' | sed -n 's/^X-Cache: //p')
if [ "$xcache" != "hit" ]; then
    echo "serve-smoke: expected X-Cache: hit, got '$xcache'" >&2
    exit 1
fi
echo "serve-smoke: cache hit ok"

# Fleet round trip: a tiny Monte Carlo fleet must come back with the
# otem.fleet/v1 schema and a deterministic digest, and the identical
# request must be a cache hit carrying the same digest.
fleet_body='{"vehicles":4,"seed":42,"method":"Parallel","route_seconds":60}'
fleet_json=$(curl -fsS -X POST -d "$fleet_body" "$base/v1/fleet")
echo "$fleet_json" | grep -q '"schema": "otem.fleet/v1"'
digest1=$(echo "$fleet_json" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
if [ -z "$digest1" ]; then
    echo "serve-smoke: fleet response carried no digest" >&2
    exit 1
fi
echo "serve-smoke: fleet ok (digest $digest1)"

fleet_hdrs="$tmpdir/fleet_hdrs"
fleet_json2=$(curl -fsS -D "$fleet_hdrs" -X POST -d "$fleet_body" "$base/v1/fleet")
xcache=$(tr -d '\r' < "$fleet_hdrs" | sed -n 's/^X-Cache: //p')
if [ "$xcache" != "hit" ]; then
    echo "serve-smoke: expected fleet X-Cache: hit, got '$xcache'" >&2
    exit 1
fi
digest2=$(echo "$fleet_json2" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
if [ "$digest1" != "$digest2" ]; then
    echo "serve-smoke: fleet digest changed across cache hit: $digest1 vs $digest2" >&2
    exit 1
fi
echo "serve-smoke: fleet cache hit ok"

# Plan round trip: the two-layer outer plan must come back with the
# otem.plan/v1 schema, and the identical request must be a cache hit.
plan_body='{"cycle":"NYCC","ambient_kelvin":308}'
plan_json=$(curl -fsS -X POST -d "$plan_body" "$base/v1/plan")
echo "$plan_json" | grep -q '"schema": "otem.plan/v1"'
echo "serve-smoke: plan ok"

plan_hdrs="$tmpdir/plan_hdrs"
curl -fsS -D "$plan_hdrs" -X POST -d "$plan_body" "$base/v1/plan" > /dev/null
xcache=$(tr -d '\r' < "$plan_hdrs" | sed -n 's/^X-Cache: //p')
if [ "$xcache" != "hit" ]; then
    echo "serve-smoke: expected plan X-Cache: hit, got '$xcache'" >&2
    exit 1
fi
echo "serve-smoke: plan cache hit ok"

# Fleet stream: progress lines then the otem.fleet/v1 summary line.
fleet_stream=$(curl -fsS "$base/v1/fleet/stream?vehicles=4&seed=43&method=Parallel&route_seconds=60")
echo "$fleet_stream" | head -n 1 | grep -q '"event":"progress"'
echo "$fleet_stream" | tail -n 1 | grep -q '"schema":"otem.fleet/v1"'
echo "serve-smoke: fleet stream ok"

curl -fsS "$base/metrics" | grep -q '^otem_serve_requests_total{code="200",endpoint="simulate"} 2$'
curl -fsS "$base/metrics" | grep -q '^otem_serve_requests_total{code="200",endpoint="fleet"} 2$'
curl -fsS "$base/metrics" | grep -q '^otem_serve_requests_total{code="200",endpoint="plan"} 2$'
curl -fsS "$base/metrics" | grep -q '^otem_serve_requests_total{code="200",endpoint="fleetstream"} 1$'
echo "serve-smoke: metrics ok"

kill -TERM "$pid"
wait "$pid"
pid=""
echo "serve-smoke: graceful drain ok"
