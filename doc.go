// Package repro is the root of the OTEM reproduction — a from-scratch Go
// implementation of "OTEM: Optimized Thermal and Energy Management for
// Hybrid Electrical Energy Storage in Electric Vehicles" (Vatanparvar &
// Al Faruque, DATE 2016).
//
// The public API lives in repro/otem; the paper's evaluation is regenerated
// by cmd/otem-experiments and by the benchmarks in bench_test.go (one per
// paper table and figure). See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
