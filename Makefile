# Gates for the OTEM reproduction. `make check` is the tier-1 bar every
# change must clear; `make race` is the concurrency bar for the batch
# engine and the grids that run on it.

GO ?= go

.PHONY: build test check race race-grids bench vet lint lint-vet fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The domain-aware analyzers (internal/lint via cmd/otem-lint): exact
# float comparisons, goroutines outside internal/runner, unwrapped
# fmt.Errorf error args, panics outside Must* constructors, and
# nondeterminism (global rand / time.Now) in the simulation core.
# Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/otem-lint ./...

# The same analyzers driven by the go command's unitchecker protocol,
# proving cmd/otem-lint works as a drop-in `go vet -vettool`.
lint-vet:
	$(GO) build -o bin/otem-lint ./cmd/otem-lint
	$(GO) vet -vettool=bin/otem-lint ./...

fmt:
	gofmt -l .

test: build
	$(GO) test ./...

# Tier-1: everything compiles, vet and otem-lint are clean, the full
# suite passes under the race detector.
check: vet lint build
	$(GO) test -race ./...

# The full suite under the race detector (slow: MPC-heavy tests included).
race:
	$(GO) test -race ./...

# Race-enabled runs of just the batch-engine-heavy paths: the runner
# itself, the Fig. 8/9 sweep and Table I grids, the DSE grid and the
# facade batch API.
race-grids:
	$(GO) test -race -run 'Runner|Pool|Map|Cancel|Panic|Sweep|TableI|Explore|Batch|Progress' \
		./internal/runner ./internal/experiments ./internal/dse ./otem

bench:
	$(GO) test -bench 'Batch' -benchtime 1x ./internal/experiments
