# Gates for the OTEM reproduction. `make check` is the tier-1 bar every
# change must clear; `make race` is the concurrency bar for the batch
# engine and the grids that run on it.

GO ?= go

.PHONY: build test check race race-grids bench vet lint lint-sarif lint-vet lint-bench fmt serve-smoke serve-bench sim-bench fleet-bench hmpc-bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The domain-aware analyzers (internal/lint via cmd/otem-lint): exact
# float comparisons, goroutines outside internal/runner, unwrapped
# fmt.Errorf error args, panics outside Must* constructors, direct and
# transitive nondeterminism (global rand / time.Now) in the simulation
# core, discarded errors from module APIs, and arithmetic mixing
# conflicting unit suffixes. Runs the parallel DAG scheduler with
# cross-package fact propagation. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/otem-lint ./...

# The same sweep rendered as SARIF 2.1.0 for code-scanning upload.
# `|| true` keeps the log usable in CI: findings fail the build via the
# plain `lint` gate, not via this render step.
lint-sarif:
	$(GO) run ./cmd/otem-lint -format=sarif ./... > otem-lint.sarif || true

# The same analyzers driven by the go command's unitchecker protocol,
# proving cmd/otem-lint works as a drop-in `go vet -vettool` with facts
# flowing between compilation units through vetx files.
lint-vet:
	$(GO) build -o bin/otem-lint ./cmd/otem-lint
	$(GO) vet -vettool=bin/otem-lint ./...

# Sequential reference driver vs parallel DAG scheduler over the whole
# module; records best-of-three times and the speedup at both GOMAXPROCS=1
# and GOMAXPROCS=NumCPU to BENCH_lint.json (committed so scheduler
# regressions are visible in review, and comparable across machines).
lint-bench:
	$(GO) run ./cmd/otem-lint -benchjson BENCH_lint.json ./...

fmt:
	gofmt -l .

test: build
	$(GO) test ./...

# Tier-1: everything compiles, vet and otem-lint are clean, the full
# suite passes under the race detector.
check: vet lint build
	$(GO) test -race ./...

# The full suite under the race detector (slow: MPC-heavy tests included).
race:
	$(GO) test -race ./...

# Race-enabled runs of just the batch-engine-heavy paths: the runner
# itself, the Fig. 8/9 sweep and Table I grids, the DSE grid and the
# facade batch API.
race-grids:
	$(GO) test -race -run 'Runner|Pool|Map|Cancel|Panic|Sweep|TableI|Explore|Batch|Progress' \
		./internal/runner ./internal/experiments ./internal/dse ./otem

bench:
	$(GO) test -bench 'Batch' -benchtime 1x ./internal/experiments

# End-to-end smoke of the HTTP subsystem: boots cmd/otem-serve on an
# ephemeral port, checks /healthz, a real /v1/simulate, the cache-hit
# header, /metrics, and the graceful SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Load benchmark of the HTTP subsystem: a concurrent client fleet on the
# bounded worker pool fires real simulations at an in-process server and
# records throughput and cache hit ratio to BENCH_serve.json at both
# GOMAXPROCS=1 and GOMAXPROCS=NumCPU (committed so serving regressions
# are visible in review, and comparable across machines).
serve-bench:
	SERVE_BENCH_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -run TestServeBenchJSON -count=1 ./internal/serve
	cat BENCH_serve.json

# Steady-state hot-path benchmark: a full UDDS drive cycle under the OTEM
# controller, ns/step, steps/sec and allocs/step written to BENCH_sim.json
# (committed so hot-path regressions are visible in review). The harness
# also fails if allocs/step exceeds the committed budget — the zero-alloc
# replan contract enforced end to end.
sim-bench:
	SIM_BENCH_JSON=$(CURDIR)/BENCH_sim.json $(GO) test -run TestSimBenchJSON -count=1 -timeout 20m ./internal/core
	cat BENCH_sim.json

# Monte Carlo fleet benchmark: 10k vehicles under the Parallel baseline,
# rolled once on 1 worker and once on GOMAXPROCS workers, vehicles/sec and
# allocs per vehicle-step written to BENCH_fleet.json (committed so fleet
# throughput regressions are visible in review). The harness fails on an
# allocs-per-vehicle-step budget breach, on a committed throughput floor,
# and if the two runs disagree on the result digest — the determinism
# contract re-checked at benchmark scale.
fleet-bench:
	FLEET_BENCH_JSON=$(CURDIR)/BENCH_fleet.json $(GO) test -run TestFleetBenchJSON -count=1 -timeout 20m ./internal/fleet
	cat BENCH_fleet.json

# Hierarchical MPC benchmark: cold outer-plan latency (the POST /v1/plan
# cache-miss cost), the warm per-block outer replan on a drifting plant,
# and end-to-end two-layer throughput on UDDS, written to BENCH_hmpc.json
# (committed so planner regressions are visible in review). The harness
# fails if the warm outer replan allocates — the zero-alloc hot-path
# contract of the scheduling layer.
hmpc-bench:
	HMPC_BENCH_JSON=$(CURDIR)/BENCH_hmpc.json $(GO) test -run TestHMPCBenchJSON -count=1 -timeout 20m ./internal/hmpc
	cat BENCH_hmpc.json
