# Gates for the OTEM reproduction. `make check` is the tier-1 bar every
# change must clear; `make race` is the concurrency bar for the batch
# engine and the grids that run on it.

GO ?= go

.PHONY: build test check race race-grids bench vet fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test: build
	$(GO) test ./...

# Tier-1: everything compiles, vet is clean, the full suite passes.
check: vet test

# The full suite under the race detector (slow: MPC-heavy tests included).
race:
	$(GO) test -race ./...

# Race-enabled runs of just the batch-engine-heavy paths: the runner
# itself, the Fig. 8/9 sweep and Table I grids, the DSE grid and the
# facade batch API.
race-grids:
	$(GO) test -race -run 'Runner|Pool|Map|Cancel|Panic|Sweep|TableI|Explore|Batch|Progress' \
		./internal/runner ./internal/experiments ./internal/dse ./otem

bench:
	$(GO) test -bench 'Batch' -benchtime 1x ./internal/experiments
