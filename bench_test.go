// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV), plus the DESIGN.md ablation studies. Run with
//
//	go test -bench=. -benchmem
//
// Every benchmark calls b.ReportAllocs, so allocation counts appear even
// without -benchmem — regressions on the zero-allocation simulation hot
// path show up in any benchmark run.
//
// Each benchmark regenerates its experiment end to end and reports the
// paper-comparable headline numbers as custom metrics, so a benchmark run
// doubles as a reproduction check:
//
//	Fig. 8  → loss-reduction-pct   (paper: 16.38)
//	Fig. 9  → power-saving-pct     (paper: 12.1)
//	Table I → otem-loss-at-5kF-pct (paper: 49.03, normalised)
package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/units"
)

// BenchmarkFig1ThermalCaseStudy regenerates the motivational case study:
// dual-architecture battery temperature for 5/10/20 kF banks on US06 ×3.
func BenchmarkFig1ThermalCaseStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		small := r.Results[0]
		large := r.Results[len(r.Results)-1]
		b.ReportMetric(small.ThermalViolationSec, "small-cap-violation-s")
		b.ReportMetric(units.KToC(large.MaxBatteryTemp), "large-cap-maxT-C")
	}
}

// BenchmarkFig6TemperatureTraces regenerates the per-methodology battery
// temperature comparison on US06 ×5, 25 kF.
func BenchmarkFig6TemperatureTraces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		otem, _ := r.ResultFor(experiments.MethodOTEM)
		parallel, _ := r.ResultFor(experiments.MethodParallel)
		b.ReportMetric(units.KToC(otem.MaxBatteryTemp), "otem-maxT-C")
		b.ReportMetric(units.KToC(parallel.MaxBatteryTemp), "parallel-maxT-C")
	}
}

// BenchmarkFig7TEBPreparation regenerates the TEB temporal analysis and
// reports how many pre-charge events precede large power bursts.
func BenchmarkFig7TEBPreparation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.PrechargeEvents), "precharge-events")
		b.ReportMetric(units.KToC(r.Result.MaxBatteryTemp), "otem-maxT-C")
	}
}

// BenchmarkFig8BatteryLifetime regenerates the capacity-loss comparison
// across all six standard cycles (paper headline: −16.38 % vs parallel).
func BenchmarkFig8BatteryLifetime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Sweep(1)
		if err != nil {
			b.Fatal(err)
		}
		f8 := experiments.Fig8(sweep)
		b.ReportMetric(f8.OTEMAvgReductionPct(), "loss-reduction-pct")
	}
}

// BenchmarkFig9PowerConsumption regenerates the average-power comparison
// across all six standard cycles (paper headline: −12.1 % vs pure active
// cooling).
func BenchmarkFig9PowerConsumption(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Sweep(1)
		if err != nil {
			b.Fatal(err)
		}
		f9 := experiments.Fig9(sweep)
		b.ReportMetric(f9.OTEMSavingVsCoolingPct(), "power-saving-pct")
	}
}

// BenchmarkTableIUltracapSizing regenerates the ultracapacitor size sweep
// on US06 ×5 (paper Table I).
func BenchmarkTableIUltracapSizing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		// OTEM at the smallest bank, normalised to parallel@25 kF = 100.
		b.ReportMetric(r.LossPct(0, 2), "otem-loss-at-5kF-pct")
		b.ReportMetric(r.LossPct(len(r.SizesF)-1, 2), "otem-loss-at-25kF-pct")
	}
}

// BenchmarkAblationHorizon sweeps the MPC control-window size.
func BenchmarkAblationHorizon(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHorizon()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Result.QlossPct*1e3, "loss-h8-milli-pct")
		b.ReportMetric(r.Rows[len(r.Rows)-1].Result.QlossPct*1e3, "loss-h80-milli-pct")
	}
}

// BenchmarkAblationWeights disables Eq. 19 cost terms in turn.
func BenchmarkAblationWeights(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationWeights()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Result.QlossPct*1e3, "loss-full-milli-pct")
	}
}

// BenchmarkAblationNoise measures sensitivity to forecast error.
func BenchmarkAblationNoise(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationNoise()
		if err != nil {
			b.Fatal(err)
		}
		exact := r.Rows[0].Result.QlossPct
		noisy := r.Rows[len(r.Rows)-1].Result.QlossPct
		b.ReportMetric((noisy/exact-1)*100, "loss-degradation-pct-at-60pct-noise")
	}
}

// BenchmarkAblationPredictor replaces the oracle forecast with realistic
// predictors and reports the surviving advantage.
func BenchmarkAblationPredictor(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPredictor()
		if err != nil {
			b.Fatal(err)
		}
		oracle := r.Rows[0].Result.QlossPct
		markov := r.Rows[len(r.Rows)-1].Result.QlossPct
		b.ReportMetric((markov/oracle-1)*100, "loss-penalty-pct-markov-vs-oracle")
	}
}

// BenchmarkHotspotStudy replays traces through the distributed pack thermal
// network and reports how much hotter the worst module runs than the lumped
// model predicts.
func BenchmarkHotspotStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Hotspot()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Method == experiments.MethodOTEM {
				b.ReportMetric(row.DistributedMaxT-row.LumpedMaxT, "otem-hotspot-excess-K")
				b.ReportMetric(row.MaxGradient, "otem-channel-gradient-K")
			}
		}
	}
}

// BenchmarkAblationSensing closes the sensing loop: OTEM planning from the
// EKF-estimated SoC instead of the oracle.
func BenchmarkAblationSensing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSensing()
		if err != nil {
			b.Fatal(err)
		}
		oracle := r.Rows[0].Result.QlossPct
		ekf := r.Rows[len(r.Rows)-1].Result.QlossPct
		b.ReportMetric((ekf/oracle-1)*100, "loss-penalty-pct-ekf-vs-oracle")
	}
}

// BenchmarkAblationChemistry compares the NCA and LFP packs under OTEM.
func BenchmarkAblationChemistry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationChemistry()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Result.QlossPct/r.Rows[1].Result.QlossPct, "nca-over-lfp-loss-ratio")
	}
}
