package imbalance

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/battery"
	"repro/internal/units"
)

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation(0, 0.01, 0.01, 1); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewPopulation(10, -0.1, 0.01, 1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestZeroSigmaIsUniform(t *testing.T) {
	p, err := NewPopulation(96, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < p.Groups(); g++ {
		if p.CapFactor[g] != 1 || p.ResFactor[g] != 1 {
			t.Fatalf("zero-sigma pack not uniform at %d", g)
		}
	}
	if p.UsableCapacityFrac(false) != 1 || p.BalancingGainFrac() != 0 {
		t.Error("uniform pack should have full capacity and no balancing gain")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := NewPopulation(96, 0.02, 0.05, 42)
	b, _ := NewPopulation(96, 0.02, 0.05, 42)
	for g := range a.CapFactor {
		if a.CapFactor[g] != b.CapFactor[g] || a.ResFactor[g] != b.ResFactor[g] {
			t.Fatal("same seed diverged")
		}
	}
	c, _ := NewPopulation(96, 0.02, 0.05, 43)
	same := true
	for g := range a.CapFactor {
		if a.CapFactor[g] != c.CapFactor[g] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestWeakestGroupLimitsCapacity(t *testing.T) {
	p, _ := NewPopulation(96, 0.03, 0, 11)
	unbalanced := p.UsableCapacityFrac(false)
	balanced := p.UsableCapacityFrac(true)
	if unbalanced >= balanced {
		t.Errorf("unbalanced %v should be below balanced %v", unbalanced, balanced)
	}
	// With 96 groups at 3 % sigma the weakest is typically ≈ 3σ low.
	if unbalanced > 1-0.04 || unbalanced < 1-0.10 {
		t.Errorf("weakest group at %v, want roughly 0.91–0.96", unbalanced)
	}
	if g := p.BalancingGainFrac(); g <= 0 {
		t.Errorf("balancing gain = %v, want > 0", g)
	}
}

func TestBalancingGainNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, err := NewPopulation(32, 0.02, 0.04, seed)
		if err != nil {
			return false
		}
		return p.BalancingGainFrac() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHotGroupFactorAtLeastMean(t *testing.T) {
	p, _ := NewPopulation(96, 0, 0.05, 5)
	if p.HotGroupFactor() < 1 {
		t.Errorf("hot group factor %v below nominal", p.HotGroupFactor())
	}
}

func TestSimulateSpreadDivergence(t *testing.T) {
	p, err := NewPopulation(96, 0, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	profile := make([]float64, 600)
	for i := range profile {
		profile[i] = 120 // 120 A pack current
	}
	res, err := p.SimulateSpread(battery.NCR18650A(), 24, profile, units.CToK(32), 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOverMin <= 1 {
		t.Errorf("no aging divergence: %v", res.MaxOverMin)
	}
	if res.HotSpotDeltaK <= 0 {
		t.Errorf("no hotspot: %v", res.HotSpotDeltaK)
	}
	// Uniform pack: no divergence.
	u, _ := NewPopulation(96, 0, 0, 1)
	resU, err := u.SimulateSpread(battery.NCR18650A(), 24, profile, units.CToK(32), 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resU.MaxOverMin-1) > 1e-12 {
		t.Errorf("uniform pack diverged: %v", resU.MaxOverMin)
	}
}

func TestSimulateSpreadGrowsWithSigma(t *testing.T) {
	profile := make([]float64, 300)
	for i := range profile {
		profile[i] = 150
	}
	cell := battery.NCR18650A()
	small, _ := NewPopulation(96, 0, 0.02, 3)
	big, _ := NewPopulation(96, 0, 0.08, 3)
	rs, err := small.SimulateSpread(cell, 24, profile, units.CToK(32), 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.SimulateSpread(cell, 24, profile, units.CToK(32), 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MaxOverMin <= rs.MaxOverMin {
		t.Errorf("divergence should grow with spread: %v vs %v", rb.MaxOverMin, rs.MaxOverMin)
	}
}

func TestSimulateSpreadValidation(t *testing.T) {
	p, _ := NewPopulation(8, 0.01, 0.01, 1)
	cell := battery.NCR18650A()
	if _, err := p.SimulateSpread(cell, 0, []float64{1}, 300, 0.01, 1); err == nil {
		t.Error("zero parallel accepted")
	}
	if _, err := p.SimulateSpread(cell, 24, []float64{1}, 300, -1, 1); err == nil {
		t.Error("negative rth accepted")
	}
	if _, err := p.SimulateSpread(cell, 24, []float64{1}, 300, 0.01, 0); err == nil {
		t.Error("zero dt accepted")
	}
	bad := cell
	bad.CapacityAh = -1
	if _, err := p.SimulateSpread(bad, 24, []float64{1}, 300, 0.01, 1); err == nil {
		t.Error("invalid cell accepted")
	}
}
