// Package imbalance models cell-to-cell variation inside the battery pack.
// The lumped pack model (battery.Pack) treats every cell as identical; real
// packs ship with a manufacturing spread of capacity and resistance, so the
// weakest series group limits the usable capacity (without balancing) and
// the highest-resistance group runs hottest and ages fastest — a positive
// feedback the paper's safety constraint C1 exists to contain.
package imbalance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/battery"
)

// Population holds the per-series-group variation factors of one pack
// (each series group is Parallel cells acting as a unit; groups carry the
// same current).
type Population struct {
	// CapFactor and ResFactor multiply the nominal capacity and resistance
	// of each group; both have mean ≈ 1.
	CapFactor []float64
	ResFactor []float64
}

// NewPopulation samples a pack of the given series-group count with
// Gaussian relative spreads (clamped to ±3σ to keep factors physical).
// Same seed → same pack.
func NewPopulation(groups int, capSigma, resSigma float64, seed int64) (Population, error) {
	if groups < 1 {
		return Population{}, fmt.Errorf("imbalance: groups = %d", groups)
	}
	if capSigma < 0 || resSigma < 0 {
		return Population{}, errors.New("imbalance: negative sigma")
	}
	rng := rand.New(rand.NewSource(seed))
	p := Population{
		CapFactor: make([]float64, groups),
		ResFactor: make([]float64, groups),
	}
	clamp3 := func(x float64) float64 { return math.Max(-3, math.Min(3, x)) }
	for i := 0; i < groups; i++ {
		p.CapFactor[i] = 1 + capSigma*clamp3(rng.NormFloat64())
		p.ResFactor[i] = 1 + resSigma*clamp3(rng.NormFloat64())
	}
	return p, nil
}

// Groups returns the series-group count.
func (p Population) Groups() int { return len(p.CapFactor) }

// UsableCapacityFrac returns the pack's usable capacity as a fraction of
// nominal. Without balancing, the series string is limited by its weakest
// group (the first to hit empty); with (ideal) balancing the charge is
// redistributed, so the mean capacity is usable.
func (p Population) UsableCapacityFrac(balanced bool) float64 {
	if balanced {
		var sum float64
		for _, c := range p.CapFactor {
			sum += c
		}
		return sum / float64(len(p.CapFactor))
	}
	minC := p.CapFactor[0]
	for _, c := range p.CapFactor[1:] {
		if c < minC {
			minC = c
		}
	}
	return minC
}

// BalancingGainFrac returns how much usable capacity an ideal balancing
// circuit recovers (fraction of nominal, ≥ 0).
func (p Population) BalancingGainFrac() float64 {
	return p.UsableCapacityFrac(true) - p.UsableCapacityFrac(false)
}

// HotGroupFactor returns the Joule-heat multiplier of the hottest group
// relative to nominal: series groups share the current, so heat scales with
// each group's resistance factor.
func (p Population) HotGroupFactor() float64 {
	m := p.ResFactor[0]
	for _, r := range p.ResFactor[1:] {
		if r > m {
			m = r
		}
	}
	return m
}

// SpreadResult summarises a divergence simulation.
type SpreadResult struct {
	// LossPct holds the per-group accumulated capacity loss.
	LossPct []float64
	// MaxOverMin is the aging divergence factor between the fastest- and
	// slowest-aging groups.
	MaxOverMin float64
	// HotSpotDeltaK is the steady temperature elevation of the hottest
	// group above the pack mean, kelvin.
	HotSpotDeltaK float64
}

// SimulateSpread accumulates per-group aging over a pack-current profile
// (amperes, discharge positive, one sample per dt): each group sees the
// same current but its own resistance-scaled Joule heat, raising its local
// temperature above the lumped pack temperature through the per-group
// thermal resistance rthKPerW (K/W). Demonstrates the weak-cell feedback:
// higher resistance → hotter → faster Arrhenius aging.
func (p Population) SimulateSpread(cell battery.CellParams, parallel int, profile []float64, packTempK, rthKPerW, dt float64) (SpreadResult, error) {
	if err := cell.Validate(); err != nil {
		return SpreadResult{}, err
	}
	if parallel < 1 || rthKPerW < 0 || dt <= 0 {
		return SpreadResult{}, errors.New("imbalance: invalid simulation parameters")
	}
	n := p.Groups()
	out := SpreadResult{LossPct: make([]float64, n)}
	// Nominal per-cell resistance at mid SoC for the heat scaling.
	r0 := cell.Resistance(0.5, packTempK)
	for _, packI := range profile {
		cellI := packI / float64(parallel)
		baseHeat := cellI * cellI * r0 // per cell, nominal
		for g := 0; g < n; g++ {
			// Group temperature: lumped pack temperature plus the local
			// elevation from its own (resistance-scaled) heat.
			tG := packTempK + rthKPerW*baseHeat*p.ResFactor[g]*float64(parallel)
			out.LossPct[g] += cell.AgingRate(math.Abs(cellI), tG) * dt
		}
	}
	minL, maxL := out.LossPct[0], out.LossPct[0]
	var sumDelta float64
	for g := 0; g < n; g++ {
		if out.LossPct[g] < minL {
			minL = out.LossPct[g]
		}
		if out.LossPct[g] > maxL {
			maxL = out.LossPct[g]
		}
		sumDelta += p.ResFactor[g]
	}
	if minL > 0 {
		out.MaxOverMin = maxL / minL
	}
	// Steady hotspot elevation at the RMS current of the profile.
	var sumSq float64
	for _, i := range profile {
		sumSq += i * i
	}
	rmsCellI := math.Sqrt(sumSq/float64(len(profile))) / float64(parallel)
	meanHeat := rmsCellI * rmsCellI * r0 * float64(parallel)
	out.HotSpotDeltaK = rthKPerW * meanHeat * (p.HotGroupFactor() - mean(p.ResFactor))
	return out, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
