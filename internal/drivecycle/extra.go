package drivecycle

import (
	"fmt"
	"math"

	"repro/internal/core/floats"
	"repro/internal/units"
)

// This file adds the non-EPA cycles: the worldwide harmonised WLTC
// (class 3b), Japan's JC08 and the European Artemis Urban cycle, built with
// the same micro-trip synthesis calibrated to their published statistics.

// WLTC3 returns the WLTP class-3b cycle (≈1800 s, ≈23.3 km, avg ≈46.5 km/h,
// max ≈131 km/h — four phases from low to extra-high speed).
func WLTC3() *Cycle {
	c := mustSynthesize("WLTC3", 10, []microTrip{
		// Low phase: urban stop-and-go.
		{peakKmh: 40, accel: 1.0, decel: 1.1, cruise: 25, idle: 20, repeat: 7},
		// Medium phase.
		{peakKmh: 70, accel: 1.0, decel: 1.0, cruise: 60, idle: 20, repeat: 4},
		// High phase.
		{peakKmh: 97, accel: 0.8, decel: 0.9, cruise: 220, idle: 10},
		// Extra-high phase.
		{peakKmh: 131, accel: 0.7, decel: 0.9, cruise: 120, idle: 20},
	})
	return c
}

// JC08 returns the Japanese JC08 cycle (≈1204 s, ≈8.2 km, avg ≈24.4 km/h,
// max ≈81.6 km/h — dense urban with one expressway excursion).
func JC08() *Cycle {
	return mustSynthesize("JC08", 25, []microTrip{
		{peakKmh: 81, accel: 0.9, decel: 1.0, cruise: 50, idle: 20},
		{peakKmh: 60, accel: 0.9, decel: 1.0, cruise: 40, idle: 25, repeat: 3},
		{peakKmh: 35, accel: 0.8, decel: 1.0, cruise: 25, idle: 30, repeat: 6},
		{peakKmh: 20, accel: 0.7, decel: 0.9, cruise: 15, idle: 25, repeat: 4},
	})
}

// ArtemisUrban returns the Artemis urban cycle (≈993 s, ≈4.9 km,
// avg ≈17.7 km/h, max ≈57.3 km/h — European real-traffic urban driving).
func ArtemisUrban() *Cycle {
	return mustSynthesize("ARTEMIS-URBAN", 20, []microTrip{
		{peakKmh: 57, accel: 1.3, decel: 1.4, cruise: 25, idle: 18, repeat: 2},
		{peakKmh: 40, accel: 1.2, decel: 1.3, cruise: 22, idle: 20, repeat: 6},
		{peakKmh: 25, accel: 1.0, decel: 1.2, cruise: 14, idle: 22, repeat: 8},
	})
}

// Concat joins cycles back to back into one route (e.g. a commute =
// UDDS + HWFET + UDDS). All cycles must share the sampling period.
func Concat(name string, cycles ...*Cycle) (*Cycle, error) {
	if len(cycles) == 0 {
		return nil, fmt.Errorf("drivecycle: Concat needs at least one cycle")
	}
	out := &Cycle{Name: name, DT: cycles[0].DT}
	for _, c := range cycles {
		if !floats.Eq(c.DT, out.DT) {
			return nil, fmt.Errorf("drivecycle: Concat sampling mismatch: %g vs %g", c.DT, out.DT)
		}
		out.Speed = append(out.Speed, c.Speed...)
	}
	return out, nil
}

// ScaleSpeed returns a copy of the cycle with every speed multiplied by the
// factor (clamped to physical driving speeds) — a simple severity knob for
// robustness studies.
func (c *Cycle) ScaleSpeed(factor float64) *Cycle {
	if factor <= 0 {
		//lint:ignore nopanic tested argument contract (TestScaleSpeedPanicsOnNonPositive): a non-positive severity factor is a programmer error
		panic("drivecycle: ScaleSpeed factor must be > 0")
	}
	out := c.Clone()
	limit := units.KmhToMs(160)
	for i, v := range out.Speed {
		out.Speed[i] = math.Min(v*factor, limit)
	}
	return out
}
