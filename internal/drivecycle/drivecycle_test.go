package drivecycle

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

// published holds the EPA-published statistics each synthetic cycle must
// approximate (duration s, distance km, avg speed km/h, max speed km/h).
var published = map[string]struct {
	duration float64
	distance float64
	avgKmh   float64
	maxKmh   float64
}{
	"US06":  {600, 12.89, 77.9, 129.2},
	"UDDS":  {1369, 12.07, 31.5, 91.2},
	"HWFET": {765, 16.45, 77.7, 96.4},
	"NYCC":  {598, 1.90, 11.4, 44.6},
	"LA92":  {1435, 15.80, 39.6, 108.1},
	"SC03":  {596, 5.76, 34.8, 88.2},
}

func TestStandardCyclesMatchPublishedStats(t *testing.T) {
	const tol = 0.20 // ±20 % on every headline statistic
	for name, want := range published {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := c.Stats()
		check := func(metric string, got, want float64) {
			if math.Abs(got-want) > tol*want {
				t.Errorf("%s %s = %.1f, want %.1f ±20%%", name, metric, got, want)
			}
		}
		check("duration", s.Duration, want.duration)
		check("distance", s.Distance/1000, want.distance)
		check("avg speed", units.MsToKmh(s.AvgSpeed), want.avgKmh)
		check("max speed", units.MsToKmh(s.MaxSpeed), want.maxKmh)
	}
}

func TestUS06MoreAggressiveThanUDDS(t *testing.T) {
	us06 := US06().Stats()
	udds := UDDS().Stats()
	if us06.RMSAccel <= udds.RMSAccel {
		t.Errorf("US06 RMS accel %v should exceed UDDS %v", us06.RMSAccel, udds.RMSAccel)
	}
	if us06.MaxAccel <= udds.MaxAccel {
		t.Errorf("US06 max accel %v should exceed UDDS %v", us06.MaxAccel, udds.MaxAccel)
	}
	if us06.AvgSpeed <= udds.AvgSpeed {
		t.Error("US06 should be faster on average than UDDS")
	}
}

func TestNYCCIsStopAndGo(t *testing.T) {
	s := NYCC().Stats()
	if s.StopFraction < 0.25 {
		t.Errorf("NYCC stop fraction = %v, want dense stops", s.StopFraction)
	}
	if h := HWFET().Stats(); h.StopFraction > 0.05 {
		t.Errorf("HWFET stop fraction = %v, want nearly none", h.StopFraction)
	}
}

func TestCyclesStartAndEndStopped(t *testing.T) {
	for _, c := range MustAll() {
		if c.Speed[0] != 0 {
			t.Errorf("%s starts at %v m/s, want 0", c.Name, c.Speed[0])
		}
		if last := c.Speed[len(c.Speed)-1]; last > 0.5 {
			t.Errorf("%s ends at %v m/s, want standstill", c.Name, last)
		}
	}
}

func TestCyclesNonNegativeAndBounded(t *testing.T) {
	for _, c := range MustAll() {
		for i, v := range c.Speed {
			if v < 0 {
				t.Fatalf("%s sample %d negative: %v", c.Name, i, v)
			}
			if v > units.KmhToMs(140) {
				t.Fatalf("%s sample %d implausible: %v m/s", c.Name, i, v)
			}
		}
	}
}

func TestCycleAccelerationsPhysical(t *testing.T) {
	for _, c := range MustAll() {
		s := c.Stats()
		if s.MaxAccel > 4.0 {
			t.Errorf("%s max accel %v m/s² beyond passenger-car limits", c.Name, s.MaxAccel)
		}
		if s.MaxDecel > 4.5 {
			t.Errorf("%s max decel %v m/s² beyond comfort braking", c.Name, s.MaxDecel)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("MOONCYCLE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
}

func TestRepeat(t *testing.T) {
	c := US06()
	r := c.Repeat(5)
	if r.Samples() != 5*c.Samples() {
		t.Errorf("Repeat(5) samples = %d, want %d", r.Samples(), 5*c.Samples())
	}
	if !strings.Contains(r.Name, "x5") {
		t.Errorf("Repeat name = %q", r.Name)
	}
	// Statistics like avg speed must be unchanged by repetition.
	if math.Abs(r.Stats().AvgSpeed-c.Stats().AvgSpeed) > 1e-9 {
		t.Error("Repeat changed average speed")
	}
}

func TestRepeatPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Repeat(0) did not panic")
		}
	}()
	US06().Repeat(0)
}

func TestResamplePreservesShape(t *testing.T) {
	c := US06()
	fine, err := c.Resample(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fine.Duration()-c.Duration()) > 1.0 {
		t.Errorf("resampled duration %v vs %v", fine.Duration(), c.Duration())
	}
	s0, s1 := c.Stats(), fine.Stats()
	if math.Abs(s0.Distance-s1.Distance) > 0.01*s0.Distance {
		t.Errorf("resampling changed distance: %v vs %v", s0.Distance, s1.Distance)
	}
	if math.Abs(s0.MaxSpeed-s1.MaxSpeed) > 0.01*s0.MaxSpeed {
		t.Errorf("resampling changed max speed")
	}
}

func TestResampleRejectsBadDt(t *testing.T) {
	if _, err := US06().Resample(0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := US06()
	d := c.Clone()
	d.Speed[0] = 99
	if c.Speed[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := SC03()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "SC03")
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != c.Samples() || got.DT != c.DT {
		t.Fatalf("round trip: %d samples dt=%v, want %d dt=%v", got.Samples(), got.DT, c.Samples(), c.DT)
	}
	for i := range c.Speed {
		if math.Abs(got.Speed[i]-c.Speed[i]) > 1e-12 {
			t.Fatalf("sample %d: %v != %v", i, got.Speed[i], c.Speed[i])
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", "time_s,speed_ms\n"},
		{"negative speed", "time_s,speed_ms\n0,5\n1,-3\n"},
		{"non-numeric", "time_s,speed_ms\n0,abc\n1,2\n"},
		{"non-uniform", "time_s,speed_ms\n0,1\n1,2\n5,3\n"},
		{"missing column", "time_s\n0\n1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.csv), "x"); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(DefaultSynthConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(DefaultSynthConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples() != b.Samples() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Speed {
		if a.Speed[i] != b.Speed[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c, err := Synthesize(DefaultSynthConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := a.Samples() == c.Samples()
	if same {
		diff := false
		for i := range a.Speed {
			if a.Speed[i] != c.Speed[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical cycles")
	}
}

func TestSynthesizeRespectsConfig(t *testing.T) {
	cfg := DefaultSynthConfig(7)
	cfg.TargetDuration = 600
	c, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if math.Abs(s.Duration-600) > 120 {
		t.Errorf("duration %v, want ≈600", s.Duration)
	}
	if s.MaxAccel > cfg.MaxAccel+1e-6 {
		t.Errorf("max accel %v exceeds configured %v", s.MaxAccel, cfg.MaxAccel)
	}
	if last := c.Speed[len(c.Speed)-1]; last != 0 {
		t.Errorf("synthetic cycle ends at %v, want 0", last)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := DefaultSynthConfig(1)
	bad.TargetDuration = -5
	if _, err := Synthesize(bad); err == nil {
		t.Error("negative duration accepted")
	}
	bad = DefaultSynthConfig(1)
	bad.PeakJitter = 1.5
	if _, err := Synthesize(bad); err == nil {
		t.Error("jitter >= 1 accepted")
	}
}

func TestStatsEmptyCycle(t *testing.T) {
	c := &Cycle{Name: "empty", DT: 1}
	s := c.Stats()
	if s.Duration != 0 || s.Distance != 0 || s.MaxSpeed != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

// publishedExtra holds the statistics of the non-EPA cycles.
var publishedExtra = map[string]struct {
	duration float64
	distance float64
	avgKmh   float64
	maxKmh   float64
}{
	"WLTC3":         {1800, 23.27, 46.5, 131.3},
	"JC08":          {1204, 8.17, 24.4, 81.6},
	"ARTEMIS-URBAN": {993, 4.87, 17.7, 57.3},
}

func TestExtraCyclesMatchPublishedStats(t *testing.T) {
	const tol = 0.22
	for name, want := range publishedExtra {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := c.Stats()
		check := func(metric string, got, wantV float64) {
			if math.Abs(got-wantV) > tol*wantV {
				t.Errorf("%s %s = %.1f, want %.1f ±22%%", name, metric, got, wantV)
			}
		}
		check("duration", s.Duration, want.duration)
		check("distance", s.Distance/1000, want.distance)
		check("avg speed", units.MsToKmh(s.AvgSpeed), want.avgKmh)
		check("max speed", units.MsToKmh(s.MaxSpeed), want.maxKmh)
	}
}

func TestAllNamesSuperset(t *testing.T) {
	all := AllNames()
	if len(all) != len(Names())+3 {
		t.Fatalf("AllNames() = %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Errorf("AllNames not sorted: %v", all)
		}
	}
	for _, n := range all {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
}

func TestScaleSpeed(t *testing.T) {
	c := NYCC()
	scaled := c.ScaleSpeed(1.5)
	if scaled.Stats().MaxSpeed <= c.Stats().MaxSpeed {
		t.Error("scaling up did not raise max speed")
	}
	// Original untouched.
	if c.Stats().MaxSpeed > units.KmhToMs(45) {
		t.Error("ScaleSpeed mutated the original")
	}
	// Clamped at the physical limit.
	fast := US06().ScaleSpeed(3)
	if fast.Stats().MaxSpeed > units.KmhToMs(160)+1e-9 {
		t.Errorf("speed not clamped: %v", fast.Stats().MaxSpeed)
	}
}

func TestScaleSpeedPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleSpeed(0) did not panic")
		}
	}()
	US06().ScaleSpeed(0)
}

func TestConcat(t *testing.T) {
	a, b := NYCC(), SC03()
	route, err := Concat("commute", a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if route.Samples() != 2*a.Samples()+b.Samples() {
		t.Errorf("Concat length %d", route.Samples())
	}
	if route.Name != "commute" {
		t.Errorf("name = %q", route.Name)
	}
	if _, err := Concat("x"); err == nil {
		t.Error("empty Concat accepted")
	}
	half, _ := a.Resample(0.5)
	if _, err := Concat("bad", a, half); err == nil {
		t.Error("sampling mismatch accepted")
	}
}
