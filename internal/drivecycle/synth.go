package drivecycle

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthConfig parameterises the random micro-trip synthesiser, used for
// robustness experiments and property tests beyond the six standard cycles.
type SynthConfig struct {
	// Name labels the generated cycle.
	Name string
	// TargetDuration is the approximate cycle length in seconds.
	TargetDuration float64
	// MeanPeakKmh is the mean micro-trip peak speed in km/h.
	MeanPeakKmh float64
	// PeakJitter is the ± relative spread of peak speeds (0..1).
	PeakJitter float64
	// MaxAccel bounds accelerations, m/s².
	MaxAccel float64
	// MeanCruise is the mean cruise time per trip, s.
	MeanCruise float64
	// MeanIdle is the mean idle time between trips, s.
	MeanIdle float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSynthConfig returns a moderate suburban profile.
func DefaultSynthConfig(seed int64) SynthConfig {
	return SynthConfig{
		Name:           fmt.Sprintf("SYNTH-%d", seed),
		TargetDuration: 900,
		MeanPeakKmh:    60,
		PeakJitter:     0.4,
		MaxAccel:       2.5,
		MeanCruise:     40,
		MeanIdle:       12,
		Seed:           seed,
	}
}

// Validate reports an error for unusable synthesiser settings.
func (c SynthConfig) Validate() error {
	switch {
	case c.TargetDuration <= 0:
		return fmt.Errorf("drivecycle: TargetDuration = %g, must be > 0", c.TargetDuration)
	case c.MeanPeakKmh <= 0:
		return fmt.Errorf("drivecycle: MeanPeakKmh = %g, must be > 0", c.MeanPeakKmh)
	case c.PeakJitter < 0 || c.PeakJitter >= 1:
		return fmt.Errorf("drivecycle: PeakJitter = %g, must be in [0, 1)", c.PeakJitter)
	case c.MaxAccel <= 0:
		return fmt.Errorf("drivecycle: MaxAccel = %g, must be > 0", c.MaxAccel)
	case c.MeanCruise < 0 || c.MeanIdle < 0:
		return fmt.Errorf("drivecycle: negative cruise/idle durations")
	}
	return nil
}

// Synthesize generates a random but deterministic (seeded) drive cycle from
// the configuration.
func Synthesize(cfg SynthConfig) (*Cycle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trips []microTrip
	elapsed := 5.0 // lead idle
	for elapsed < cfg.TargetDuration {
		jitter := 1 + cfg.PeakJitter*(2*rng.Float64()-1)
		peak := cfg.MeanPeakKmh * jitter
		accel := cfg.MaxAccel * (0.5 + 0.5*rng.Float64())
		decel := cfg.MaxAccel * (0.5 + 0.5*rng.Float64())
		cruise := cfg.MeanCruise * (0.5 + rng.Float64())
		idle := cfg.MeanIdle * (0.5 + rng.Float64())
		trips = append(trips, microTrip{
			peakKmh: peak, accel: accel, decel: decel, cruise: cruise, idle: idle,
		})
		peakMs := peak / 3.6
		elapsed += peakMs/accel + cruise + peakMs/decel + idle
	}
	c := mustSynthesize(cfg.Name, 5, trips)
	// Trim to the target duration, ending at standstill for realism.
	n := int(math.Min(float64(len(c.Speed)), cfg.TargetDuration))
	c.Speed = c.Speed[:n]
	if n > 0 {
		c.Speed[n-1] = 0
	}
	return c, nil
}
