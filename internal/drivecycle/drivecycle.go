// Package drivecycle provides the standard driving cycles used by the
// paper's evaluation (US06, UDDS, HWFET, NYCC, LA92, SC03) plus tools to
// repeat, resample, synthesise and serialise speed traces.
//
// Substitution note (see DESIGN.md): the paper feeds measured EPA
// second-by-second traces into ADVISOR. This package reconstructs each cycle
// deterministically from published segment statistics (duration, distance,
// average/maximum speed, stop density, acceleration aggressiveness) using a
// micro-trip synthesiser; the controller only ever sees the resulting power
// request series, so matching these statistics preserves the distinctions
// that drive the paper's results (aggressive US06/LA92 vs mild UDDS/NYCC).
package drivecycle

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Cycle is a speed-versus-time trace sampled on a fixed period.
type Cycle struct {
	// Name identifies the cycle (e.g. "US06").
	Name string
	// DT is the sampling period in seconds.
	DT float64
	// Speed is the vehicle speed at each sample in m/s.
	Speed []float64
}

// Stats summarises a cycle.
type Stats struct {
	// Duration is the total length in seconds.
	Duration float64
	// Distance is the integrated distance in metres.
	Distance float64
	// AvgSpeed is the mean speed including stops, m/s.
	AvgSpeed float64
	// MaxSpeed is the peak speed, m/s.
	MaxSpeed float64
	// MaxAccel is the largest positive acceleration, m/s².
	MaxAccel float64
	// MaxDecel is the largest magnitude deceleration, m/s² (positive value).
	MaxDecel float64
	// RMSAccel is the root-mean-square acceleration, an aggressiveness
	// index, m/s².
	RMSAccel float64
	// StopFraction is the fraction of samples at (near) standstill.
	StopFraction float64
}

// Duration returns the cycle length in seconds.
func (c *Cycle) Duration() float64 { return float64(len(c.Speed)) * c.DT }

// Samples returns the number of samples.
func (c *Cycle) Samples() int { return len(c.Speed) }

// Stats computes summary statistics of the cycle.
func (c *Cycle) Stats() Stats {
	var s Stats
	s.Duration = c.Duration()
	if len(c.Speed) == 0 {
		return s
	}
	var sumV, sumA2 float64
	stopped := 0
	for i, v := range c.Speed {
		sumV += v
		if v > s.MaxSpeed {
			s.MaxSpeed = v
		}
		if v < 0.1 {
			stopped++
		}
		if i > 0 {
			a := (v - c.Speed[i-1]) / c.DT
			if a > s.MaxAccel {
				s.MaxAccel = a
			}
			if -a > s.MaxDecel {
				s.MaxDecel = -a
			}
			sumA2 += a * a
		}
	}
	n := float64(len(c.Speed))
	s.Distance = sumV * c.DT
	s.AvgSpeed = sumV / n
	if len(c.Speed) > 1 {
		s.RMSAccel = math.Sqrt(sumA2 / (n - 1))
	}
	s.StopFraction = float64(stopped) / n
	return s
}

// Repeat returns a new cycle that plays c n times back to back, matching the
// paper's "driving in US06 five times" workloads.
func (c *Cycle) Repeat(n int) *Cycle {
	if n < 1 {
		//lint:ignore nopanic tested argument contract (TestRepeatPanicsOnZero): a non-positive repeat count is a programmer error
		panic("drivecycle: Repeat count must be >= 1")
	}
	out := &Cycle{
		Name:  fmt.Sprintf("%s x%d", c.Name, n),
		DT:    c.DT,
		Speed: make([]float64, 0, n*len(c.Speed)),
	}
	for i := 0; i < n; i++ {
		out.Speed = append(out.Speed, c.Speed...)
	}
	return out
}

// Resample returns the cycle linearly interpolated onto sampling period dt.
func (c *Cycle) Resample(dt float64) (*Cycle, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("drivecycle: non-positive dt %g", dt)
	}
	if len(c.Speed) == 0 {
		return &Cycle{Name: c.Name, DT: dt}, nil
	}
	dur := c.Duration()
	n := int(math.Floor(dur/dt + 1e-9))
	out := &Cycle{Name: c.Name, DT: dt, Speed: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		j := t / c.DT
		k := int(j)
		if k >= len(c.Speed)-1 {
			out.Speed[i] = c.Speed[len(c.Speed)-1]
			continue
		}
		out.Speed[i] = units.Lerp(c.Speed[k], c.Speed[k+1], j-float64(k))
	}
	return out, nil
}

// Clone returns a deep copy of the cycle.
func (c *Cycle) Clone() *Cycle {
	out := &Cycle{Name: c.Name, DT: c.DT, Speed: make([]float64, len(c.Speed))}
	copy(out.Speed, c.Speed)
	return out
}

// microTrip is one accelerate–cruise–brake–idle phase of a synthetic cycle.
type microTrip struct {
	peakKmh float64 // peak speed, km/h
	accel   float64 // acceleration, m/s²
	decel   float64 // deceleration magnitude, m/s²
	cruise  float64 // cruise time at peak, s
	idle    float64 // standstill time after the stop, s
	repeat  int     // how many times the trip repeats (0 → 1)
}

// mustSynthesize renders a list of micro-trips into a 1 Hz speed trace. It
// panics on malformed trips, which are compile-time constant tables here.
func mustSynthesize(name string, leadIdle float64, trips []microTrip) *Cycle {
	c := &Cycle{Name: name, DT: 1}
	appendHold := func(v, seconds float64) {
		for i := 0; i < int(math.Round(seconds)); i++ {
			c.Speed = append(c.Speed, v)
		}
	}
	appendRamp := func(from, to, rate float64) {
		if rate <= 0 {
			panic("drivecycle: non-positive ramp rate")
		}
		dur := math.Abs(to-from) / rate
		steps := int(math.Ceil(dur))
		for i := 1; i <= steps; i++ {
			f := float64(i) / float64(steps)
			c.Speed = append(c.Speed, units.Lerp(from, to, f))
		}
	}
	appendHold(0, leadIdle)
	for _, tr := range trips {
		n := tr.repeat
		if n < 1 {
			n = 1
		}
		peak := units.KmhToMs(tr.peakKmh)
		for i := 0; i < n; i++ {
			appendRamp(0, peak, tr.accel)
			appendHold(peak, tr.cruise)
			appendRamp(peak, 0, tr.decel)
			appendHold(0, tr.idle)
		}
	}
	return c
}

// US06 returns the aggressive high-speed/high-acceleration supplemental FTP
// cycle (≈600 s, ≈12.9 km, avg ≈77.9 km/h, max ≈129 km/h).
func US06() *Cycle {
	return mustSynthesize("US06", 5, []microTrip{
		{peakKmh: 110, accel: 2.8, decel: 1.5, cruise: 60, idle: 5},
		{peakKmh: 129, accel: 2.2, decel: 1.8, cruise: 130, idle: 8},
		{peakKmh: 50, accel: 2.5, decel: 2.0, cruise: 15, idle: 8, repeat: 3},
		{peakKmh: 100, accel: 3.2, decel: 2.0, cruise: 80, idle: 5},
		{peakKmh: 80, accel: 2.0, decel: 1.5, cruise: 60, idle: 10},
	})
}

// UDDS returns the urban dynamometer driving schedule (≈1369 s, ≈12 km,
// avg ≈31.5 km/h, max ≈91 km/h).
func UDDS() *Cycle {
	return mustSynthesize("UDDS", 20, []microTrip{
		{peakKmh: 91, accel: 1.3, decel: 1.2, cruise: 80, idle: 15},
		{peakKmh: 70, accel: 1.2, decel: 1.2, cruise: 50, idle: 20, repeat: 2},
		{peakKmh: 40, accel: 1.1, decel: 1.2, cruise: 40, idle: 22, repeat: 10},
		{peakKmh: 30, accel: 1.0, decel: 1.1, cruise: 20, idle: 15, repeat: 4},
	})
}

// HWFET returns the highway fuel-economy test cycle (≈765 s, ≈16.5 km,
// avg ≈77.7 km/h, max ≈96 km/h, no intermediate stops).
func HWFET() *Cycle {
	c := &Cycle{Name: "HWFET", DT: 1}
	// One continuous trip with speed plateaus; built manually because the
	// micro-trip synthesiser always returns to standstill.
	seq := []struct {
		target float64 // km/h
		rate   float64 // m/s²
		hold   float64 // s
	}{
		{88, 1.0, 300},
		{96, 0.5, 150},
		{70, 0.5, 150},
		{85, 0.6, 80},
		{0, 1.0, 5},
	}
	c.Speed = append(c.Speed, 0, 0, 0, 0, 0)
	cur := 0.0
	for _, s := range seq {
		target := units.KmhToMs(s.target)
		steps := int(math.Ceil(math.Abs(target-cur) / s.rate))
		for i := 1; i <= steps; i++ {
			c.Speed = append(c.Speed, units.Lerp(cur, target, float64(i)/float64(steps)))
		}
		cur = target
		for i := 0; i < int(s.hold); i++ {
			c.Speed = append(c.Speed, cur)
		}
	}
	return c
}

// NYCC returns the New York City cycle (≈598 s, ≈1.9 km, avg ≈11.4 km/h,
// max ≈44.6 km/h — dense stop-and-go).
func NYCC() *Cycle {
	return mustSynthesize("NYCC", 25, []microTrip{
		{peakKmh: 44, accel: 1.2, decel: 1.5, cruise: 15, idle: 25, repeat: 2},
		{peakKmh: 25, accel: 1.0, decel: 1.3, cruise: 14, idle: 28, repeat: 6},
		{peakKmh: 15, accel: 0.8, decel: 1.0, cruise: 10, idle: 12, repeat: 5},
	})
}

// LA92 returns the LA92 "unified" cycle (≈1435 s, ≈15.8 km, avg ≈39.6 km/h,
// max ≈108 km/h — more aggressive than UDDS).
func LA92() *Cycle {
	return mustSynthesize("LA92", 15, []microTrip{
		{peakKmh: 108, accel: 1.8, decel: 1.5, cruise: 120, idle: 10},
		{peakKmh: 80, accel: 1.6, decel: 1.5, cruise: 80, idle: 12, repeat: 2},
		{peakKmh: 50, accel: 1.5, decel: 1.6, cruise: 35, idle: 18, repeat: 8},
		{peakKmh: 30, accel: 1.3, decel: 1.4, cruise: 20, idle: 22, repeat: 8},
	})
}

// SC03 returns the SC03 air-conditioning supplemental cycle (≈596 s,
// ≈5.8 km, avg ≈34.8 km/h, max ≈88 km/h).
func SC03() *Cycle {
	return mustSynthesize("SC03", 15, []microTrip{
		{peakKmh: 88, accel: 1.7, decel: 1.5, cruise: 60, idle: 12},
		{peakKmh: 50, accel: 1.5, decel: 1.5, cruise: 30, idle: 15, repeat: 3},
		{peakKmh: 40, accel: 1.3, decel: 1.4, cruise: 25, idle: 16, repeat: 5},
	})
}

// ErrUnknown reports a cycle name ByName does not recognise. Match it with
// errors.Is; it is re-exported by the public facade as otem.ErrUnknownCycle.
var ErrUnknown = errors.New("drivecycle: unknown cycle")

// ByName returns a standard cycle by its canonical name. Recognised names
// are returned by Names. Unrecognised names return an error wrapping
// ErrUnknown.
func ByName(name string) (*Cycle, error) {
	switch name {
	case "US06":
		return US06(), nil
	case "UDDS":
		return UDDS(), nil
	case "HWFET":
		return HWFET(), nil
	case "NYCC":
		return NYCC(), nil
	case "LA92":
		return LA92(), nil
	case "SC03":
		return SC03(), nil
	case "WLTC3":
		return WLTC3(), nil
	case "JC08":
		return JC08(), nil
	case "ARTEMIS-URBAN":
		return ArtemisUrban(), nil
	}
	return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
}

// Names lists the six EPA cycles the paper-reproduction sweeps run over,
// in sorted order.
func Names() []string {
	n := []string{"US06", "UDDS", "HWFET", "NYCC", "LA92", "SC03"}
	sort.Strings(n)
	return n
}

// AllNames lists every cycle ByName recognises (the EPA set plus WLTC3,
// JC08 and ARTEMIS-URBAN), in sorted order.
func AllNames() []string {
	n := append(Names(), "WLTC3", "JC08", "ARTEMIS-URBAN")
	sort.Strings(n)
	return n
}

// MustAll returns every standard cycle, in Names order. It panics only if
// the registry is inconsistent with Names, which cannot happen outside a
// broken edit to this package.
func MustAll() []*Cycle {
	names := Names()
	out := make([]*Cycle, len(names))
	for i, n := range names {
		c, err := ByName(n)
		if err != nil {
			panic("drivecycle: " + err.Error())
		}
		out[i] = c
	}
	return out
}
