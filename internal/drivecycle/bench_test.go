package drivecycle

import "testing"

func BenchmarkUS06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c := US06(); c.Samples() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	cfg := DefaultSynthConfig(1)
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStats(b *testing.B) {
	c := LA92()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := c.Stats(); s.Duration == 0 {
			b.Fatal("empty")
		}
	}
}
