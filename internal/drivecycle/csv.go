package drivecycle

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core/floats"
)

// WriteCSV serialises the cycle as two columns, "time_s,speed_ms", with a
// header row.
func (c *Cycle) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "speed_ms"}); err != nil {
		return fmt.Errorf("drivecycle: write header: %w", err)
	}
	for i, v := range c.Speed {
		t := float64(i) * c.DT
		rec := []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("drivecycle: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a cycle written by WriteCSV (or any two-column
// time/speed CSV with a header and uniform sampling). The name is taken
// from the argument since CSV carries none.
func ReadCSV(r io.Reader, name string) (*Cycle, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("drivecycle: read csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("drivecycle: csv has no data rows")
	}
	body := rows[1:] // skip header
	c := &Cycle{Name: name, Speed: make([]float64, 0, len(body))}
	var prevT float64
	for i, rec := range body {
		if len(rec) < 2 {
			return nil, fmt.Errorf("drivecycle: row %d has %d columns, want 2", i+1, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("drivecycle: row %d time: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("drivecycle: row %d speed: %w", i+1, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("drivecycle: row %d negative speed %g", i+1, v)
		}
		if i == 1 {
			c.DT = t - prevT
			if c.DT <= 0 {
				return nil, fmt.Errorf("drivecycle: non-increasing time at row %d", i+1)
			}
		} else if i > 1 {
			if dt := t - prevT; dt <= 0 || absDiff(dt, c.DT) > 1e-6*c.DT {
				return nil, fmt.Errorf("drivecycle: non-uniform sampling at row %d (dt=%g, want %g)", i+1, dt, c.DT)
			}
		}
		prevT = t
		c.Speed = append(c.Speed, v)
	}
	if floats.Zero(c.DT) {
		c.DT = 1
	}
	return c, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
