package sim

import "testing"

func BenchmarkRunBatteryDirect(b *testing.B) {
	requests := make([]float64, 600)
	for i := range requests {
		requests[i] = 20e3
	}
	ctrl := constController{"bench", Action{Arch: ArchBatteryDirect}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plant, err := NewPlant(PlantConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(plant, ctrl, requests, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunParallel(b *testing.B) {
	requests := make([]float64, 600)
	for i := range requests {
		requests[i] = 20e3
	}
	ctrl := constController{"bench", Action{Arch: ArchParallel}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plant, err := NewPlant(PlantConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(plant, ctrl, requests, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
