package sim_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
)

// batchTestRoute synthesises a deterministic mixed route: discharge ramps,
// regen dips, idle stretches and an infeasible spike that exercises the
// battery fallback.
func batchTestRoute(seed int64, steps int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, steps)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i] = -15e3 * rng.Float64() // regen
		case 1:
			out[i] = 0 // idle
		default:
			out[i] = 45e3 * rng.Float64() // drive
		}
	}
	return out
}

// TestRunBatchMatchesRunContext is the kernel-level bit-identity gate:
// lanes of different lengths, stepped in lockstep, must produce exactly
// the sim.Result that sim.RunContext produces for the same vehicle — every field,
// compared with == (no tolerances).
func TestRunBatchMatchesRunContext(t *testing.T) {
	ctrls := map[string]func() sim.Controller{
		"parallel": func() sim.Controller { return policy.Parallel{} },
		"dual":     func() sim.Controller { return policy.NewDual() },
		"cooling":  func() sim.Controller { return policy.NewActiveCooling() },
	}
	for name, mk := range ctrls {
		const lanes = 9
		batch := make([]sim.BatchVehicle, lanes)
		want := make([]sim.Result, lanes)
		for k := 0; k < lanes; k++ {
			route := batchTestRoute(int64(100+k), 80+13*k) // staggered lengths
			ref, err := sim.NewPlant(sim.PlantConfig{})
			if err != nil {
				t.Fatal(err)
			}
			w, err := sim.RunContext(context.Background(), ref, mk(), route, sim.Config{Horizon: 5})
			if err != nil {
				t.Fatalf("%s lane %d scalar: %v", name, k, err)
			}
			want[k] = w

			p, err := sim.NewPlant(sim.PlantConfig{})
			if err != nil {
				t.Fatal(err)
			}
			batch[k] = sim.BatchVehicle{Plant: p, Ctrl: mk(), Requests: route}
		}
		var sc sim.BatchScratch
		got, err := sim.RunBatch(context.Background(), batch, sim.Config{Horizon: 5}, &sc)
		if err != nil {
			t.Fatalf("%s batch: %v", name, err)
		}
		for k := 0; k < lanes; k++ {
			if got[k] != want[k] {
				t.Errorf("%s lane %d: batch result %+v != scalar %+v", name, k, got[k], want[k])
			}
		}
	}
}

// TestRunBatchForecastDepthInvariance pins that the depth-limited forecast
// fill cannot change outcomes: a controller reading the full window must
// see identical results batched and scalar even when other lanes' depths
// left stale entries in the shared buffer.
func TestRunBatchForecastDepthInvariance(t *testing.T) {
	route := batchTestRoute(7, 96)
	ref, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunContext(context.Background(), ref, policy.NewDual(), route, sim.Config{Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Lane 0 (depth 0) dirties the window before lane 1 reads it.
	p0, _ := sim.NewPlant(sim.PlantConfig{})
	p1, _ := sim.NewPlant(sim.PlantConfig{})
	var sc sim.BatchScratch
	got, err := sim.RunBatch(context.Background(), []sim.BatchVehicle{
		{Plant: p0, Ctrl: policy.Parallel{}, Requests: batchTestRoute(8, 96)},
		{Plant: p1, Ctrl: policy.NewDual(), Requests: route},
	}, sim.Config{Horizon: 8}, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != want {
		t.Fatalf("dual lane diverged behind a depth-0 lane: %+v != %+v", got[1], want)
	}
}

// TestRunBatchWarmNoAlloc proves the batched step loop is allocation-free
// once the scratch is warm — the allocflow gate's runtime counterpart.
func TestRunBatchWarmNoAlloc(t *testing.T) {
	const lanes = 16
	routes := make([][]float64, lanes)
	for k := range routes {
		routes[k] = batchTestRoute(int64(k), 64)
	}
	batch := make([]sim.BatchVehicle, lanes)
	var sc sim.BatchScratch
	reset := func() {
		for k := range batch {
			p, err := sim.NewPlant(sim.PlantConfig{})
			if err != nil {
				t.Fatal(err)
			}
			batch[k] = sim.BatchVehicle{Plant: p, Ctrl: policy.Parallel{}, Requests: routes[k]}
		}
	}
	reset()
	if _, err := sim.RunBatch(context.Background(), batch, sim.Config{Horizon: 5}, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := sim.RunBatch(context.Background(), batch, sim.Config{Horizon: 5}, &sc); err != nil {
			t.Fatal(err)
		}
	})
	// reset() allocations (fresh plants) are outside the measured closure;
	// the warm batch loop itself must not allocate at all.
	if allocs != 0 {
		t.Fatalf("warm sim.RunBatch allocates %.2f per run, want 0", allocs)
	}
}
