// Package sim is the driving-time simulation engine implementing the outer
// loop of the paper's Algorithm 1: at each time step the controller observes
// the plant state and the predicted EV power requests, decides how to
// actuate the HEES and the active cooling system, and the engine advances
// the physical models and accumulates Q_loss and the HEES energy.
//
// The engine is controller-agnostic: the baselines (parallel, active
// cooling, dual) and the OTEM MPC all implement the same Controller
// interface, so every experiment runs the identical plant.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cooling"
	"repro/internal/core/floats"
	"repro/internal/hees"
	"repro/internal/runner"
	"repro/internal/ultracap"
)

// Plant bundles the physical system under control.
type Plant struct {
	// HEES holds the battery, ultracapacitor and converters.
	HEES *hees.System
	// Loop is the thermal model (battery + coolant nodes); its battery
	// temperature is mirrored into the battery pack each step.
	Loop *cooling.Loop
	// Ambient is the outside-air temperature in kelvin (used when a
	// controller leaves the cooling system off).
	Ambient float64
	// DT is the integration/control period in seconds.
	DT float64
}

// Validate reports an error for an incomplete plant.
func (p *Plant) Validate() error {
	switch {
	case p.HEES == nil:
		return errors.New("sim: plant has no HEES")
	case p.Loop == nil:
		return errors.New("sim: plant has no cooling loop")
	case p.Ambient <= 0:
		return fmt.Errorf("sim: ambient %g K invalid", p.Ambient)
	case p.DT <= 0:
		return fmt.Errorf("sim: dt %g invalid", p.DT)
	}
	return nil
}

// ArchKind selects how an Action drives the HEES.
type ArchKind int

const (
	// ArchParallel executes the passive parallel architecture (Eqs. 10–13).
	ArchParallel ArchKind = iota
	// ArchBatteryDirect connects only the battery, with no converter — the
	// pure active-cooling baseline's storage path.
	ArchBatteryDirect
	// ArchDual executes the switched dual architecture.
	ArchDual
	// ArchHybrid executes the converter-coupled hybrid architecture.
	ArchHybrid
)

// String implements fmt.Stringer.
func (k ArchKind) String() string {
	switch k {
	case ArchParallel:
		return "parallel"
	case ArchBatteryDirect:
		return "battery-direct"
	case ArchDual:
		return "dual"
	case ArchHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("ArchKind(%d)", int(k))
	}
}

// Action is one step's actuation decision.
type Action struct {
	// Arch selects the storage path.
	Arch ArchKind
	// CapBusPower is the ultracapacitor bus power command for ArchHybrid
	// (positive discharge, negative pre-charge); the battery covers the
	// remainder of the request.
	CapBusPower float64
	// DualMode and DualChargePower configure ArchDual.
	DualMode hees.DualMode
	// DualChargePower is the capacitor recharge power in DualBatteryCharge
	// mode, watts.
	DualChargePower float64
	// CoolingOn runs the pump; when false the pack is passively coupled to
	// ambient.
	CoolingOn bool
	// InletTemp is the commanded coolant inlet temperature T_i (kelvin)
	// while cooling is on; the plant clamps it to the feasible range
	// (constraints C2/C3).
	InletTemp float64
}

// Controller decides the actuation at every step of Algorithm 1.
type Controller interface {
	// Name identifies the methodology in results and traces.
	Name() string
	// Decide returns the action for the current step. forecast[0] is the
	// present power request P_e^t in watts; the remaining entries are the
	// estimated requests for future steps (the MPC control window). The
	// controller must not mutate the plant, and must treat the forecast
	// window as read-only: the engine may hand the same backing array to
	// every vehicle of a batch, or a view straight into the route series.
	Decide(p *Plant, forecast []float64) Action
}

// ForecastReader is an optional Controller extension declaring how many
// leading forecast entries Decide actually reads. The batched rollout uses
// it to fill only the prefix a controller consumes — outcome-invariant,
// because entries past the declared depth are never read — instead of
// writing the full horizon for every vehicle at every step. Entries beyond
// the depth hold stale values from other lanes; a controller implementing
// this interface must never read past its declared depth. Controllers
// without the interface receive the fully filled window.
type ForecastReader interface {
	// ForecastDepth returns the number of leading forecast entries Decide
	// reads: 0 for none, 1 for just the present request, a negative value
	// for the whole window.
	ForecastDepth() int
}

// Trace records per-step signals for the figure-style experiments.
type Trace struct {
	// Time holds the step start times, seconds.
	Time []float64
	// PowerRequest is P_e per step, watts.
	PowerRequest []float64
	// BatteryTemp and CoolantTemp are kelvin.
	BatteryTemp, CoolantTemp []float64
	// SoC and SoE are fractions.
	SoC, SoE []float64
	// CoolerPower is the cooling system electrical power (cooler + pump), W.
	CoolerPower []float64
	// BatteryPower is the battery terminal power, W.
	BatteryPower []float64
	// CapPower is the ultracapacitor terminal power, W.
	CapPower []float64
	// BatteryHeat is the internal heat generation Q_b, W.
	BatteryHeat []float64
}

// Reset truncates every series to zero length while keeping the backing
// arrays, so the next run appends into the same storage.
func (tr *Trace) Reset() {
	tr.Time = tr.Time[:0]
	tr.PowerRequest = tr.PowerRequest[:0]
	tr.BatteryTemp = tr.BatteryTemp[:0]
	tr.CoolantTemp = tr.CoolantTemp[:0]
	tr.SoC = tr.SoC[:0]
	tr.SoE = tr.SoE[:0]
	tr.CoolerPower = tr.CoolerPower[:0]
	tr.BatteryPower = tr.BatteryPower[:0]
	tr.CapPower = tr.CapPower[:0]
	tr.BatteryHeat = tr.BatteryHeat[:0]
}

// reserve grows each series to capacity n (keeping contents), so a run of n
// steps appends without reallocating.
//
//lint:coldpath per-route capacity growth; a Scratch reused across routes hits the cap check and returns
func (tr *Trace) reserve(n int) {
	if cap(tr.Time) >= n {
		return
	}
	grow := func(s []float64) []float64 {
		out := make([]float64, len(s), n)
		copy(out, s)
		return out
	}
	tr.Time = grow(tr.Time)
	tr.PowerRequest = grow(tr.PowerRequest)
	tr.BatteryTemp = grow(tr.BatteryTemp)
	tr.CoolantTemp = grow(tr.CoolantTemp)
	tr.SoC = grow(tr.SoC)
	tr.SoE = grow(tr.SoE)
	tr.CoolerPower = grow(tr.CoolerPower)
	tr.BatteryPower = grow(tr.BatteryPower)
	tr.CapPower = grow(tr.CapPower)
	tr.BatteryHeat = grow(tr.BatteryHeat)
}

// append records one step in every series. The appends stay within the
// capacity reserve preallocated; only an unwarmed (scratchless) trace
// grows here, amortized by the runtime's doubling.
//
//lint:coldpath appends land in reserved capacity on the warmed path; scratchless growth is amortized
func (tr *Trace) append(t, pe, tb, tc, soc, soe, pcool, pbatt, pcap, qb float64) {
	tr.Time = append(tr.Time, t)
	tr.PowerRequest = append(tr.PowerRequest, pe)
	tr.BatteryTemp = append(tr.BatteryTemp, tb)
	tr.CoolantTemp = append(tr.CoolantTemp, tc)
	tr.SoC = append(tr.SoC, soc)
	tr.SoE = append(tr.SoE, soe)
	tr.CoolerPower = append(tr.CoolerPower, pcool)
	tr.BatteryPower = append(tr.BatteryPower, pbatt)
	tr.CapPower = append(tr.CapPower, pcap)
	tr.BatteryHeat = append(tr.BatteryHeat, qb)
}

// Result aggregates one simulated route (the outputs of Algorithm 1 plus
// the derived metrics the paper reports).
type Result struct {
	// Controller is the methodology name.
	Controller string
	// Steps is the number of simulated steps; DT their length in seconds.
	Steps int
	// DT is the step length in seconds.
	DT float64

	// QlossPct is the accumulated battery capacity loss (Algorithm 1
	// output Q_loss), percent of rated capacity.
	QlossPct float64
	// HEESEnergyJ is the accumulated energy drawn from the storages
	// including internal and converter losses (Algorithm 1 output Energy),
	// joules. Cooling-system consumption is folded in, because the cooler
	// and pump draw from the same bus.
	HEESEnergyJ float64
	// CoolingEnergyJ is the cooling subsystem's share of the consumption,
	// joules.
	CoolingEnergyJ float64
	// AvgPowerW is HEESEnergyJ divided by the route duration — the paper's
	// Fig. 9 / Table I "average power" metric.
	AvgPowerW float64
	// MaxBatteryTemp is the peak T_b over the route, kelvin.
	MaxBatteryTemp float64
	// AvgBatteryTemp is the time-averaged T_b, kelvin.
	AvgBatteryTemp float64
	// ThermalViolationSec counts seconds with T_b above the safe limit
	// (constraint C1).
	ThermalViolationSec float64
	// FallbackSteps counts steps where the commanded action was infeasible
	// and the engine fell back to the battery path.
	FallbackSteps int
	// FinalSoC and FinalSoE are the terminal storage states, fractions.
	FinalSoC, FinalSoE float64
	// Trace is per-step data when tracing was enabled, else nil.
	Trace *Trace
}

// BLTRatio returns the battery-lifetime figure used in the paper's Fig. 8:
// the capacity loss of this run relative to a baseline run (lower is
// better; the baseline is 1.0 by construction).
func (r Result) BLTRatio(baseline Result) float64 {
	if floats.Zero(baseline.QlossPct) {
		return math.Inf(1)
	}
	return r.QlossPct / baseline.QlossPct
}

// LifetimeExtensionPct converts the capacity-loss reduction into the BLT
// improvement the paper headlines: driving the same route repeatedly, the
// time to reach end-of-life (20 % capacity loss, §I) scales inversely with
// the per-route loss.
func (r Result) LifetimeExtensionPct(baseline Result) float64 {
	if floats.Zero(r.QlossPct) {
		return math.Inf(1)
	}
	return (baseline.QlossPct/r.QlossPct - 1) * 100
}

// Config tunes a simulation run.
type Config struct {
	// RecordTrace enables per-step trace capture.
	RecordTrace bool
	// Horizon is how many future samples are shown to the controller
	// (≥ 1; the first entry is the current step).
	Horizon int
	// Scratch optionally supplies reusable run buffers; nil allocates fresh
	// ones (the original behaviour).
	Scratch *Scratch
}

// Scratch holds the per-run buffers — the forecast window and, when tracing,
// the trace storage — so repeated simulations (sweeps, benchmark loops,
// pooled workers) run without per-route allocations. Like an optimize
// Workspace it is single-goroutine state: give each runner.Pool worker its
// own. A Result produced with a Scratch aliases its trace storage, which the
// next run reuses — copy the trace if it must survive.
type Scratch struct {
	forecast []float64
	trace    Trace
}

// Run simulates the power-request series through the plant under the given
// controller — the paper's Algorithm 1. The plant is mutated in place.
func Run(plant *Plant, ctrl Controller, requests []float64, cfg Config) (Result, error) {
	return RunContext(context.Background(), plant, ctrl, requests, cfg)
}

// RunContext is Run with cooperative cancellation: the engine checks ctx
// between steps and, when it fires, abandons the route with an error
// matching runner.ErrCanceled (and the context's own error) via errors.Is.
// The plant is left in its mid-route state.
//
//lint:hotpath the vehicle-step loop is the simulator's inner loop; with a warmed Scratch it must not allocate
func RunContext(ctx context.Context, plant *Plant, ctrl Controller, requests []float64, cfg Config) (Result, error) {
	if err := plant.Validate(); err != nil {
		return Result{}, err
	}
	if ctrl == nil {
		return Result{}, errors.New("sim: nil controller")
	}
	if len(requests) == 0 {
		return Result{}, errors.New("sim: empty request series")
	}
	horizon := cfg.Horizon
	if horizon < 1 {
		horizon = 1
	}

	res := Result{Controller: ctrl.Name(), Steps: len(requests), DT: plant.DT}
	forecast := setupRoute(cfg, horizon, len(requests), &res)
	safe := plant.HEES.Battery.Cell.SafeTemp
	done := ctx.Done() // nil for context.Background(): the select never fires

	var tempSum float64
	for t, pe := range requests {
		select {
		case <-done:
			return res, fmt.Errorf("sim: run canceled at step %d: %w", t, runner.Canceled(ctx.Err()))
		default:
		}
		// Mirror the thermal state into the battery model before deciding.
		plant.HEES.Battery.Temp = plant.Loop.BatteryTemp

		// Build the forecast window (zero-padded past the route end,
		// matching Algorithm 1 lines 11–12).
		fillForecast(forecast, requests, t)

		act := ctrl.Decide(plant, forecast)
		load := pe + coolingLoad(plant, act)

		rep, fellBack := executeAction(plant, act, load)
		// Advance the thermal network with the battery heat of this step.
		coolRes, err := advanceThermal(plant, act, rep.Batt.HeatRate)
		if err != nil {
			return res, fmt.Errorf("sim: thermal step %d: %w", t, err)
		}
		plant.HEES.Battery.Temp = plant.Loop.BatteryTemp

		// Accumulate Algorithm 1 outputs (lines 17–18).
		tb := plant.Loop.BatteryTemp
		res.accumulateStep(rep, coolRes, fellBack, tb, safe, plant.DT)
		tempSum += tb
		if res.Trace != nil {
			res.Trace.append(float64(t)*plant.DT, pe, tb, plant.Loop.CoolantTemp,
				plant.HEES.Battery.SoC, plant.HEES.Cap.SoE,
				coolRes.CoolerPower+coolRes.PumpPower,
				rep.Batt.TerminalVoltage*rep.Batt.Current,
				rep.Cap.TerminalVoltage*rep.Cap.Current,
				rep.Batt.HeatRate)
		}
	}

	res.finishRoute(plant, tempSum)
	return res, nil
}

// fillForecast writes the window starting at step t into dst, zero-padded
// past the route end. The batched rollout passes a depth-limited dst when
// the controller declares (via ForecastReader) that it reads fewer entries.
func fillForecast(dst, requests []float64, t int) {
	for k := range dst {
		if t+k < len(requests) {
			dst[k] = requests[t+k]
		} else {
			dst[k] = 0
		}
	}
}

// coolingLoad returns the cooling system's electrical draw for an action.
// It is drawn from the same bus, so it adds to the storage load.
func coolingLoad(plant *Plant, act Action) float64 {
	if !act.CoolingOn {
		return 0
	}
	return plant.Loop.CoolerPowerFor(
		clampInlet(plant.Loop, act.InletTemp)) + plant.Loop.Params.PumpPower
}

// advanceThermal integrates the thermal network with this step's battery
// heat, active or passive per the action.
func advanceThermal(plant *Plant, act Action, heat float64) (cooling.StepResult, error) {
	if act.CoolingOn {
		return plant.Loop.StepActive(heat, act.InletTemp, plant.DT)
	}
	return plant.Loop.StepPassive(heat, plant.Ambient, plant.DT)
}

// accumulateStep folds one step's outputs into the route result — the
// single definition of Algorithm 1's accumulators, shared by the scalar
// and the batched rollout so both produce bit-identical sums.
func (res *Result) accumulateStep(rep hees.StepReport, coolRes cooling.StepResult, fellBack bool, tb, safe, dt float64) {
	res.QlossPct += rep.Batt.AgingPct
	res.HEESEnergyJ += rep.HEESEnergyJ
	res.CoolingEnergyJ += (coolRes.CoolerPower + coolRes.PumpPower) * dt
	if fellBack {
		res.FallbackSteps++
	}
	if tb > res.MaxBatteryTemp {
		res.MaxBatteryTemp = tb
	}
	if tb > safe {
		res.ThermalViolationSec += dt
	}
}

// finishRoute derives the end-of-route metrics.
func (res *Result) finishRoute(plant *Plant, tempSum float64) {
	duration := float64(res.Steps) * plant.DT
	res.AvgPowerW = res.HEESEnergyJ / duration
	res.AvgBatteryTemp = tempSum / float64(res.Steps)
	res.FinalSoC = plant.HEES.Battery.SoC
	res.FinalSoE = plant.HEES.Cap.SoE
}

// setupRoute acquires the forecast window and, when tracing, the trace
// storage — from the caller's Scratch when one is provided, freshly
// otherwise — and wires the trace into res.
//
//lint:coldpath per-route setup runs once before the step loop; a reused Scratch makes it allocation-free too
func setupRoute(cfg Config, horizon, steps int, res *Result) []float64 {
	if sc := cfg.Scratch; sc != nil {
		if cap(sc.forecast) < horizon {
			sc.forecast = make([]float64, horizon)
		}
		if cfg.RecordTrace {
			sc.trace.Reset()
			sc.trace.reserve(steps)
			res.Trace = &sc.trace
		}
		return sc.forecast[:horizon]
	}
	if cfg.RecordTrace {
		res.Trace = &Trace{}
	}
	return make([]float64, horizon)
}

// unknownArch builds the cannot-happen error for an unmatched ArchKind;
// a separate cold function so executeAction stays allocation-free on the
// matched branches.
//
//lint:coldpath unreachable guard: every ArchKind has a case; the error only routes to the battery fallback
func unknownArch(arch ArchKind) error {
	return fmt.Errorf("sim: unknown arch %v", arch)
}

// executeAction runs the storage step, falling back to the battery path on
// infeasible commands so baseline policies cannot crash the route.
func executeAction(plant *Plant, act Action, load float64) (hees.StepReport, bool) {
	s := plant.HEES
	dt := plant.DT
	var (
		rep hees.StepReport
		err error
	)
	switch act.Arch {
	case ArchParallel:
		rep, err = s.StepParallel(load, dt)
	case ArchBatteryDirect:
		rep, err = stepBatteryDirect(s, load, dt)
	case ArchDual:
		rep, err = s.StepDual(act.DualMode, load, act.DualChargePower, dt)
		if errors.Is(err, ultracap.ErrEmpty) {
			// Depleted capacitor: complete the step on the battery.
			rep, err = stepBatteryDirect(s, load, dt)
			if err == nil {
				return rep, true
			}
		}
	case ArchHybrid:
		// Clamp the capacitor command to what the bank can actually deliver
		// or absorb during this step — power capability AND stored energy —
		// before the battery branch is committed, so the bus balance stays
		// energy-conserving even when the controller's model has drifted.
		capBus := act.CapBusPower
		requested := capBus
		if capBus > 0 {
			// 0.97 margin keeps the quadratic solve away from its marginal
			// (50 %-efficiency) root where rounding makes it infeasible.
			if maxP := 0.97 * s.CapMaxBusPower(); capBus > maxP {
				capBus = maxP
			}
			vcap := s.Cap.Voltage()
			// Storage-side energy available this step, viewed at the bus.
			if maxByEnergy := s.CapConv.BusPower(s.Cap.StoredEnergy()/dt, vcap); capBus > maxByEnergy {
				capBus = maxByEnergy
			}
			if capBus < 0 {
				capBus = 0
			}
		} else if capBus < 0 {
			// Charging: the storage receives |busP|·η, bounded by headroom.
			eta := s.CapConv.Efficiency(s.Cap.Voltage())
			if maxAbsorb := s.Cap.HeadroomEnergy() / dt / eta; -capBus > maxAbsorb {
				capBus = -maxAbsorb
			}
		}
		clamped := math.Abs(capBus-requested) > 1
		rep, err = s.StepHybrid(load-capBus, capBus, dt)
		if err == nil && clamped {
			return rep, true
		}
		if errors.Is(err, ultracap.ErrEmpty) {
			return rep, true // residual rounding; the shortfall is ≤ the ESR loss
		}
	default:
		err = unknownArch(act.Arch)
	}
	if err == nil {
		return rep, false
	}
	return batteryFallback(s, load, dt)
}

// batteryFallback is the last-resort path for an infeasible command:
// battery alone, clamped to its capability. The batched rollout shares it
// so an infeasible lane recovers through exactly the scalar sequence.
func batteryFallback(s *hees.System, load, dt float64) (hees.StepReport, bool) {
	rep2, err2 := stepBatteryDirect(s, load, dt)
	if err2 != nil {
		// Clamp to whatever the battery can deliver.
		maxP := s.Battery.MaxDischargePower() * 0.99
		if load > maxP {
			rep2, err2 = stepBatteryDirect(s, maxP, dt)
		}
		if err2 != nil {
			return hees.StepReport{}, true
		}
	}
	return rep2, true
}

func stepBatteryDirect(s *hees.System, load, dt float64) (hees.StepReport, error) {
	battRes, err := s.Battery.Step(load, dt)
	if err != nil {
		return hees.StepReport{}, err
	}
	return hees.StepReport{
		Batt:        battRes,
		HEESEnergyJ: battRes.ChemicalEnergy,
		BusVoltage:  battRes.TerminalVoltage,
	}, nil
}

func clampInlet(l *cooling.Loop, ti float64) float64 {
	lo := l.MinFeasibleInlet()
	if ti < lo {
		return lo
	}
	if ti > l.CoolantTemp {
		return l.CoolantTemp
	}
	return ti
}
