package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the trace with one row per step and a header, for
// external plotting of the figure-style experiments.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"time_s", "power_request_w", "battery_temp_k", "coolant_temp_k",
		"soc", "soe", "cooling_power_w", "battery_power_w", "cap_power_w",
		"battery_heat_w",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: trace header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for i := range tr.Time {
		rec := []string{
			f(tr.Time[i]), f(tr.PowerRequest[i]), f(tr.BatteryTemp[i]), f(tr.CoolantTemp[i]),
			f(tr.SoC[i]), f(tr.SoE[i]), f(tr.CoolerPower[i]), f(tr.BatteryPower[i]), f(tr.CapPower[i]),
			f(tr.BatteryHeat[i]),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sim: trace row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
