package sim

import (
	"repro/internal/battery"
	"repro/internal/converter"
	"repro/internal/cooling"
	"repro/internal/core/floats"
	"repro/internal/hees"
	"repro/internal/ultracap"
)

// PlantConfig describes the experimental system configuration. The zero
// value is completed by Defaults to the paper's setup (Algorithm 1 line 9
// initialises x⁰ = [298 K, 298 K, 100 %, 100 %]).
type PlantConfig struct {
	// UltracapF is the bank nameplate capacitance in farads (Table I knob).
	UltracapF float64
	// PackSeries and PackParallel define the battery topology.
	PackSeries, PackParallel int
	// InitialSoC and InitialSoE are fractions in [0, 1].
	InitialSoC, InitialSoE float64
	// InitialTemp is the initial battery/coolant temperature, kelvin.
	InitialTemp float64
	// Ambient is the outside-air temperature, kelvin.
	Ambient float64
	// DT is the control/integration period, seconds.
	DT float64
	// Cooling optionally overrides the cooling-loop parameters.
	Cooling *cooling.Params
	// Cell optionally overrides the battery chemistry (default NCR18650A).
	Cell *battery.CellParams
}

// Defaults fills unset (zero) fields with the paper's experimental setup.
func (c PlantConfig) Defaults() PlantConfig {
	if floats.Zero(c.UltracapF) {
		c.UltracapF = 25000
	}
	if c.PackSeries == 0 {
		c.PackSeries = 96
	}
	if c.PackParallel == 0 {
		c.PackParallel = 24
	}
	if floats.Zero(c.InitialSoC) {
		c.InitialSoC = 1.0
	}
	if floats.Zero(c.InitialSoE) {
		c.InitialSoE = 1.0
	}
	if floats.Zero(c.InitialTemp) {
		c.InitialTemp = 298
	}
	if floats.Zero(c.Ambient) {
		c.Ambient = 298
	}
	if floats.Zero(c.DT) {
		c.DT = 1
	}
	return c
}

// NewPlant builds a plant from the configuration (after applying Defaults).
func NewPlant(cfg PlantConfig) (*Plant, error) {
	cfg = cfg.Defaults()

	cell := battery.NCR18650A()
	if cfg.Cell != nil {
		cell = *cfg.Cell
	}
	pack, err := battery.NewPack(cell, cfg.PackSeries, cfg.PackParallel,
		cfg.InitialSoC, cfg.InitialTemp)
	if err != nil {
		return nil, err
	}
	bank, err := ultracap.NewBank(ultracap.MaxwellBC(cfg.UltracapF), cfg.InitialSoE)
	if err != nil {
		return nil, err
	}
	// The battery-branch converter is sized for the pack's mid-SoC voltage
	// (a regulated main path, 98 % peak); the ultracapacitor branch keeps
	// the full voltage-droop penalty that makes deep SoE swings costly
	// (paper §II-C).
	battConv := converter.Default(0.93 * pack.OCV())
	battConv.PeakEfficiency = 0.98
	battConv.Droop = 0.15
	sys, err := hees.NewSystem(pack, bank,
		battConv, converter.Default(bank.Params.BusVoltage))
	if err != nil {
		return nil, err
	}

	coolParams := cooling.DefaultParams()
	if cfg.Cooling != nil {
		coolParams = *cfg.Cooling
	}
	// Size the loop's thermal mass to the actual pack.
	coolParams.BatteryHeatCapacity = pack.HeatCapacity()
	loop, err := cooling.NewLoop(coolParams, cfg.InitialTemp)
	if err != nil {
		return nil, err
	}

	return &Plant{HEES: sys, Loop: loop, Ambient: cfg.Ambient, DT: cfg.DT}, nil
}
