// Batched lockstep rollout: many independent vehicles advance through the
// same Algorithm 1 step loop one global step at a time, so the per-step
// work of a whole batch runs back to back over contiguous state instead of
// one vehicle monopolising the pipeline for its whole route. The payoff is
// twofold: the parallel-architecture bus solves of all lanes go through
// one hees.BusBatch lockstep bisection (independent lanes hide each
// other's divide latency), and controllers that declare a ForecastDepth
// skip the per-step horizon fill entirely.
//
// Bit-identity contract: every lane's floating-point sequence is exactly
// RunContext's for the same vehicle — the fast path reuses PrepareParallel
// / FinishParallel / batteryFallback and the lockstep solver is
// bit-identical to solveParallelBus (property-tested in hees), the slow
// path calls the very same executeAction/advanceThermal helpers — so a
// batched fleet digests identically to the per-vehicle path at any batch
// size.

package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cooling"
	"repro/internal/hees"
	"repro/internal/runner"
)

// BatchVehicle is one lane of a batched rollout: its plant, its controller
// and its route. Plants and controllers must be distinct per lane (both
// are mutated).
type BatchVehicle struct {
	// Plant is the lane's physical system, mutated in place.
	Plant *Plant
	// Ctrl is the lane's controller.
	Ctrl Controller
	// Requests is the lane's route power-request series, watts.
	Requests []float64
}

// BatchScratch holds the worker-owned structure-of-arrays state of a
// batched rollout — the lockstep bus solver, the per-lane accumulators and
// the shared forecast window — so repeated batches run allocation-free.
// Single-goroutine state: give each worker its own.
type BatchScratch struct {
	forecast []float64 // one shared window, refilled per lane per step
	bus      hees.BusBatch
	pre      []hees.ParallelPrep // per bus slot, parallel to bus lanes
	busLane  []int               // lane index per bus slot
	coolOn   []bool              // per bus slot: cooling commanded this step
	inlet    []float64           // per bus slot: commanded inlet temperature
	depth    []int               // per-lane forecast fill depth
	active   []int               // packed indices of lanes still driving
	tempSum  []float64           // per-lane running T_b sum
	results  []Result            // per-lane accumulators, returned by RunBatch
}

// ensure sizes the scratch for n lanes and a horizon-length window.
//
//lint:coldpath per-batch capacity growth; warmed scratch returns at the cap checks
func (sc *BatchScratch) ensure(n, horizon int) {
	if cap(sc.forecast) < horizon {
		sc.forecast = make([]float64, horizon)
	}
	sc.forecast = sc.forecast[:horizon]
	if cap(sc.results) < n {
		sc.pre = make([]hees.ParallelPrep, n)
		sc.busLane = make([]int, n)
		sc.coolOn = make([]bool, n)
		sc.inlet = make([]float64, n)
		sc.depth = make([]int, n)
		sc.active = make([]int, n)
		sc.tempSum = make([]float64, n)
		sc.results = make([]Result, n)
	}
	sc.bus.Ensure(n)
}

// forecastDepth resolves a controller's declared window consumption.
func forecastDepth(ctrl Controller, horizon int) int {
	if fr, ok := ctrl.(ForecastReader); ok {
		if d := fr.ForecastDepth(); d >= 0 && d < horizon {
			return d
		}
	}
	return horizon
}

// RunBatch simulates every lane's route in lockstep and returns the
// per-lane results, indexed like lanes. The returned slice and the results
// it holds are owned by the scratch and valid until the next RunBatch call
// on it. Tracing is not supported on the batched path; use RunContext for
// figure-style experiments.
//
//lint:hotpath the lockstep batch loop is the fleet simulator's inner loop; with a warmed scratch it must not allocate
func RunBatch(ctx context.Context, lanes []BatchVehicle, cfg Config, sc *BatchScratch) ([]Result, error) {
	if len(lanes) == 0 {
		return nil, errors.New("sim: empty batch")
	}
	if cfg.RecordTrace {
		return nil, errors.New("sim: the batched rollout does not record traces")
	}
	horizon := cfg.Horizon
	if horizon < 1 {
		horizon = 1
	}
	sc.ensure(len(lanes), horizon)

	maxSteps := 0
	for k := range lanes {
		ln := &lanes[k]
		if err := ln.Plant.Validate(); err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", k, err)
		}
		if ln.Ctrl == nil {
			return nil, fmt.Errorf("sim: batch lane %d: nil controller", k)
		}
		if len(ln.Requests) == 0 {
			return nil, fmt.Errorf("sim: batch lane %d: empty request series", k)
		}
		sc.depth[k] = forecastDepth(ln.Ctrl, horizon)
		sc.active[k] = k
		sc.tempSum[k] = 0
		sc.results[k] = Result{Controller: ln.Ctrl.Name(), Steps: len(ln.Requests), DT: ln.Plant.DT}
		if len(ln.Requests) > maxSteps {
			maxSteps = len(ln.Requests)
		}
	}

	forecast := sc.forecast
	bus := &sc.bus
	na := len(lanes)
	done := ctx.Done() // nil for context.Background(): the select never fires
	for t := 0; t < maxSteps && na > 0; t++ {
		select {
		case <-done:
			return nil, fmt.Errorf("sim: batch canceled at step %d: %w", t, runner.Canceled(ctx.Err()))
		default:
		}

		// Pass 1 — decide every lane; parallel-architecture lanes park
		// their bus solve in the lockstep batch, everything else steps
		// through the scalar path immediately.
		nb := 0
		for a := 0; a < na; a++ {
			k := sc.active[a]
			ln := &lanes[k]
			plant := ln.Plant
			plant.HEES.Battery.Temp = plant.Loop.BatteryTemp
			fillForecast(forecast[:sc.depth[k]], ln.Requests, t)
			act := ln.Ctrl.Decide(plant, forecast)
			pe := ln.Requests[t]
			load := pe + coolingLoad(plant, act)
			if act.Arch == ArchParallel {
				pre := plant.HEES.PrepareParallel()
				sc.pre[nb] = pre
				sc.busLane[nb] = k
				sc.coolOn[nb] = act.CoolingOn
				sc.inlet[nb] = act.InletTemp
				bus.VB[nb] = pre.Batt.VOC
				bus.RB[nb] = pre.Batt.R
				bus.VC[nb] = pre.VC
				bus.RC[nb] = pre.RC
				bus.P[nb] = load
				nb++
				continue
			}
			rep, fellBack := executeAction(plant, act, load)
			coolRes, err := advanceThermal(plant, act, rep.Batt.HeatRate)
			if err != nil {
				return nil, fmt.Errorf("sim: batch lane %d thermal step %d: %w", k, t, err)
			}
			plant.HEES.Battery.Temp = plant.Loop.BatteryTemp
			tb := plant.Loop.BatteryTemp
			sc.results[k].accumulateStep(rep, coolRes, fellBack,
				tb, plant.HEES.Battery.Cell.SafeTemp, plant.DT)
			sc.tempSum[k] += tb
		}

		// Pass 2 — one lockstep bisection over every parked bus solve.
		bus.Solve(nb)

		// Pass 3 — finish the parked lanes: integrate the storages with
		// the solved bus voltage (or recover through the scalar fallback),
		// then advance the thermal loop, active or passive per the
		// stashed cooling command.
		for j := 0; j < nb; j++ {
			k := sc.busLane[j]
			plant := lanes[k].Plant
			var rep hees.StepReport
			fellBack := false
			if bus.Feasible[j] {
				var err error
				rep, err = plant.HEES.FinishParallel(sc.pre[j], bus.VL[j], plant.DT)
				if err != nil {
					rep, fellBack = batteryFallback(plant.HEES, bus.P[j], plant.DT)
				}
			} else {
				rep, fellBack = batteryFallback(plant.HEES, bus.P[j], plant.DT)
			}
			var coolRes cooling.StepResult
			var err error
			if sc.coolOn[j] {
				coolRes, err = plant.Loop.StepActive(rep.Batt.HeatRate, sc.inlet[j], plant.DT)
			} else {
				coolRes, err = plant.Loop.StepPassive(rep.Batt.HeatRate, plant.Ambient, plant.DT)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: batch lane %d thermal step %d: %w", k, t, err)
			}
			plant.HEES.Battery.Temp = plant.Loop.BatteryTemp
			tb := plant.Loop.BatteryTemp
			sc.results[k].accumulateStep(rep, coolRes, fellBack,
				tb, plant.HEES.Battery.Cell.SafeTemp, plant.DT)
			sc.tempSum[k] += tb
		}

		// Retire lanes whose route ended this step.
		nw := 0
		for a := 0; a < na; a++ {
			k := sc.active[a]
			if t+1 < len(lanes[k].Requests) {
				sc.active[nw] = k
				nw++
				continue
			}
			sc.results[k].finishRoute(lanes[k].Plant, sc.tempSum[k])
		}
		na = nw
	}
	return sc.results[:len(lanes)], nil
}
