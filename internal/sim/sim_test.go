package sim

import (
	"math"
	"testing"

	"repro/internal/hees"
	"repro/internal/units"
)

// constController issues the same action every step.
type constController struct {
	name string
	act  Action
}

func (c constController) Name() string                    { return c.name }
func (c constController) Decide(*Plant, []float64) Action { return c.act }

func newTestPlant(t *testing.T) *Plant {
	t.Helper()
	p, err := NewPlant(PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlantDefaults(t *testing.T) {
	p := newTestPlant(t)
	if p.HEES.Battery.SoC != 1.0 || p.HEES.Cap.SoE != 1.0 {
		t.Error("defaults should start fully charged (Algorithm 1 line 9)")
	}
	if p.Loop.BatteryTemp != 298 || p.Ambient != 298 {
		t.Errorf("default temperatures wrong: %v / %v", p.Loop.BatteryTemp, p.Ambient)
	}
	if p.DT != 1 {
		t.Errorf("default DT = %v", p.DT)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlantCustomUltracap(t *testing.T) {
	p, err := NewPlant(PlantConfig{UltracapF: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if p.HEES.Cap.Params.NameplateF != 5000 {
		t.Errorf("NameplateF = %v", p.HEES.Cap.Params.NameplateF)
	}
}

func TestPlantValidate(t *testing.T) {
	p := newTestPlant(t)
	bad := *p
	bad.HEES = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil HEES accepted")
	}
	bad = *p
	bad.Loop = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil Loop accepted")
	}
	bad = *p
	bad.Ambient = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ambient accepted")
	}
	bad = *p
	bad.DT = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestRunValidation(t *testing.T) {
	p := newTestPlant(t)
	ctrl := constController{"c", Action{Arch: ArchBatteryDirect}}
	if _, err := Run(p, nil, []float64{1}, Config{}); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := Run(p, ctrl, nil, Config{}); err == nil {
		t.Error("empty series accepted")
	}
	bad := *p
	bad.DT = -1
	if _, err := Run(&bad, ctrl, []float64{1}, Config{}); err == nil {
		t.Error("invalid plant accepted")
	}
}

func TestRunBatteryDirectAccounting(t *testing.T) {
	p := newTestPlant(t)
	requests := make([]float64, 120)
	for i := range requests {
		requests[i] = 20e3
	}
	res, err := Run(p, constController{"batt", Action{Arch: ArchBatteryDirect}}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 120 || res.Controller != "batt" {
		t.Errorf("result meta: %+v", res)
	}
	// 20 kW for 120 s = 2.4 MJ delivered; drawn energy must exceed it.
	if res.HEESEnergyJ <= 2.4e6 {
		t.Errorf("HEESEnergyJ = %v, want > 2.4 MJ", res.HEESEnergyJ)
	}
	if res.AvgPowerW <= 20e3 {
		t.Errorf("AvgPowerW = %v, want > 20 kW (losses)", res.AvgPowerW)
	}
	if res.QlossPct <= 0 {
		t.Error("no aging recorded")
	}
	if res.FinalSoC >= 1.0 {
		t.Error("SoC did not drop")
	}
	if res.CoolingEnergyJ != 0 {
		t.Errorf("cooling energy %v without cooling", res.CoolingEnergyJ)
	}
	if res.MaxBatteryTemp <= 298 {
		t.Error("battery did not heat up")
	}
}

func TestRunCoolingConsumesEnergyAndCools(t *testing.T) {
	// Long enough for the Arrhenius aging benefit of the cooler pack to
	// overcome the extra battery current that powers the cooler.
	requests := make([]float64, 1800)
	for i := range requests {
		requests[i] = 25e3
	}
	hot, _ := NewPlant(PlantConfig{InitialTemp: units.CToK(36)})
	resPassive, err := Run(hot, constController{"nocool", Action{Arch: ArchBatteryDirect}}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hot2, _ := NewPlant(PlantConfig{InitialTemp: units.CToK(36)})
	coolAct := Action{Arch: ArchBatteryDirect, CoolingOn: true, InletTemp: units.CToK(10)}
	resCooled, err := Run(hot2, constController{"cool", coolAct}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resCooled.CoolingEnergyJ <= 0 {
		t.Error("cooling energy not recorded")
	}
	if resCooled.MaxBatteryTemp >= resPassive.MaxBatteryTemp {
		t.Errorf("cooling did not lower peak temp: %v vs %v",
			resCooled.MaxBatteryTemp, resPassive.MaxBatteryTemp)
	}
	if resCooled.QlossPct >= resPassive.QlossPct {
		t.Errorf("cooling should slow aging: %v vs %v", resCooled.QlossPct, resPassive.QlossPct)
	}
	// Cooling power is folded into the bus load → more HEES energy.
	if resCooled.HEESEnergyJ <= resPassive.HEESEnergyJ {
		t.Error("cooled run should draw more total energy")
	}
}

func TestRunTraceRecording(t *testing.T) {
	p := newTestPlant(t)
	requests := []float64{1e3, 2e3, 3e3, -1e3}
	res, err := Run(p, constController{"b", Action{Arch: ArchBatteryDirect}}, requests, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("trace missing")
	}
	if len(tr.Time) != 4 || len(tr.BatteryTemp) != 4 || len(tr.SoE) != 4 {
		t.Fatalf("trace lengths wrong: %d", len(tr.Time))
	}
	if tr.PowerRequest[2] != 3e3 {
		t.Errorf("trace power[2] = %v", tr.PowerRequest[2])
	}
	if tr.Time[3] != 3 {
		t.Errorf("trace time[3] = %v", tr.Time[3])
	}
}

func TestRunWithoutTraceOmitsIt(t *testing.T) {
	p := newTestPlant(t)
	res, err := Run(p, constController{"b", Action{Arch: ArchBatteryDirect}}, []float64{1e3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without RecordTrace")
	}
}

func TestRunThermalViolationCounting(t *testing.T) {
	// Start above the 40 °C safe limit with no cooling: violations accrue.
	p, _ := NewPlant(PlantConfig{InitialTemp: units.CToK(45), Ambient: units.CToK(45)})
	requests := make([]float64, 10)
	for i := range requests {
		requests[i] = 30e3
	}
	res, err := Run(p, constController{"b", Action{Arch: ArchBatteryDirect}}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThermalViolationSec != 10 {
		t.Errorf("ThermalViolationSec = %v, want 10", res.ThermalViolationSec)
	}
}

func TestRunDualFallbackOnDepletedCap(t *testing.T) {
	// Tiny capacitor at the SoE floor: DualCap commands must fall back to
	// the battery and be counted.
	p, _ := NewPlant(PlantConfig{UltracapF: 5000, InitialSoE: 0.05})
	requests := make([]float64, 30)
	for i := range requests {
		requests[i] = 25e3
	}
	act := Action{Arch: ArchDual, DualMode: hees.DualCap}
	res, err := Run(p, constController{"dualcap", act}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackSteps == 0 {
		t.Error("no fallbacks recorded for depleted capacitor")
	}
	// The load was still served by the battery.
	if res.FinalSoC >= 1.0 {
		t.Error("battery did not serve the load")
	}
}

func TestRunHybridSplit(t *testing.T) {
	p := newTestPlant(t)
	requests := make([]float64, 60)
	for i := range requests {
		requests[i] = 40e3
	}
	act := Action{Arch: ArchHybrid, CapBusPower: 15e3}
	res, err := Run(p, constController{"hyb", act}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoE >= 1.0 {
		t.Error("capacitor untouched in hybrid split")
	}
	if res.FinalSoC >= 1.0 {
		t.Error("battery untouched in hybrid split")
	}
}

func TestRunForecastWindow(t *testing.T) {
	// The controller must see a zero-padded forecast of the configured
	// horizon.
	p := newTestPlant(t)
	var got [][]float64
	ctrl := funcController{
		name: "probe",
		fn: func(_ *Plant, forecast []float64) Action {
			cp := append([]float64(nil), forecast...)
			got = append(got, cp)
			return Action{Arch: ArchBatteryDirect}
		},
	}
	requests := []float64{1, 2, 3}
	if _, err := Run(p, ctrl, requests, Config{Horizon: 4}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("controller called %d times", len(got))
	}
	want0 := []float64{1, 2, 3, 0}
	for i, v := range want0 {
		if got[0][i] != v {
			t.Errorf("first forecast = %v, want %v", got[0], want0)
			break
		}
	}
	want2 := []float64{3, 0, 0, 0}
	for i, v := range want2 {
		if got[2][i] != v {
			t.Errorf("last forecast = %v, want %v", got[2], want2)
			break
		}
	}
}

type funcController struct {
	name string
	fn   func(*Plant, []float64) Action
}

func (f funcController) Name() string                         { return f.name }
func (f funcController) Decide(p *Plant, fc []float64) Action { return f.fn(p, fc) }

func TestBLTMetrics(t *testing.T) {
	base := Result{QlossPct: 2.0}
	better := Result{QlossPct: 1.0}
	if r := better.BLTRatio(base); r != 0.5 {
		t.Errorf("BLTRatio = %v, want 0.5", r)
	}
	if ext := better.LifetimeExtensionPct(base); math.Abs(ext-100) > 1e-9 {
		t.Errorf("LifetimeExtensionPct = %v, want 100", ext)
	}
	if r := better.BLTRatio(Result{}); !math.IsInf(r, 1) {
		t.Errorf("BLTRatio vs zero baseline = %v", r)
	}
	if ext := (Result{}).LifetimeExtensionPct(base); !math.IsInf(ext, 1) {
		t.Errorf("LifetimeExtensionPct of zero-loss run = %v", ext)
	}
}

func TestArchKindString(t *testing.T) {
	if ArchParallel.String() != "parallel" || ArchBatteryDirect.String() != "battery-direct" ||
		ArchDual.String() != "dual" || ArchHybrid.String() != "hybrid" {
		t.Error("ArchKind strings wrong")
	}
	if ArchKind(9).String() != "ArchKind(9)" {
		t.Error(ArchKind(9).String())
	}
}

func TestRunRegenChargesBattery(t *testing.T) {
	p, _ := NewPlant(PlantConfig{InitialSoC: 0.8})
	requests := make([]float64, 30)
	for i := range requests {
		requests[i] = -20e3
	}
	res, err := Run(p, constController{"regen", Action{Arch: ArchBatteryDirect}}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoC <= 0.8 {
		t.Error("regen did not charge the battery")
	}
	if res.HEESEnergyJ >= 0 {
		t.Errorf("regen HEES energy = %v, want < 0", res.HEESEnergyJ)
	}
}

func TestRunEnergyConservationAudit(t *testing.T) {
	// Whole-run energy audit on the battery-direct path: the chemical
	// energy drawn must equal the delivered bus energy plus resistive
	// losses — every joule accounted for.
	p := newTestPlant(t)
	requests := make([]float64, 400)
	for i := range requests {
		requests[i] = 10e3 + 15e3*math.Sin(float64(i)/25)
	}
	res, err := Run(p, constController{"audit", Action{Arch: ArchBatteryDirect}}, requests, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var delivered float64
	for _, pe := range requests {
		delivered += pe * p.DT
	}
	// Losses = drawn − delivered must be positive and small relative to
	// the throughput (battery efficiency > 90 %).
	loss := res.HEESEnergyJ - delivered
	if loss <= 0 {
		t.Errorf("energy audit: loss = %v, want > 0", loss)
	}
	var throughput float64
	for _, pe := range requests {
		throughput += math.Abs(pe) * p.DT
	}
	if loss > 0.1*throughput {
		t.Errorf("energy audit: loss %v exceeds 10%% of throughput %v", loss, throughput)
	}
	// The trace's battery power must integrate to ≈ the delivered energy.
	var traced float64
	for _, bp := range res.Trace.BatteryPower {
		traced += bp * p.DT
	}
	if math.Abs(traced-delivered) > 0.001*throughput {
		t.Errorf("trace power integral %v != delivered %v", traced, delivered)
	}
}

func TestRunHybridEnergyAudit(t *testing.T) {
	// Same audit through the converter-coupled path: conversion and ESR
	// losses appear but stay bounded.
	p := newTestPlant(t)
	requests := make([]float64, 300)
	for i := range requests {
		requests[i] = 25e3
	}
	act := Action{Arch: ArchHybrid, CapBusPower: 8e3}
	res, err := Run(p, constController{"audit", act}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 25e3 * 300 * p.DT
	loss := res.HEESEnergyJ - delivered
	if loss <= 0 {
		t.Errorf("hybrid audit: loss = %v, want > 0 (converter + ESR)", loss)
	}
	if loss > 0.15*delivered {
		t.Errorf("hybrid audit: loss %v exceeds 15%% of delivered %v", loss, delivered)
	}
}
