package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cooling"
	"repro/internal/hees"
	"repro/internal/units"
)

func TestTraceWriteCSV(t *testing.T) {
	p := newTestPlant(t)
	requests := []float64{5e3, 10e3, -5e3}
	res, err := Run(p, constController{"b", Action{Arch: ArchBatteryDirect}}, requests, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,power_request_w") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[0], "battery_heat_w") {
		t.Error("heat column missing")
	}
	// Every row must have the same number of columns as the header.
	want := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != want {
			t.Errorf("row %d has wrong column count: %q", i, l)
		}
	}
}

func TestNewPlantRejectsBadConfig(t *testing.T) {
	if _, err := NewPlant(PlantConfig{InitialSoC: -0.5}); err == nil {
		t.Error("negative SoC accepted")
	}
	if _, err := NewPlant(PlantConfig{UltracapF: -1}); err == nil {
		t.Error("negative capacitance accepted")
	}
	badCool := cooling.DefaultParams()
	badCool.HBC = -1
	if _, err := NewPlant(PlantConfig{Cooling: &badCool}); err == nil {
		t.Error("invalid cooling params accepted")
	}
}

func TestExecuteActionUnknownArchFallsBack(t *testing.T) {
	p := newTestPlant(t)
	res, err := Run(p, constController{"bad", Action{Arch: ArchKind(42)}}, []float64{10e3, 10e3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The engine must fall back to the battery and count it.
	if res.FallbackSteps != 2 {
		t.Errorf("FallbackSteps = %d, want 2", res.FallbackSteps)
	}
	if res.FinalSoC >= 1.0 {
		t.Error("fallback did not serve the load")
	}
}

func TestExecuteActionHybridChargeClamp(t *testing.T) {
	// A near-full capacitor cannot absorb a huge charging command; the
	// clamp keeps the step feasible and counts the intervention.
	p, err := NewPlant(PlantConfig{InitialSoE: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	act := Action{Arch: ArchHybrid, CapBusPower: -80e3}
	res, err := Run(p, constController{"chg", act}, []float64{5e3, 5e3, 5e3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackSteps == 0 {
		t.Error("headroom clamp not recorded")
	}
	if res.FinalSoE > 1 {
		t.Errorf("SoE exceeded 1: %v", res.FinalSoE)
	}
}

func TestExecuteActionParallelInfeasibleFallsBack(t *testing.T) {
	// An absurd load makes the parallel bus collapse; the engine clamps to
	// the battery's capability rather than crashing.
	p, err := NewPlant(PlantConfig{InitialSoC: 0.25, InitialSoE: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	requests := []float64{400e3}
	res, err := Run(p, constController{"huge", Action{Arch: ArchParallel}}, requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackSteps != 1 {
		t.Errorf("FallbackSteps = %d, want 1", res.FallbackSteps)
	}
}

func TestExecuteActionDualChargeOverfullCap(t *testing.T) {
	// DualBatteryCharge against a full capacitor: the overflow is clamped
	// inside the bank; the run proceeds.
	p, err := NewPlant(PlantConfig{InitialSoE: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	act := Action{Arch: ArchDual, DualMode: hees.DualBatteryCharge, DualChargePower: 10e3}
	res, err := Run(p, constController{"dc", act}, []float64{5e3, 5e3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoE > 1 {
		t.Errorf("SoE exceeded 1: %v", res.FinalSoE)
	}
}

func TestClampInlet(t *testing.T) {
	loop, err := cooling.NewLoop(cooling.DefaultParams(), units.CToK(30))
	if err != nil {
		t.Fatal(err)
	}
	// Above coolant: clamp down to coolant temperature.
	if got := clampInlet(loop, units.CToK(50)); got != loop.CoolantTemp {
		t.Errorf("warm inlet clamp = %v, want %v", got, loop.CoolantTemp)
	}
	// Below the feasible floor: clamp up.
	if got := clampInlet(loop, 0); got != loop.MinFeasibleInlet() {
		t.Errorf("cold inlet clamp = %v, want %v", got, loop.MinFeasibleInlet())
	}
	// Feasible passes through.
	mid := (loop.MinFeasibleInlet() + loop.CoolantTemp) / 2
	if got := clampInlet(loop, mid); got != mid {
		t.Errorf("feasible inlet altered: %v -> %v", mid, got)
	}
}
