package thermal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cooling"
	"repro/internal/units"
)

func newNet(t *testing.T, n int, temp float64) *PackNetwork {
	t.Helper()
	net, err := NewPackNetwork(cooling.DefaultParams(), n, temp)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewPackNetworkValidation(t *testing.T) {
	if _, err := NewPackNetwork(cooling.DefaultParams(), 0, 300); err == nil {
		t.Error("zero modules accepted")
	}
	if _, err := NewPackNetwork(cooling.DefaultParams(), 4, -1); err == nil {
		t.Error("negative temperature accepted")
	}
	bad := cooling.DefaultParams()
	bad.HBC = -1
	if _, err := NewPackNetwork(bad, 4, 300); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSingleModuleMatchesLumpedLoop(t *testing.T) {
	// With N=1 the network solves the same two-node ODEs as cooling.Loop
	// (backward Euler vs Crank–Nicolson): trajectories must agree closely.
	net := newNet(t, 1, units.CToK(30))
	loop, err := cooling.NewLoop(cooling.DefaultParams(), units.CToK(30))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		if err := net.StepActive(1500, units.CToK(15), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := loop.StepActive(1500, units.CToK(15), 1); err != nil {
			t.Fatal(err)
		}
	}
	if d := math.Abs(net.Tb[0] - loop.BatteryTemp); d > 0.2 {
		t.Errorf("N=1 network deviates from lumped loop by %.3f K", d)
	}
	if d := math.Abs(net.Tc[0] - loop.CoolantTemp); d > 0.2 {
		t.Errorf("coolant deviates by %.3f K", d)
	}
}

func TestGradientAlongChannel(t *testing.T) {
	// Under sustained heat with cold inlet coolant, the inlet module must
	// be the coolest and the outlet module the hottest.
	net := newNet(t, 8, units.CToK(30))
	for i := 0; i < 1800; i++ {
		if err := net.StepActive(2500, units.CToK(15), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < net.N; i++ {
		if net.Tb[i] < net.Tb[i-1]-1e-9 {
			t.Fatalf("battery temps not monotone along channel: %v", net.Tb)
		}
		if net.Tc[i] < net.Tc[i-1]-1e-9 {
			t.Fatalf("coolant temps not monotone along channel: %v", net.Tc)
		}
	}
	if net.Gradient() <= 0.5 {
		t.Errorf("gradient %.3f K too small to be meaningful", net.Gradient())
	}
	if net.MaxBatteryTemp() != net.Tb[net.N-1] {
		t.Error("hottest module should be at the outlet")
	}
	if net.OutletTemp() != net.Tc[net.N-1] {
		t.Error("OutletTemp wrong node")
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	// At steady state, advected heat W·(T_out − T_in) equals the input.
	net := newNet(t, 6, units.CToK(30))
	qb := 1800.0
	tin := units.CToK(18)
	for i := 0; i < 30000; i++ {
		if err := net.StepActive(qb, tin, 1); err != nil {
			t.Fatal(err)
		}
	}
	advected := net.Params.FlowHeatRate * (net.OutletTemp() - tin)
	if math.Abs(advected-qb) > 0.02*qb {
		t.Errorf("steady-state advection %.1f W, want %.1f W", advected, qb)
	}
}

func TestMeanTracksLumped(t *testing.T) {
	// The mean of the distributed model should stay close to the lumped
	// model's single temperature under identical forcing.
	net := newNet(t, 12, units.CToK(25))
	loop, err := cooling.NewLoop(cooling.DefaultParams(), units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		q := 1000 + 800*math.Sin(float64(i)/50)
		if err := net.StepActive(q, units.CToK(18), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := loop.StepActive(q, units.CToK(18), 1); err != nil {
			t.Fatal(err)
		}
	}
	// The distributed channel extracts heat at the (hotter) outlet
	// temperature, so it cools somewhat better than the lumped model that
	// advects at the average coolant temperature: the mean must track the
	// lumped temperature within a couple of kelvin, from below.
	d := net.MeanBatteryTemp() - loop.BatteryTemp
	if d > 0.5 || d < -3.0 {
		t.Errorf("mean deviates from lumped by %.2f K (want within [-3, 0.5])", d)
	}
	// But the hotspot exceeds the mean — the information the lumped model
	// loses.
	if net.MaxBatteryTemp() <= net.MeanBatteryTemp() {
		t.Error("no hotspot above mean")
	}
}

func TestPassiveRelaxesToAmbientUniformly(t *testing.T) {
	net := newNet(t, 5, units.CToK(45))
	ambient := units.CToK(25)
	for i := 0; i < 40000; i++ {
		if err := net.StepPassive(0, ambient, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i, tb := range net.Tb {
		if math.Abs(tb-ambient) > 0.1 {
			t.Errorf("module %d did not relax to ambient: %.2f", i, units.KToC(tb))
		}
	}
	if net.Gradient() > 0.01 {
		t.Errorf("passive equilibrium should be uniform, gradient %.4f", net.Gradient())
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	net := newNet(t, 3, 300)
	if err := net.StepActive(0, 290, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := net.StepPassive(0, 290, -5); err == nil {
		t.Error("dt<0 accepted")
	}
}

func TestBackwardEulerStableAtLargeSteps(t *testing.T) {
	net := newNet(t, 10, units.CToK(30))
	for i := 0; i < 50; i++ {
		if err := net.StepActive(5000, units.CToK(10), 120); err != nil {
			t.Fatal(err)
		}
		for _, tb := range net.Tb {
			if math.IsNaN(tb) || tb < 200 || tb > 400 {
				t.Fatalf("unstable at large dt: %v", net.Tb)
			}
		}
	}
}

// TestFactorCacheMatchesAlwaysRefactorize drives two identical networks
// through the same randomized mixed schedule — pump-mode flips, dt changes,
// varying heat and inlet/ambient — with one network forced to re-assemble
// and re-factorize every step. The cached path must be bit-identical: a
// cache hit reuses the factors of the exact same matrix, so skipping
// Factorize cannot change a single ULP.
func TestFactorCacheMatchesAlwaysRefactorize(t *testing.T) {
	cached := newNet(t, 6, units.CToK(32))
	ref := newNet(t, 6, units.CToK(32))

	rng := rand.New(rand.NewSource(7))
	dts := []float64{1, 1, 1, 0.5, 2, 120}
	for step := 0; step < 2000; step++ {
		qb := rng.Float64() * 4000
		dt := dts[rng.Intn(len(dts))]
		active := rng.Intn(3) != 0 // mostly pumped, with passive stretches
		tin := units.CToK(10 + rng.Float64()*25)

		ref.sigValid = false // force the always-refactorize reference path
		var errC, errR error
		if active {
			errC = cached.StepActive(qb, tin, dt)
			errR = ref.StepActive(qb, tin, dt)
		} else {
			errC = cached.StepPassive(qb, tin, dt)
			errR = ref.StepPassive(qb, tin, dt)
		}
		if (errC == nil) != (errR == nil) {
			t.Fatalf("step %d: error mismatch: cached %v, reference %v", step, errC, errR)
		}
		for i := 0; i < cached.N; i++ {
			if math.Float64bits(cached.Tb[i]) != math.Float64bits(ref.Tb[i]) ||
				math.Float64bits(cached.Tc[i]) != math.Float64bits(ref.Tc[i]) {
				t.Fatalf("step %d module %d: cached (%v, %v) != reference (%v, %v)",
					step, i, cached.Tb[i], cached.Tc[i], ref.Tb[i], ref.Tc[i])
			}
		}
	}
}

// TestFactorCacheInvalidation spot-checks the signature: consecutive
// same-coefficient steps reuse the factors, and any coefficient change
// (dt, pump mode) re-factorizes rather than solving with stale factors.
func TestFactorCacheInvalidation(t *testing.T) {
	net := newNet(t, 4, 300)
	if err := net.StepActive(1000, 290, 1); err != nil {
		t.Fatal(err)
	}
	sig := [4]uint64{net.sigCB, net.sigCC, net.sigH, net.sigW}
	if !net.sigValid {
		t.Fatal("signature not recorded after first step")
	}
	if err := net.StepActive(2000, 285, 1); err != nil { // q/tin only: cache hit
		t.Fatal(err)
	}
	if [4]uint64{net.sigCB, net.sigCC, net.sigH, net.sigW} != sig {
		t.Error("signature changed on a pure-RHS step")
	}
	if err := net.StepActive(1000, 290, 2); err != nil { // dt change: refactorize
		t.Fatal(err)
	}
	if [4]uint64{net.sigCB, net.sigCC, net.sigH, net.sigW} == sig {
		t.Error("dt change did not refresh the signature")
	}
	if err := net.StepPassive(1000, 290, 2); err != nil { // mode change
		t.Fatal(err)
	}
	if net.sigAdvect {
		t.Error("passive step left sigAdvect set")
	}
}
