// Package thermal implements the distributed battery-pack thermal network
// of paper Fig. 5: the cells are grouped into N modules along the coolant
// channel; fresh coolant enters at the inlet module and warms as it flows
// past each module, so the pack develops a temperature gradient the lumped
// two-node model (package cooling) cannot represent.
//
// The paper argues the lumped simplification "does not affect the concept";
// this package exists to check that claim (see the hotspot experiment): the
// controller is still driven by the lumped model, and the distributed model
// replays the same heat profile to report how much hotter the worst module
// runs.
//
// Dynamics per module i (0 = inlet):
//
//	C_b/N · dT_b,i/dt = h/N · (T_c,i − T_b,i) + q_i
//	C_c/N · dT_c,i/dt = h/N · (T_b,i − T_c,i) + W·(T_c,i−1 − T_c,i)
//
// with T_c,−1 the inlet temperature and W the coolant heat-capacity rate.
// Integration is backward Euler on the coupled 2N system (solved by LU),
// unconditionally stable.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cooling"
	"repro/internal/linalg"
)

// PackNetwork is a distributed N-module pack thermal model.
type PackNetwork struct {
	// Params supplies the total pack capacities and couplings, divided
	// evenly across the modules.
	Params cooling.Params
	// N is the module count along the coolant channel.
	N int
	// Tb and Tc are the module battery and coolant temperatures, kelvin,
	// index 0 at the coolant inlet.
	Tb, Tc []float64

	// Solver scratch, allocated on first use and reused every step: the
	// backward-Euler system matrix, its LU factorisation, and the
	// right-hand-side / solution vectors.
	a   *linalg.Matrix
	lu  linalg.LUFactor
	rhs linalg.Vector
	x   linalg.Vector

	// Coefficient signature of the factorisation currently held in lu.
	// The system matrix depends only on (cb, cc, h, w, advect) — not on the
	// temperatures, heat input or inlet — so consecutive steps with the same
	// dt and coupling coefficients (the common case: a fixed-dt simulation
	// staying in one pump mode) reuse the factors and only rebuild the RHS.
	sigValid  bool
	sigAdvect bool
	sigCB     uint64
	sigCC     uint64
	sigH      uint64
	sigW      uint64
}

// NewPackNetwork builds a network with all nodes at the initial temperature.
func NewPackNetwork(p cooling.Params, n int, initial float64) (*PackNetwork, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("thermal: module count %d invalid", n)
	}
	if initial <= 0 {
		return nil, errors.New("thermal: initial temperature must be > 0")
	}
	net := &PackNetwork{Params: p, N: n, Tb: make([]float64, n), Tc: make([]float64, n)}
	for i := 0; i < n; i++ {
		net.Tb[i] = initial
		net.Tc[i] = initial
	}
	return net, nil
}

// StepActive advances dt seconds with the pump running: coolant enters
// module 0 at tInlet and advects along the channel; the total battery heat
// qb (watts) is spread uniformly across modules.
func (net *PackNetwork) StepActive(qb, tInlet, dt float64) error {
	return net.step(qb, net.Params.FlowHeatRate, tInlet, dt, true)
}

// StepPassive advances dt seconds with the pump off: every coolant segment
// couples to ambient with its share of the natural-convection coefficient,
// and there is no advection between segments.
func (net *PackNetwork) StepPassive(qb, ambient, dt float64) error {
	return net.step(qb, net.Params.AmbientCoupling, ambient, dt, false)
}

// step assembles and solves the backward-Euler system. With advect=true, w
// is the advection rate connecting segments in a chain from the inlet; with
// advect=false, w couples every segment directly to tin (ambient).
func (net *PackNetwork) step(qb, w, tin, dt float64, advect bool) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %g", dt)
	}
	n := net.N
	fN := float64(n)
	cb := net.Params.BatteryHeatCapacity / fN / dt
	cc := net.Params.CoolantHeatCapacity / fN / dt
	h := net.Params.HBC / fN
	q := qb / fN
	wAmb := w / fN // per-segment ambient share in passive mode

	// Unknowns x = [Tb_0..Tb_{n-1}, Tc_0..Tc_{n-1}] at t+dt.
	dim := 2 * n
	if net.a == nil {
		net.a = linalg.NewMatrix(dim, dim)
		net.rhs = make(linalg.Vector, dim)
		net.x = make(linalg.Vector, dim)
	}

	// The coolant coupling entering the matrix: the advection rate in active
	// mode, the per-segment ambient share in passive mode.
	wm := w
	if !advect {
		wm = wAmb
	}
	sb, sc, sh, sw := math.Float64bits(cb), math.Float64bits(cc), math.Float64bits(h), math.Float64bits(wm)
	if !net.sigValid || net.sigAdvect != advect ||
		net.sigCB != sb || net.sigCC != sc || net.sigH != sh || net.sigW != sw {
		net.sigValid = false
		a := net.a
		a.Zero()
		for i := 0; i < n; i++ {
			bi := i     // battery row
			ci := n + i // coolant row

			// Battery node: cb·Tb+ − cb·Tb = h·(Tc+ − Tb+) + q
			a.Set(bi, bi, cb+h)
			a.Set(bi, ci, -h)

			// Coolant node: cc·Tc+ − cc·Tc = h·(Tb+ − Tc+) plus either
			// W·(Tc_{i−1}+ − Tc+) (advection chain) or wAmb·(ambient − Tc+).
			a.Set(ci, ci, cc+h+wm)
			a.Set(ci, bi, -h)
			if advect && i > 0 {
				a.Set(ci, n+i-1, -w)
			}
		}
		if err := net.lu.Factorize(a); err != nil {
			return fmt.Errorf("thermal: %w", err)
		}
		net.sigValid = true
		net.sigAdvect = advect
		net.sigCB, net.sigCC, net.sigH, net.sigW = sb, sc, sh, sw
	}

	rhs := net.rhs
	for i := 0; i < n; i++ {
		rhs[i] = cb*net.Tb[i] + q
		ci := n + i
		if advect {
			rhs[ci] = cc * net.Tc[i]
			if i == 0 {
				rhs[ci] += w * tin
			}
		} else {
			rhs[ci] = cc*net.Tc[i] + wAmb*tin
		}
	}
	net.lu.SolveTo(net.x, rhs)
	copy(net.Tb, net.x[:n])
	copy(net.Tc, net.x[n:])
	return nil
}

// MaxBatteryTemp returns the hottest module temperature.
func (net *PackNetwork) MaxBatteryTemp() float64 {
	m := net.Tb[0]
	for _, t := range net.Tb[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// MeanBatteryTemp returns the average module temperature (the quantity the
// lumped model tracks).
func (net *PackNetwork) MeanBatteryTemp() float64 {
	var s float64
	for _, t := range net.Tb {
		s += t
	}
	return s / float64(net.N)
}

// Gradient returns the spread between the hottest and coldest modules,
// kelvin — the quantity the lumped model hides.
func (net *PackNetwork) Gradient() float64 {
	lo, hi := net.Tb[0], net.Tb[0]
	for _, t := range net.Tb[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// OutletTemp returns the coolant temperature leaving the pack (the T_o of
// paper Eq. 16).
func (net *PackNetwork) OutletTemp() float64 { return net.Tc[net.N-1] }
