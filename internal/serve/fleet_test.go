package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/otem"
)

// stubFleet wraps runFleet with a counting shim around the real fleet
// simulator: counting proves cache behaviour while the result stays the
// genuine deterministic article (digest, sketches, families).
func stubFleet(s *Server, counter *atomic.Int64) {
	real := s.runFleet
	s.runFleet = func(ctx context.Context, spec otem.FleetSpec, opts ...otem.Option) (*otem.FleetResult, error) {
		counter.Add(1)
		return real(ctx, spec, opts...)
	}
}

func TestFleetOKAndCacheHit(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubFleet(s, &calls)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"vehicles":6,"seed":11,"method":"parallel","route_seconds":120}`
	var bodies [2][]byte
	wantCache := []string{"miss", "hit"}
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/fleet", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, readAll(t, resp))
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache[i] {
			t.Errorf("request %d: X-Cache = %q, want %q", i, got, wantCache[i])
		}
		bodies[i] = readAll(t, resp)
	}
	if calls.Load() != 1 {
		t.Errorf("fleet ran %d times, want 1 (second request must be a cache hit)", calls.Load())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("cache hit served a different body than the original run")
	}

	var wire otem.FleetResultJSON
	if err := json.Unmarshal(bodies[0], &wire); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if wire.Schema != otem.FleetSchemaVersion {
		t.Errorf("schema = %q, want %q", wire.Schema, otem.FleetSchemaVersion)
	}
	if wire.Vehicles != 6 {
		t.Errorf("vehicles = %d, want 6", wire.Vehicles)
	}
	if len(wire.Digest) != 16 {
		t.Errorf("digest = %q, want 16 hex chars", wire.Digest)
	}
	// The lowercase "parallel" must have been canonicalized before the
	// spec was encoded into the cache key and response.
	if !strings.Contains(wire.Spec, "m=Parallel") {
		t.Errorf("spec %q does not carry the canonical methodology", wire.Spec)
	}
	c := s.metrics.counters()
	if c.CacheHits != 1 || c.CacheMisses != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss", c)
	}
}

func TestFleetValidation(t *testing.T) {
	s := newTestServer(Config{MaxFleetVehicles: 100, MaxFleetDays: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"missing vehicles", `{}`},
		{"zero vehicles", `{"vehicles":0}`},
		{"too many vehicles", `{"vehicles":101}`},
		{"negative days", `{"vehicles":4,"days":-1}`},
		{"too many days", `{"vehicles":4,"days":4}`},
		{"negative ultracap", `{"vehicles":4,"ultracap_farad":-1}`},
		{"short route", `{"vehicles":4,"route_seconds":30}`},
		{"negative horizon", `{"vehicles":4,"horizon":-1}`},
		{"unknown method", `{"vehicles":4,"method":"bogus"}`},
		{"malformed json", `{"vehicles":`},
		{"unknown field", `{"vehicles":4,"warp":9}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/fleet", tc.body)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != http.StatusBadRequest {
				t.Errorf("error body %s (%v)", body, err)
			}
		})
	}
}

// TestFleetAdmission429 checks a fleet run holds exactly one admission
// slot and distinct fleet requests are shed once the queue is full.
func TestFleetAdmission429(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	var calls atomic.Int64
	s.runFleet = func(ctx context.Context, spec otem.FleetSpec, _ ...otem.Option) (*otem.FleetResult, error) {
		calls.Add(1)
		<-release
		return otem.RunFleet(ctx, spec)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed int, codeCh chan<- int) {
		resp, err := http.Post(ts.URL+"/v1/fleet", "application/json",
			strings.NewReader(fmt.Sprintf(`{"vehicles":2,"seed":%d,"method":"Parallel","route_seconds":60}`, seed)))
		if err != nil {
			t.Errorf("POST seed %d: %v", seed, err)
			codeCh <- 0
			return
		}
		readAll(t, resp)
		codeCh <- resp.StatusCode
	}

	aCh, bCh := make(chan int, 1), make(chan int, 1)
	go post(1, aCh)
	waitFor(t, "first fleet holds the slot", func() bool {
		inflight, _ := s.gate.depth()
		return inflight == 1
	})
	go post(2, bCh)
	waitFor(t, "second fleet queued", func() bool {
		_, queued := s.gate.depth()
		return queued == 1
	})

	resp := postJSON(t, ts.URL+"/v1/fleet", `{"vehicles":2,"seed":3,"method":"Parallel","route_seconds":60}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third fleet: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	close(release)
	if code := <-aCh; code != http.StatusOK {
		t.Errorf("first fleet: status %d", code)
	}
	if code := <-bCh; code != http.StatusOK {
		t.Errorf("queued fleet: status %d", code)
	}
}

// TestFleetCoalescing: identical fleet requests arriving while the first
// is in flight wait on its computation instead of running again.
func TestFleetCoalescing(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 4})
	release := make(chan struct{})
	var calls atomic.Int64
	s.runFleet = func(ctx context.Context, spec otem.FleetSpec, _ ...otem.Option) (*otem.FleetResult, error) {
		calls.Add(1)
		<-release
		return otem.RunFleet(ctx, spec)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 3
	body := `{"vehicles":2,"seed":5,"method":"Parallel","route_seconds":60}`
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				codes <- 0
				return
			}
			readAll(t, resp)
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, "leader in flight", func() bool { return calls.Load() == 1 })
	waitFor(t, "followers waiting", func() bool {
		s.fleetCache.mu.Lock()
		defer s.fleetCache.mu.Unlock()
		return len(s.fleetCache.flight) == 1
	})
	close(release)
	for i := 0; i < clients; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("client %d: status %d", i, code)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("fleet ran %d times for %d identical requests, want 1", calls.Load(), clients)
	}
}

// TestFleetMetrics: the fleet endpoint shows up in the Prometheus
// exposition with its own inflight gauge and request counters.
func TestFleetMetrics(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubFleet(s, &calls)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/fleet", `{"vehicles":2,"method":"Parallel","route_seconds":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet: status %d", resp.StatusCode)
	}
	readAll(t, resp)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(readAll(t, mresp))
	for _, want := range []string{
		`otem_serve_requests_total{code="200",endpoint="fleet"} 1`,
		`otem_serve_inflight{endpoint="fleet"} 0`,
		`otem_serve_request_duration_seconds_count{endpoint="fleet"} 1`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
