package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is the admission-control rejection; handlers map it to
// 429 Too Many Requests with a Retry-After hint.
var errQueueFull = errors.New("serve: admission queue full")

// admission is the two-stage load shedder in front of the simulation
// work: up to cap(slots) requests execute concurrently, up to maxQueue
// more wait for a slot, and everything beyond that is rejected
// immediately so latency stays bounded under overload.
//
// Coalesced cache followers never pass through here — they wait on the
// leader's computation without consuming simulation capacity — so the
// gate bounds actual simulation work, not client connections.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	maxQueue int64
}

func newAdmission(maxInflight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// acquire wins an execution slot, waiting in the bounded queue if none is
// free. It returns errQueueFull when the queue is already at capacity and
// the context error when the caller gave up while queued. A nil return
// must be paired with exactly one release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot won by acquire.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// depth reports the gauges for healthz and /metrics.
func (a *admission) depth() (inflight, queued int64) {
	return a.inflight.Load(), a.queued.Load()
}
