package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/otem"
)

// newTestServer builds a quiet Server; tests reassign runSim/runBatch to
// deterministic stubs where the real simulator would be slow or where
// failure modes must be forced.
func newTestServer(cfg Config) *Server {
	cfg.Log = log.New(io.Discard, "", 0)
	return New(cfg)
}

// fakeResult is the deterministic stub output for one spec.
func fakeResult(spec otem.RunSpec) otem.Result {
	res := otem.Result{
		Controller: string(spec.Method),
		Steps:      4,
		DT:         1,
		QlossPct:   0.001 * float64(spec.Repeats),
		FinalSoC:   0.9,
		FinalSoE:   0.9,
	}
	if spec.Trace {
		tr := &otem.Trace{}
		for i := 0; i < res.Steps; i++ {
			t := float64(i)
			tr.Time = append(tr.Time, t)
			tr.PowerRequest = append(tr.PowerRequest, 1000*t)
			tr.BatteryTemp = append(tr.BatteryTemp, 298)
			tr.CoolantTemp = append(tr.CoolantTemp, 298)
			tr.SoC = append(tr.SoC, 1)
			tr.SoE = append(tr.SoE, 1)
			tr.CoolerPower = append(tr.CoolerPower, 0)
			tr.BatteryPower = append(tr.BatteryPower, 1000*t)
			tr.CapPower = append(tr.CapPower, 0)
			tr.BatteryHeat = append(tr.BatteryHeat, 10)
		}
		res.Trace = tr
	}
	return res
}

// stubSim replaces runSim with a counting fake; runBatch is rebuilt on
// top of it so both endpoints exercise the same stub.
func stubSim(s *Server, counter *atomic.Int64, fn func(ctx context.Context, spec otem.RunSpec) (otem.Result, error)) {
	s.runSim = func(ctx context.Context, spec otem.RunSpec) (otem.Result, error) {
		counter.Add(1)
		return fn(ctx, spec)
	}
	s.runBatch = func(ctx context.Context, specs []otem.RunSpec, _ ...otem.BatchOption) ([]otem.BatchResult, error) {
		out := make([]otem.BatchResult, len(specs))
		for i, spec := range specs {
			out[i].Spec = spec
			out[i].Result, out[i].Err = s.runSim(ctx, spec)
		}
		return out, nil
	}
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

func TestSimulateOKAndCacheHit(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"method":"otem","cycle":"US06","repeats":2}`
	var wires [2]otem.ResultJSON
	wantCache := []string{"miss", "hit"}
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache[i] {
			t.Errorf("request %d: X-Cache = %q, want %q", i, got, wantCache[i])
		}
		if err := json.Unmarshal(readAll(t, resp), &wires[i]); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("simulator ran %d times, want 1 (second request must be a cache hit)", calls.Load())
	}
	if wires[0].Schema != otem.ResultSchemaVersion {
		t.Errorf("schema = %q, want %q", wires[0].Schema, otem.ResultSchemaVersion)
	}
	// The lowercase "otem" must have been canonicalized before execution.
	if wires[0].Controller != string(otem.MethodologyOTEM) {
		t.Errorf("controller = %q, want %q", wires[0].Controller, otem.MethodologyOTEM)
	}
	c := s.metrics.counters()
	if c.CacheHits != 1 || c.CacheMisses != 1 || c.CacheCoalesced != 0 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss / 0 coalesced", c)
	}
}

func TestSimulateValidation(t *testing.T) {
	s := newTestServer(Config{MaxRepeats: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"syntax", `{"method":`},
		{"unknown field", `{"method":"OTEM","cycle":"US06","bogus":1}`},
		{"negative repeats", `{"method":"OTEM","cycle":"US06","repeats":-1}`},
		{"repeats over limit", `{"method":"OTEM","cycle":"US06","repeats":11}`},
		{"negative ucap", `{"method":"OTEM","cycle":"US06","ultracap_farad":-1}`},
		{"trailing data", `{"method":"OTEM","cycle":"US06"} {"again":true}`},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, b)
		}
		var er errorResponse
		if err := json.Unmarshal(b, &er); err != nil || er.Code != http.StatusBadRequest || er.Error == "" {
			t.Errorf("%s: error body %s not a 400 errorResponse (%v)", tc.name, b, err)
		}
	}
}

// TestSimulateUnknownNames drives the real simulation path: unknown cycle
// and methodology names must surface the facade's sentinel errors as 400s.
func TestSimulateUnknownNames(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"method":"OTEM","cycle":"NOPE"}`,
		`{"method":"Zorp","cycle":"US06"}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/simulate", body)
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", body, resp.StatusCode, b)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate: status %d, want 405", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		if spec.Cycle == "BAD" {
			return otem.Result{}, fmt.Errorf("run: %w", otem.ErrUnknownCycle)
		}
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"specs":[
		{"method":"Parallel","cycle":"US06"},
		{"method":"OTEM","cycle":"BAD"},
		{"method":"Dual","cycle":"UDDS","repeats":2}
	]}`
	for round := 0; round < 2; round++ {
		resp := postJSON(t, ts.URL+"/v1/batch", body)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d (body %s)", round, resp.StatusCode, raw)
		}
		var br BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(br.Results) != 3 {
			t.Fatalf("round %d: %d results, want 3", round, len(br.Results))
		}
		if br.Results[0].Result == nil || br.Results[0].Error != "" {
			t.Errorf("round %d: spec 0 = %+v, want a result", round, br.Results[0])
		}
		if br.Results[1].Result != nil || br.Results[1].Error == "" {
			t.Errorf("round %d: spec 1 = %+v, want an error", round, br.Results[1])
		}
		if br.Results[2].Result == nil {
			t.Errorf("round %d: spec 2 = %+v, want a result", round, br.Results[2])
		}
	}
	// Round 2 serves the two good specs from cache; only the failing spec
	// reruns (errors are never cached).
	if calls.Load() != 4 {
		t.Errorf("simulator ran %d times, want 4 (3 + 1 uncached failure)", calls.Load())
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(Config{MaxBatchSpecs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty":    `{"specs":[]}`,
		"too many": `{"specs":[{"cycle":"a"},{"cycle":"b"},{"cycle":"c"}]}`,
		"bad spec": `{"specs":[{"cycle":"US06","repeats":-3}]}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/batch", body)
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestStreamNDJSON(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		if !spec.Trace {
			t.Error("stream endpoint must force tracing")
		}
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/simulate/stream?method=Parallel&cycle=US06&repeats=2&ultracap_farad=30000")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 { // 1 summary + 4 steps
		t.Fatalf("%d NDJSON lines, want 5", len(lines))
	}
	var head otem.ResultJSON
	if err := json.Unmarshal(lines[0], &head); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if head.Trace != nil {
		t.Error("summary line must not inline the trace")
	}
	if head.Steps != 4 {
		t.Errorf("summary steps = %d, want 4", head.Steps)
	}
	var step otem.TraceStepJSON
	if err := json.Unmarshal(lines[2], &step); err != nil {
		t.Fatalf("step line: %v", err)
	}
	if step.TimeSeconds != 1 {
		t.Errorf("step 1 time = %g, want 1", step.TimeSeconds)
	}
}

func TestStreamBadQuery(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range []string{"repeats=x", "ultracap_farad=zz"} {
		resp, err := http.Get(ts.URL + "/v1/simulate/stream?method=OTEM&cycle=US06&" + q)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
		Queued   int64  `json:"queued"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Inflight != 0 || h.Queued != 0 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readAll(t, postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"US06"}`))
	readAll(t, postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"US06"}`))
	// Distinct key: a second miss (the stub accepts any cycle name).
	readAll(t, postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"HWFET"}`))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, resp))
	for _, want := range []string{
		`otem_serve_requests_total{code="200",endpoint="simulate"} 3`,
		`otem_serve_request_duration_seconds_count{endpoint="simulate"} 3`,
		`otem_serve_request_duration_seconds_bucket{endpoint="simulate",le="+Inf"} 3`,
		`otem_serve_cache_events_total{kind="hit"} 1`,
		`otem_serve_cache_events_total{kind="miss"} 2`,
		`otem_serve_admission_rejected_total 0`,
		`otem_serve_inflight{endpoint="simulate"} 0`,
		`otem_serve_admitted_inflight 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Every non-comment line must be "name{...} value" shaped.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 || !strings.HasPrefix(fields[0], "otem_serve_") {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestPanicIsolation pins the contract the batch engine gives the server:
// a panicking simulation yields a 500 for that request and the process
// keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		if spec.Cycle == "US06" {
			panic("poisoned route")
		}
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"US06"}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500", resp.StatusCode)
	}
	if strings.Contains(string(b), "poisoned route") {
		t.Errorf("panic value leaked to the client: %s", b)
	}

	resp = postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"UDDS"}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy request after panic: status %d, want 200", resp.StatusCode)
	}
}

// TestRunGracefulDrain drives the full lifecycle: Run serves, an
// in-flight request survives the cancellation, and Run returns nil after
// the drain.
func TestRunGracefulDrain(t *testing.T) {
	s := newTestServer(Config{DrainTimeout: 5 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int64
	stubSim(s, &calls, func(ctx context.Context, spec otem.RunSpec) (otem.Result, error) {
		close(started)
		<-release
		return fakeResult(spec), nil
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/simulate", "application/json",
			strings.NewReader(`{"method":"OTEM","cycle":"US06"}`))
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	<-started // the request is inside the simulator
	cancel()  // SIGTERM equivalent: stop accepting, drain in-flight
	time.Sleep(20 * time.Millisecond)
	close(release)

	select {
	case resp := <-respCh:
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("drained request: status %d (body %s)", resp.StatusCode, b)
		}
		var wire otem.ResultJSON
		if err := json.Unmarshal(b, &wire); err != nil {
			t.Errorf("drained request body: %v", err)
		}
	case err := <-errCh:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete")
	}

	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}

	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", otem.Result{Steps: 1})
	c.put("b", otem.Result{Steps: 2})
	c.put("c", otem.Result{Steps: 3}) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived past the bound")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Touch b, then insert d: c is now the eviction victim.
	if _, ok := c.get("b"); !ok {
		t.Fatal("b missing")
	}
	c.put("d", otem.Result{Steps: 4})
	if _, ok := c.get("c"); ok {
		t.Error("recency order ignored: c survived over touched b")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("touched entry evicted")
	}
}

func TestCacheDisabledStillCoalesces(t *testing.T) {
	s := newTestServer(Config{CacheSize: -1})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"method":"OTEM","cycle":"US06"}`
	readAll(t, postJSON(t, ts.URL+"/v1/simulate", body))
	readAll(t, postJSON(t, ts.URL+"/v1/simulate", body))
	if calls.Load() != 2 {
		t.Errorf("disabled cache: simulator ran %d times, want 2", calls.Load())
	}
	if s.cache.len() != 0 {
		t.Errorf("disabled cache stored %d entries", s.cache.len())
	}
}

// TestRunServeError pins the failure path: a dead listener surfaces as an
// error, not a hang.
func TestRunServeError(t *testing.T) {
	s := newTestServer(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve must fail immediately
	if err := s.Run(context.Background(), ln); err == nil {
		t.Fatal("Run on a closed listener returned nil")
	}
}

// TestPprofGated pins the security default: the pprof endpoints are absent
// unless EnablePprof is set, and present (on the server's own mux, not the
// default mux) when it is.
func TestPprofGated(t *testing.T) {
	get := func(s *Server, path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code
	}
	off := newTestServer(Config{})
	if code := get(off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", code)
	}
	on := newTestServer(Config{EnablePprof: true})
	if code := get(on, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want 200", code)
	}
	if code := get(on, "/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/symbol = %d, want 200", code)
	}
}
