package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// straddle the observed range from cache hits (microseconds) to full MPC
// routes (seconds).
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10}

// endpointStats aggregates one endpoint's series. Counters are plain
// ints guarded by the metrics mutex: the exposition has to lock for a
// consistent snapshot anyway, and the per-request cost is one short
// critical section.
type endpointStats struct {
	// byCode counts completed requests per HTTP status code.
	byCode map[int]int64
	// buckets holds cumulative-style histogram counts per latencyBuckets
	// entry (bucket i counts observations ≤ latencyBuckets[i]).
	buckets []int64
	// count and sum are the histogram totals (sum in seconds).
	count int64
	sum   float64
}

// metrics is the hand-rolled Prometheus registry of the server. All
// methods are safe for concurrent use.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats

	// inflight tracks requests currently inside a handler, per endpoint.
	inflightSimulate atomic.Int64
	inflightBatch    atomic.Int64
	inflightStream   atomic.Int64
	inflightFleet    atomic.Int64

	// Cache outcome counters (see resultCache).
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheCoalesced atomic.Int64

	// admissionRejected counts requests shed with 429.
	admissionRejected atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointStats)}
}

// inflightGauge returns the gauge for an instrumented endpoint, nil when
// the endpoint is not tracked (healthz, metrics).
func (m *metrics) inflightGauge(endpoint string) *atomic.Int64 {
	switch endpoint {
	case "simulate":
		return &m.inflightSimulate
	case "batch":
		return &m.inflightBatch
	case "stream":
		return &m.inflightStream
	case "fleet":
		return &m.inflightFleet
	}
	return nil
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, code int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{
			byCode:  make(map[int]int64),
			buckets: make([]int64, len(latencyBuckets)),
		}
		m.endpoints[endpoint] = st
	}
	st.byCode[code]++
	st.count++
	st.sum += sec
	for i, le := range latencyBuckets {
		if sec <= le {
			st.buckets[i]++
		}
	}
}

// snapshot is the cache/admission counter view healthz and the bench
// harness read.
type counterSnapshot struct {
	CacheHits, CacheMisses, CacheCoalesced, AdmissionRejected int64
}

func (m *metrics) counters() counterSnapshot {
	return counterSnapshot{
		CacheHits:         m.cacheHits.Load(),
		CacheMisses:       m.cacheMisses.Load(),
		CacheCoalesced:    m.cacheCoalesced.Load(),
		AdmissionRejected: m.admissionRejected.Load(),
	}
}

// writeProm renders the registry in Prometheus text exposition format
// (version 0.0.4). Series are emitted in sorted label order so the output
// is deterministic and diffable.
func (m *metrics) writeProm(w io.Writer, inflightTotal, queued int64) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	appendf("# HELP otem_serve_requests_total Completed HTTP requests by endpoint and status code.\n")
	appendf("# TYPE otem_serve_requests_total counter\n")
	for _, name := range names {
		st := m.endpoints[name]
		codes := make([]int, 0, len(st.byCode))
		for code := range st.byCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			appendf("otem_serve_requests_total{code=%q,endpoint=%q} %d\n", strconv.Itoa(code), name, st.byCode[code])
		}
	}

	appendf("# HELP otem_serve_request_duration_seconds Request latency by endpoint.\n")
	appendf("# TYPE otem_serve_request_duration_seconds histogram\n")
	for _, name := range names {
		st := m.endpoints[name]
		for i, le := range latencyBuckets {
			appendf("otem_serve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(le, 'g', -1, 64), st.buckets[i])
		}
		appendf("otem_serve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, st.count)
		appendf("otem_serve_request_duration_seconds_sum{endpoint=%q} %s\n",
			name, strconv.FormatFloat(st.sum, 'g', -1, 64))
		appendf("otem_serve_request_duration_seconds_count{endpoint=%q} %d\n", name, st.count)
	}
	m.mu.Unlock()

	appendf("# HELP otem_serve_inflight Requests currently being handled, by endpoint.\n")
	appendf("# TYPE otem_serve_inflight gauge\n")
	appendf("otem_serve_inflight{endpoint=\"batch\"} %d\n", m.inflightBatch.Load())
	appendf("otem_serve_inflight{endpoint=\"fleet\"} %d\n", m.inflightFleet.Load())
	appendf("otem_serve_inflight{endpoint=\"simulate\"} %d\n", m.inflightSimulate.Load())
	appendf("otem_serve_inflight{endpoint=\"stream\"} %d\n", m.inflightStream.Load())

	appendf("# HELP otem_serve_admitted_inflight Simulation slots currently held.\n")
	appendf("# TYPE otem_serve_admitted_inflight gauge\n")
	appendf("otem_serve_admitted_inflight %d\n", inflightTotal)
	appendf("# HELP otem_serve_admission_queued Requests waiting for a simulation slot.\n")
	appendf("# TYPE otem_serve_admission_queued gauge\n")
	appendf("otem_serve_admission_queued %d\n", queued)
	appendf("# HELP otem_serve_admission_rejected_total Requests shed with 429 because the queue was full.\n")
	appendf("# TYPE otem_serve_admission_rejected_total counter\n")
	appendf("otem_serve_admission_rejected_total %d\n", m.admissionRejected.Load())

	appendf("# HELP otem_serve_cache_events_total Result-cache outcomes by kind (hit, miss, coalesced).\n")
	appendf("# TYPE otem_serve_cache_events_total counter\n")
	appendf("otem_serve_cache_events_total{kind=\"coalesced\"} %d\n", m.cacheCoalesced.Load())
	appendf("otem_serve_cache_events_total{kind=\"hit\"} %d\n", m.cacheHits.Load())
	appendf("otem_serve_cache_events_total{kind=\"miss\"} %d\n", m.cacheMisses.Load())

	_, err := w.Write(b)
	if err != nil {
		return fmt.Errorf("serve: write metrics: %w", err)
	}
	return nil
}
