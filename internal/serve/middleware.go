package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies; a batch of 64 specs fits in a few
// kilobytes, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// decodeJSON parses one strict JSON request body: unknown fields, syntax
// errors and trailing garbage all fail with errBadRequest.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: invalid JSON body: %w", errBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", errBadRequest)
	}
	return nil
}

// statusWriter captures the response code for the metrics middleware and
// forwards Flush so the NDJSON stream endpoint keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-request plumbing shared by all
// instrumented endpoints: inflight gauge, latency/status observation and
// panic isolation. A panicking handler is converted into a 500 (when the
// response has not started) and the process keeps serving.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		if g := s.metrics.inflightGauge(endpoint); g != nil {
			g.Add(1)
			defer g.Add(-1)
		}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("panic in %s handler (isolated): %v", endpoint, rec)
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						errorResponse{Error: "internal error: request panicked", Code: http.StatusInternalServerError})
				}
			}
			s.metrics.observe(endpoint, sw.code, time.Since(start))
		}()
		h(sw, r)
	})
}

// writeJSON renders one JSON response body. Encoding a value built from
// plain result/error structs cannot fail; a broken client connection is
// the only error source and is deliberately not reported to the peer.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
