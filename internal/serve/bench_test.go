package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/otem"
)

// benchSpecs is the load mix for the serve benchmark: the three cheap
// (non-MPC) methodologies over two short cycles — six distinct cache
// keys, so a load of N requests has N-6 cache-served responses once warm.
func benchSpecs() []string {
	var bodies []string
	for _, method := range []string{"Parallel", "ActiveCooling", "Dual"} {
		for _, cycle := range []string{"NYCC", "UDDS"} {
			bodies = append(bodies, fmt.Sprintf(`{"method":%q,"cycle":%q}`, method, cycle))
		}
	}
	return bodies
}

// BenchmarkSimulateColdKeys measures the uncoalesced handler path: every
// iteration is a distinct cache key against a stubbed simulator, so the
// number is pure serving overhead (routing, decode, cache, admission,
// pool, encode).
func BenchmarkSimulateColdKeys(b *testing.B) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		return fakeResult(spec), nil
	})
	h := s.Handler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
			strings.NewReader(fmt.Sprintf(`{"method":"Dual","cycle":"US06","repeats":%d}`, i%100+1)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkSimulateHotKey measures the cache-hit path.
func BenchmarkSimulateHotKey(b *testing.B) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		return fakeResult(spec), nil
	})
	h := s.Handler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
			strings.NewReader(`{"method":"Dual","cycle":"US06"}`))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// serveLoadRun is one load measurement at a fixed GOMAXPROCS setting,
// against a fresh server (so cache behaviour is identical across settings
// and the throughput numbers are comparable).
type serveLoadRun struct {
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Clients        int     `json:"clients"`
	DurationNS     int64   `json:"duration_ns"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheCoalesced int64   `json:"cache_coalesced"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	Rejected429    int64   `json:"rejected_429"`
}

// serveLoad fires `requests` real simulations at a fresh in-process server
// with a `clients`-wide fleet and returns the measured run.
func serveLoad(t *testing.T, requests, clients int) serveLoadRun {
	t.Helper()
	s := newTestServer(Config{MaxInflight: runtime.GOMAXPROCS(0), MaxQueue: requests})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := benchSpecs()
	client := ts.Client()
	fire := func(ctx context.Context, i int) (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate",
			strings.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var wire otem.ResultJSON
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			return resp.StatusCode, fmt.Errorf("decode: %w", err)
		}
		return resp.StatusCode, nil
	}

	pool := runner.New(runner.Workers(clients))
	start := time.Now()
	codes, err := runner.Map(context.Background(), pool, requests, fire)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}

	c := s.metrics.counters()
	served := c.CacheHits + c.CacheMisses + c.CacheCoalesced
	if served != int64(requests) {
		t.Fatalf("accounting: %d outcomes for %d requests", served, requests)
	}
	return serveLoadRun{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Clients:        clients,
		DurationNS:     elapsed.Nanoseconds(),
		ThroughputRPS:  float64(requests) / elapsed.Seconds(),
		CacheHits:      c.CacheHits,
		CacheMisses:    c.CacheMisses,
		CacheCoalesced: c.CacheCoalesced,
		CacheHitRatio:  float64(c.CacheHits+c.CacheCoalesced) / float64(requests),
		Rejected429:    c.AdmissionRejected,
	}
}

// TestServeBenchJSON is the `make serve-bench` load harness: real
// simulations over real HTTP, a concurrent client fleet on the bounded
// worker pool, throughput and cache hit ratio written to the path in
// SERVE_BENCH_JSON. The load is measured at both GOMAXPROCS=1 and
// GOMAXPROCS=NumCPU — against a fresh server each time so the numbers are
// comparable — because a single throughput figure taken at an unknown
// processor count cannot be compared across machines. Without the
// environment variable the test is a cheap smoke (few requests, current
// GOMAXPROCS only, nothing written) so `go test ./...` stays fast while
// the harness logic is still exercised.
func TestServeBenchJSON(t *testing.T) {
	out := os.Getenv("SERVE_BENCH_JSON")
	if out == "" {
		run := serveLoad(t, 24, 4)
		t.Logf("smoke: 24 requests in %s (%.0f req/s, hit ratio %.2f)",
			time.Duration(run.DurationNS), run.ThroughputRPS, run.CacheHitRatio)
		return
	}

	const requests = 360
	procSettings := []int{1, runtime.NumCPU()}
	if procSettings[1] == 1 {
		procSettings = procSettings[:1]
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var runs []serveLoadRun
	for _, procs := range procSettings {
		runtime.GOMAXPROCS(procs)
		runs = append(runs, serveLoad(t, requests, 3*procs))
	}

	report := struct {
		NumCPU        int            `json:"num_cpu"`
		Requests      int            `json:"requests"`
		DistinctSpecs int            `json:"distinct_specs"`
		Runs          []serveLoadRun `json:"runs"`
	}{
		NumCPU:        runtime.NumCPU(),
		Requests:      requests,
		DistinctSpecs: len(benchSpecs()),
		Runs:          runs,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		t.Logf("wrote %s: @%d procs %.0f req/s, hit ratio %.2f", out, run.GOMAXPROCS, run.ThroughputRPS, run.CacheHitRatio)
	}
}
