package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/runner"
	"repro/otem"
)

// errBadRequest marks request-shape validation failures; the error mapper
// translates it (and the facade's unknown-name sentinels) to 400.
var errBadRequest = errors.New("serve: bad request")

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// MaxInflight bounds concurrently executing simulation requests
	// (default GOMAXPROCS). Coalesced duplicates of an in-flight request
	// do not consume a slot.
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot (default 4×MaxInflight);
	// beyond it the server sheds load with 429.
	MaxQueue int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// CacheSize bounds the result LRU (default 256 entries; negative
	// disables caching — identical in-flight requests still coalesce).
	CacheSize int
	// RequestTimeout bounds one request's simulation work (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown drain (default 15s).
	DrainTimeout time.Duration
	// BatchParallelism bounds the worker-pool fan-out inside one /v1/batch
	// request (default GOMAXPROCS).
	BatchParallelism int
	// MaxBatchSpecs bounds the grid size of one /v1/batch request
	// (default 64).
	MaxBatchSpecs int
	// MaxRepeats bounds the cycle repetitions of one spec (default 100):
	// repeats scale simulation time linearly, so this is the knob that
	// keeps a single request from monopolizing a slot.
	MaxRepeats int
	// MaxFleetVehicles bounds the fleet size of one /v1/fleet request
	// (default 512); vehicles scale simulation time linearly.
	MaxFleetVehicles int
	// MaxFleetDays bounds the per-vehicle day count of one /v1/fleet
	// request (default 7).
	MaxFleetDays int
	// FleetParallelism bounds the worker-pool fan-out inside one /v1/fleet
	// request (default GOMAXPROCS). The result is bit-identical at any
	// setting — only latency changes.
	FleetParallelism int
	// FleetBatch selects the fleet rollout lane width: 0 (default) the
	// auto-tuned batched rollout, > 0 that many vehicles per lockstep
	// group, < 0 the per-vehicle reference path. Like FleetParallelism the
	// result is bit-identical at any setting — only throughput changes.
	FleetBatch int
	// Log receives serving events and isolated panics; nil selects the
	// process-default logger.
	Log *log.Logger
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the endpoints expose goroutine dumps, heap contents
	// and CPU profiles of the process, so they must only be enabled when
	// the listener is reachable solely by trusted operators (localhost or
	// a private network), never on an internet-facing address.
	EnablePprof bool
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxInflight < 1 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.BatchParallelism < 1 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchSpecs < 1 {
		c.MaxBatchSpecs = 64
	}
	if c.MaxRepeats < 1 {
		c.MaxRepeats = 100
	}
	if c.MaxFleetVehicles < 1 {
		c.MaxFleetVehicles = 512
	}
	if c.MaxFleetDays < 1 {
		c.MaxFleetDays = 7
	}
	if c.FleetParallelism < 1 {
		c.FleetParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the simulation-as-a-service HTTP subsystem. Build with New,
// mount via Handler (tests) or drive the full lifecycle with Run.
type Server struct {
	cfg     Config
	metrics *metrics
	cache   *resultCache
	// fleetCache is the /v1/fleet instantiation of the same LRU +
	// singleflight machinery, sharing the CacheSize bound.
	fleetCache *cache[*otem.FleetResult]
	// planCache caches /v1/plan outer solves: a plan is a pure function of
	// its canonical spec, so route-start plans are computed once per route.
	planCache *cache[*otem.Plan]
	gate      *admission
	mux       *http.ServeMux
	// pool executes one admitted request's simulation with the runner's
	// panic isolation; global concurrency is bounded by gate, not here.
	pool *runner.Pool

	// runSim executes one normalized spec; tests substitute stubs to make
	// latency and failure modes deterministic.
	runSim func(ctx context.Context, spec otem.RunSpec) (otem.Result, error)
	// runBatch executes one admitted batch grid; tests substitute stubs.
	runBatch func(ctx context.Context, specs []otem.RunSpec, opts ...otem.BatchOption) ([]otem.BatchResult, error)
	// runFleet executes one admitted fleet spec; tests substitute stubs.
	runFleet func(ctx context.Context, spec otem.FleetSpec, opts ...otem.Option) (*otem.FleetResult, error)
	// runPlan solves one outer route plan; tests substitute stubs.
	runPlan func(ctx context.Context, spec otem.PlanSpec) (*otem.Plan, error)
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(),
		cache:      newResultCache(cfg.CacheSize),
		fleetCache: newCache[*otem.FleetResult](cfg.CacheSize),
		planCache:  newCache[*otem.Plan](cfg.CacheSize),
		gate:       newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		pool:       runner.New(runner.Workers(1)),
		runSim:     otem.RunContext,
		runBatch:   otem.RunBatch,
		runFleet:   otem.RunFleet,
		runPlan: func(_ context.Context, spec otem.PlanSpec) (*otem.Plan, error) {
			return otem.PlanRoute(spec)
		},
	}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.Handle("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.Handle("POST /v1/fleet", s.instrument("fleet", s.handleFleet))
	mux.Handle("POST /v1/plan", s.instrument("plan", s.handlePlan))
	mux.Handle("GET /v1/simulate/stream", s.instrument("stream", s.handleStream))
	mux.Handle("GET /v1/fleet/stream", s.instrument("fleetstream", s.handleFleetStream))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		// Explicit registrations on the server's own mux — the blank-import
		// side effect only reaches http.DefaultServeMux, which is never
		// served here.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the routed HTTP handler (the unit tests mount it on
// httptest servers).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// statusFor maps an error chain onto the HTTP status code, from most to
// least specific: request-shape and unknown-name errors are the client's
// fault (400), a full admission queue is load shedding (429), a deadline
// is a timeout (504) and a canceled run means the client went away (503
// — mostly unobservable, but it keeps the metrics honest).
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBadRequest),
		errors.Is(err, otem.ErrUnknownCycle),
		errors.Is(err, otem.ErrUnknownBaseline),
		errors.Is(err, otem.ErrBadPlanSpec):
		return http.StatusBadRequest
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, otem.ErrCanceled), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders the JSON error body for err, with the Retry-After
// hint on 429s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		s.metrics.admissionRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
	}
	msg := err.Error()
	var pe *runner.PanicError
	if errors.As(err, &pe) {
		// Never leak a panic value or stack to the client.
		msg = "internal error: simulation panicked"
	}
	writeJSON(w, code, errorResponse{Error: msg, Code: code})
}

// requestCtx bounds one request's simulation work by the client's
// connection context and the configured timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// runOne executes one admitted spec on the worker pool, so a panicking
// simulation surfaces as a *runner.PanicError instead of tearing the
// process down.
func (s *Server) runOne(ctx context.Context, spec otem.RunSpec) (otem.Result, error) {
	out, err := runner.Map(ctx, s.pool, 1, func(ctx context.Context, _ int) (otem.Result, error) {
		return s.runSim(ctx, spec)
	})
	if err != nil {
		return otem.Result{}, err
	}
	return out[0], nil
}

// admitAndRun is the leader path of a cache miss: win an admission slot
// (or be shed), then simulate.
func (s *Server) admitAndRun(ctx context.Context, spec otem.RunSpec) (otem.Result, error) {
	if err := s.gate.acquire(ctx); err != nil {
		return otem.Result{}, err
	}
	defer s.gate.release()
	return s.runOne(ctx, spec)
}

// resolve satisfies one simulation request through the cache, the
// coalescer and the admission gate, recording the cache outcome.
func (s *Server) resolve(ctx context.Context, spec otem.RunSpec) (otem.Result, cacheOutcome, error) {
	res, outcome, err := s.cache.do(ctx, cacheKey(spec), func() (otem.Result, error) {
		return s.admitAndRun(ctx, spec)
	})
	switch outcome {
	case cacheHit:
		s.metrics.cacheHits.Add(1)
	case cacheMiss:
		s.metrics.cacheMisses.Add(1)
	case cacheCoalesced:
		s.metrics.cacheCoalesced.Add(1)
	}
	return res, outcome, err
}

// handleSimulate implements POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.normalize(s.cfg.MaxRepeats)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, outcome, err := s.resolve(ctx, spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))
	writeJSON(w, http.StatusOK, otem.EncodeResult(res))
}

// handleBatch implements POST /v1/batch: the grid runs concurrently on
// the bounded worker pool under a single admission slot, with per-spec
// cache reads and writes (coalescing applies only to single-run
// endpoints; a grid's specs are usually distinct).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, fmt.Errorf("%w: specs is empty", errBadRequest))
		return
	}
	if len(req.Specs) > s.cfg.MaxBatchSpecs {
		s.writeError(w, fmt.Errorf("%w: %d specs exceed the limit %d", errBadRequest, len(req.Specs), s.cfg.MaxBatchSpecs))
		return
	}
	specs := make([]otem.RunSpec, len(req.Specs))
	for i, sr := range req.Specs {
		spec, err := sr.normalize(s.cfg.MaxRepeats)
		if err != nil {
			s.writeError(w, fmt.Errorf("spec %d: %w", i, err))
			return
		}
		specs[i] = spec
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	entries := make([]BatchEntry, len(specs))
	var missSpecs []otem.RunSpec
	var missIdx []int
	for i, spec := range specs {
		entries[i].Spec = req.Specs[i]
		if res, ok := s.cache.get(cacheKey(spec)); ok {
			s.metrics.cacheHits.Add(1)
			wire := otem.EncodeResult(res)
			entries[i].Result = &wire
			continue
		}
		s.metrics.cacheMisses.Add(1)
		missSpecs = append(missSpecs, spec)
		missIdx = append(missIdx, i)
	}

	if len(missSpecs) > 0 {
		if err := s.gate.acquire(ctx); err != nil {
			s.writeError(w, err)
			return
		}
		results, err := s.runBatch(ctx, missSpecs, otem.WithParallelism(s.cfg.BatchParallelism))
		s.gate.release()
		if err != nil {
			s.writeError(w, err)
			return
		}
		for j, br := range results {
			i := missIdx[j]
			if br.Err != nil {
				entries[i].Error = br.Err.Error()
				continue
			}
			s.cache.put(cacheKey(missSpecs[j]), br.Result)
			wire := otem.EncodeResult(br.Result)
			entries[i].Result = &wire
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: entries})
}

// handleFleet implements POST /v1/fleet: one Monte Carlo fleet run under
// a single admission slot (the fan-out inside is bounded separately by
// FleetParallelism), cached and coalesced on the canonical spec encoding
// — fleets are deterministic at any parallelism, so a cached result is
// exactly what a re-run would produce.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req FleetRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.normalize(s.cfg.MaxFleetVehicles, s.cfg.MaxFleetDays)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, outcome, err := s.fleetCache.do(ctx, cacheKey(spec), func() (*otem.FleetResult, error) {
		if err := s.gate.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.gate.release()
		out, err := runner.Map(ctx, s.pool, 1, func(ctx context.Context, _ int) (*otem.FleetResult, error) {
			return s.runFleet(ctx, spec,
				otem.WithParallelism(s.cfg.FleetParallelism),
				otem.WithFleetBatch(s.cfg.FleetBatch))
		})
		if err != nil {
			return nil, err
		}
		return out[0], nil
	})
	switch outcome {
	case cacheHit:
		s.metrics.cacheHits.Add(1)
	case cacheMiss:
		s.metrics.cacheMisses.Add(1)
	case cacheCoalesced:
		s.metrics.cacheCoalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))
	writeJSON(w, http.StatusOK, otem.EncodeFleet(res))
}

// handleStream implements GET /v1/simulate/stream: one traced run,
// streamed as NDJSON — the first line is the ResultJSON summary (without
// the trace), each following line one TraceStepJSON.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := fromQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.normalize(s.cfg.MaxRepeats)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, outcome, err := s.resolve(ctx, spec)
	if err != nil {
		s.writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", string(outcome))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	// json.Encoder terminates every value with a newline, which is
	// exactly one NDJSON record per Encode call.
	wire := otem.EncodeResult(res)
	steps := wire.Trace
	wire.Trace = nil
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire); err != nil {
		return // client went away; nothing sensible left to do
	}
	for i := range steps {
		if err := enc.Encode(steps[i]); err != nil {
			return
		}
		if (i+1)%128 == 0 {
			flush()
		}
	}
	flush()
}

// handlePlan implements POST /v1/plan: the outer scheduling layer of the
// two-layer hierarchical MPC, solved for one route. A plan is a pure
// function of its canonical spec, so the endpoint caches and coalesces on
// it exactly like the simulate endpoints — a navigation frontend can
// request the same route's schedule repeatedly and only the first request
// pays for the solve.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.normalize(s.cfg.MaxRepeats)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, outcome, err := s.planCache.do(ctx, cacheKey(spec), func() (*otem.Plan, error) {
		if err := s.gate.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.gate.release()
		out, err := runner.Map(ctx, s.pool, 1, func(ctx context.Context, _ int) (*otem.Plan, error) {
			return s.runPlan(ctx, spec)
		})
		if err != nil {
			return nil, err
		}
		return out[0], nil
	})
	switch outcome {
	case cacheHit:
		s.metrics.cacheHits.Add(1)
	case cacheMiss:
		s.metrics.cacheMisses.Add(1)
	case cacheCoalesced:
		s.metrics.cacheCoalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))
	writeJSON(w, http.StatusOK, otem.EncodePlan(res))
}

// fleetProgressEvent is one NDJSON progress line of GET /v1/fleet/stream.
type fleetProgressEvent struct {
	Event         string `json:"event"` // always "progress"
	VehiclesDone  int    `json:"vehicles_done"`
	VehiclesTotal int    `json:"vehicles_total"`
}

// fleetErrorEvent is the NDJSON error line emitted when a streamed fleet
// run fails after the 200 header has been sent.
type fleetErrorEvent struct {
	Event string `json:"event"` // always "error"
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// handleFleetStream implements GET /v1/fleet/stream: one fleet run as
// NDJSON — a progress line per completed chunk, then the FleetResultJSON
// summary as the final line (distinguished by its "schema" field). The
// run shares /v1/fleet's cache: a cached or coalesced request emits the
// final line only, and the X-Cache header tells which (the header is sent
// with the first progress line, which only the computing leader writes).
func (s *Server) handleFleetStream(w http.ResponseWriter, r *http.Request) {
	req, err := fleetFromQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.normalize(s.cfg.MaxFleetVehicles, s.cfg.MaxFleetDays)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// Progress must stream while the run executes, so the header goes out
	// with the first write. Only the cache-miss leader writes progress
	// lines, so X-Cache can optimistically say "miss": on a hit or a
	// coalesced wait nothing is written until after the outcome is known,
	// and the header is corrected below before the final line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", string(cacheMiss))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wroteProgress := false
	progress := func(done, total int) {
		// fleet.Run serializes progress callbacks, and the leader's run
		// completes before do returns, so wroteProgress is safely read
		// after the fact.
		wroteProgress = true
		if enc.Encode(fleetProgressEvent{Event: "progress", VehiclesDone: done, VehiclesTotal: total}) == nil && flusher != nil {
			flusher.Flush()
		}
	}

	res, outcome, err := s.fleetCache.do(ctx, cacheKey(spec), func() (*otem.FleetResult, error) {
		if err := s.gate.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.gate.release()
		out, err := runner.Map(ctx, s.pool, 1, func(ctx context.Context, _ int) (*otem.FleetResult, error) {
			return s.runFleet(ctx, spec,
				otem.WithParallelism(s.cfg.FleetParallelism),
				otem.WithFleetBatch(s.cfg.FleetBatch),
				otem.WithProgress(progress))
		})
		if err != nil {
			return nil, err
		}
		return out[0], nil
	})
	switch outcome {
	case cacheHit:
		s.metrics.cacheHits.Add(1)
	case cacheMiss:
		s.metrics.cacheMisses.Add(1)
	case cacheCoalesced:
		s.metrics.cacheCoalesced.Add(1)
	}
	if err != nil {
		if !wroteProgress {
			s.writeError(w, err)
			return
		}
		// The 200 header is already on the wire; the error becomes the
		// stream's final event instead. Same panic hygiene as writeError:
		// never leak a panic value to the client.
		msg := err.Error()
		var pe *runner.PanicError
		if errors.As(err, &pe) {
			msg = "internal error: simulation panicked"
		}
		_ = enc.Encode(fleetErrorEvent{Event: "error", Error: msg, Code: statusFor(err)})
		return
	}
	if !wroteProgress {
		w.Header().Set("X-Cache", string(outcome))
	}
	_ = enc.Encode(otem.EncodeFleet(res))
	if flusher != nil {
		flusher.Flush()
	}
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	inflight, queued := s.gate.depth()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
		Queued   int64  `json:"queued"`
	}{Status: "ok", Inflight: inflight, Queued: queued})
}

// handleMetrics implements GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	inflight, queued := s.gate.depth()
	if err := s.metrics.writeProm(w, inflight, queued); err != nil {
		s.logf("metrics write: %v", err)
	}
}

// Run serves on ln until ctx is canceled, then drains gracefully for up
// to Config.DrainTimeout. It reuses the bounded worker pool as its
// supervisor: one job serves, the sibling watches the context and
// triggers shutdown, and both get the runner's panic isolation. Returns
// nil after a clean drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
		ErrorLog:          s.cfg.Log,
		// Requests must survive the SIGTERM cancel so the drain below can
		// finish them; their lifetime is bounded per-request instead.
		BaseContext: func(net.Listener) context.Context { return context.Background() },
	}
	var drainErr error
	err := runner.New(runner.Workers(2)).Run(ctx, 2, func(jctx context.Context, i int) error {
		if i == 0 {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return fmt.Errorf("serve: %w", err)
			}
			return nil
		}
		<-jctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		drainErr = srv.Shutdown(dctx)
		return nil
	})
	if err != nil && !errors.Is(err, runner.ErrCanceled) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("serve: drain: %w", drainErr)
	}
	return nil
}
