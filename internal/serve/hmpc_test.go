package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/otem"
)

// stubPlan wraps runPlan with a counting shim around the real solver, so
// cache behaviour is observable while the plan stays the genuine article.
func stubPlan(s *Server, counter *atomic.Int64) {
	real := s.runPlan
	s.runPlan = func(ctx context.Context, spec otem.PlanSpec) (*otem.Plan, error) {
		counter.Add(1)
		return real(ctx, spec)
	}
}

func TestPlanOKAndCacheHit(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubPlan(s, &calls)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"cycle":"NYCC","ambient_kelvin":308}`
	var bodies [2][]byte
	wantCache := []string{"miss", "hit"}
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/plan", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, readAll(t, resp))
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache[i] {
			t.Errorf("request %d: X-Cache = %q, want %q", i, got, wantCache[i])
		}
		bodies[i] = readAll(t, resp)
	}
	if calls.Load() != 1 {
		t.Errorf("plan solved %d times, want 1 (second request must be a cache hit)", calls.Load())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("cache hit served a different body than the original solve")
	}

	var wire otem.PlanJSON
	if err := json.Unmarshal(bodies[0], &wire); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if wire.Schema != otem.PlanSchemaVersion {
		t.Errorf("schema = %q, want %q", wire.Schema, otem.PlanSchemaVersion)
	}
	if wire.Blocks < 2 || len(wire.SoC) != wire.Blocks+1 || len(wire.CapU) != wire.Blocks {
		t.Errorf("degenerate plan geometry: blocks=%d soc=%d capU=%d", wire.Blocks, len(wire.SoC), len(wire.CapU))
	}
	if wire.Spec != otem.Canonical(otem.PlanSpec{Cycle: "NYCC", AmbientK: 308}) {
		t.Errorf("spec %q is not the canonical encoding of the request", wire.Spec)
	}
}

func TestPlanValidation(t *testing.T) {
	s := newTestServer(Config{MaxRepeats: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"negative repeats", `{"repeats":-1}`},
		{"repeats over server limit", `{"repeats":11}`},
		{"unknown cycle", `{"cycle":"BOGUS"}`},
		{"unknown usage", `{"usage":"aviation"}`},
		{"short route", `{"route_seconds":10}`},
		{"bad ambient", `{"ambient_kelvin":100}`},
		{"bad block length", `{"block_seconds":0.25}`},
		{"too many blocks", `{"max_blocks":1000}`},
		{"malformed json", `{"cycle":`},
		{"unknown field", `{"cycle":"UDDS","warp":9}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/plan", tc.body)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != http.StatusBadRequest {
				t.Errorf("error body %s (%v)", body, err)
			}
		})
	}
}

// TestPlanFleetCachesAreDistinct: the plan cache and the simulate/fleet
// caches are separate instantiations, so same-route requests on different
// endpoints cannot collide (the canonical prefixes differ too).
func TestPlanFleetCachesAreDistinct(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/plan", `{"cycle":"NYCC"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	readAll(t, resp)
	if s.planCache.len() != 1 {
		t.Errorf("plan cache entries = %d, want 1", s.planCache.len())
	}
	if s.cache.len() != 0 || s.fleetCache.len() != 0 {
		t.Errorf("plan run leaked into other caches: sim=%d fleet=%d", s.cache.len(), s.fleetCache.len())
	}
}

// fleetStreamLines runs one GET /v1/fleet/stream request and splits the
// NDJSON body into raw lines.
func fleetStreamLines(t *testing.T, url string) (*http.Response, [][]byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	resp.Body.Close()
	return resp, lines
}

func TestFleetStreamOK(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	stubFleet(s, &calls)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/fleet/stream?vehicles=6&seed=11&method=parallel&route_seconds=120"
	resp, lines := fleetStreamLines(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want progress plus summary", len(lines))
	}
	var lastDone int
	for _, line := range lines[:len(lines)-1] {
		var ev fleetProgressEvent
		if err := json.Unmarshal(line, &ev); err != nil || ev.Event != "progress" {
			t.Fatalf("bad progress line %s (%v)", line, err)
		}
		if ev.VehiclesTotal != 6 || ev.VehiclesDone <= lastDone || ev.VehiclesDone > 6 {
			t.Fatalf("implausible progress %+v after done=%d", ev, lastDone)
		}
		lastDone = ev.VehiclesDone
	}
	if lastDone != 6 {
		t.Errorf("final progress done = %d, want 6", lastDone)
	}
	var wire otem.FleetResultJSON
	if err := json.Unmarshal(lines[len(lines)-1], &wire); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	if wire.Schema != otem.FleetSchemaVersion || wire.Vehicles != 6 {
		t.Errorf("summary %+v", wire)
	}

	// The same spec again is a cache hit served from /v1/fleet's cache:
	// one line only, and the summary is byte-identical.
	resp2, lines2 := fleetStreamLines(t, url)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if len(lines2) != 1 {
		t.Fatalf("cache hit streamed %d lines, want 1", len(lines2))
	}
	if !bytes.Equal(lines2[0], lines[len(lines)-1]) {
		t.Error("cached summary differs from the streamed one")
	}
	if calls.Load() != 1 {
		t.Errorf("fleet ran %d times, want 1", calls.Load())
	}

	// And POST /v1/fleet shares the same cache entry.
	resp3 := postJSON(t, ts.URL+"/v1/fleet", `{"vehicles":6,"seed":11,"method":"parallel","route_seconds":120}`)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("POST /v1/fleet after stream: X-Cache = %q, want hit", got)
	}
	readAll(t, resp3)
}

func TestFleetStreamValidation(t *testing.T) {
	s := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range []string{
		"",                      // missing vehicles
		"vehicles=0",            // zero vehicles
		"vehicles=abc",          // non-integer
		"vehicles=4&seed=x",     // bad seed
		"vehicles=4&days=-1",    // negative days
		"vehicles=4&method=wat", // unknown method
		"vehicles=4&route_seconds=nope",
	} {
		resp, err := http.Get(ts.URL + "/v1/fleet/stream?" + q)
		if err != nil {
			t.Fatalf("GET %q: %v", q, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400 (body %s)", q, resp.StatusCode, body)
		}
	}
}
