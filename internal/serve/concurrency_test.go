package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/otem"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCoalescingUnderLoad fires many identical requests at a blocked
// simulator: exactly one computation must run, everyone else coalesces
// onto it, and all clients get the same 200.
func TestCoalescingUnderLoad(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 8})
	release := make(chan struct{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		<-release
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 20
	var wg sync.WaitGroup
	codes := make([]int, clients)
	caches := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
				strings.NewReader(`{"method":"OTEM","cycle":"US06","repeats":3}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			codes[i] = resp.StatusCode
			caches[i] = resp.Header.Get("X-Cache")
			readAll(t, resp)
		}(i)
	}

	// Followers block inside the coalescer until the leader finishes, so
	// the observable join signal is the inflight gauge reaching every
	// client while the simulator has only been entered once.
	waitFor(t, "all clients joined the flight", func() bool {
		return s.metrics.inflightSimulate.Load() == clients
	})
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("simulator ran %d times for %d identical requests, want 1", calls.Load(), clients)
	}
	var miss, coalesced int
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("client %d: status %d", i, codes[i])
		}
		switch caches[i] {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("client %d: X-Cache %q", i, caches[i])
		}
	}
	if miss != 1 || coalesced != clients-1 {
		t.Errorf("outcomes: %d miss / %d coalesced, want 1 / %d", miss, coalesced, clients-1)
	}
}

// TestAdmissionSheds429 saturates one execution slot and a one-deep
// queue, then checks the third distinct request is rejected with 429 and
// a Retry-After hint while the first two complete normally.
func TestAdmissionSheds429(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		<-release
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(cycle string, codeCh chan<- int) {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(fmt.Sprintf(`{"method":"OTEM","cycle":%q}`, cycle)))
		if err != nil {
			t.Errorf("POST %s: %v", cycle, err)
			codeCh <- 0
			return
		}
		readAll(t, resp)
		codeCh <- resp.StatusCode
	}

	aCh, bCh := make(chan int, 1), make(chan int, 1)
	go post("US06", aCh)
	waitFor(t, "first request holds the slot", func() bool {
		inflight, _ := s.gate.depth()
		return inflight == 1
	})
	go post("UDDS", bCh)
	waitFor(t, "second request queued", func() bool {
		_, queued := s.gate.depth()
		return queued == 1
	})

	// The queue is full: a third distinct request must be shed, now.
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"method":"OTEM","cycle":"HWFET"}`))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != http.StatusTooManyRequests {
		t.Errorf("429 body %s (%v)", body, err)
	}

	close(release)
	if code := <-aCh; code != http.StatusOK {
		t.Errorf("first request: status %d", code)
	}
	if code := <-bCh; code != http.StatusOK {
		t.Errorf("queued request: status %d", code)
	}
	if got := s.metrics.counters().AdmissionRejected; got != 1 {
		t.Errorf("admission_rejected = %d, want 1", got)
	}
}

// TestQueueWaiterCancel abandons a queued request by canceling its
// client context; the slot holder finishes untouched and the waiter's
// queue seat is returned.
func TestQueueWaiterCancel(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 1, MaxQueue: 4})
	release := make(chan struct{})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		<-release
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	aCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"method":"OTEM","cycle":"US06"}`))
		if err != nil {
			aCh <- 0
			return
		}
		readAll(t, resp)
		aCh <- resp.StatusCode
	}()
	waitFor(t, "slot held", func() bool {
		inflight, _ := s.gate.depth()
		return inflight == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"method":"OTEM","cycle":"UDDS"}`))
	if err != nil {
		t.Fatal(err)
	}
	waiterErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			readAll(t, resp)
		}
		waiterErr <- err
	}()
	waitFor(t, "waiter queued", func() bool {
		_, queued := s.gate.depth()
		return queued == 1
	})
	cancel()
	if err := <-waiterErr; err == nil {
		t.Error("canceled waiter got a response, want a client-side context error")
	}
	waitFor(t, "queue seat returned", func() bool {
		_, queued := s.gate.depth()
		return queued == 0
	})

	close(release)
	if code := <-aCh; code != http.StatusOK {
		t.Errorf("slot holder: status %d", code)
	}
}

// TestHammerAccounting drives a mixed key set from many clients and
// checks the cache accounting is exact: with a generous queue nothing is
// shed, each distinct key simulates exactly once and every other request
// is a hit or a coalesce.
func TestHammerAccounting(t *testing.T) {
	s := newTestServer(Config{MaxInflight: 4, MaxQueue: 10_000})
	var calls atomic.Int64
	stubSim(s, &calls, func(_ context.Context, spec otem.RunSpec) (otem.Result, error) {
		time.Sleep(100 * time.Microsecond) // widen the coalescing window
		return fakeResult(spec), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cycles := []string{"US06", "UDDS", "HWFET", "NYCC", "LA92"}
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	var non200 atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cycle := cycles[(w+i)%len(cycles)]
				resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
					strings.NewReader(fmt.Sprintf(`{"method":"Dual","cycle":%q}`, cycle)))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
				}
				readAll(t, resp)
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	c := s.metrics.counters()
	if non200.Load() != 0 {
		t.Errorf("%d non-200 responses", non200.Load())
	}
	if c.AdmissionRejected != 0 {
		t.Errorf("admission rejected %d with a generous queue", c.AdmissionRejected)
	}
	if got := c.CacheHits + c.CacheMisses + c.CacheCoalesced; got != total {
		t.Errorf("cache outcomes %d (h=%d m=%d c=%d), want %d",
			got, c.CacheHits, c.CacheMisses, c.CacheCoalesced, total)
	}
	if calls.Load() != int64(len(cycles)) {
		t.Errorf("simulator ran %d times, want %d (once per distinct key)", calls.Load(), len(cycles))
	}
	if c.CacheMisses != int64(len(cycles)) {
		t.Errorf("misses = %d, want %d", c.CacheMisses, len(cycles))
	}
}

// TestRequestTimeout bounds a runaway simulation by the configured
// per-request budget and reports 504.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(Config{RequestTimeout: 30 * time.Millisecond})
	var calls atomic.Int64
	stubSim(s, &calls, func(ctx context.Context, spec otem.RunSpec) (otem.Result, error) {
		<-ctx.Done()
		// Mirror the real engine: ErrCanceled wrapping the context cause.
		return otem.Result{}, fmt.Errorf("%w: %w", otem.ErrCanceled, ctx.Err())
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/simulate", `{"method":"OTEM","cycle":"US06"}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}
