package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core/floats"
	"repro/otem"
)

// SimulateRequest is the wire form of one simulation request, shared by
// POST /v1/simulate, the specs of POST /v1/batch and (as query
// parameters) GET /v1/simulate/stream. The zero values select the
// experiment-suite defaults: repeats 1, a 25 kF ultracapacitor bank.
type SimulateRequest struct {
	// Method is a methodology name ("Parallel", "ActiveCooling", "Dual",
	// "OTEM"), matched case-insensitively.
	Method string `json:"method"`
	// Cycle is a standard drive-cycle name ("US06", "UDDS", …).
	Cycle string `json:"cycle"`
	// Repeats plays the cycle back to back.
	Repeats int `json:"repeats,omitempty"`
	// UltracapFarad is the ultracapacitor bank size.
	UltracapFarad float64 `json:"ultracap_farad,omitempty"`
	// Trace includes the per-step trace in the response (/v1/simulate
	// only; the stream endpoint always traces).
	Trace bool `json:"trace,omitempty"`
}

// BatchRequest is the wire form of POST /v1/batch.
type BatchRequest struct {
	// Specs are the runs of the grid, evaluated concurrently.
	Specs []SimulateRequest `json:"specs"`
}

// BatchResponse is the wire form of the /v1/batch reply: one entry per
// spec, in request order.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// BatchEntry reports one spec's outcome; exactly one of Result and Error
// is set.
type BatchEntry struct {
	Spec   SimulateRequest  `json:"spec"`
	Result *otem.ResultJSON `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// errorResponse is the JSON error body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// normalize validates the request shape, canonicalizes the methodology
// case and applies the experiment-suite defaults, returning the RunSpec
// to execute. Name resolution (unknown cycle/methodology) is left to the
// simulation itself so its errors carry the sentinel values the error
// mapper translates to 400.
func (r SimulateRequest) normalize(maxRepeats int) (otem.RunSpec, error) {
	if r.Repeats < 0 {
		return otem.RunSpec{}, fmt.Errorf("%w: repeats %d is negative", errBadRequest, r.Repeats)
	}
	if r.Repeats > maxRepeats {
		return otem.RunSpec{}, fmt.Errorf("%w: repeats %d exceeds the limit %d", errBadRequest, r.Repeats, maxRepeats)
	}
	if r.UltracapFarad < 0 {
		return otem.RunSpec{}, fmt.Errorf("%w: ultracap_farad %g is negative", errBadRequest, r.UltracapFarad)
	}
	spec := otem.RunSpec{
		Method:    resolveMethod(r.Method),
		Cycle:     r.Cycle,
		Repeats:   r.Repeats,
		UltracapF: r.UltracapFarad,
		Trace:     r.Trace,
	}
	if spec.Repeats < 1 {
		spec.Repeats = 1
	}
	if floats.Zero(spec.UltracapF) {
		spec.UltracapF = 25000
	}
	return spec, nil
}

// resolveMethod maps a case-insensitive methodology spelling onto the
// canonical presentation name. Unknown spellings pass through verbatim so
// the run fails with otem.ErrUnknownBaseline and an exact echo of the
// input.
func resolveMethod(name string) otem.Methodology {
	for _, m := range otem.Methodologies() {
		if strings.EqualFold(name, string(m)) {
			return m
		}
	}
	return otem.Methodology(name)
}

// cacheKey is the canonical encoding of a normalized spec (RunSpec,
// FleetSpec, …): the one code path shared with CLI JSON output and fleet
// digests. Two requests get the same key exactly when they describe the
// same deterministic computation, so the key is safe to cache and
// coalesce on.
func cacheKey(spec otem.CanonicalSpec) string {
	return otem.Canonical(spec)
}

// FleetRequest is the wire form of POST /v1/fleet. Zero values select the
// FleetSpec defaults (1 day, OTEM methodology, 25 kF bank, 600 s routes).
type FleetRequest struct {
	// Vehicles is the fleet size (required).
	Vehicles int `json:"vehicles"`
	// Days is how many daily routes each vehicle drives.
	Days int `json:"days,omitempty"`
	// Seed is the fleet master seed.
	Seed int64 `json:"seed,omitempty"`
	// Method is a methodology name, matched case-insensitively.
	Method string `json:"method,omitempty"`
	// UltracapFarad is the ultracapacitor bank size.
	UltracapFarad float64 `json:"ultracap_farad,omitempty"`
	// RouteSeconds is the target duration of each synthesized route.
	RouteSeconds float64 `json:"route_seconds,omitempty"`
	// Horizon is the controller forecast window.
	Horizon int `json:"horizon,omitempty"`
}

// normalize validates the request shape against the server's fleet limits
// and returns the FleetSpec to execute.
func (r FleetRequest) normalize(maxVehicles, maxDays int) (otem.FleetSpec, error) {
	switch {
	case r.Vehicles < 1:
		return otem.FleetSpec{}, fmt.Errorf("%w: vehicles %d, must be >= 1", errBadRequest, r.Vehicles)
	case r.Vehicles > maxVehicles:
		return otem.FleetSpec{}, fmt.Errorf("%w: vehicles %d exceeds the limit %d", errBadRequest, r.Vehicles, maxVehicles)
	case r.Days < 0:
		return otem.FleetSpec{}, fmt.Errorf("%w: days %d is negative", errBadRequest, r.Days)
	case r.Days > maxDays:
		return otem.FleetSpec{}, fmt.Errorf("%w: days %d exceeds the limit %d", errBadRequest, r.Days, maxDays)
	case r.UltracapFarad < 0:
		return otem.FleetSpec{}, fmt.Errorf("%w: ultracap_farad %g is negative", errBadRequest, r.UltracapFarad)
	case r.RouteSeconds < 0:
		return otem.FleetSpec{}, fmt.Errorf("%w: route_seconds %g is negative", errBadRequest, r.RouteSeconds)
	case r.Horizon < 0:
		return otem.FleetSpec{}, fmt.Errorf("%w: horizon %d is negative", errBadRequest, r.Horizon)
	}
	spec := otem.FleetSpec{
		Vehicles:     r.Vehicles,
		Days:         r.Days,
		Seed:         r.Seed,
		Method:       resolveMethod(r.Method),
		UltracapF:    r.UltracapFarad,
		RouteSeconds: r.RouteSeconds,
		Horizon:      r.Horizon,
	}
	if r.Method == "" {
		spec.Method = "" // keep the FleetSpec default (OTEM)
	}
	if err := spec.Validate(); err != nil {
		return otem.FleetSpec{}, fmt.Errorf("%w: %w", errBadRequest, err)
	}
	return spec, nil
}

// PlanRequest is the wire form of POST /v1/plan: the outer scheduling
// layer of the two-layer hierarchical MPC, solved for one route. Exactly
// one route source applies: a registered cycle name, or a synthesized
// route from usage/seed/route_seconds. Zero values select the PlanSpec
// defaults; the weight and tolerance fields treat a negative value as the
// explicit off switch.
type PlanRequest struct {
	// Cycle is a standard drive-cycle name ("US06", "UDDS", …).
	Cycle string `json:"cycle,omitempty"`
	// Usage is the fleet usage class shaping a synthesized route
	// ("commuter", "delivery", "highway").
	Usage string `json:"usage,omitempty"`
	// Seed drives the route synthesiser.
	Seed int64 `json:"seed,omitempty"`
	// RouteSeconds is the synthesized route duration.
	RouteSeconds float64 `json:"route_seconds,omitempty"`
	// Repeats plays the route back to back.
	Repeats int `json:"repeats,omitempty"`
	// UltracapFarad is the ultracapacitor bank size.
	UltracapFarad float64 `json:"ultracap_farad,omitempty"`
	// AmbientKelvin is the outside-air temperature.
	AmbientKelvin float64 `json:"ambient_kelvin,omitempty"`
	// Horizon is the inner controller's forecast window, steps.
	Horizon int `json:"horizon,omitempty"`
	// BlockSeconds is the outer coarse-grid block length; MaxBlocks caps
	// the outer horizon.
	BlockSeconds float64 `json:"block_seconds,omitempty"`
	MaxBlocks    int     `json:"max_blocks,omitempty"`
	// SoCRefWeight / TempRefWeight are the inner tracking weights; the
	// *Tol fields are the inner and outer divergence tolerances.
	SoCRefWeight       float64 `json:"soc_ref_weight,omitempty"`
	TempRefWeight      float64 `json:"temp_ref_weight,omitempty"`
	SoCTol             float64 `json:"soc_tol,omitempty"`
	TempTolKelvin      float64 `json:"temp_tol_kelvin,omitempty"`
	OuterSoCTol        float64 `json:"outer_soc_tol,omitempty"`
	OuterTempTolKelvin float64 `json:"outer_temp_tol_kelvin,omitempty"`
}

// normalize validates the request shape against the server's limits and
// returns the PlanSpec to solve. Range validation beyond the server
// limits happens inside the solve, whose errors carry otem.ErrBadPlanSpec
// (mapped to 400).
func (r PlanRequest) normalize(maxRepeats int) (otem.PlanSpec, error) {
	if r.Repeats < 0 {
		return otem.PlanSpec{}, fmt.Errorf("%w: repeats %d is negative", errBadRequest, r.Repeats)
	}
	if r.Repeats > maxRepeats {
		return otem.PlanSpec{}, fmt.Errorf("%w: repeats %d exceeds the limit %d", errBadRequest, r.Repeats, maxRepeats)
	}
	return otem.PlanSpec{
		Cycle:         r.Cycle,
		Usage:         r.Usage,
		Seed:          r.Seed,
		RouteSeconds:  r.RouteSeconds,
		Repeats:       r.Repeats,
		UltracapF:     r.UltracapFarad,
		AmbientK:      r.AmbientKelvin,
		Horizon:       r.Horizon,
		BlockSeconds:  r.BlockSeconds,
		MaxBlocks:     r.MaxBlocks,
		SoCRefWeight:  r.SoCRefWeight,
		TempRefWeight: r.TempRefWeight,
		SoCTol:        r.SoCTol,
		TempTolK:      r.TempTolKelvin,
		OuterSoCTol:   r.OuterSoCTol,
		OuterTempTolK: r.OuterTempTolKelvin,
	}, nil
}

// fleetFromQuery builds a FleetRequest from the fleet-stream endpoint's
// query parameters: vehicles, days, seed, method, ultracap_farad,
// route_seconds, horizon.
func fleetFromQuery(q url.Values) (FleetRequest, error) {
	req := FleetRequest{Method: q.Get("method")}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"vehicles", &req.Vehicles},
		{"days", &req.Days},
		{"horizon", &req.Horizon},
	} {
		if s := q.Get(f.name); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return FleetRequest{}, fmt.Errorf("%w: %s %q is not an integer", errBadRequest, f.name, s)
			}
			*f.dst = n
		}
	}
	if s := q.Get("seed"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return FleetRequest{}, fmt.Errorf("%w: seed %q is not an integer", errBadRequest, s)
		}
		req.Seed = n
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"ultracap_farad", &req.UltracapFarad},
		{"route_seconds", &req.RouteSeconds},
	} {
		if s := q.Get(f.name); s != "" {
			u, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return FleetRequest{}, fmt.Errorf("%w: %s %q is not a number", errBadRequest, f.name, s)
			}
			*f.dst = u
		}
	}
	return req, nil
}

// fromQuery builds a SimulateRequest from stream-endpoint query
// parameters: method, cycle, repeats, ultracap_farad.
func fromQuery(q url.Values) (SimulateRequest, error) {
	req := SimulateRequest{
		Method: q.Get("method"),
		Cycle:  q.Get("cycle"),
		Trace:  true,
	}
	if s := q.Get("repeats"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return SimulateRequest{}, fmt.Errorf("%w: repeats %q is not an integer", errBadRequest, s)
		}
		req.Repeats = n
	}
	if s := q.Get("ultracap_farad"); s != "" {
		u, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return SimulateRequest{}, fmt.Errorf("%w: ultracap_farad %q is not a number", errBadRequest, s)
		}
		req.UltracapFarad = u
	}
	return req, nil
}
