// Package serve is the simulation-as-a-service HTTP subsystem: a
// stdlib-only JSON API over the public otem facade, so fleet-scale studies
// can evaluate many vehicle scenarios against a shared deployment instead
// of linking the module and running locally.
//
// Endpoints:
//
//	POST /v1/simulate        one run (method × cycle × repeats × ucap)
//	POST /v1/batch           a grid of runs on the bounded worker pool
//	GET  /v1/simulate/stream one traced run streamed as NDJSON steps
//	GET  /healthz            liveness plus inflight/queued gauges
//	GET  /metrics            Prometheus text exposition (hand-written)
//
// The production plumbing, in the order a request meets it:
//
//   - request-scoped context: every handler works under the client's
//     context bounded by Config.RequestTimeout, so disconnects and
//     deadlines abandon the simulation mid-route (otem.ErrCanceled);
//   - panic isolation: a recovery middleware converts handler panics into
//     500s, and the simulation itself runs under internal/runner's
//     recover, so one poisoned request never kills the process;
//   - result cache: simulations are deterministic by construction (the
//     detflow analyzer enforces it), so responses are cached under a
//     canonical encoding of the request — identical requests are served
//     from memory, and identical in-flight requests are coalesced
//     singleflight-style onto one computation;
//   - admission control: cache misses must win an execution slot
//     (Config.MaxInflight) or a bounded queue seat (Config.MaxQueue);
//     beyond that the server sheds load with 429 + Retry-After instead of
//     collapsing;
//   - metrics: per-endpoint request/latency/inflight series plus cache
//     and admission counters, exposed in Prometheus text format;
//   - graceful drain: Server.Run serves and watches its context on the
//     bounded worker pool; cancellation (SIGTERM in cmd/otem-serve) stops
//     accepting and drains in-flight requests for Config.DrainTimeout.
//
// The package deliberately has no dependencies outside the standard
// library and this module.
package serve
