package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/otem"
)

// cacheOutcome classifies how a request was satisfied; it feeds the
// metrics counters and the X-Cache response header.
type cacheOutcome string

const (
	cacheHit       cacheOutcome = "hit"       // served from the LRU
	cacheMiss      cacheOutcome = "miss"      // computed by this request
	cacheCoalesced cacheOutcome = "coalesced" // waited on an identical in-flight request
)

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	res otem.Result
}

// flight is one in-progress computation identical requests wait on.
type flight struct {
	done chan struct{} // closed when res/err are final
	res  otem.Result
	err  error
}

// resultCache is the deterministic result cache plus singleflight
// coalescer. Simulations are pure functions of the canonical request key
// (detflow enforces the absence of hidden nondeterminism), so a cached
// Result is exactly what a re-run would produce and coalescing identical
// in-flight requests onto one computation is sound.
//
// Cached Results may hold a *Trace shared between responses; everything
// downstream treats results as read-only.
type resultCache struct {
	mu     sync.Mutex
	max    int // ≤ 0 disables storage; coalescing still applies
	lru    *list.List
	byKey  map[string]*list.Element
	flight map[string]*flight
}

func newResultCache(maxEntries int) *resultCache {
	return &resultCache{
		max:    maxEntries,
		lru:    list.New(),
		byKey:  make(map[string]*list.Element),
		flight: make(map[string]*flight),
	}
}

// do returns the result for key, serving from cache when possible,
// joining an identical in-flight computation when one exists, and
// otherwise computing via fn as the leader. Leader errors are propagated
// to every coalesced waiter and never cached. A waiter whose ctx fires
// first abandons with the ctx error; the leader's computation continues
// for the others.
func (c *resultCache) do(ctx context.Context, key string, fn func() (otem.Result, error)) (otem.Result, cacheOutcome, error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		res := e.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, cacheHit, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, cacheCoalesced, f.err
		case <-ctx.Done():
			return otem.Result{}, cacheCoalesced, fmt.Errorf("serve: abandoned coalesced wait: %w", ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.flight, key)
	if f.err == nil {
		c.store(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, cacheMiss, f.err
}

// get reads one stored entry, refreshing its recency (the /v1/batch
// per-spec fast path, which bypasses the coalescer).
func (c *resultCache) get(key string) (otem.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		return otem.Result{}, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// put stores one computed entry (the /v1/batch write path).
func (c *resultCache) put(key string, res otem.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, res)
}

// store inserts under the LRU bound; the caller holds c.mu.
func (c *resultCache) store(key string, res otem.Result) {
	if c.max <= 0 {
		return
	}
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*cacheEntry).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of stored entries (test hook).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
