package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/otem"
)

// cacheOutcome classifies how a request was satisfied; it feeds the
// metrics counters and the X-Cache response header.
type cacheOutcome string

const (
	cacheHit       cacheOutcome = "hit"       // served from the LRU
	cacheMiss      cacheOutcome = "miss"      // computed by this request
	cacheCoalesced cacheOutcome = "coalesced" // waited on an identical in-flight request
)

// cacheEntry is one LRU slot.
type cacheEntry[T any] struct {
	key string
	res T
}

// flight is one in-progress computation identical requests wait on.
type flight[T any] struct {
	done chan struct{} // closed when res/err are final
	res  T
	err  error
}

// cache is the deterministic result cache plus singleflight coalescer,
// generic over the cached value: the simulate endpoints store otem.Result,
// the fleet endpoint *otem.FleetResult. Runs are pure functions of the
// canonical request key (detflow enforces the absence of hidden
// nondeterminism), so a cached value is exactly what a re-run would
// produce and coalescing identical in-flight requests onto one
// computation is sound.
//
// Cached values may hold shared pointers (a Result's *Trace, a whole
// *FleetResult); everything downstream treats them as read-only.
type cache[T any] struct {
	mu     sync.Mutex
	max    int // ≤ 0 disables storage; coalescing still applies
	lru    *list.List
	byKey  map[string]*list.Element
	flight map[string]*flight[T]
}

// resultCache is the simulate-endpoint instantiation, kept as a named
// type because tests and the Server wire it pervasively.
type resultCache = cache[otem.Result]

func newResultCache(maxEntries int) *resultCache { return newCache[otem.Result](maxEntries) }

func newCache[T any](maxEntries int) *cache[T] {
	return &cache[T]{
		max:    maxEntries,
		lru:    list.New(),
		byKey:  make(map[string]*list.Element),
		flight: make(map[string]*flight[T]),
	}
}

// do returns the result for key, serving from cache when possible,
// joining an identical in-flight computation when one exists, and
// otherwise computing via fn as the leader. Leader errors are propagated
// to every coalesced waiter and never cached. A waiter whose ctx fires
// first abandons with the ctx error; the leader's computation continues
// for the others.
func (c *cache[T]) do(ctx context.Context, key string, fn func() (T, error)) (T, cacheOutcome, error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		res := e.Value.(*cacheEntry[T]).res
		c.mu.Unlock()
		return res, cacheHit, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, cacheCoalesced, f.err
		case <-ctx.Done():
			var zero T
			return zero, cacheCoalesced, fmt.Errorf("serve: abandoned coalesced wait: %w", ctx.Err())
		}
	}
	f := &flight[T]{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.flight, key)
	if f.err == nil {
		c.store(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, cacheMiss, f.err
}

// get reads one stored entry, refreshing its recency (the /v1/batch
// per-spec fast path, which bypasses the coalescer).
func (c *cache[T]) get(key string) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		var zero T
		return zero, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry[T]).res, true
}

// put stores one computed entry (the /v1/batch write path).
func (c *cache[T]) put(key string, res T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, res)
}

// store inserts under the LRU bound; the caller holds c.mu.
func (c *cache[T]) store(key string, res T) {
	if c.max <= 0 {
		return
	}
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*cacheEntry[T]).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry[T]{key: key, res: res})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry[T]).key)
	}
}

// len reports the number of stored entries (test hook).
func (c *cache[T]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
