// Package dse implements the design-space exploration the paper defers
// ("the design space exploration for the HEES and active battery cooling
// system in terms of size and cost is out of the scope of this paper"):
// it sweeps ultracapacitor size × cooler capacity under a chosen
// methodology, prices each design, and extracts the Pareto frontier of
// cost versus battery capacity loss subject to the thermal-safety
// constraint.
package dse

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/canon"
	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/core/floats"
	"repro/internal/drivecycle"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Design is one point of the space.
type Design struct {
	// UltracapF is the bank nameplate capacitance, farads.
	UltracapF float64
	// CoolerMaxPower is the cooler electrical capacity, watts.
	CoolerMaxPower float64
}

// CostModel prices a design.
type CostModel struct {
	// DollarsPerFarad follows the paper's ≈$12,000 / 20,000 F quote.
	DollarsPerFarad float64
	// DollarsPerCoolerWatt prices the chiller capacity.
	DollarsPerCoolerWatt float64
}

// DefaultCostModel uses the paper's ultracapacitor pricing and a typical
// automotive chiller cost.
func DefaultCostModel() CostModel {
	return CostModel{DollarsPerFarad: 0.6, DollarsPerCoolerWatt: 0.25}
}

// Price returns the component cost of a design in dollars.
func (c CostModel) Price(d Design) float64 {
	return c.DollarsPerFarad*d.UltracapF + c.DollarsPerCoolerWatt*d.CoolerMaxPower
}

// Evaluation is a priced, simulated design point.
type Evaluation struct {
	Design
	// CostDollars is the component cost.
	CostDollars float64
	// QlossPct, AvgPowerW, MaxTempK and ViolationSec summarise the run.
	QlossPct     float64
	AvgPowerW    float64
	MaxTempK     float64
	ViolationSec float64
}

// Feasible reports whether the design held the thermal-safety constraint.
func (e Evaluation) Feasible() bool { return floats.Zero(e.ViolationSec) }

// Config describes an exploration.
type Config struct {
	// UltracapSizesF and CoolerPowersW span the grid.
	UltracapSizesF []float64
	CoolerPowersW  []float64
	// Cycle and Repeats define the workload (default US06 ×3).
	Cycle   string
	Repeats int
	// Cost prices the designs (default DefaultCostModel).
	Cost CostModel
}

func (c Config) withDefaults() Config {
	if len(c.UltracapSizesF) == 0 {
		c.UltracapSizesF = []float64{5000, 10000, 15000, 20000, 25000}
	}
	if len(c.CoolerPowersW) == 0 {
		c.CoolerPowersW = []float64{2e3, 4e3, 8e3, 12e3}
	}
	if c.Cycle == "" {
		c.Cycle = "US06"
	}
	if c.Repeats < 1 {
		c.Repeats = 3
	}
	//lint:ignore floatcompare the zero-value CostModel is the documented use-defaults sentinel; exact compare intended
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// AppendCanonical implements the canonical-encoding contract (see package
// canon) over the defaulted grid, workload and cost model.
func (c Config) AppendCanonical(dst []byte) []byte {
	c = c.withDefaults()
	dst = append(dst, "otem.dse"...)
	dst = canon.Floats(dst, "u", c.UltracapSizesF)
	dst = canon.Floats(dst, "p", c.CoolerPowersW)
	dst = canon.Str(dst, "c", c.Cycle)
	dst = canon.Int(dst, "r", c.Repeats)
	dst = canon.Float(dst, "cf", c.Cost.DollarsPerFarad)
	dst = canon.Float(dst, "cw", c.Cost.DollarsPerCoolerWatt)
	return dst
}

// Result holds the explored grid and its Pareto frontier.
type Result struct {
	// Evaluations lists every design point, grid order (sizes × coolers).
	Evaluations []Evaluation
	// ParetoIdx indexes the feasible, non-dominated points (minimising
	// cost and capacity loss), sorted by cost.
	ParetoIdx []int
	// Config echoes the exploration setup.
	Config Config
}

// Explore evaluates the grid under the OTEM controller with the default
// pool. See ExploreContext.
func Explore(cfg Config) (*Result, error) {
	return ExploreContext(context.Background(), cfg, nil)
}

// ExploreContext evaluates the size×cooler grid on the batch runner: every
// design point is an independent simulation job, results land in grid
// order, and canceling ctx aborts the exploration mid-grid with an error
// matching runner.ErrCanceled. A nil pool uses the defaults (GOMAXPROCS
// workers).
func ExploreContext(ctx context.Context, cfg Config, pool *runner.Pool) (*Result, error) {
	cfg = cfg.withDefaults()
	cycle, err := drivecycle.ByName(cfg.Cycle)
	if err != nil {
		return nil, err
	}
	requests := vehicle.MidSizeEV().PowerSeries(cycle.Repeat(cfg.Repeats))

	cols := len(cfg.CoolerPowersW)
	n := len(cfg.UltracapSizesF) * cols
	evals, err := runner.Map(ctx, pool, n,
		func(ctx context.Context, k int) (Evaluation, error) {
			size := cfg.UltracapSizesF[k/cols]
			cool := cfg.CoolerPowersW[k%cols]
			return evaluate(ctx, size, cool, requests, cfg.Cost)
		})
	if err != nil {
		return nil, err
	}
	out := &Result{Evaluations: evals, Config: cfg}
	out.ParetoIdx = paretoFront(out.Evaluations)
	return out, nil
}

func evaluate(ctx context.Context, size, coolerMax float64, requests []float64, cost CostModel) (Evaluation, error) {
	coolParams := cooling.DefaultParams()
	coolParams.MaxCoolerPower = coolerMax
	plant, err := sim.NewPlant(sim.PlantConfig{UltracapF: size, Cooling: &coolParams})
	if err != nil {
		return Evaluation{}, err
	}
	ctrl, err := core.New(core.DefaultConfig())
	if err != nil {
		return Evaluation{}, err
	}
	res, err := sim.RunContext(ctx, plant, ctrl, requests, sim.Config{Horizon: core.DefaultConfig().Horizon})
	if err != nil {
		return Evaluation{}, fmt.Errorf("dse %gF/%gW: %w", size, coolerMax, err)
	}
	d := Design{UltracapF: size, CoolerMaxPower: coolerMax}
	return Evaluation{
		Design:       d,
		CostDollars:  cost.Price(d),
		QlossPct:     res.QlossPct,
		AvgPowerW:    res.AvgPowerW,
		MaxTempK:     res.MaxBatteryTemp,
		ViolationSec: res.ThermalViolationSec,
	}, nil
}

// paretoFront returns the indices of feasible designs not dominated in
// (cost, capacity loss): a design dominates another when it is no worse in
// both objectives and strictly better in at least one.
func paretoFront(evals []Evaluation) []int {
	var front []int
	for i, a := range evals {
		if !a.Feasible() {
			continue
		}
		dominated := false
		for j, b := range evals {
			if i == j || !b.Feasible() {
				continue
			}
			if b.CostDollars <= a.CostDollars && b.QlossPct <= a.QlossPct &&
				(b.CostDollars < a.CostDollars || b.QlossPct < a.QlossPct) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.Slice(front, func(x, y int) bool {
		return evals[front[x]].CostDollars < evals[front[y]].CostDollars
	})
	return front
}

// ErrEmptyFront is returned by Best when no feasible design exists.
var ErrEmptyFront = errors.New("dse: no feasible design on the frontier")

// Best returns the cheapest Pareto design whose capacity loss is within
// the given multiple of the frontier's best loss (e.g. 1.1 = within 10 %).
func (r *Result) Best(lossSlack float64) (Evaluation, error) {
	if len(r.ParetoIdx) == 0 {
		return Evaluation{}, ErrEmptyFront
	}
	bestLoss := r.Evaluations[r.ParetoIdx[0]].QlossPct
	for _, i := range r.ParetoIdx {
		if l := r.Evaluations[i].QlossPct; l < bestLoss {
			bestLoss = l
		}
	}
	for _, i := range r.ParetoIdx { // sorted by cost ascending
		if r.Evaluations[i].QlossPct <= bestLoss*lossSlack {
			return r.Evaluations[i], nil
		}
	}
	return r.Evaluations[r.ParetoIdx[0]], nil
}

// Write renders the grid and the frontier.
func (r *Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Design-space exploration — OTEM on %s ×%d\n", r.Config.Cycle, r.Config.Repeats)
	fmt.Fprintf(w, "%-10s %-10s %10s %12s %12s %10s %8s\n",
		"ucap (F)", "cooler(W)", "cost ($)", "loss (%)", "avg P (W)", "maxT (K)", "pareto")
	onFront := map[int]bool{}
	for _, i := range r.ParetoIdx {
		onFront[i] = true
	}
	for i, e := range r.Evaluations {
		mark := ""
		if onFront[i] {
			mark = "*"
		}
		if !e.Feasible() {
			mark = "viol"
		}
		fmt.Fprintf(w, "%-10.0f %-10.0f %10.0f %12.6f %12.0f %10.2f %8s\n",
			e.UltracapF, e.CoolerMaxPower, e.CostDollars, e.QlossPct, e.AvgPowerW, e.MaxTempK, mark)
	}
}
