package dse

import (
	"strings"
	"testing"
)

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	d := Design{UltracapF: 20000, CoolerMaxPower: 8000}
	want := 0.6*20000 + 0.25*8000
	if got := c.Price(d); got != want {
		t.Errorf("Price = %v, want %v", got, want)
	}
}

func TestParetoFrontDominance(t *testing.T) {
	evals := []Evaluation{
		{Design: Design{UltracapF: 1}, CostDollars: 100, QlossPct: 1.0},                  // 0: dominated by 2
		{Design: Design{UltracapF: 2}, CostDollars: 200, QlossPct: 0.5},                  // 1: on front
		{Design: Design{UltracapF: 3}, CostDollars: 100, QlossPct: 0.8},                  // 2: on front (cheapest)
		{Design: Design{UltracapF: 4}, CostDollars: 300, QlossPct: 0.4},                  // 3: on front (best loss)
		{Design: Design{UltracapF: 5}, CostDollars: 50, QlossPct: 0.3, ViolationSec: 10}, // 4: infeasible
		{Design: Design{UltracapF: 6}, CostDollars: 400, QlossPct: 0.6},                  // 5: dominated by 1 and 3
	}
	front := paretoFront(evals)
	want := []int{2, 1, 3} // sorted by cost
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestParetoFrontAllInfeasible(t *testing.T) {
	evals := []Evaluation{
		{CostDollars: 1, QlossPct: 1, ViolationSec: 5},
	}
	if front := paretoFront(evals); len(front) != 0 {
		t.Errorf("front = %v, want empty", front)
	}
	r := &Result{Evaluations: evals}
	if _, err := r.Best(1.1); err != ErrEmptyFront {
		t.Errorf("Best on empty front: %v", err)
	}
}

func TestBestPicksCheapWithinSlack(t *testing.T) {
	evals := []Evaluation{
		{CostDollars: 100, QlossPct: 0.50},
		{CostDollars: 200, QlossPct: 0.46},
		{CostDollars: 400, QlossPct: 0.44},
	}
	r := &Result{Evaluations: evals, ParetoIdx: []int{0, 1, 2}}
	// Within 15 % of the best loss (0.44·1.15 = 0.506): the $100 design
	// qualifies.
	best, err := r.Best(1.15)
	if err != nil {
		t.Fatal(err)
	}
	if best.CostDollars != 100 {
		t.Errorf("Best = %+v, want the $100 design", best)
	}
	// Tight slack: only the $400 design qualifies.
	best, err = r.Best(1.001)
	if err != nil {
		t.Fatal(err)
	}
	if best.CostDollars != 400 {
		t.Errorf("tight Best = %+v, want the $400 design", best)
	}
}

func TestExploreSmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("MPC grid; skipped in -short")
	}
	res, err := Explore(Config{
		UltracapSizesF: []float64{5000, 25000},
		CoolerPowersW:  []float64{4e3, 8e3},
		Cycle:          "US06",
		Repeats:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 4 {
		t.Fatalf("evaluations = %d", len(res.Evaluations))
	}
	for _, e := range res.Evaluations {
		if e.QlossPct <= 0 || e.CostDollars <= 0 {
			t.Errorf("degenerate evaluation: %+v", e)
		}
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The frontier must be sorted by cost with non-increasing loss.
	for k := 1; k < len(res.ParetoIdx); k++ {
		a := res.Evaluations[res.ParetoIdx[k-1]]
		b := res.Evaluations[res.ParetoIdx[k]]
		if b.CostDollars < a.CostDollars {
			t.Error("frontier not sorted by cost")
		}
		if b.QlossPct >= a.QlossPct {
			t.Error("frontier loss should strictly improve with cost")
		}
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "Design-space exploration") {
		t.Error("Write output malformed")
	}
}

func TestExploreUnknownCycle(t *testing.T) {
	if _, err := Explore(Config{Cycle: "MOON"}); err == nil {
		t.Error("unknown cycle accepted")
	}
}
