package hees

import (
	"testing"

	"repro/internal/battery"
	"repro/internal/converter"
	"repro/internal/ultracap"
	"repro/internal/units"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	pack, err := battery.NewPack(battery.NCR18650A(), 96, 24, 0.8, units.CToK(25))
	if err != nil {
		b.Fatal(err)
	}
	bank, err := ultracap.NewBank(ultracap.MaxwellBC(25000), 0.8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSystem(pack, bank, converter.Default(370), converter.Default(390))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepParallel(b *testing.B) {
	s := benchSystem(b)
	s.Cap.SoE = s.Cap.Params.SoEForVoltage(s.Battery.OCV())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.StepParallel(30e3, 1); err != nil {
			b.Fatal(err)
		}
		s.Battery.SoC = 0.8
		s.Cap.SoE = s.Cap.Params.SoEForVoltage(s.Battery.OCV())
	}
}

func BenchmarkStepHybrid(b *testing.B) {
	s := benchSystem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.StepHybrid(25e3, 10e3, 1); err != nil {
			b.Fatal(err)
		}
		s.Battery.SoC = 0.8
		s.Cap.SoE = 0.8
	}
}
