//go:build !amd64

package hees

// useAVX is always false off amd64: Solve dispatches to the portable
// register-blocked kernels.
var useAVX = false

// bisect8AVX is unreachable when useAVX is false.
func bisect8AVX(l *lanes8) { panic("hees: bisect8AVX without AVX") }
