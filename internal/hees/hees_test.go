package hees

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/battery"
	"repro/internal/converter"
	"repro/internal/ultracap"
	"repro/internal/units"
)

func newSystem(t *testing.T, capF, soc, soe float64) *System {
	t.Helper()
	b, err := battery.NewPack(battery.NCR18650A(), 96, 40, soc, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ultracap.NewBank(ultracap.MaxwellBC(capF), soe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(b, c, converter.Default(390), converter.Default(390))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil, converter.Default(390), converter.Default(390)); err == nil {
		t.Error("nil components accepted")
	}
	b, _ := battery.NewPack(battery.NCR18650A(), 96, 40, 0.9, 300)
	c, _ := ultracap.NewBank(ultracap.MaxwellBC(25000), 0.9)
	bad := converter.Default(390)
	bad.PeakEfficiency = 2
	if _, err := NewSystem(b, c, bad, converter.Default(390)); err == nil {
		t.Error("invalid converter accepted")
	}
}

func TestParallelSplitSharesLoad(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0)
	// Start the capacitor at the battery's open-circuit voltage so the
	// split is purely resistive.
	s.Cap.SoE = s.Cap.Params.SoEForVoltage(s.Battery.OCV())
	rep, err := s.StepParallel(50e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batt.Current <= 0 || rep.Cap.Current <= 0 {
		t.Errorf("both sources should discharge: Ib=%v Ic=%v", rep.Batt.Current, rep.Cap.Current)
	}
	// Power balance: V_l·(I_b+I_c) = P_l.
	got := rep.BusVoltage * (rep.Batt.Current + rep.Cap.Current)
	if math.Abs(got-50e3) > 1 {
		t.Errorf("bus power = %v, want 50 kW", got)
	}
	// Same terminal voltage seen by both (Eqs. 12–13).
	vbTerm := rep.Batt.TerminalVoltage
	vcTerm := rep.Cap.TerminalVoltage
	if math.Abs(vbTerm-vcTerm) > 0.5 {
		t.Errorf("terminal voltages differ: %v vs %v", vbTerm, vcTerm)
	}
}

func TestParallelIdleEqualisation(t *testing.T) {
	// With no load, a depleted capacitor is recharged by the battery — the
	// recharge behaviour the paper's Fig. 1 discussion highlights.
	s := newSystem(t, 25000, 0.9, 0)
	s.Cap.SoE = s.Cap.Params.SoEForVoltage(s.Battery.OCV() * 0.8)
	soc0 := s.Battery.SoC
	soe0 := s.Cap.SoE
	for i := 0; i < 60; i++ {
		if _, err := s.StepParallel(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Cap.SoE <= soe0 {
		t.Errorf("capacitor not recharged: %v -> %v", soe0, s.Cap.SoE)
	}
	if s.Battery.SoC >= soc0 {
		t.Errorf("battery should pay for the recharge: %v -> %v", soc0, s.Battery.SoC)
	}
}

func TestParallelRegenChargesBoth(t *testing.T) {
	s := newSystem(t, 25000, 0.7, 0)
	s.Cap.SoE = s.Cap.Params.SoEForVoltage(s.Battery.OCV())
	rep, err := s.StepParallel(-40e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batt.Current >= 0 {
		t.Errorf("regen battery current = %v, want < 0", rep.Batt.Current)
	}
	if rep.HEESEnergyJ >= 0 {
		t.Errorf("regen HEES energy = %v, want < 0", rep.HEESEnergyJ)
	}
	if rep.BusVoltage <= s.Battery.OCV() {
		t.Errorf("regen bus voltage %v should exceed OCV %v", rep.BusVoltage, s.Battery.OCV())
	}
}

func TestParallelBadDt(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	if _, err := s.StepParallel(1000, 0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestDualBatteryMode(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	soe0 := s.Cap.SoE
	rep, err := s.StepDual(DualBattery, 40e3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batt.Current <= 0 {
		t.Error("battery should discharge")
	}
	if s.Cap.SoE != soe0 {
		t.Error("capacitor must be untouched in battery mode")
	}
	if rep.HEESEnergyJ != rep.Batt.ChemicalEnergy {
		t.Error("HEES energy should equal battery chemical energy")
	}
}

func TestDualCapMode(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	soc0 := s.Battery.SoC
	rep, err := s.StepDual(DualCap, 40e3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cap.Current <= 0 {
		t.Error("capacitor should discharge")
	}
	if s.Battery.SoC != soc0 {
		t.Error("battery must be untouched in cap mode")
	}
	if rep.Batt.HeatRate != 0 {
		t.Error("battery should generate no heat in cap mode")
	}
}

func TestDualCapModeDepletionSignalled(t *testing.T) {
	s := newSystem(t, 5000, 0.9, 0.21)
	var sawEmpty bool
	for i := 0; i < 120; i++ {
		_, err := s.StepDual(DualCap, 30e3, 0, 1)
		if errors.Is(err, ultracap.ErrEmpty) {
			sawEmpty = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawEmpty {
		t.Error("small capacitor under sustained load never reported ErrEmpty")
	}
}

func TestDualBatteryChargeMode(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.5)
	soe0 := s.Cap.SoE
	rep, err := s.StepDual(DualBatteryCharge, 20e3, 10e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cap.SoE <= soe0 {
		t.Error("capacitor not charged")
	}
	// Battery supplies load + charge power.
	wantMin := 30e3 / rep.Batt.TerminalVoltage
	if rep.Batt.Current < wantMin*0.99 {
		t.Errorf("battery current %v too small for 30 kW", rep.Batt.Current)
	}
	if _, err := s.StepDual(DualBatteryCharge, 20e3, -5, 1); err == nil {
		t.Error("negative charge power accepted")
	}
}

func TestDualUnknownMode(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	if _, err := s.StepDual(DualMode(99), 1000, 0, 1); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDualModeString(t *testing.T) {
	if DualBattery.String() != "battery" || DualCap.String() != "ultracap" ||
		DualBatteryCharge.String() != "battery+charge" {
		t.Error("DualMode strings wrong")
	}
	if DualMode(7).String() != "DualMode(7)" {
		t.Error(DualMode(7).String())
	}
}

func TestHybridSplitsPower(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	rep, err := s.StepHybrid(30e3, 20e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batt.Current <= 0 || rep.Cap.Current <= 0 {
		t.Error("both branches should discharge")
	}
	if rep.ConverterLossJ <= 0 {
		t.Errorf("converter loss = %v, want > 0", rep.ConverterLossJ)
	}
	// Storage-side battery power exceeds the bus command (conversion).
	battStorage := rep.Batt.TerminalVoltage * rep.Batt.Current
	if battStorage <= 30e3 {
		t.Errorf("battery storage power %v should exceed bus 30 kW", battStorage)
	}
}

func TestHybridPrechargeCapFromBattery(t *testing.T) {
	// TEB preparation: battery delivers load plus capacitor charging power.
	s := newSystem(t, 25000, 0.9, 0.4)
	soe0 := s.Cap.SoE
	rep, err := s.StepHybrid(25e3, -15e3, 1) // bus balance: load 10 kW
	if err != nil {
		t.Fatal(err)
	}
	if s.Cap.SoE <= soe0 {
		t.Error("capacitor not pre-charged")
	}
	if rep.Cap.Current >= 0 {
		t.Error("capacitor current should be charging (negative)")
	}
}

func TestHybridEnergyAccounting(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	rep, err := s.StepHybrid(40e3, 10e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// HEES energy = battery chemistry + cap dielectric; the converter
	// losses are embedded in those draws (StoragePower inflates them), so
	// adding ConverterLossJ again would double count.
	want := rep.Batt.ChemicalEnergy + rep.Cap.InternalEnergy
	if math.Abs(rep.HEESEnergyJ-want) > 1e-9 {
		t.Errorf("HEESEnergyJ = %v, want %v", rep.HEESEnergyJ, want)
	}
	if rep.ConverterLossJ <= 0 {
		t.Error("converter loss diagnostic missing")
	}
	// The embedded losses mean the drawn energy exceeds the delivered bus
	// energy by at least the converter loss.
	delivered := 50e3 * 1.0
	if rep.HEESEnergyJ < delivered+rep.ConverterLossJ {
		t.Errorf("HEESEnergyJ %v should embed converter loss %v over delivered %v",
			rep.HEESEnergyJ, rep.ConverterLossJ, delivered)
	}
	// Drawn energy must exceed the delivered bus energy (losses).
	if rep.HEESEnergyJ <= 50e3 {
		t.Errorf("HEES energy %v should exceed delivered 50 kJ", rep.HEESEnergyJ)
	}
}

func TestHybridBadDt(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	if _, err := s.StepHybrid(1e3, 1e3, -1); err == nil {
		t.Error("dt<0 accepted")
	}
}

func TestBatteryMaxBusPowerRespectsC6(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	pMax := s.BatteryMaxBusPower()
	if pMax <= 0 {
		t.Fatalf("BatteryMaxBusPower = %v", pMax)
	}
	// Executing at the limit must keep the current within C6.
	rep, err := s.StepHybrid(pMax*0.999, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batt.Current > s.Battery.MaxCurrent()*1.001 {
		t.Errorf("current %v exceeds C6 limit %v", rep.Batt.Current, s.Battery.MaxCurrent())
	}
}

func TestCapMaxBusPowerShrinksWithSoE(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 1.0)
	high := s.CapMaxBusPower()
	s.Cap.SoE = 0.05
	low := s.CapMaxBusPower()
	if low >= high {
		t.Errorf("cap max power should shrink with SoE: %v vs %v", low, high)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := newSystem(t, 25000, 0.9, 0.9)
	c := s.Clone()
	if _, err := c.StepHybrid(40e3, 20e3, 5); err != nil {
		t.Fatal(err)
	}
	if s.Battery.SoC != 0.9 || s.Cap.SoE != 0.9 {
		t.Error("Clone mutation leaked")
	}
}

func TestParallelVersusDualHeatShape(t *testing.T) {
	// Under the same sustained load, dual-on-capacitor generates less
	// battery heat than parallel (which always works the battery) — the
	// premise of the paper's thermal baseline comparison.
	par := newSystem(t, 25000, 0.9, 0)
	par.Cap.SoE = par.Cap.Params.SoEForVoltage(par.Battery.OCV())
	dual := newSystem(t, 25000, 0.9, 1.0)

	var heatPar, heatDual float64
	for i := 0; i < 30; i++ {
		rp, err := par.StepParallel(40e3, 1)
		if err != nil {
			t.Fatal(err)
		}
		heatPar += rp.Batt.HeatRate
		rd, err := dual.StepDual(DualCap, 40e3, 0, 1)
		if err != nil && !errors.Is(err, ultracap.ErrEmpty) {
			t.Fatal(err)
		}
		heatDual += rd.Batt.HeatRate
	}
	if heatDual >= heatPar {
		t.Errorf("dual-on-cap battery heat %v should be below parallel %v", heatDual, heatPar)
	}
}

func TestParallelPowerBalanceProperty(t *testing.T) {
	// Eqs. 10–13 invariants across random states and loads: the solved bus
	// voltage reproduces the requested power, both sources see the same
	// terminal voltage, and the split respects the resistance ratio's sign.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		soc := 0.3 + 0.65*rng.Float64()
		soe := 0.3 + 0.65*rng.Float64()
		s := &System{}
		b, err := battery.NewPack(battery.NCR18650A(), 96, 24, soc, units.CToK(20+15*rng.Float64()))
		if err != nil {
			return false
		}
		c, err := ultracap.NewBank(ultracap.MaxwellBC(25000), soe)
		if err != nil {
			return false
		}
		s.Battery, s.Cap = b, c
		s.BattConv, s.CapConv = converter.Default(370), converter.Default(390)

		load := -30e3 + 90e3*rng.Float64()
		rep, err := s.StepParallel(load, 1)
		if err != nil {
			// Infeasible high loads at low states are legitimate refusals.
			return errors.Is(err, ErrInfeasible) && load > 30e3
		}
		// Power balance at the bus.
		got := rep.BusVoltage * (rep.Batt.Current + rep.Cap.Current)
		if math.Abs(got-load) > 1+1e-6*math.Abs(load) {
			return false
		}
		// Physical bus voltage.
		if rep.BusVoltage <= 0 || rep.BusVoltage > 600 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHybridEnergyNonCreationProperty(t *testing.T) {
	// Whatever the command split, the energy drawn from the storages must
	// be at least the energy delivered to the bus (no free energy).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newPropertySystem(rng)
		battBus := -20e3 + 60e3*rng.Float64()
		capBus := -20e3 + math.Min(40e3*rng.Float64(), 0.9*s.CapMaxBusPower())
		rep, err := s.StepHybrid(battBus, capBus, 1)
		if err != nil {
			return true // infeasible corners refused, fine
		}
		delivered := battBus + capBus
		return rep.HEESEnergyJ >= delivered-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func newPropertySystem(rng *rand.Rand) *System {
	b, _ := battery.NewPack(battery.NCR18650A(), 96, 24, 0.3+0.6*rng.Float64(), units.CToK(25))
	c, _ := ultracap.NewBank(ultracap.MaxwellBC(25000), 0.3+0.6*rng.Float64())
	s, _ := NewSystem(b, c, converter.Default(370), converter.Default(390))
	return s
}
