package hees

// useAVX reports whether the lockstep bisection can use the AVX kernel:
// the CPU advertises AVX and the OS saves the ymm state. Checked once at
// init; package tests flip it to exercise the portable kernels on AVX
// machines.
var useAVX = cpuHasAVX()

// bisect8AVX runs the bisection loop of the eight lanes in l to
// convergence (or the 200-iteration cap), updating l.lo and l.hi in
// place. It is the vector form of bisect8: two four-lane ymm groups, the
// gap evaluated with VSUBPD/VDIVPD/VADDPD in the scalar expression's
// association, the bracket chosen with VBLENDVPD, and converged lanes
// frozen out of further updates by an active-lane mask — IEEE-754
// arithmetic is deterministic, so each vector lane reproduces
// solveParallelBus bit for bit.
//
//go:noescape
func bisect8AVX(l *lanes8)

// cpuHasAVX reports CPUID OSXSAVE+AVX with ymm state enabled in XCR0.
func cpuHasAVX() bool
