package hees

import "math"

// BusBatch is the worker-owned structure-of-arrays scratch for solving many
// independent parallel-bus balances in one call. A batched fleet rollout
// lays the per-lane solver inputs (V_b, R_b, V_c, R_c, P) out contiguously,
// then Solve brackets every lane and runs each bisection over
// register-resident state with no per-call setup, error wrapping or
// interface traffic — and, on warm scratch, no allocation.
//
// The bisections run in lockstep over register-blocked groups of eight
// (then four, then single) lanes, with a branchless bracket update and a
// division-free gap-sign test: a bisection's direction branch is an
// unpredictable coin flip on live data, so the blocked kernels replace it
// with bit selection (bisectUpdate) and keep every lane's divides and
// multiplies in flight at once instead of stalling on one mispredicted
// lane.
//
// Usage: Ensure(n), fill VB/RB/VC/RC/P[:n], Solve(n), read VL/Feasible[:n].
// Like an optimize Workspace it is single-goroutine state: give each worker
// its own.
type BusBatch struct {
	// VB, RB, VC, RC, P are the per-lane solver inputs (Eqs. 10–13
	// notation; P is the bus load, discharge positive).
	VB, RB, VC, RC, P []float64
	// VL receives the solved bus voltage per lane.
	VL []float64
	// Feasible reports per lane whether the solve succeeded; false is the
	// batched form of ErrInfeasible and routes the lane to the battery
	// fallback, exactly like the scalar error path.
	Feasible []bool

	// lo, hi are the per-lane bisection brackets; act is the packed list
	// of lanes that bracketed successfully.
	lo, hi []float64
	act    []int
	// vec is the register-block handed to the AVX kernel on amd64.
	vec lanes8
}

// lanes8 is the contiguous eight-lane block the AVX bisection kernel
// operates on: the solver inputs followed by the live brackets, each field
// two four-lane ymm groups. The layout is mirrored by field offsets in
// bisectavx_amd64.s — do not reorder.
type lanes8 struct {
	vb, rb, vc, rc, p, lo, hi [8]float64
}

// NewBusBatch returns scratch sized for n lanes.
func NewBusBatch(n int) *BusBatch {
	bb := &BusBatch{}
	bb.Ensure(n)
	return bb
}

// Ensure grows the scratch to hold at least n lanes, keeping it otherwise.
//
//lint:coldpath per-batch capacity growth; a warmed BusBatch returns at the cap check
func (bb *BusBatch) Ensure(n int) {
	if cap(bb.VB) >= n {
		return
	}
	bb.VB = make([]float64, n)
	bb.RB = make([]float64, n)
	bb.VC = make([]float64, n)
	bb.RC = make([]float64, n)
	bb.P = make([]float64, n)
	bb.VL = make([]float64, n)
	bb.Feasible = make([]bool, n)
	bb.lo = make([]float64, n)
	bb.hi = make([]float64, n)
	bb.act = make([]int, n)
}

// Solve runs the parallel-bus solve for lanes [0, n). Each lane's
// floating-point operation sequence is identical to solveParallelBus on
// the same inputs — brackets (including the expanding regen bracket for
// P ≤ 0), bisection updates, the convergence test and the returned
// midpoint all match bit for bit.
//
//lint:hotpath the batched bus solve is the batched fleet rollout's inner loop; it must not allocate on warm scratch
func (bb *BusBatch) Solve(n int) {
	vb, rb, vc, rc, p := bb.VB, bb.RB, bb.VC, bb.RC, bb.P
	vl, lo, hi, act := bb.VL, bb.lo, bb.hi, bb.act

	// Bracket phase: initialise the bisection interval per lane — [V*,
	// max(Vb,Vc)] for discharging lanes, the expanded regen bracket for
	// P ≤ 0 — and pack the lanes that bracketed. After bracketing, both
	// cases run the very same bisection loop.
	na := 0
	for k := 0; k < n; k++ {
		var l, h float64
		if p[k] > 0 {
			l = math.Sqrt(p[k] * rb[k] * rc[k] / (rb[k] + rc[k]))
			h = math.Max(vb[k], vc[k])
			if l >= h || parallelBusGap(vb[k], rb[k], vc[k], rc[k], p[k], l) < 0 {
				bb.Feasible[k] = false
				vl[k] = 0
				continue
			}
		} else {
			l = math.Min(vb[k], vc[k])
			if l <= 0 {
				l = 1e-6
			}
			h = math.Max(vb[k], vc[k]) + 1
			ok := true
			for iter := 0; parallelBusGap(vb[k], rb[k], vc[k], rc[k], p[k], h) > 0; iter++ {
				h *= 1.5
				if iter > 200 {
					ok = false
					break
				}
			}
			if !ok {
				bb.Feasible[k] = false
				vl[k] = 0
				continue
			}
		}
		lo[k], hi[k] = l, h
		bb.Feasible[k] = true
		act[na] = k
		na++
	}

	// Bisection phase over register-blocked lane groups: the per-lane
	// state lives in locals for the whole loop (one gather, one
	// write-back), so the iteration body is free of bounds checks and
	// memory traffic and the independent lanes' arithmetic overlaps
	// instead of serialising on one lane's ~33-iteration chain.
	a := 0
	if useAVX {
		// AVX kernel: gather eight lanes into the contiguous register
		// block, run the vector bisection, and read the converged
		// midpoints back. IEEE determinism keeps every lane bit-identical
		// to the scalar loop.
		l := &bb.vec
		for ; a < na; a += 8 {
			m := na - a
			if m > 8 {
				m = 8
			} else if m < 8 {
				// Pad the final group with dummy lanes that converge on
				// their first iteration (lo == hi), so the remainder still
				// rides the vector kernel instead of a scalar tail.
				for j := m; j < 8; j++ {
					l.vb[j], l.rb[j], l.vc[j], l.rc[j] = 1, 1, 1, 1
					l.p[j], l.lo[j], l.hi[j] = 1, 1, 1
				}
			}
			for j := 0; j < m; j++ {
				k := act[a+j]
				l.vb[j], l.rb[j], l.vc[j], l.rc[j] = vb[k], rb[k], vc[k], rc[k]
				l.p[j], l.lo[j], l.hi[j] = p[k], lo[k], hi[k]
			}
			bisect8AVX(l)
			for j := 0; j < m; j++ {
				vl[act[a+j]] = (l.lo[j] + l.hi[j]) / 2
			}
		}
	}
	for ; a+8 <= na; a += 8 {
		bb.bisect8(act[a], act[a+1], act[a+2], act[a+3], act[a+4], act[a+5], act[a+6], act[a+7])
	}
	for ; a+4 <= na; a += 4 {
		bb.bisect4(act[a], act[a+1], act[a+2], act[a+3])
	}
	for ; a < na; a++ {
		bb.bisect1(act[a])
	}
}

// bisect8 is bisect4 widened to eight lanes: deeper overlap of the
// independent lanes' arithmetic for the common case of a mostly-full
// batch, same bit-exact per-lane decision sequence.
func (bb *BusBatch) bisect8(k0, k1, k2, k3, k4, k5, k6, k7 int) {
	vb0, rb0, vc0, rc0, p0, lo0, hi0 := bb.VB[k0], bb.RB[k0], bb.VC[k0], bb.RC[k0], bb.P[k0], bb.lo[k0], bb.hi[k0]
	vb1, rb1, vc1, rc1, p1, lo1, hi1 := bb.VB[k1], bb.RB[k1], bb.VC[k1], bb.RC[k1], bb.P[k1], bb.lo[k1], bb.hi[k1]
	vb2, rb2, vc2, rc2, p2, lo2, hi2 := bb.VB[k2], bb.RB[k2], bb.VC[k2], bb.RC[k2], bb.P[k2], bb.lo[k2], bb.hi[k2]
	vb3, rb3, vc3, rc3, p3, lo3, hi3 := bb.VB[k3], bb.RB[k3], bb.VC[k3], bb.RC[k3], bb.P[k3], bb.lo[k3], bb.hi[k3]
	vb4, rb4, vc4, rc4, p4, lo4, hi4 := bb.VB[k4], bb.RB[k4], bb.VC[k4], bb.RC[k4], bb.P[k4], bb.lo[k4], bb.hi[k4]
	vb5, rb5, vc5, rc5, p5, lo5, hi5 := bb.VB[k5], bb.RB[k5], bb.VC[k5], bb.RC[k5], bb.P[k5], bb.lo[k5], bb.hi[k5]
	vb6, rb6, vc6, rc6, p6, lo6, hi6 := bb.VB[k6], bb.RB[k6], bb.VC[k6], bb.RC[k6], bb.P[k6], bb.lo[k6], bb.hi[k6]
	vb7, rb7, vc7, rc7, p7, lo7, hi7 := bb.VB[k7], bb.RB[k7], bb.VC[k7], bb.RC[k7], bb.P[k7], bb.lo[k7], bb.hi[k7]
	var d0, d1, d2, d3, d4, d5, d6, d7 bool
	nd := 0
	for i := 0; i < 200 && nd < 8; i++ {
		if !d0 {
			mid := (lo0 + hi0) / 2
			pos := parallelBusGap(vb0, rb0, vc0, rc0, p0, mid) > 0
			lo0, hi0 = bisectUpdate(lo0, hi0, mid, pos)
			if hi0-lo0 < 1e-10*hi0 {
				d0 = true
				nd++
			}
		}
		if !d1 {
			mid := (lo1 + hi1) / 2
			pos := parallelBusGap(vb1, rb1, vc1, rc1, p1, mid) > 0
			lo1, hi1 = bisectUpdate(lo1, hi1, mid, pos)
			if hi1-lo1 < 1e-10*hi1 {
				d1 = true
				nd++
			}
		}
		if !d2 {
			mid := (lo2 + hi2) / 2
			pos := parallelBusGap(vb2, rb2, vc2, rc2, p2, mid) > 0
			lo2, hi2 = bisectUpdate(lo2, hi2, mid, pos)
			if hi2-lo2 < 1e-10*hi2 {
				d2 = true
				nd++
			}
		}
		if !d3 {
			mid := (lo3 + hi3) / 2
			pos := parallelBusGap(vb3, rb3, vc3, rc3, p3, mid) > 0
			lo3, hi3 = bisectUpdate(lo3, hi3, mid, pos)
			if hi3-lo3 < 1e-10*hi3 {
				d3 = true
				nd++
			}
		}
		if !d4 {
			mid := (lo4 + hi4) / 2
			pos := parallelBusGap(vb4, rb4, vc4, rc4, p4, mid) > 0
			lo4, hi4 = bisectUpdate(lo4, hi4, mid, pos)
			if hi4-lo4 < 1e-10*hi4 {
				d4 = true
				nd++
			}
		}
		if !d5 {
			mid := (lo5 + hi5) / 2
			pos := parallelBusGap(vb5, rb5, vc5, rc5, p5, mid) > 0
			lo5, hi5 = bisectUpdate(lo5, hi5, mid, pos)
			if hi5-lo5 < 1e-10*hi5 {
				d5 = true
				nd++
			}
		}
		if !d6 {
			mid := (lo6 + hi6) / 2
			pos := parallelBusGap(vb6, rb6, vc6, rc6, p6, mid) > 0
			lo6, hi6 = bisectUpdate(lo6, hi6, mid, pos)
			if hi6-lo6 < 1e-10*hi6 {
				d6 = true
				nd++
			}
		}
		if !d7 {
			mid := (lo7 + hi7) / 2
			pos := parallelBusGap(vb7, rb7, vc7, rc7, p7, mid) > 0
			lo7, hi7 = bisectUpdate(lo7, hi7, mid, pos)
			if hi7-lo7 < 1e-10*hi7 {
				d7 = true
				nd++
			}
		}
	}
	bb.VL[k0] = (lo0 + hi0) / 2
	bb.VL[k1] = (lo1 + hi1) / 2
	bb.VL[k2] = (lo2 + hi2) / 2
	bb.VL[k3] = (lo3 + hi3) / 2
	bb.VL[k4] = (lo4 + hi4) / 2
	bb.VL[k5] = (lo5 + hi5) / 2
	bb.VL[k6] = (lo6 + hi6) / 2
	bb.VL[k7] = (lo7 + hi7) / 2
}

// bisect4 runs the bisection loop of four bracketed lanes in lockstep.
// Each lane executes exactly the scalar loop's decision sequence on its
// own lo/hi — a finished lane freezes while the others run on — so the
// result is bit-identical to solveParallelBus lane by lane.
func (bb *BusBatch) bisect4(k0, k1, k2, k3 int) {
	vb0, rb0, vc0, rc0, p0, lo0, hi0 := bb.VB[k0], bb.RB[k0], bb.VC[k0], bb.RC[k0], bb.P[k0], bb.lo[k0], bb.hi[k0]
	vb1, rb1, vc1, rc1, p1, lo1, hi1 := bb.VB[k1], bb.RB[k1], bb.VC[k1], bb.RC[k1], bb.P[k1], bb.lo[k1], bb.hi[k1]
	vb2, rb2, vc2, rc2, p2, lo2, hi2 := bb.VB[k2], bb.RB[k2], bb.VC[k2], bb.RC[k2], bb.P[k2], bb.lo[k2], bb.hi[k2]
	vb3, rb3, vc3, rc3, p3, lo3, hi3 := bb.VB[k3], bb.RB[k3], bb.VC[k3], bb.RC[k3], bb.P[k3], bb.lo[k3], bb.hi[k3]
	var d0, d1, d2, d3 bool
	nd := 0
	for i := 0; i < 200 && nd < 4; i++ {
		// Branchless bracket update: a mispredicted branch in any lane
		// would flush the others' in-flight work; see bisectUpdate.
		if !d0 {
			mid := (lo0 + hi0) / 2
			pos := parallelBusGap(vb0, rb0, vc0, rc0, p0, mid) > 0
			lo0, hi0 = bisectUpdate(lo0, hi0, mid, pos)
			if hi0-lo0 < 1e-10*hi0 {
				d0 = true
				nd++
			}
		}
		if !d1 {
			mid := (lo1 + hi1) / 2
			pos := parallelBusGap(vb1, rb1, vc1, rc1, p1, mid) > 0
			lo1, hi1 = bisectUpdate(lo1, hi1, mid, pos)
			if hi1-lo1 < 1e-10*hi1 {
				d1 = true
				nd++
			}
		}
		if !d2 {
			mid := (lo2 + hi2) / 2
			pos := parallelBusGap(vb2, rb2, vc2, rc2, p2, mid) > 0
			lo2, hi2 = bisectUpdate(lo2, hi2, mid, pos)
			if hi2-lo2 < 1e-10*hi2 {
				d2 = true
				nd++
			}
		}
		if !d3 {
			mid := (lo3 + hi3) / 2
			pos := parallelBusGap(vb3, rb3, vc3, rc3, p3, mid) > 0
			lo3, hi3 = bisectUpdate(lo3, hi3, mid, pos)
			if hi3-lo3 < 1e-10*hi3 {
				d3 = true
				nd++
			}
		}
	}
	// Converged and iteration-capped lanes alike return the scalar loop's
	// final midpoint.
	bb.VL[k0] = (lo0 + hi0) / 2
	bb.VL[k1] = (lo1 + hi1) / 2
	bb.VL[k2] = (lo2 + hi2) / 2
	bb.VL[k3] = (lo3 + hi3) / 2
}

// bisect1 handles the remainder lanes one at a time: the scalar
// bisection loop on register-resident state, sharing the branchless
// bracket update of the blocked kernels.
func (bb *BusBatch) bisect1(k int) {
	vb, rb, vc, rc, p, lo, hi := bb.VB[k], bb.RB[k], bb.VC[k], bb.RC[k], bb.P[k], bb.lo[k], bb.hi[k]
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		pos := parallelBusGap(vb, rb, vc, rc, p, mid) > 0
		lo, hi = bisectUpdate(lo, hi, mid, pos)
		if hi-lo < 1e-10*hi {
			break
		}
	}
	bb.VL[k] = (lo + hi) / 2
}

// bisectUpdate returns the bracket after one bisection decision —
// (mid, hi) when the gap at mid is positive, (lo, mid) otherwise — as pure
// bit selection (SETcc + masks, no data-dependent branch). The results are
// the untouched IEEE bit patterns of the inputs, so it is exactly the
// if/else of the scalar loop.
func bisectUpdate(lo, hi, mid float64, gapPos bool) (float64, float64) {
	var bit uint64
	if gapPos {
		bit = 1
	}
	mask := -bit // all-ones when the gap is positive
	lob, hib, midb := math.Float64bits(lo), math.Float64bits(hi), math.Float64bits(mid)
	return math.Float64frombits(lob&^mask | midb&mask),
		math.Float64frombits(hib&mask | midb&^mask)
}
