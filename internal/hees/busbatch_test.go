package hees

import (
	"math"
	"math/rand"
	"testing"
)

// TestBusBatchMatchesScalar is the bit-identity property test for the
// lockstep solver: for random lane inputs spanning discharge, regen, idle
// and infeasible demands, every batched bus voltage must equal the scalar
// solveParallelBus result exactly (Float64bits, not a tolerance), and the
// feasibility flags must mirror the scalar error.
func TestBusBatchMatchesScalar(t *testing.T) { testBusBatchMatchesScalar(t) }

func testBusBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bb := NewBusBatch(1)

	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(97)
		bb.Ensure(n)
		for k := 0; k < n; k++ {
			bb.VB[k] = 250 + 200*rng.Float64()
			bb.RB[k] = 0.01 + 0.5*rng.Float64()
			bb.VC[k] = 100 + 350*rng.Float64()
			bb.RC[k] = 0.001 + 0.1*rng.Float64()
			switch rng.Intn(5) {
			case 0: // regen
				bb.P[k] = -40000 * rng.Float64()
			case 1: // idle
				bb.P[k] = 0
			case 2: // far beyond capability: exercises infeasible lanes
				bb.P[k] = 1e7 + 1e7*rng.Float64()
			default: // moderate discharge
				bb.P[k] = 60000 * rng.Float64()
			}
		}
		bb.Solve(n)
		for k := 0; k < n; k++ {
			want, err := solveParallelBus(bb.VB[k], bb.RB[k], bb.VC[k], bb.RC[k], bb.P[k])
			if feasible := err == nil; feasible != bb.Feasible[k] {
				t.Fatalf("trial %d lane %d: Feasible=%v, scalar err=%v (P=%g)",
					trial, k, bb.Feasible[k], err, bb.P[k])
			}
			if err != nil {
				continue
			}
			if math.Float64bits(bb.VL[k]) != math.Float64bits(want) {
				t.Fatalf("trial %d lane %d: batched VL=%v scalar=%v (inputs vb=%v rb=%v vc=%v rc=%v p=%v)",
					trial, k, bb.VL[k], want, bb.VB[k], bb.RB[k], bb.VC[k], bb.RC[k], bb.P[k])
			}
		}
	}
}

// TestBusBatchWarmNoAlloc pins the 0-alloc contract of the warm solve loop.
func TestBusBatchWarmNoAlloc(t *testing.T) {
	const n = 64
	bb := NewBusBatch(n)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < n; k++ {
		bb.VB[k] = 300 + 100*rng.Float64()
		bb.RB[k] = 0.05 + 0.2*rng.Float64()
		bb.VC[k] = 200 + 200*rng.Float64()
		bb.RC[k] = 0.001 + 0.05*rng.Float64()
		bb.P[k] = -20000 + 60000*rng.Float64()
	}
	allocs := testing.AllocsPerRun(50, func() { bb.Solve(n) })
	if allocs != 0 {
		t.Fatalf("warm BusBatch.Solve allocates %.2f per run, want 0", allocs)
	}
}

// TestStepParallelPreparedSplit checks the Prepare/Finish split against the
// one-shot StepParallel on identical systems: same report bits, same state.
func TestStepParallelPreparedSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := newSystem(t, 3000, 0.8, 0.5)
		b := newSystem(t, 3000, 0.8, 0.5)
		a.Battery.SoC = 0.2 + 0.7*rng.Float64()
		b.Battery.SoC = a.Battery.SoC
		a.Cap.SoE = rng.Float64()
		b.Cap.SoE = a.Cap.SoE
		load := -10000 + 50000*rng.Float64()

		ra, errA := a.StepParallel(load, 1)

		pre := b.PrepareParallel()
		vl, errSolve := solveParallelBus(pre.Batt.VOC, pre.Batt.R, pre.VC, pre.RC, load)
		if errA != nil {
			if errSolve == nil {
				t.Fatalf("trial %d: StepParallel err=%v but split solve succeeded", trial, errA)
			}
			continue
		}
		if errSolve != nil {
			t.Fatalf("trial %d: split solve err=%v but StepParallel succeeded", trial, errSolve)
		}
		rb, errB := b.FinishParallel(pre, vl, 1)
		if errB != nil {
			t.Fatalf("trial %d: FinishParallel: %v", trial, errB)
		}
		if ra != rb {
			t.Fatalf("trial %d: split report %+v != one-shot %+v", trial, rb, ra)
		}
		if a.Battery.SoC != b.Battery.SoC || a.Cap.SoE != b.Cap.SoE {
			t.Fatalf("trial %d: state diverged: SoC %v vs %v, SoE %v vs %v",
				trial, a.Battery.SoC, b.Battery.SoC, a.Cap.SoE, b.Cap.SoE)
		}
	}
}

// TestBusBatchPortableMatchesScalar re-runs the batched-vs-scalar identity
// property with the AVX kernel disabled, so the portable register-blocked
// kernels are exercised even on machines where Solve would normally
// dispatch to the vector path.
func TestBusBatchPortableMatchesScalar(t *testing.T) {
	if !useAVX {
		t.Skip("portable kernels already covered by TestBusBatchMatchesScalar")
	}
	useAVX = false
	defer func() { useAVX = true }()
	testBusBatchMatchesScalar(t)
}
