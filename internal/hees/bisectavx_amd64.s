// AVX lockstep bisection kernel. Layout and semantics are fixed by the
// lanes8 struct and the scalar loop in solveParallelBus: every arithmetic
// instruction below evaluates the same IEEE-754 operation sequence as the
// scalar code (multiplying by 0.5 is exact, hence identical to the /2),
// so each lane's bracket sequence is reproduced bit for bit. Converged
// lanes are masked out of the bracket blends, which freezes their lo/hi
// exactly where the scalar loop's break would leave them.

#include "textflag.h"

DATA bisectHalf<>+0(SB)/8, $0x3fe0000000000000  // 0.5
DATA bisectHalf<>+8(SB)/8, $0x3fe0000000000000
DATA bisectHalf<>+16(SB)/8, $0x3fe0000000000000
DATA bisectHalf<>+24(SB)/8, $0x3fe0000000000000
GLOBL bisectHalf<>(SB), RODATA|NOPTR, $32

DATA bisectTol<>+0(SB)/8, $0x3ddb7cdfd9d7bdbb  // 1e-10
DATA bisectTol<>+8(SB)/8, $0x3ddb7cdfd9d7bdbb
DATA bisectTol<>+16(SB)/8, $0x3ddb7cdfd9d7bdbb
DATA bisectTol<>+24(SB)/8, $0x3ddb7cdfd9d7bdbb
GLOBL bisectTol<>(SB), RODATA|NOPTR, $32

// lanes8 field offsets (each field is [8]float64 = 64 bytes; the second
// ymm group of each field sits at +32).
#define VB 0
#define RB 64
#define VC 128
#define RC 192
#define PP 256
#define LO 320
#define HI 384

// func bisect8AVX(l *lanes8)
//
// Register plan: group A holds lo/hi/active in Y8/Y9/Y10, group B in
// Y11/Y12/Y13; Y0-Y3 and Y4-Y7 are the groups' temporaries. The
// loop-invariant inputs stay in memory and are re-loaded each iteration —
// the loads are off the divide-limited critical path.
TEXT ·bisect8AVX(SB), NOSPLIT, $0-8
	MOVQ    l+0(FP), DI
	VMOVUPD LO(DI), Y8
	VMOVUPD LO+32(DI), Y11
	VMOVUPD HI(DI), Y9
	VMOVUPD HI+32(DI), Y12
	// active masks start all-ones (predicate 0x0F = TRUE_UQ).
	VCMPPD  $0x0f, Y8, Y8, Y10
	VCMPPD  $0x0f, Y8, Y8, Y13
	MOVL    $200, CX

loop:
	// Group A: mid = (lo+hi)*0.5
	VADDPD    Y9, Y8, Y0
	VMULPD    bisectHalf<>(SB), Y0, Y0
	// gap = (vb-mid)/rb + (vc-mid)/rc - p/mid, scalar association
	VMOVUPD   VB(DI), Y1
	VSUBPD    Y0, Y1, Y1
	VDIVPD    RB(DI), Y1, Y1
	VMOVUPD   VC(DI), Y2
	VSUBPD    Y0, Y2, Y2
	VDIVPD    RC(DI), Y2, Y2
	VMOVUPD   PP(DI), Y3
	VDIVPD    Y0, Y3, Y3
	VADDPD    Y2, Y1, Y1
	VSUBPD    Y3, Y1, Y1
	// gap > 0 (GT_OQ: quiet, NaN false, like the scalar compare)
	VXORPD    Y2, Y2, Y2
	VCMPPD    $0x1e, Y2, Y1, Y1
	// lo takes mid where active && gap>0; hi where active && !(gap>0)
	VANDPD    Y10, Y1, Y2
	VANDNPD   Y10, Y1, Y3
	VBLENDVPD Y2, Y0, Y8, Y8
	VBLENDVPD Y3, Y0, Y9, Y9
	// converged lanes (hi-lo < 1e-10*hi, LT_OQ) leave the active mask
	VSUBPD    Y8, Y9, Y1
	VMULPD    bisectTol<>(SB), Y9, Y2
	VCMPPD    $0x11, Y2, Y1, Y1
	VANDNPD   Y10, Y1, Y10

	// Group B, identically
	VADDPD    Y12, Y11, Y4
	VMULPD    bisectHalf<>(SB), Y4, Y4
	VMOVUPD   VB+32(DI), Y5
	VSUBPD    Y4, Y5, Y5
	VDIVPD    RB+32(DI), Y5, Y5
	VMOVUPD   VC+32(DI), Y6
	VSUBPD    Y4, Y6, Y6
	VDIVPD    RC+32(DI), Y6, Y6
	VMOVUPD   PP+32(DI), Y7
	VDIVPD    Y4, Y7, Y7
	VADDPD    Y6, Y5, Y5
	VSUBPD    Y7, Y5, Y5
	VXORPD    Y6, Y6, Y6
	VCMPPD    $0x1e, Y6, Y5, Y5
	VANDPD    Y13, Y5, Y6
	VANDNPD   Y13, Y5, Y7
	VBLENDVPD Y6, Y4, Y11, Y11
	VBLENDVPD Y7, Y4, Y12, Y12
	VSUBPD    Y11, Y12, Y5
	VMULPD    bisectTol<>(SB), Y12, Y6
	VCMPPD    $0x11, Y6, Y5, Y5
	VANDNPD   Y13, Y5, Y13

	// Loop while any lane is active, up to the scalar 200-iteration cap.
	VORPD     Y13, Y10, Y0
	VMOVMSKPD Y0, AX
	TESTL     AX, AX
	JE        done
	DECL      CX
	JNE       loop

done:
	VMOVUPD Y8, LO(DI)
	VMOVUPD Y11, LO+32(DI)
	VMOVUPD Y9, HI(DI)
	VMOVUPD Y12, HI+32(DI)
	VZEROUPPER
	RET

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL  $1, AX
	XORL  CX, CX
	CPUID
	// OSXSAVE (bit 27) and AVX (bit 28) in ECX
	MOVL  CX, DX
	ANDL  $0x18000000, DX
	CMPL  DX, $0x18000000
	JNE   noavx
	// XCR0 must have XMM and YMM state enabled by the OS
	XORL  CX, CX
	XGETBV
	ANDL  $6, AX
	CMPL  AX, $6
	JNE   noavx
	MOVB  $1, ret+0(FP)
	RET

noavx:
	MOVB  $0, ret+0(FP)
	RET
