// Package hees implements the three Hybrid Electrical Energy Storage
// architectures of paper §II-C:
//
//   - Parallel: battery and ultracapacitor hard-wired to the load; the
//     current split is passive, dictated by the internal resistances
//     (Eqs. 10–13). Used by the Shin DATE'11 baseline.
//   - Dual: two switches select battery-only, ultracapacitor-only or
//     battery-charges-capacitor connection. Used by the Shin DATE'14
//     thermal-management baseline.
//   - Hybrid: each storage is coupled to the DC bus through its own DC/DC
//     converter, so power commands are independent (with conversion
//     losses). This is the architecture OTEM controls.
//
// All powers are bus-side watts, discharge positive.
package hees

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/converter"
	"repro/internal/ultracap"
)

// System bundles the two storages and their converters (converters are only
// exercised by the hybrid architecture).
type System struct {
	// Battery is the Li-ion pack.
	Battery *battery.Pack
	// Cap is the ultracapacitor bank.
	Cap *ultracap.Bank
	// BattConv and CapConv are the DC/DC converters of the hybrid
	// architecture.
	BattConv, CapConv converter.Params
}

// NewSystem wires a system and validates the converters.
func NewSystem(b *battery.Pack, c *ultracap.Bank, bc, cc converter.Params) (*System, error) {
	if b == nil || c == nil {
		return nil, errors.New("hees: nil battery or ultracapacitor")
	}
	if err := bc.Validate(); err != nil {
		return nil, fmt.Errorf("hees: battery converter: %w", err)
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("hees: cap converter: %w", err)
	}
	return &System{Battery: b, Cap: c, BattConv: bc, CapConv: cc}, nil
}

// Clone deep-copies the system for model rollouts.
func (s *System) Clone() *System {
	return &System{
		Battery:  s.Battery.Clone(),
		Cap:      s.Cap.Clone(),
		BattConv: s.BattConv,
		CapConv:  s.CapConv,
	}
}

// StepReport describes one architecture step.
type StepReport struct {
	// Batt is the battery sub-step (zero value when the battery was
	// disconnected).
	Batt battery.StepResult
	// Cap is the ultracapacitor sub-step (zero value when disconnected).
	Cap ultracap.StepResult
	// ConverterLossJ is the energy dissipated in the DC/DC converters
	// during the step, joules (hybrid architecture only).
	ConverterLossJ float64
	// HEESEnergyJ is dE_bat + dE_cap of the paper's cost function: the
	// total energy drawn from the storages (chemistry + dielectric)
	// including internal losses, joules. Negative when regen charges the
	// storages.
	HEESEnergyJ float64
	// BusVoltage is the load/bus voltage during the step, volts.
	BusVoltage float64
}

// ErrInfeasible wraps power requests no architecture configuration can meet.
var ErrInfeasible = errors.New("hees: power request infeasible")

// ---------------------------------------------------------------------------
// Parallel architecture (Eqs. 10–13)
// ---------------------------------------------------------------------------

// StepParallel advances the system with battery and capacitor hard-wired in
// parallel across the load drawing loadPower (W) for dt seconds. The bus
// voltage and current split solve Eqs. 10–13:
//
//	I_l = I_b + I_c,  V_l = V_b − R_b·I_b = V_c − R_c·I_c,  P_l = V_l·I_l.
//
// With loadPower = 0 the storages still equalise through their resistances
// (the battery recharges the capacitor), exactly the behaviour the paper's
// motivational study warns about.
func (s *System) StepParallel(loadPower, dt float64) (StepReport, error) {
	if dt <= 0 {
		return StepReport{}, fmt.Errorf("hees: non-positive dt %g", dt)
	}
	pre := s.PrepareParallel()
	vl, err := solveParallelBus(pre.Batt.VOC, pre.Batt.R, pre.VC, pre.RC, loadPower)
	if err != nil {
		return StepReport{}, err
	}
	return s.FinishParallel(pre, vl, dt)
}

// ParallelPrep carries the hoisted per-step inputs of the parallel
// architecture: the battery prep (shared with the pack integration, so the
// OCV/resistance exponentials are evaluated once per step instead of three
// times) and the capacitor terminal quantities. Produce it with
// PrepareParallel on the state the step will advance.
type ParallelPrep struct {
	// Batt is the hoisted battery state; Batt.VOC and Batt.R are the V_b
	// and R_b of Eqs. 10–13.
	Batt battery.StepPrep
	// VC and RC are the capacitor open-circuit voltage and the (floored)
	// ESR of the split.
	VC, RC float64
}

// PrepareParallel hoists the state-dependent inputs of one parallel step.
// StepParallel is PrepareParallel + solve + FinishParallel; batched rollouts
// call the pieces directly so many independent solves can run in lockstep
// over structure-of-arrays scratch while producing bit-identical results.
func (s *System) PrepareParallel() ParallelPrep {
	rc := s.Cap.Params.ESR
	if rc <= 0 {
		// A perfectly stiff capacitor makes the split degenerate; model the
		// paper's "inconsiderable" module ESR with a small floor instead.
		rc = 1e-3
	}
	return ParallelPrep{Batt: s.Battery.PrepareStep(), VC: s.Cap.Voltage(), RC: rc}
}

// FinishParallel completes a parallel step once the bus voltage is solved:
// it splits the currents (Eqs. 11–12), integrates both storages and
// assembles the report. pre must come from PrepareParallel on the current
// state and vl from a successful bus solve at the same state; dt must be
// positive (the architecture entry points validate it).
func (s *System) FinishParallel(pre ParallelPrep, vl, dt float64) (StepReport, error) {
	vb := pre.Batt.VOC
	rb := pre.Batt.R
	vc := pre.VC
	ib := (vb - vl) / rb
	ic := (vc - vl) / pre.RC

	battRes := s.Battery.StepCurrentPrepared(pre.Batt, ib, dt)
	// Capacitor terminal power at the bus.
	capRes, err := s.Cap.Step(vl*ic, dt)
	if err != nil && !errors.Is(err, ultracap.ErrEmpty) {
		return StepReport{}, err
	}
	return StepReport{
		Batt:        battRes,
		Cap:         capRes,
		HEESEnergyJ: battRes.ChemicalEnergy + capRes.InternalEnergy,
		BusVoltage:  vl,
	}, nil
}

// solveParallelBus finds the bus voltage V_l satisfying
// g(V_l) = (V_b−V_l)/R_b + (V_c−V_l)/R_c − P/V_l = 0.
//
// For P > 0, g rises from −∞ at V_l→0⁺ to a maximum at
// V* = √(P·R_b·R_c/(R_b+R_c)) and then decreases to −P/V < 0 at
// V = max(V_b, V_c); the physically stable operating point is the upper
// root, so we bisect on [V*, max(V_b,V_c)]. If g(V*) < 0 the sources cannot
// supply P at any voltage (ErrInfeasible). For P ≤ 0, g is strictly
// decreasing on (0, ∞) with a single root above max(V_b, V_c).
func solveParallelBus(vb, rb, vc, rc, p float64) (float64, error) {
	var lo, hi float64
	if p > 0 {
		lo = math.Sqrt(p * rb * rc / (rb + rc))
		hi = math.Max(vb, vc)
		if lo >= hi || parallelBusGap(vb, rb, vc, rc, p, lo) < 0 {
			return 0, fmt.Errorf("%w: parallel bus collapsed (P=%.0f W, Vb=%.1f, Vc=%.1f)", ErrInfeasible, p, vb, vc)
		}
	} else {
		lo = math.Min(vb, vc)
		if lo <= 0 {
			lo = 1e-6
		}
		hi = math.Max(vb, vc) + 1
		for iter := 0; parallelBusGap(vb, rb, vc, rc, p, hi) > 0; iter++ {
			hi *= 1.5
			if iter > 200 {
				return 0, fmt.Errorf("%w: no regen bus bracket", ErrInfeasible)
			}
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if parallelBusGap(vb, rb, vc, rc, p, mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*hi {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// parallelBusGap is the bus balance residual g(V_l) solveParallelBus
// bisects on; a named function (not a closure) so the per-step solve is
// statically allocation-free.
func parallelBusGap(vb, rb, vc, rc, p, vl float64) float64 {
	return (vb-vl)/rb + (vc-vl)/rc - p/vl
}

// ---------------------------------------------------------------------------
// Dual architecture (switched)
// ---------------------------------------------------------------------------

// DualMode selects the switch configuration of the dual architecture.
type DualMode int

const (
	// DualBattery connects only the battery to the load.
	DualBattery DualMode = iota
	// DualCap connects only the ultracapacitor to the load.
	DualCap
	// DualBatteryCharge connects the battery to the load and additionally
	// recharges the capacitor through the direct switch path.
	DualBatteryCharge
)

// String implements fmt.Stringer.
func (m DualMode) String() string {
	switch m {
	case DualBattery:
		return "battery"
	case DualCap:
		return "ultracap"
	case DualBatteryCharge:
		return "battery+charge"
	default:
		return fmt.Sprintf("DualMode(%d)", int(m))
	}
}

// StepDual advances the system in the given switch mode. chargePower is the
// bus-side power used to recharge the capacitor in DualBatteryCharge mode
// (ignored otherwise, must be ≥ 0).
func (s *System) StepDual(mode DualMode, loadPower, chargePower, dt float64) (StepReport, error) {
	if dt <= 0 {
		return StepReport{}, fmt.Errorf("hees: non-positive dt %g", dt)
	}
	switch mode {
	case DualBattery:
		battRes, err := s.Battery.Step(loadPower, dt)
		if err != nil {
			return StepReport{}, err
		}
		return StepReport{
			Batt:        battRes,
			HEESEnergyJ: battRes.ChemicalEnergy,
			BusVoltage:  battRes.TerminalVoltage,
		}, nil

	case DualCap:
		if loadPower > s.Cap.MaxDischargePower() {
			// The sagging capacitor can no longer hold the load; report it
			// as depletion so switching policies fall back to the battery.
			return StepReport{}, fmt.Errorf("%w: %.0f W exceeds capability %.0f W",
				ultracap.ErrEmpty, loadPower, s.Cap.MaxDischargePower())
		}
		capRes, err := s.Cap.Step(loadPower, dt)
		if err != nil && !errors.Is(err, ultracap.ErrEmpty) {
			return StepReport{}, err
		}
		rep := StepReport{
			Cap:         capRes,
			HEESEnergyJ: capRes.InternalEnergy,
			BusVoltage:  capRes.TerminalVoltage,
		}
		if err != nil {
			return rep, err // ErrEmpty: caller must fall back to battery
		}
		return rep, nil

	case DualBatteryCharge:
		if chargePower < 0 {
			return StepReport{}, fmt.Errorf("hees: negative charge power %g", chargePower)
		}
		battRes, err := s.Battery.Step(loadPower+chargePower, dt)
		if err != nil {
			return StepReport{}, err
		}
		capRes, err := s.Cap.Step(-chargePower, dt)
		if err != nil && !errors.Is(err, ultracap.ErrEmpty) {
			return StepReport{}, err
		}
		return StepReport{
			Batt:        battRes,
			Cap:         capRes,
			HEESEnergyJ: battRes.ChemicalEnergy + capRes.InternalEnergy,
			BusVoltage:  battRes.TerminalVoltage,
		}, nil
	}
	return StepReport{}, fmt.Errorf("hees: unknown dual mode %v", mode)
}

// ---------------------------------------------------------------------------
// Hybrid architecture (DC bus + converters)
// ---------------------------------------------------------------------------

// StepHybrid advances the system with the battery delivering battBus watts
// and the capacitor capBus watts at the DC bus (each through its converter).
// The caller is responsible for the bus power balance
// battBus + capBus = P_e; this function only executes the commands.
// Negative values charge the respective storage (e.g. regen, or the battery
// pre-charging the capacitor during TEB preparation).
func (s *System) StepHybrid(battBus, capBus, dt float64) (StepReport, error) {
	if dt <= 0 {
		return StepReport{}, fmt.Errorf("hees: non-positive dt %g", dt)
	}
	var rep StepReport
	rep.BusVoltage = s.BattConv.NominalVoltage

	// Battery side.
	vb := s.Battery.OCV()
	battStorage := s.BattConv.StoragePower(battBus, vb)
	battRes, err := s.Battery.Step(battStorage, dt)
	if err != nil {
		return StepReport{}, fmt.Errorf("battery branch: %w", err)
	}
	rep.Batt = battRes
	rep.ConverterLossJ += s.BattConv.Loss(battBus, vb) * dt

	// Capacitor side.
	vc := s.Cap.Voltage()
	capStorage := s.CapConv.StoragePower(capBus, vc)
	capRes, capErr := s.Cap.Step(capStorage, dt)
	if capErr != nil && !errors.Is(capErr, ultracap.ErrEmpty) {
		return StepReport{}, fmt.Errorf("ultracap branch: %w", capErr)
	}
	rep.Cap = capRes
	rep.ConverterLossJ += s.CapConv.Loss(capBus, vc) * dt

	// The storage-side step inputs already include the converter losses
	// (StoragePower inflates the draw), so the drawn energies embed them;
	// ConverterLossJ is reported separately for diagnostics only.
	rep.HEESEnergyJ = battRes.ChemicalEnergy + capRes.InternalEnergy
	if capErr != nil {
		return rep, capErr
	}
	return rep, nil
}

// BatteryMaxBusPower returns the largest battery power deliverable at the
// bus right now, limited by the C6 current cap and the converter.
func (s *System) BatteryMaxBusPower() float64 {
	iMax := s.Battery.MaxCurrent()
	voc := s.Battery.OCV()
	r := s.Battery.Resistance()
	pStorage := math.Min((voc-r*iMax)*iMax, s.Battery.MaxDischargePower())
	return s.BattConv.BusPower(pStorage, voc)
}

// CapMaxBusPower returns the largest capacitor power deliverable at the bus
// right now (C7 plus voltage sag), net of the converter.
func (s *System) CapMaxBusPower() float64 {
	p := s.Cap.MaxDischargePower()
	return s.CapConv.BusPower(p, s.Cap.Voltage())
}
