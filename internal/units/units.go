// Package units collects physical constants and small unit-conversion
// helpers shared by the electro-thermal models. Everything in this module is
// SI unless a name says otherwise: temperatures in kelvin, energy in joules,
// power in watts, charge in coulombs.
package units

import "math"

// Physical constants.
const (
	// GasConstant is the ideal gas constant R in J/(mol·K), used by the
	// Arrhenius capacity-loss model (paper Eq. 5).
	GasConstant = 8.314462618

	// Gravity is the standard gravitational acceleration in m/s².
	Gravity = 9.80665

	// AirDensity is the density of air at sea level and 15 °C in kg/m³,
	// used by the vehicle road-load model.
	AirDensity = 1.225

	// ZeroCelsius is 0 °C expressed in kelvin.
	ZeroCelsius = 273.15
)

// Common time conversions.
const (
	SecondsPerHour = 3600.0
	HoursPerSecond = 1.0 / 3600.0
)

// CToK converts a temperature from degrees Celsius to kelvin.
func CToK(c float64) float64 { return c + ZeroCelsius }

// KToC converts a temperature from kelvin to degrees Celsius.
func KToC(k float64) float64 { return k - ZeroCelsius }

// KmhToMs converts a speed from km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts a speed from m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// MphToMs converts a speed from miles/hour to m/s.
func MphToMs(mph float64) float64 { return mph * 0.44704 }

// MsToMph converts a speed from m/s to miles/hour.
func MsToMph(ms float64) float64 { return ms / 0.44704 }

// AhToCoulomb converts a charge from ampere-hours to coulombs.
func AhToCoulomb(ah float64) float64 { return ah * SecondsPerHour }

// CoulombToAh converts a charge from coulombs to ampere-hours.
func CoulombToAh(c float64) float64 { return c * HoursPerSecond }

// WhToJoule converts energy from watt-hours to joules.
func WhToJoule(wh float64) float64 { return wh * SecondsPerHour }

// JouleToWh converts energy from joules to watt-hours.
func JouleToWh(j float64) float64 { return j * HoursPerSecond }

// JouleToKWh converts energy from joules to kilowatt-hours.
func JouleToKWh(j float64) float64 { return j / 3.6e6 }

// Clamp limits x to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		//lint:ignore nopanic tested argument contract: an inverted interval is a programmer error, and Clamp is too hot for an error return
		panic("units: Clamp called with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
// Values of t outside [0, 1] extrapolate.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b are equal within a combined
// absolute/relative tolerance tol. It treats NaN as unequal to everything.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
