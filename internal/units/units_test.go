package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTemperatureConversions(t *testing.T) {
	cases := []struct {
		c, k float64
	}{
		{0, 273.15},
		{25, 298.15},
		{-40, 233.15},
		{100, 373.15},
	}
	for _, tc := range cases {
		if got := CToK(tc.c); math.Abs(got-tc.k) > 1e-12 {
			t.Errorf("CToK(%v) = %v, want %v", tc.c, got, tc.k)
		}
		if got := KToC(tc.k); math.Abs(got-tc.c) > 1e-12 {
			t.Errorf("KToC(%v) = %v, want %v", tc.k, got, tc.c)
		}
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		return math.Abs(KToC(CToK(c))-c) < 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedConversions(t *testing.T) {
	if got := KmhToMs(36); math.Abs(got-10) > 1e-12 {
		t.Errorf("KmhToMs(36) = %v, want 10", got)
	}
	if got := MsToKmh(10); math.Abs(got-36) > 1e-12 {
		t.Errorf("MsToKmh(10) = %v, want 36", got)
	}
	if got := MphToMs(60); math.Abs(got-26.8224) > 1e-9 {
		t.Errorf("MphToMs(60) = %v, want 26.8224", got)
	}
	if got := MsToMph(MphToMs(55)); math.Abs(got-55) > 1e-9 {
		t.Errorf("mph round trip = %v, want 55", got)
	}
}

func TestChargeAndEnergyConversions(t *testing.T) {
	if got := AhToCoulomb(3.1); math.Abs(got-11160) > 1e-9 {
		t.Errorf("AhToCoulomb(3.1) = %v, want 11160", got)
	}
	if got := CoulombToAh(3600); math.Abs(got-1) > 1e-12 {
		t.Errorf("CoulombToAh(3600) = %v, want 1", got)
	}
	if got := WhToJoule(1); got != 3600 {
		t.Errorf("WhToJoule(1) = %v, want 3600", got)
	}
	if got := JouleToWh(7200); got != 2 {
		t.Errorf("JouleToWh(7200) = %v, want 2", got)
	}
	if got := JouleToKWh(3.6e6); got != 1 {
		t.Errorf("JouleToKWh(3.6e6) = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range cases {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(0, 1, -1) did not panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp(0,10,0.5) = %v, want 5", got)
	}
	if got := Lerp(2, 2, 0.3); got != 2 {
		t.Errorf("Lerp(2,2,0.3) = %v, want 2", got)
	}
	if got := Lerp(0, 10, 0); got != 0 {
		t.Errorf("Lerp(0,10,0) = %v, want 0", got)
	}
	if got := Lerp(0, 10, 1); got != 10 {
		t.Errorf("Lerp(0,10,1) = %v, want 10", got)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1e9, 1e9 + 1, 1e-6, true}, // relative tolerance
		{1, 2, 1e-9, false},
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
		{0, 1e-12, 1e-9, true}, // absolute tolerance near zero
	}
	for _, tc := range cases {
		if got := ApproxEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestGasConstantValue(t *testing.T) {
	// CODATA 2018 exact value.
	if math.Abs(GasConstant-8.314462618) > 1e-12 {
		t.Errorf("GasConstant = %v", GasConstant)
	}
}
