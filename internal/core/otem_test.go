package core

import (
	"math"
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"block beyond horizon", func(c *Config) { c.BlockSize = c.Horizon + 1 }},
		{"zero replan", func(c *Config) { c.ReplanInterval = 0 }},
		{"negative weight", func(c *Config) { c.W2 = -1 }},
		{"zero cap scale", func(c *Config) { c.CapPowerScale = 0 }},
		{"zero target temp", func(c *Config) { c.TargetTemp = 0 }},
		{"threshold >= 1", func(c *Config) { c.CoolingOnThreshold = 1 }},
		{"negative TEB", func(c *Config) { c.TEBWeight = -1 }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted", m.name)
		}
	}
}

func TestNewZeroConfigUsesDefaults(t *testing.T) {
	o, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Horizon != DefaultConfig().Horizon {
		t.Errorf("zero config horizon = %d", o.cfg.Horizon)
	}
	if o.Name() != "OTEM" {
		t.Errorf("Name = %q", o.Name())
	}
}

// shortConfig keeps controller tests fast.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Horizon = 20
	cfg.BlockSize = 5
	cfg.ReplanInterval = 5
	cfg.Optimizer.MaxIterations = 15
	return cfg
}

func TestOTEMServesConstantLoad(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 120)
	for i := range requests {
		requests[i] = 20e3
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoC >= 1.0 {
		t.Error("battery untouched — load not served")
	}
	// Energy conservation sanity: the storages supplied at least the
	// delivered energy (2.4 MJ).
	if res.HEESEnergyJ < 2.4e6 {
		t.Errorf("HEESEnergyJ = %v, want >= 2.4 MJ", res.HEESEnergyJ)
	}
	if res.FallbackSteps > 2 {
		t.Errorf("OTEM commands fell back %d times", res.FallbackSteps)
	}
}

func TestOTEMCoolsWhenHot(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{InitialTemp: units.CToK(38)})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 300)
	for i := range requests {
		requests[i] = 15e3
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoolingEnergyJ <= 0 {
		t.Error("hot battery but the controller never cooled")
	}
	if res.MaxBatteryTemp > units.CToK(40) {
		t.Errorf("safe zone violated: %v °C", units.KToC(res.MaxBatteryTemp))
	}
	if res.FinalSoC >= 1.0 {
		t.Error("load not served while cooling")
	}
}

func TestOTEMSkipsCoolingWhenCold(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{InitialTemp: units.CToK(15), Ambient: units.CToK(15)})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 60)
	for i := range requests {
		requests[i] = 10e3
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	// A cold pack needs no cooler; at most trivial pump dithering.
	if res.CoolingEnergyJ > 0.05*res.HEESEnergyJ {
		t.Errorf("cold pack but cooling consumed %v J of %v J", res.CoolingEnergyJ, res.HEESEnergyJ)
	}
}

func TestOTEMTEBPreparation(t *testing.T) {
	// Fig. 7's mechanism: facing an idle window followed by a large burst,
	// the controller should hold/raise the capacitor SoE before the burst
	// and discharge it during the burst.
	plant, err := sim.NewPlant(sim.PlantConfig{InitialSoE: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 100)
	for i := 0; i < 60; i++ {
		requests[i] = 2e3 // light cruise
	}
	for i := 60; i < 85; i++ {
		requests[i] = 70e3 // burst
	}
	for i := 85; i < 100; i++ {
		requests[i] = 2e3
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	soeBeforeBurst := tr.SoE[59]
	if soeBeforeBurst <= 0.5 {
		t.Errorf("SoE before burst = %v, want pre-charged above the initial 0.5", soeBeforeBurst)
	}
	// The capacitor must actually discharge during the burst.
	minDuring := soeBeforeBurst
	for i := 60; i < 85; i++ {
		if tr.SoE[i] < minDuring {
			minDuring = tr.SoE[i]
		}
	}
	if minDuring >= soeBeforeBurst-0.01 {
		t.Errorf("capacitor idle during burst: SoE stayed at %v", minDuring)
	}
}

func TestOTEMBeatsBaselinesOnUS06(t *testing.T) {
	// The headline claim at reduced scale (US06 ×2 to keep the test quick):
	// OTEM ends with less capacity loss than the parallel and dual
	// baselines, and stays in the safe zone.
	requests := vehicle.MidSizeEV().PowerSeries(drivecycle.US06().Repeat(2))

	run := func(ctrl sim.Controller) sim.Result {
		t.Helper()
		plant, err := sim.NewPlant(sim.PlantConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: DefaultConfig().Horizon})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	otem, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resOTEM := run(otem)
	resParallel := run(policy.Parallel{})
	resDual := run(policy.NewDual())

	if resOTEM.QlossPct >= resParallel.QlossPct {
		t.Errorf("OTEM loss %v should beat parallel %v", resOTEM.QlossPct, resParallel.QlossPct)
	}
	if resOTEM.QlossPct >= resDual.QlossPct {
		t.Errorf("OTEM loss %v should beat dual %v", resOTEM.QlossPct, resDual.QlossPct)
	}
	if resOTEM.ThermalViolationSec > 0 {
		t.Errorf("OTEM violated the safe zone for %v s", resOTEM.ThermalViolationSec)
	}
}

func TestOTEMDeterministic(t *testing.T) {
	requests := make([]float64, 80)
	for i := range requests {
		requests[i] = float64(5e3 + 1e3*(i%7))
	}
	run := func() sim.Result {
		plant, err := sim.NewPlant(sim.PlantConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(shortConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.QlossPct != b.QlossPct || a.HEESEnergyJ != b.HEESEnergyJ || a.FinalSoE != b.FinalSoE {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestOTEMHandlesRegen(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{InitialSoC: 0.7, InitialSoE: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 60)
	for i := range requests {
		requests[i] = -25e3
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Regen must be stored somewhere: battery or capacitor gained.
	gained := (res.FinalSoC > 0.7) || (res.FinalSoE > 0.5)
	if !gained {
		t.Errorf("regen lost: SoC %v, SoE %v", res.FinalSoC, res.FinalSoE)
	}
	if res.HEESEnergyJ >= 0 {
		t.Errorf("regen run should have negative HEES energy, got %v", res.HEESEnergyJ)
	}
}

func TestOTEMForecastShorterThanHorizon(t *testing.T) {
	// The engine may hand a shorter forecast near the route end; the
	// controller must pad gracefully.
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	// sim.Config.Horizon = 3 < controller horizon 20.
	requests := []float64{10e3, 12e3, 8e3, 6e3}
	if _, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveFiniteOnExtremes(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pathological plant states must still produce finite costs.
	states := []struct{ soc, soe, tb, tc float64 }{
		{0.01, 0.001, units.CToK(55), units.CToK(50)},
		{1.0, 1.0, units.CToK(-10), units.CToK(-10)},
		{0.5, 0.0, units.CToK(25), units.CToK(25)},
	}
	z := make([]float64, o.planner.Spec().Dim())
	corners := [][]float64{
		z,
		fill(len(z), 1),
		fill(len(z), -1),
	}
	for _, st := range states {
		plant.HEES.Battery.SoC = st.soc
		plant.HEES.Cap.SoE = st.soe
		plant.Loop.BatteryTemp = st.tb
		plant.Loop.CoolantTemp = st.tc
		o.roll.capture(plant, o.cfg)
		for k := range o.fc {
			o.fc[k] = 50e3
		}
		for _, zz := range corners {
			if f := o.objective(zz); math.IsNaN(f) || math.IsInf(f, 0) {
				t.Errorf("objective not finite at state %+v, z=%v: %v", st, zz[0], f)
			}
		}
	}
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
