// Package core implements OTEM — the paper's contribution (§III): an
// Optimized Thermal and Energy Management controller for the hybrid HEES
// with an active battery cooling system.
//
// At every re-planning instant the controller solves the finite-horizon
// optimisation of paper Eqs. 18–19 by single shooting: the decision
// variables are, per move-blocked horizon step, the ultracapacitor bus
// power and a normalised cooling intensity; the plant model (battery
// Eqs. 1–5, ultracapacitor Eqs. 6–9, converters, coolant network
// Eqs. 14–17) is rolled forward inside the objective, and the cost
//
//	F = Σ w1·P_c·Δt + w2·Q_loss + w3·(dE_bat + dE_cap)      (Eq. 19)
//
// is minimised subject to constraints C1–C7 (boxes on the decision
// variables, smooth hinge penalties on the state paths, clamps on the
// physical limits). Because the horizon sees the predicted power requests,
// the controller provides "Thermal and Energy Budget" (TEB): it pre-charges
// the ultracapacitor and/or pre-cools the battery ahead of demand bursts
// exactly as §III-A describes.
package core

import (
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/converter"
	"repro/internal/cooling"
	"repro/internal/mpc"
	"repro/internal/optimize"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config tunes the OTEM controller. Zero fields take the defaults from
// DefaultConfig.
type Config struct {
	// Horizon is the MPC control-window size N in steps (paper Alg. 1
	// line 4).
	Horizon int
	// BlockSize move-blocks the decision variables.
	BlockSize int
	// ReplanInterval is how many plant steps each optimised plan is
	// executed before re-solving.
	ReplanInterval int

	// W1, W2 and W3 are the Eq. 19 weights: cooling energy (J), capacity
	// loss (% → J equivalents) and HEES energy (J).
	W1, W2, W3 float64
	// TempPressureWeight prices battery-temperature excess over TargetTemp,
	// integrated across the horizon (J/K² total, distributed per step) —
	// the proxy for aging beyond the window that makes cooling *now*
	// strictly better than cooling later (otherwise the receding horizon
	// procrastinates forever).
	TempPressureWeight float64
	// TEBWeight prices the terminal ultracapacitor deficit below
	// TEBTargetSoE, in joules of cost per joule of capacity at unit
	// squared deficit — the "Thermal and Energy Budget" incentive that
	// makes the controller re-charge during cheap moments (idle, regen)
	// and pre-charge "upto the perfect amount" (§III-A) before demand
	// beyond the window.
	TEBWeight float64
	// TEBTargetSoE is the state of energy the terminal TEB cost pulls
	// toward from below (exceeding it is free).
	TEBTargetSoE float64
	// TargetTemp is the temperature the terminal cost pulls toward, kelvin.
	TargetTemp float64
	// SafeTempWeight penalises per-step violation of constraint C1 (J/K²).
	SafeTempWeight float64
	// StateWeight penalises per-step violation of the SoC/SoE windows
	// C4/C5 (J per squared fraction).
	StateWeight float64
	// CapPowerScale converts the normalised ultracapacitor decision
	// u∈[-1,1] to bus watts (C7 bound).
	CapPowerScale float64
	// CoolingOnThreshold is the normalised intensity below which the pump
	// stays off.
	CoolingOnThreshold float64
	// SoCRefWeight and TempRefWeight price per-step deviation from an
	// outer-layer reference trajectory installed via SetReference — the
	// tracking terms of the two-layer hierarchical MPC (arXiv 1809.10002).
	// J per squared SoC fraction and J/K² respectively. Zero (the default)
	// disables tracking entirely: the flat controller's cost, gradients and
	// plans are bit-identical whether or not a reference is installed.
	SoCRefWeight float64
	// TempRefWeight is SoCRefWeight's battery-temperature counterpart.
	TempRefWeight float64
	// Optimizer tunes the inner solver.
	Optimizer optimize.Options
	// NumericGradient forces finite-difference gradients instead of the
	// hand-derived adjoint (the adjoint is ≈5× faster and is validated
	// against finite differences in the tests; this switch exists for
	// debugging).
	NumericGradient bool
}

// DefaultConfig returns the configuration used for the paper experiments.
func DefaultConfig() Config {
	return Config{
		Horizon:            40,
		BlockSize:          8,
		ReplanInterval:     4,
		W1:                 1,
		W2:                 2e10,
		W3:                 1,
		TempPressureWeight: 2e5,
		TEBWeight:          2,
		TEBTargetSoE:       0.85,
		TargetTemp:         units.CToK(27),
		SafeTempWeight:     1e7,
		StateWeight:        1e8,
		CapPowerScale:      90e3,
		CoolingOnThreshold: 0.03,
		Optimizer: optimize.Options{
			MaxIterations: 30,
			Tolerance:     1e-4,
			Memory:        6,
			MaxLineSearch: 25,
		},
	}
}

// Validate reports an error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("core: Horizon = %d, must be > 0", c.Horizon)
	case c.BlockSize <= 0 || c.BlockSize > c.Horizon:
		return fmt.Errorf("core: BlockSize = %d invalid for horizon %d", c.BlockSize, c.Horizon)
	case c.ReplanInterval <= 0:
		return fmt.Errorf("core: ReplanInterval = %d, must be > 0", c.ReplanInterval)
	case c.W1 < 0 || c.W2 < 0 || c.W3 < 0:
		return fmt.Errorf("core: negative cost weights (%g, %g, %g)", c.W1, c.W2, c.W3)
	case c.CapPowerScale <= 0:
		return fmt.Errorf("core: CapPowerScale = %g, must be > 0", c.CapPowerScale)
	case c.TargetTemp <= 0:
		return fmt.Errorf("core: TargetTemp = %g K invalid", c.TargetTemp)
	case c.TempPressureWeight < 0 || c.TEBWeight < 0:
		return fmt.Errorf("core: negative TempPressureWeight/TEBWeight")
	case c.CoolingOnThreshold < 0 || c.CoolingOnThreshold >= 1:
		return fmt.Errorf("core: CoolingOnThreshold = %g, must be in [0, 1)", c.CoolingOnThreshold)
	case c.SoCRefWeight < 0 || c.TempRefWeight < 0:
		return fmt.Errorf("core: negative reference-tracking weights (%g, %g)", c.SoCRefWeight, c.TempRefWeight)
	}
	return nil
}

// OTEM is the controller. It implements sim.Controller. Construct with New.
type OTEM struct {
	cfg     Config
	planner *mpc.Planner

	// Current plan and its execution cursor.
	plan      []float64
	planValid bool
	cursor    int

	// Rollout scratch (captured from the plant at each re-plan so the
	// objective closure performs no allocation).
	roll rollout
	// forecast buffer padded to the horizon.
	fc []float64
	// tape holds the adjoint-gradient intermediates (gradient.go); it is
	// also the scratch for plain objective evaluations, so steady-state
	// replans never allocate.
	tape []stepTape
	// tapeZ/tapeCost/tapeValid track which decision vector the tape was
	// recorded at. The line search always evaluates the objective at the
	// accepted point immediately before the solver asks for its gradient,
	// so the adjoint can skip its own forward pass when z matches —
	// bit-identical, since the tape rows are exactly what that forward
	// pass would re-record.
	tapeZ     []float64
	tapeCost  float64
	tapeValid bool

	// objFn/gradFn are the planner callbacks, bound once at construction so
	// each replan does not allocate a method value or closure.
	objFn  func([]float64) float64
	gradFn func(z, g []float64)

	// Outer-layer reference tracking (reference.go). ref is the installed
	// trajectory (nil without an outer layer); stepAbs is the absolute
	// plant step, indexing ref; refSoC/refTb are the per-replan horizon
	// windows the objective reads; trackSoC/trackTb gate the tracking
	// terms so a zero-weight or absent reference leaves the flat cost
	// untouched bit for bit.
	ref             *Reference
	stepAbs         int
	refSoC, refTb   []float64
	trackSoC        bool
	trackTb         bool
	replans, nudges int
}

// New returns an OTEM controller for the given configuration.
func New(cfg Config) (*OTEM, error) {
	//lint:ignore floatcompare the zero-value Config is the documented use-defaults sentinel; exact compare intended
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	planner, err := mpc.NewPlanner(mpc.Spec{
		Horizon:       cfg.Horizon,
		BlockSize:     cfg.BlockSize,
		InputsPerStep: 2,
		// u0: normalised ultracapacitor bus power; u1: cooling intensity.
		Lower:   []float64{-1, 0},
		Upper:   []float64{1, 1},
		Options: cfg.Optimizer,
	})
	if err != nil {
		return nil, err
	}
	o := &OTEM{
		cfg:     cfg,
		planner: planner,
		plan:    make([]float64, 0, planner.Spec().Dim()),
		fc:      make([]float64, cfg.Horizon),
		tape:    make([]stepTape, cfg.Horizon),
		tapeZ:   make([]float64, planner.Spec().Dim()),
		refSoC:  make([]float64, cfg.Horizon),
		refTb:   make([]float64, cfg.Horizon),
	}
	o.objFn = o.objective
	if !cfg.NumericGradient {
		o.gradFn = func(z, g []float64) { o.objectiveGrad(z, g) }
	}
	return o, nil
}

// Name implements sim.Controller.
func (o *OTEM) Name() string { return "OTEM" }

// ForecastDepth implements sim.ForecastReader: the MPC consumes the whole
// window (replan pads it to the horizon), so the batched rollout must fill
// every entry.
func (o *OTEM) ForecastDepth() int { return -1 }

// Decide implements sim.Controller: execute the current plan, re-solving
// the Eq. 18/19 optimisation every ReplanInterval steps (paper Alg. 1
// lines 10–22).
func (o *OTEM) Decide(p *sim.Plant, forecast []float64) sim.Action {
	if o.planValid && o.cursor < o.cfg.ReplanInterval && o.divergedFromRef(p) {
		// The realized state drifted past the reference tolerances: the
		// rest of the current plan tracks a trajectory it can no longer
		// reach, so re-solve now instead of waiting out the interval.
		o.planValid = false
		o.nudges++
	}
	if !o.planValid || o.cursor >= o.cfg.ReplanInterval {
		o.replan(p, forecast)
	}
	o.stepAbs++
	capU := o.planner.Spec().InputAt(o.plan, o.cursor, 0)
	coolU := o.planner.Spec().InputAt(o.plan, o.cursor, 1)
	o.cursor++

	act := sim.Action{Arch: sim.ArchHybrid}
	// Defensive clamps to the instantaneous capabilities so the plant never
	// sees an infeasible command even if the model drifted: discharging is
	// limited by the bank, charging by the battery headroom above the
	// present request.
	capBus := capU * o.cfg.CapPowerScale
	if maxBus := 0.97 * p.HEES.CapMaxBusPower(); capBus > maxBus {
		capBus = maxBus
	}
	if capBus < 0 {
		headroom := p.HEES.BatteryMaxBusPower()*0.95 - math.Max(forecast[0], 0)
		if headroom < 0 {
			headroom = 0
		}
		if -capBus > headroom {
			capBus = -headroom
		}
	}
	act.CapBusPower = capBus

	if coolU > o.cfg.CoolingOnThreshold {
		act.CoolingOn = true
		loop := p.Loop
		minTi := loop.MinFeasibleInlet()
		act.InletTemp = loop.CoolantTemp - coolU*(loop.CoolantTemp-minTi)
	}
	return act
}

// replan snapshots the plant, solves the horizon problem and resets the
// execution cursor.
func (o *OTEM) replan(p *sim.Plant, forecast []float64) {
	o.roll.capture(p, o.cfg)
	o.prepareRefWindow()
	o.replans++
	// The rollout state and forecast changed, so any recorded tape is stale.
	o.tapeValid = false
	// Pad/truncate the forecast to the horizon.
	for k := range o.fc {
		if k < len(forecast) {
			o.fc[k] = forecast[k]
		} else {
			o.fc[k] = 0
		}
	}
	o.planner.Advance(o.cursor)
	plan, _, err := o.planner.PlanGrad(o.objFn, o.gradFn)
	if err != nil {
		// Objective failures cannot happen with a validated config; fall
		// back to a do-nothing hybrid action (battery carries everything).
		o.plan = o.plan[:o.planner.Spec().Dim()]
		for i := range o.plan {
			o.plan[i] = 0
		}
	} else {
		// The buffer was sized to the decision dimension at construction,
		// so this reslice-and-copy never grows it (replan is on the warm
		// PlanTrip path and must stay allocation-free).
		o.plan = o.plan[:len(plan)]
		copy(o.plan, plan)
	}
	o.planValid = true
	o.cursor = 0
}

// objective is the single-shooting cost of the blocked decision vector z
// (forward pass only; see gradient.go for the taped forward and the adjoint).
func (o *OTEM) objective(z []float64) float64 {
	cost := o.objectiveFwd(z, o.tape[:o.cfg.Horizon])
	o.noteTape(z, cost)
	return cost
}

// noteTape records that the tape now holds the rollout at z with the given
// cost, so a following gradient request at the same z can reuse it.
func (o *OTEM) noteTape(z []float64, cost float64) {
	o.tapeZ = o.tapeZ[:len(z)]
	copy(o.tapeZ, z)
	o.tapeCost = cost
	o.tapeValid = true
}

// tapeMatches reports whether the tape was recorded at exactly this z.
func (o *OTEM) tapeMatches(z []float64) bool {
	if !o.tapeValid || len(o.tapeZ) != len(z) {
		return false
	}
	for i := range z {
		//lint:ignore floatcompare the tape is reusable only for the bit-identical decision vector; exact compare intended
		if z[i] != o.tapeZ[i] {
			return false
		}
	}
	return true
}

// rollout caches everything the objective needs from the plant as plain
// scalars, so each evaluation is allocation-free.
type rollout struct {
	// Initial state.
	soc, soe, tb, tc float64
	dt               float64

	// Battery aggregates.
	cell         battery.CellParams
	cells        float64 // total cell count
	parallel     float64
	cellOCVScale float64 // series count
	packResScale float64 // series/parallel
	packCapC     float64 // pack capacity in coulombs
	packMaxI     float64
	battMinSoC   float64
	safeTemp     float64

	// Ultracapacitor aggregates.
	capBusV   float64
	capESR    float64
	capC7     float64
	capEnergy float64
	capMinSoE float64

	// Converters.
	battConv, capConv converter.Params

	// Cooling.
	cool                     cooling.Params
	battHeatCap, coolHeatCap float64
	flow, coolEff            float64
	coolerMax, pump          float64
	minInlet                 float64
	ambientCoupling          float64
	ambient                  float64

	// cnc caches the Crank–Nicolson coefficients (they depend only on the
	// captured cooling params and dt, so one computation per capture serves
	// every objective/adjoint evaluation of the replan).
	cnc cnCoef
}

func (r *rollout) capture(p *sim.Plant, cfg Config) {
	b := p.HEES.Battery
	c := p.HEES.Cap

	r.soc = b.SoC
	r.soe = c.SoE
	r.tb = p.Loop.BatteryTemp
	r.tc = p.Loop.CoolantTemp
	r.dt = p.DT

	r.cell = b.Cell
	r.cells = float64(b.CellCount())
	r.parallel = float64(b.Parallel)
	r.cellOCVScale = float64(b.Series)
	r.packResScale = float64(b.Series) / float64(b.Parallel)
	r.packCapC = units.AhToCoulomb(b.CapacityAh())
	r.packMaxI = b.MaxCurrent()
	r.battMinSoC = b.Cell.MinSoC
	r.safeTemp = b.Cell.SafeTemp

	r.capBusV = c.Params.BusVoltage
	r.capESR = c.Params.ESR
	r.capC7 = c.Params.MaxPower
	r.capEnergy = c.Params.EnergyCapacity()
	r.capMinSoE = c.Params.MinSoE

	r.battConv = p.HEES.BattConv
	r.capConv = p.HEES.CapConv

	r.cool = p.Loop.Params
	r.battHeatCap = p.Loop.Params.BatteryHeatCapacity
	r.coolHeatCap = p.Loop.Params.CoolantHeatCapacity
	r.flow = p.Loop.Params.FlowHeatRate
	r.coolEff = p.Loop.Params.CoolerEfficiency
	r.coolerMax = p.Loop.Params.MaxCoolerPower
	r.pump = p.Loop.Params.PumpPower
	r.minInlet = p.Loop.Params.MinInletTemp
	r.ambientCoupling = p.Loop.Params.AmbientCoupling
	r.ambient = p.Ambient
	r.cnc = r.cn(r.dt)
}

var _ sim.Controller = (*OTEM)(nil)
