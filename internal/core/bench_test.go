package core

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkObjective measures one single-shooting rollout of the MPC cost
// (the hot inner loop of every replan).
func BenchmarkObjective(b *testing.B) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	o.roll.capture(plant, o.cfg)
	for k := range o.fc {
		o.fc[k] = 30e3
	}
	z := make([]float64, o.planner.Spec().Dim())
	for i := range z {
		z[i] = 0.3
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += o.objective(z)
	}
	_ = sink
}

// BenchmarkReplan measures one full horizon optimisation (warm-started).
func BenchmarkReplan(b *testing.B) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	forecast := make([]float64, o.cfg.Horizon)
	for k := range forecast {
		forecast[k] = 30e3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.replan(plant, forecast)
	}
}
