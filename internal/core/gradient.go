package core

import (
	"math"

	"repro/internal/units"
)

// This file implements the hand-derived reverse-mode (adjoint) gradient of
// the single-shooting MPC objective. A numeric gradient needs 2·dim rollout
// evaluations per gradient; the adjoint needs one taped forward pass and one
// backward sweep (≈3× a rollout), cutting re-planning cost several-fold.
// Correctness is pinned by TestAnalyticGradientMatchesNumeric, which
// compares against central differences over random states and decisions.

// stepTape records the intermediates of one forward step that the backward
// sweep needs.
type stepTape struct {
	soc0, soe0, tb0, tc0 float64

	capU, coolU float64
	pcool, qx   float64

	vcap        float64
	vcapClamped bool // soe0 ≤ 1e-6 → d(vcap)/d(soe) = 0
	sagBranch   bool // capMax came from the 0.97·v²/4R sag limit
	capMax      float64
	etaCapBus   float64 // η(vcap) used by BusPower for capMaxBus
	etaCapBusP  bool    // derivative of that η w.r.t. v is nonzero
	capMaxBus   float64
	capClamped  bool // capBus = capMaxBus taken
	capBus      float64
	etaCapSto   float64 // η(vcap) used by StoragePower
	etaCapStoP  bool
	capStorage  float64
	sCap        float64 // sqrt of the capacitor discriminant
	capDiscZero bool
	capI        float64
	dEcap       float64
	soePre      float64
	soeClampHi  bool

	voc, res     float64
	cellR        float64 // single-cell resistance R(soc0, tb0) behind res/heat
	battBus      float64
	etaBatt      float64
	etaBattP     bool
	bsPre        float64 // battery storage power before the pmax clamp
	pmax         float64
	bsClamped    bool
	battStorage  float64
	sBatt        float64
	battDiscZero bool
	i, cellI     float64
	overC6       float64 // max(0, i − packMaxI)
	heat         float64
	aging        float64
	socPre       float64
	socClampHi   bool

	tb1, tc1 float64
}

// cnCoef holds the precomputed Crank–Nicolson coefficients and inverse used
// by both forward and adjoint (the system matrix is constant: the model
// always uses the ambient coupling as w).
type cnCoef struct {
	a, w, w2, cbdt, ccdt   float64
	i00, i01, i10, i11     float64 // M⁻¹ (symmetric)
	r0tb, r0tc, r1tb, r1tc float64 // rhs coefficients
}

func (r *rollout) cn(dt float64) cnCoef {
	p := r.cool
	a := p.HBC / 2
	w := r.ambientCoupling
	w2 := w / 2
	cbdt := p.BatteryHeatCapacity / dt
	ccdt := p.CoolantHeatCapacity / dt
	m00 := cbdt + a
	m01 := -a
	m11 := ccdt + a + w2
	det := m00*m11 - m01*m01
	return cnCoef{
		a: a, w: w, w2: w2, cbdt: cbdt, ccdt: ccdt,
		i00: m11 / det, i01: -m01 / det, i10: -m01 / det, i11: m00 / det,
		r0tb: cbdt - a, r0tc: a,
		r1tb: a, r1tc: ccdt - a - w2,
	}
}

// etaAt evaluates a converter's efficiency and whether its derivative in v
// is nonzero (interior of the clamp).
func etaAt(peak, min, nom, droop, v float64) (float64, bool) {
	sag := 1 - v/nom
	if sag < 0 {
		sag = 0
	}
	eta := peak - droop*sag
	switch {
	case eta <= min:
		return min, false
	case eta >= peak:
		return peak, false
	}
	return eta, true
}

// objectiveFwd is the single source of truth for the MPC cost. It records
// the step intermediates directly into tape, which must have length
// cfg.Horizon. Rows are written in full — every conditionally-set field is
// explicitly reset — so a dirty, reused tape is fine and the hot path never
// zeroes or copies a stepTape.
func (o *OTEM) objectiveFwd(z []float64, tape []stepTape) float64 {
	r := &o.roll
	cfg := &o.cfg
	spec := o.planner.Spec()
	bs, nb, mIn := spec.BlockSize, spec.Blocks(), spec.InputsPerStep
	cc := r.capConv
	bc := r.battConv

	soc, soe := r.soc, r.soe
	tb, tc := r.tb, r.tc
	dt := r.dt
	cn := r.cnc

	// Hoist every scalar the loop reads into locals: the tape writes go
	// through a pointer, so without this the compiler must reload each field
	// from o.roll / o.cfg after every store. Values and operation order are
	// unchanged.
	cell := &r.cell
	dvocdt := r.cell.DVocDT
	coolerMax, pump, coolEff := r.coolerMax, r.pump, r.coolEff
	capBusV, capC7, capESR := r.capBusV, r.capC7, r.capESR
	capEnergy, capMinSoE := r.capEnergy, r.capMinSoE
	cellOCVScale, packResScale := r.cellOCVScale, r.packResScale
	packMaxI, parallel, cells := r.packMaxI, r.parallel, r.cells
	packCapC, battMinSoC, safeTemp := r.packCapC, r.battMinSoC, r.safeTemp
	battHeatCap, coolHeatCap := r.battHeatCap, r.coolHeatCap
	hcSum := battHeatCap + coolHeatCap
	wAmbient := cn.w * r.ambient
	capPowerScale, stateWeight := cfg.CapPowerScale, cfg.StateWeight
	safeTempWeight, targetTemp := cfg.SafeTempWeight, cfg.TargetTemp
	tempPressureWeight, horizonF := cfg.TempPressureWeight, float64(cfg.Horizon)
	w1, w2, w3 := cfg.W1, cfg.W2, cfg.W3
	fc := o.fc
	// Outer-layer tracking terms: latched per replan, skipped entirely for
	// the flat controller so its cost stays bit-identical.
	trackSoC, trackTb := o.trackSoC, o.trackTb
	refS, refT := o.refSoC, o.refTb
	socRefW, tbRefW := cfg.SoCRefWeight, cfg.TempRefWeight

	var cost float64
	// Blocked-input cursor: base walks z one block every bs steps (same
	// indexing as Spec.InputAt, without the per-step division).
	base, nextBlockAt, lastBase := 0, bs, (nb-1)*mIn
	for k := 0; k < cfg.Horizon; k++ {
		tp := &tape[k]
		tp.soc0, tp.soe0, tp.tb0, tp.tc0 = soc, soe, tb, tc
		if k == nextBlockAt && base < lastBase {
			base += mIn
			nextBlockAt += bs
		}
		tp.capU = z[base]
		tp.coolU = z[base+1]

		// --- Cooling: linear intensity model ---
		tp.pcool = tp.coolU * (coolerMax + pump)
		tp.qx = -tp.coolU * coolEff * coolerMax
		load := fc[k] + tp.pcool

		// --- Ultracapacitor branch ---
		capBus0 := tp.capU * capPowerScale
		if soe > 1e-6 {
			tp.vcap = capBusV * math.Sqrt(soe)
			tp.vcapClamped = false
		} else {
			tp.vcap = capBusV * math.Sqrt(1e-6)
			tp.vcapClamped = true
		}
		tp.capMax = capC7
		tp.sagBranch = false
		if capESR > 0 {
			if sag := 0.97 * tp.vcap * tp.vcap / (4 * capESR); sag < tp.capMax {
				tp.capMax = sag
				tp.sagBranch = true
			}
		}
		tp.etaCapBus, tp.etaCapBusP = etaAt(cc.PeakEfficiency, cc.MinEfficiency, cc.NominalVoltage, cc.Droop, tp.vcap)
		// BusPower for a non-negative storage power (capMax ≥ 0, idle 0).
		tp.capMaxBus = (tp.capMax - cc.IdleLoss) * tp.etaCapBus
		tp.capBus = capBus0
		tp.capClamped = false
		if tp.capBus > tp.capMaxBus {
			tp.capBus = tp.capMaxBus
			tp.capClamped = true
		}
		tp.etaCapSto, tp.etaCapStoP = tp.etaCapBus, tp.etaCapBusP
		if tp.capBus >= 0 {
			tp.capStorage = tp.capBus/tp.etaCapSto + cc.IdleLoss
		} else {
			tp.capStorage = tp.capBus*tp.etaCapSto + cc.IdleLoss
		}
		tp.sCap = 0
		tp.capDiscZero = false
		tp.capI = 0
		if capESR > 0 {
			disc := tp.vcap*tp.vcap - 4*capESR*tp.capStorage
			if disc < 0 {
				disc = 0
				tp.capDiscZero = true
			}
			tp.sCap = math.Sqrt(disc)
			tp.capI = (tp.vcap - tp.sCap) / (2 * capESR)
		} else if tp.vcap > 0 {
			tp.capI = tp.capStorage / tp.vcap
		}
		tp.dEcap = (tp.capStorage + tp.capI*tp.capI*capESR) * dt
		tp.soePre = soe - tp.dEcap/capEnergy
		soe = tp.soePre
		if d := capMinSoE - soe; d > 0 {
			cost += stateWeight * d * d
		}
		tp.soeClampHi = false
		if d := soe - 1; d > 0 {
			cost += stateWeight * d * d
			soe = 1
			tp.soeClampHi = true
		}

		// --- Battery branch ---
		tp.battBus = load - tp.capBus
		tp.voc = cellOCVScale * cell.OCV(soc)
		cellR := cell.Resistance(soc, tb)
		tp.cellR = cellR
		tp.res = packResScale * cellR
		tp.etaBatt, tp.etaBattP = etaAt(bc.PeakEfficiency, bc.MinEfficiency, bc.NominalVoltage, bc.Droop, tp.voc)
		if tp.battBus >= 0 {
			tp.bsPre = tp.battBus/tp.etaBatt + bc.IdleLoss
		} else {
			tp.bsPre = tp.battBus*tp.etaBatt + bc.IdleLoss
		}
		tp.pmax = tp.voc * tp.voc / (4 * tp.res) * 0.98
		tp.battStorage = tp.bsPre
		tp.bsClamped = false
		if tp.bsPre > tp.pmax {
			d := (tp.bsPre - tp.pmax) / 1e3
			cost += 1e6 * d * d
			tp.battStorage = tp.pmax
			tp.bsClamped = true
		}
		disc := tp.voc*tp.voc - 4*tp.res*tp.battStorage
		tp.battDiscZero = false
		if disc < 0 {
			disc = 0
			tp.battDiscZero = true
		}
		tp.sBatt = math.Sqrt(disc)
		tp.i = (tp.voc - tp.sBatt) / (2 * tp.res)
		tp.overC6 = tp.i - packMaxI
		if tp.overC6 > 0 {
			cost += 1e3 * tp.overC6 * tp.overC6
		} else {
			tp.overC6 = 0
		}
		tp.cellI = tp.i / parallel
		// Inlined HeatRate: i²·R + i·T·dVoc/dT, reusing cellR (the same
		// R(soc, tb) the method would recompute).
		tp.heat = (tp.cellI*tp.cellI*cellR + tp.cellI*tb*dvocdt) * cells
		tp.aging = cell.AgingRate(math.Abs(tp.cellI), tb) * dt
		dEbat := tp.voc * tp.i * dt
		tp.socPre = soc - tp.i*dt/packCapC
		soc = tp.socPre
		if d := battMinSoC - soc; d > 0 {
			cost += stateWeight * d * d
		}
		tp.socClampHi = false
		if d := soc - 1; d > 0 {
			cost += stateWeight * d * d
			soc = 1
			tp.socClampHi = true
		}

		// --- Thermal network (closed-form CN, identical to CNStep2) ---
		r0 := cn.r0tb*tb + cn.r0tc*tc + tp.heat
		r1 := cn.r1tb*tb + cn.r1tc*tc + wAmbient + tp.qx
		tb = cn.i00*r0 + cn.i01*r1
		tc = cn.i10*r0 + cn.i11*r1
		tp.tb1, tp.tc1 = tb, tc
		if d := tb - safeTemp; d > 0 {
			cost += safeTempWeight * d * d
		}
		tw := (battHeatCap*tb + coolHeatCap*tc) / hcSum
		if d := tw - targetTemp; d > 0 {
			cost += tempPressureWeight / horizonF * d * d
		}

		// --- Outer-reference tracking (two-layer MPC) ---
		if trackSoC {
			d := soc - refS[k]
			cost += socRefW * d * d
		}
		if trackTb {
			d := tb - refT[k]
			cost += tbRefW * d * d
		}

		cost += w1*tp.pcool*dt + w2*tp.aging + w3*(dEbat+tp.dEcap)
	}

	if d := cfg.TEBTargetSoE - soe; d > 0 {
		cost += cfg.TEBWeight * r.capEnergy * d * d
	}
	return cost
}

// objectiveGrad computes the cost and writes ∂cost/∂z into grad via the
// adjoint sweep.
func (o *OTEM) objectiveGrad(z, grad []float64) float64 {
	r := &o.roll
	cfg := &o.cfg
	spec := o.planner.Spec()
	bs, nb, mIn := spec.BlockSize, spec.Blocks(), spec.InputsPerStep
	dt := r.dt
	cn := r.cnc

	if cap(o.tape) < cfg.Horizon {
		o.tape = make([]stepTape, cfg.Horizon)
	}
	tape := o.tape[:cfg.Horizon]
	// The solver always evaluates the objective at a point right before
	// requesting its gradient there (line-search accept, or the initial
	// f(x0)), so the tape usually already holds this z and the forward pass
	// can be skipped — same rows, same cost, bit-identical.
	var cost float64
	if o.tapeMatches(z) {
		cost = o.tapeCost
	} else {
		cost = o.objectiveFwd(z, tape)
		o.noteTape(z, cost)
	}

	for gi := range grad {
		grad[gi] = 0
	}

	// State adjoints at the end of the horizon.
	var asoc, asoe, atb, atc float64
	// Terminal TEB term: cost += W·(T − soe)² when T − soe > 0.
	soeEnd := tape[cfg.Horizon-1].soePre
	if tape[cfg.Horizon-1].soeClampHi {
		soeEnd = 1
	}
	if d := cfg.TEBTargetSoE - soeEnd; d > 0 {
		asoe += -2 * cfg.TEBWeight * r.capEnergy * d
	}

	hcSum := r.battHeatCap + r.coolHeatCap
	trackSoC, trackTb := o.trackSoC, o.trackTb
	refS, refT := o.refSoC, o.refTb
	socRefW, tbRefW := cfg.SoCRefWeight, cfg.TempRefWeight
	for k := cfg.Horizon - 1; k >= 0; k-- {
		tp := &tape[k]

		// --- Outer-reference tracking adjoints: the cost reads the
		// end-of-step states, so they join the carried adjoints before
		// this step's own terms. A clamped SoC has zero derivative and
		// the clamp handling below discards the incoming asoc anyway.
		if trackTb {
			atb += 2 * tbRefW * (tp.tb1 - refT[k])
		}
		if trackSoC {
			socEnd := tp.socPre
			if tp.socClampHi {
				socEnd = 1
			}
			asoc += 2 * socRefW * (socEnd - refS[k])
		}

		// --- Temperature penalties at tb1/tc1 ---
		atb1, atc1 := atb, atc
		if d := tp.tb1 - r.safeTemp; d > 0 {
			atb1 += 2 * cfg.SafeTempWeight * d
		}
		tw := (r.battHeatCap*tp.tb1 + r.coolHeatCap*tp.tc1) / hcSum
		if d := tw - cfg.TargetTemp; d > 0 {
			c := 2 * cfg.TempPressureWeight / float64(cfg.Horizon) * d
			atb1 += c * r.battHeatCap / hcSum
			atc1 += c * r.coolHeatCap / hcSum
		}

		// --- CN adjoint (M⁻¹ is symmetric) ---
		lr0 := cn.i00*atb1 + cn.i10*atc1
		lr1 := cn.i01*atb1 + cn.i11*atc1
		atb0 := cn.r0tb*lr0 + cn.r1tb*lr1
		atc0 := cn.r0tc*lr0 + cn.r1tc*lr1
		aheat := lr0
		aqx := lr1

		// --- SoC clamp/penalties ---
		asocPre := asoc
		if tp.socClampHi {
			asocPre = 2 * cfg.StateWeight * (tp.socPre - 1)
		}
		if d := r.battMinSoC - tp.socPre; d > 0 {
			asocPre += -2 * cfg.StateWeight * d
		}
		// soc' = soc0 − i·dt/capC
		asoc0 := asocPre
		ai := -asocPre * dt / r.packCapC

		// --- Running battery cost terms ---
		// dEbat = voc·i·dt (weight W3).
		avoc := cfg.W3 * tp.i * dt
		ai += cfg.W3 * tp.voc * dt
		// aging = rate(|cellI|, tb0)·dt (weight W2).
		acellI := 0.0
		absCell := math.Abs(tp.cellI)
		if absCell > 0 {
			dRdI := tp.aging * r.cell.L[2] / absCell // ∂(rate·dt)/∂|i|
			sign := 1.0
			if tp.cellI < 0 {
				sign = -1
			}
			acellI += cfg.W2 * dRdI * sign
			atb0 += cfg.W2 * tp.aging * r.cell.L[1] / (units.GasConstant * tp.tb0 * tp.tb0)
		}
		// heat = cells·(cellI²·R(soc,tb) + cellI·tb·dVocdT). cellR and the
		// shared R'(soc,tb) come off the tape / one call instead of three
		// redundant Resistance evaluations.
		cellR := tp.cellR
		rPrime := r.cell.ResistancePrime(tp.soc0, tp.tb0)
		dHdI := r.cells * (2*tp.cellI*cellR + tp.tb0*r.cell.DVocDT)
		dHdSoc := r.cells * tp.cellI * tp.cellI * rPrime
		dRdT := cellR * (-r.cell.Kr / (tp.tb0 * tp.tb0))
		dHdT := r.cells * (tp.cellI*tp.cellI*dRdT + tp.cellI*r.cell.DVocDT)
		acellI += aheat * dHdI
		asoc0 += aheat * dHdSoc
		atb0 += aheat * dHdT
		// C6 penalty.
		ai += acellI / r.parallel
		if tp.overC6 > 0 {
			ai += 2 * 1e3 * tp.overC6
		}

		// --- Current solve i = (voc − s)/(2res), s² = voc² − 4res·bs ---
		var abs_, avocI, aresI float64
		//lint:ignore floatcompare the adjoint must take the same branch the forward pass took; sBatt is exactly 0 iff the forward clamp fired
		if tp.battDiscZero || tp.sBatt == 0 {
			// i = voc/(2res) (s clamped to 0).
			avocI = ai / (2 * tp.res)
			aresI = -ai * tp.voc / (2 * tp.res * tp.res)
		} else {
			s := tp.sBatt
			avocI = ai * (1 - tp.voc/s) / (2 * tp.res)
			abs_ = ai / s
			aresI = ai * (4*tp.res*tp.battStorage/s - 2*(tp.voc-s)) / (4 * tp.res * tp.res)
		}
		avoc += avocI
		ares := aresI

		// --- pmax clamp ---
		absPre := abs_
		apmax := 0.0
		if tp.bsClamped {
			d := (tp.bsPre - tp.pmax) / 1e3
			absPre = 2 * 1e6 * d / 1e3 // penalty on bsPre
			apmax = abs_ - 2*1e6*d/1e3 // downstream flows to pmax, minus penalty
		}
		//lint:ignore floatcompare skip-if-zero fast path: apmax is exactly 0 iff no upstream adjoint flowed into pmax
		if apmax != 0 {
			avoc += apmax * 0.98 * 2 * tp.voc / (4 * tp.res)
			ares += -apmax * 0.98 * tp.voc * tp.voc / (4 * tp.res * tp.res)
		}

		// --- battery converter ---
		var abattBus float64
		if tp.battBus >= 0 {
			abattBus = absPre / tp.etaBatt
			if tp.etaBattP {
				avoc += -absPre * tp.battBus * (r.battConv.Droop / r.battConv.NominalVoltage) / (tp.etaBatt * tp.etaBatt)
			}
		} else {
			abattBus = absPre * tp.etaBatt
			if tp.etaBattP {
				avoc += absPre * tp.battBus * (r.battConv.Droop / r.battConv.NominalVoltage)
			}
		}

		// --- voc/res to soc0/tb0 ---
		asoc0 += avoc * r.cellOCVScale * r.cell.OCVPrime(tp.soc0)
		asoc0 += ares * r.packResScale * rPrime
		atb0 += ares * r.packResScale * dRdT

		// --- battBus = load − capBus ---
		aload := abattBus
		acapBus := -abattBus

		// --- SoE clamp/penalties ---
		asoePre := asoe
		if tp.soeClampHi {
			asoePre = 2 * cfg.StateWeight * (tp.soePre - 1)
		}
		if d := r.capMinSoE - tp.soePre; d > 0 {
			asoePre += -2 * cfg.StateWeight * d
		}
		asoe0 := asoePre
		adE := -asoePre/r.capEnergy + cfg.W3 // soe' = soe0 − dE/E; plus W3·dEcap

		// --- dEcap = (capStorage + capI²·Rc)·dt ---
		var acs, avcap float64
		if r.capESR > 0 {
			var dIdCS, dIdV float64
			//lint:ignore floatcompare the adjoint must take the same branch the forward pass took; sCap is exactly 0 iff the forward clamp fired
			if tp.capDiscZero || tp.sCap == 0 {
				dIdCS = 0
				dIdV = 1 / (2 * r.capESR)
			} else {
				dIdCS = 1 / tp.sCap
				dIdV = (1 - tp.vcap/tp.sCap) / (2 * r.capESR)
			}
			acs = adE * dt * (1 + 2*tp.capI*r.capESR*dIdCS)
			avcap = adE * dt * 2 * tp.capI * r.capESR * dIdV
		} else {
			acs = adE * dt
		}

		// --- capacitor converter (StoragePower) ---
		droopTerm := r.capConv.Droop / r.capConv.NominalVoltage
		if tp.capBus >= 0 {
			acapBus += acs / tp.etaCapSto
			if tp.etaCapStoP {
				avcap += -acs * tp.capBus * droopTerm / (tp.etaCapSto * tp.etaCapSto)
			}
		} else {
			acapBus += acs * tp.etaCapSto
			if tp.etaCapStoP {
				avcap += acs * tp.capBus * droopTerm
			}
		}

		// --- capBus clamp ---
		var acapU float64
		if tp.capClamped {
			// capBus = capMaxBus = (capMax − idle)·η(vcap)
			acmb := acapBus
			acapMax := acmb * tp.etaCapBus
			if tp.etaCapBusP {
				avcap += acmb * (tp.capMax - r.capConv.IdleLoss) * droopTerm
			}
			if tp.sagBranch {
				avcap += acapMax * 0.97 * 2 * tp.vcap / (4 * r.capESR)
			}
		} else {
			acapU = acapBus * cfg.CapPowerScale
		}

		// --- vcap = busV·sqrt(soe0) ---
		if !tp.vcapClamped {
			asoe0 += avcap * r.capBusV / (2 * math.Sqrt(tp.soe0))
		}

		// --- cooling controls ---
		apcool := aload + cfg.W1*dt
		acoolU := apcool*(r.coolerMax+r.pump) + aqx*(-r.coolEff*r.coolerMax)

		// --- accumulate into the blocked gradient ---
		b := k / bs
		if b >= nb {
			b = nb - 1
		}
		grad[b*mIn] += acapU
		grad[b*mIn+1] += acoolU

		asoc, asoe, atb, atc = asoc0, asoe0, atb0, atc0
	}
	return cost
}
