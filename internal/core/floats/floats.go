// Package floats provides the epsilon comparisons the simulator uses in
// place of floating-point == and !=.
//
// OTEM's outputs are accumulated sums of thousands of Euler steps (Eq. 19
// cost terms, Arrhenius aging in Eq. 14, converter losses), so two
// mathematically equal quantities rarely share a bit pattern. The
// floatcompare analyzer in internal/lint therefore forbids == and !=
// between floating-point operands across the module; this package is the
// sanctioned replacement. It is a leaf package (no imports beyond math) so
// every layer — physics, policy, experiments, CLIs — can depend on it
// without cycles.
package floats

import "math"

// Eps is the default absolute tolerance. The simulator works in SI units
// where the interesting magnitudes (fractions of SoC, kelvin, percent
// capacity loss) are O(1e-3)..O(1e3), so 1e-9 is far below any physical
// signal yet far above accumulated rounding noise of double precision.
const Eps = 1e-9

// Zero reports whether x is indistinguishable from zero at tolerance Eps.
// It is the replacement for `x == 0` guards, including "field left at its
// zero value" checks on config structs.
func Zero(x float64) bool { return ZeroTol(x, Eps) }

// ZeroTol reports whether |x| <= tol.
func ZeroTol(x, tol float64) bool { return math.Abs(x) <= tol }

// Eq reports whether a and b are equal to within Eps, absolutely for
// small magnitudes and relatively for large ones, so it stays meaningful
// both for SoC fractions and for multi-megajoule energy tallies.
func Eq(a, b float64) bool { return EqTol(a, b, Eps) }

// EqTol reports whether |a-b| <= tol*max(1, |a|, |b|).
func EqTol(a, b, tol float64) bool {
	if a == b { //lint:ignore floatcompare exact-equality fast path of the epsilon helper itself
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal infinities (and Inf vs finite) are never approximately
		// equal; without this guard Inf <= tol*Inf would say they are.
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
