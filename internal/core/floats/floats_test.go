package floats

import (
	"math"
	"testing"
)

func TestZero(t *testing.T) {
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true},
		{1e-12, true},
		{-1e-12, true},
		{Eps, true},
		{1e-6, false},
		{1, false},
		{math.Inf(1), false},
		{math.NaN(), false},
	}
	for _, c := range cases {
		if got := Zero(c.x); got != c.want {
			t.Errorf("Zero(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		// Relative tolerance: a megajoule tally off by a milli-joule.
		{3.6e6, 3.6e6 + 1e-3, true},
		{3.6e6, 3.6e6 + 10, false},
		{1, 1.001, false},
		{0, 1e-6, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTolVariants(t *testing.T) {
	if !ZeroTol(0.5, 0.6) {
		t.Error("ZeroTol(0.5, 0.6) = false, want true")
	}
	if ZeroTol(0.5, 0.4) {
		t.Error("ZeroTol(0.5, 0.4) = true, want false")
	}
	if !EqTol(10, 10.5, 0.1) { // 0.1*10.5 > 0.5
		t.Error("EqTol(10, 10.5, 0.1) = false, want true")
	}
	if EqTol(10, 12, 0.1) {
		t.Error("EqTol(10, 12, 0.1) = true, want false")
	}
}
