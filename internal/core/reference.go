package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// This file is the inner half of the two-layer hierarchical MPC (Amini,
// Sun & Kolmanovsky, arXiv 1809.10002): an outer scheduling layer turns
// route preview into slow SoC/temperature reference trajectories, and the
// flat OTEM controller gains (a) quadratic tracking terms that pull the
// horizon rollout toward those references and (b) a divergence trigger
// that forces an early replan when the realized state drifts past a
// tolerance. With zero tracking weights and disabled tolerances the
// controller is bit-identical to flat OTEM — a property the tests pin on
// every registered drive cycle.

// Reference is an outer-layer state trajectory for the inner controller
// to track. Entries are indexed by absolute plant step: SoC[t] and
// TempK[t] are the scheduled battery state of charge and temperature at
// the END of plant step t. The controller holds the pointer, so an outer
// replan may rewrite the slices in place and the next inner replan picks
// the new values up; the slices themselves must not be resized while
// installed.
type Reference struct {
	// SoC is the scheduled battery state-of-charge path (fractions).
	// Empty disables SoC tracking.
	SoC []float64
	// TempK is the scheduled battery-temperature path (kelvin). Empty
	// disables temperature tracking.
	TempK []float64
	// SoCTol forces an early inner replan when the realized SoC deviates
	// from the reference by more than this fraction; ≤ 0 disables the
	// trigger.
	SoCTol float64
	// TempTolK is SoCTol's temperature counterpart, kelvin.
	TempTolK float64
}

// SetReference installs (or, with nil, removes) the reference trajectory
// the tracking terms follow. The absolute step clock keeps running across
// calls so an outer layer can refresh the trajectory mid-route; use
// ResetClock when reusing the controller for a fresh route.
func (o *OTEM) SetReference(ref *Reference) { o.ref = ref }

// ResetClock rewinds the absolute step counter and invalidates the
// current plan, for reusing one controller instance across routes.
func (o *OTEM) ResetClock() {
	o.stepAbs = 0
	o.planValid = false
	o.cursor = 0
}

// Replans reports how many horizon problems the controller has solved.
func (o *OTEM) Replans() int { return o.replans }

// DivergenceReplans reports how many of those replans were forced early
// by the reference divergence trigger.
func (o *OTEM) DivergenceReplans() int { return o.nudges }

// prepareRefWindow latches the tracking gates and copies the horizon
// window of the installed reference into the objective's buffers. It runs
// once per replan, so the objective and adjoint read plain slices and
// booleans on every evaluation.
func (o *OTEM) prepareRefWindow() {
	o.trackSoC = false
	o.trackTb = false
	ref := o.ref
	if ref == nil {
		return
	}
	if o.cfg.SoCRefWeight > 0 && len(ref.SoC) > 0 {
		o.trackSoC = true
		fillWindow(o.refSoC, ref.SoC, o.stepAbs)
	}
	if o.cfg.TempRefWeight > 0 && len(ref.TempK) > 0 {
		o.trackTb = true
		fillWindow(o.refTb, ref.TempK, o.stepAbs)
	}
}

// fillWindow copies src[start:start+len(dst)] into dst, holding the last
// reference sample past the end of the route.
func fillWindow(dst, src []float64, start int) {
	last := src[len(src)-1]
	for k := range dst {
		if i := start + k; i < len(src) {
			dst[k] = src[i]
		} else {
			dst[k] = last
		}
	}
}

// refAt reads a reference sample, holding the last value past the end.
func refAt(s []float64, i int) float64 {
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// divergedFromRef reports whether the realized plant state has drifted
// past the installed reference's tolerances since the last completed
// step. It is the inner layer's replan trigger: false without a
// reference, at the first step, or with the tolerances disabled.
func (o *OTEM) divergedFromRef(p *sim.Plant) bool {
	ref := o.ref
	if ref == nil || o.stepAbs == 0 {
		return false
	}
	i := o.stepAbs - 1
	if ref.SoCTol > 0 && len(ref.SoC) > 0 &&
		math.Abs(p.HEES.Battery.SoC-refAt(ref.SoC, i)) > ref.SoCTol {
		return true
	}
	if ref.TempTolK > 0 && len(ref.TempK) > 0 &&
		math.Abs(p.Loop.BatteryTemp-refAt(ref.TempK, i)) > ref.TempTolK {
		return true
	}
	return false
}

// Trajectory receives the predicted state path of a PlanTrip solve, one
// sample per horizon step: the state at the end of each step, clamps
// applied exactly as the objective rollout applies them. The caller
// preallocates every slice to at least the horizon length so the warm
// path writes in place.
type Trajectory struct {
	SoC, SoE     []float64
	BatteryTempK []float64
	CoolantTempK []float64
}

// errTrajectoryShort builds the precondition error off the hot path.
//
//lint:coldpath precondition failure constructs the error outside the warm replan
func errTrajectoryShort(h int) error {
	return fmt.Errorf("core: trajectory buffers shorter than horizon %d", h)
}

// PlanTrip solves the horizon problem once from the plant's current state
// and extracts the predicted per-step state trajectory from the rollout
// tape. It is the outer layer's solver entry point: internal/hmpc runs a
// coarse-grid OTEM instance (one block per step, Δt = the block length)
// over the whole trip and turns the returned trajectory into the inner
// layer's Reference. The returned plan slice aliases the controller's
// plan buffer and is valid until the next solve. Successive calls warm
// start from the previous solution; call AdvanceWarmStart first when the
// trip window has shifted.
//
//lint:hotpath the warm outer replan fires mid-route on the divergence trigger; allocflow proves it allocation-free
func (o *OTEM) PlanTrip(p *sim.Plant, forecast []float64, traj *Trajectory) ([]float64, error) {
	h := o.cfg.Horizon
	if traj != nil && (len(traj.SoC) < h || len(traj.SoE) < h ||
		len(traj.BatteryTempK) < h || len(traj.CoolantTempK) < h) {
		return nil, errTrajectoryShort(h)
	}
	o.cursor = 0
	o.replan(p, forecast)
	if traj == nil {
		return o.plan, nil
	}
	// The solver's last objective evaluation is usually the accepted
	// point, so the tape already holds this rollout; otherwise replay the
	// forward pass at the final plan (same cost path as the line search).
	tape := o.tape[:h]
	if !o.tapeMatches(o.plan) {
		cost := o.objectiveFwd(o.plan, tape)
		o.noteTape(o.plan, cost)
	}
	for k := 0; k < h; k++ {
		tp := &tape[k]
		soc, soe := tp.socPre, tp.soePre
		if tp.socClampHi {
			soc = 1
		}
		if tp.soeClampHi {
			soe = 1
		}
		traj.SoC[k] = soc
		traj.SoE[k] = soe
		traj.BatteryTempK[k] = tp.tb1
		traj.CoolantTempK[k] = tp.tc1
	}
	return o.plan, nil
}

// AdvanceWarmStart shifts the planner's warm start by n executed horizon
// steps, aligning the previous PlanTrip solution with a trip window that
// has moved forward (receding-horizon reuse across outer replans).
func (o *OTEM) AdvanceWarmStart(n int) { o.planner.Advance(n) }
