package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/optimize"
	"repro/internal/sim"
	"repro/internal/units"
)

// trackingOTEM is randomizedOTEM plus an installed reference trajectory
// and nonzero tracking weights, with the replan-time window preparation
// applied the way replan would.
func trackingOTEM(t *testing.T, rng *rand.Rand) *OTEM {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Horizon = 20
	cfg.BlockSize = 5
	cfg.SoCRefWeight = 5e7
	cfg.TempRefWeight = 1e5
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plant.HEES.Battery.SoC = 0.3 + 0.65*rng.Float64()
	plant.HEES.Cap.SoE = 0.15 + 0.8*rng.Float64()
	plant.Loop.BatteryTemp = units.CToK(20 + 20*rng.Float64())
	plant.Loop.CoolantTemp = plant.Loop.BatteryTemp - 2*rng.Float64()

	ref := &Reference{SoC: make([]float64, 60), TempK: make([]float64, 60)}
	for i := range ref.SoC {
		ref.SoC[i] = 0.4 + 0.5*rng.Float64()
		ref.TempK[i] = units.CToK(22 + 12*rng.Float64())
	}
	o.SetReference(ref)
	o.stepAbs = rng.Intn(50) // may run the window off the end of the reference

	o.roll.capture(plant, o.cfg)
	o.prepareRefWindow()
	for k := range o.fc {
		o.fc[k] = -30e3 + 110e3*rng.Float64()
	}
	if !o.trackSoC || !o.trackTb {
		t.Fatal("tracking gates not latched")
	}
	return o
}

func TestTrackingGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		o := trackingOTEM(t, rng)
		dim := o.planner.Spec().Dim()
		z := make([]float64, dim)
		for i := range z {
			if i%2 == 0 {
				z[i] = -0.9 + 1.8*rng.Float64()
			} else {
				z[i] = 0.05 + 0.9*rng.Float64()
			}
		}
		analytic := make([]float64, dim)
		costA := o.objectiveGrad(z, analytic)
		costF := o.objective(z)
		if math.Abs(costA-costF) > 1e-9*math.Abs(costF) {
			t.Fatalf("trial %d: gradient forward cost %v != objective %v", trial, costA, costF)
		}
		numeric := make([]float64, dim)
		zCopy := append([]float64(nil), z...)
		optimize.NumericGradient(o.objective, zCopy, numeric)
		scale := 0.0
		for i := range numeric {
			scale = math.Max(scale, math.Abs(numeric[i]))
		}
		if scale == 0 {
			continue
		}
		for i := range numeric {
			if rel := math.Abs(analytic[i]-numeric[i]) / scale; rel > 2e-3 {
				t.Fatalf("trial %d dim %d: analytic %v vs numeric %v (rel %.2e)",
					trial, i, analytic[i], numeric[i], rel)
			}
		}
	}
}

func TestZeroWeightReferenceBitIdentical(t *testing.T) {
	// Installing a reference with zero tracking weights must not perturb
	// the objective by a single bit — the property the collapsed-outer
	// hierarchical identity test builds on.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		flat := randomizedOTEM(t, rng)

		withRef, err := New(flat.cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := &Reference{SoC: make([]float64, 40), TempK: make([]float64, 40)}
		for i := range ref.SoC {
			ref.SoC[i] = rng.Float64()
			ref.TempK[i] = units.CToK(20 + 15*rng.Float64())
		}
		withRef.SetReference(ref)
		withRef.stepAbs = 3
		withRef.roll = flat.roll
		copy(withRef.fc, flat.fc)
		withRef.prepareRefWindow()

		z := make([]float64, flat.planner.Spec().Dim())
		for i := range z {
			z[i] = -1 + 2*rng.Float64()
		}
		if a, b := flat.objective(z), withRef.objective(z); a != b {
			t.Fatalf("trial %d: zero-weight reference changed objective: %v != %v", trial, a, b)
		}
		ga := make([]float64, len(z))
		gb := make([]float64, len(z))
		flat.objectiveGrad(z, ga)
		withRef.objectiveGrad(z, gb)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("trial %d dim %d: zero-weight reference changed gradient: %v != %v", trial, i, ga[i], gb[i])
			}
		}
	}
}

func TestDivergenceTriggersEarlyReplan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 20
	cfg.BlockSize = 5
	cfg.ReplanInterval = 10
	cfg.SoCRefWeight = 1e6
	build := func(tol float64) (*OTEM, *sim.Plant) {
		o, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plant, err := sim.NewPlant(sim.PlantConfig{InitialSoC: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		// A reference far from anything the plant will realize, so any
		// positive tolerance trips immediately after the first step.
		ref := &Reference{SoC: make([]float64, 100), TempK: nil, SoCTol: tol}
		for i := range ref.SoC {
			ref.SoC[i] = 0.2
		}
		o.SetReference(ref)
		return o, plant
	}
	forecast := make([]float64, 20)
	for i := range forecast {
		forecast[i] = 30e3
	}

	o, plant := build(0.05)
	for i := 0; i < 6; i++ {
		o.Decide(plant, forecast)
	}
	if o.DivergenceReplans() == 0 {
		t.Fatal("expected divergence-forced replans with a tight tolerance")
	}

	o2, plant2 := build(0) // disabled trigger
	for i := 0; i < 6; i++ {
		o2.Decide(plant2, forecast)
	}
	if got := o2.DivergenceReplans(); got != 0 {
		t.Fatalf("disabled tolerance still forced %d replans", got)
	}
	if o2.Replans() != 1 {
		t.Fatalf("expected exactly 1 interval replan in 6 steps, got %d", o2.Replans())
	}
}

func TestPlanTripTrajectoryMatchesRollout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 16
	cfg.BlockSize = 1 // the outer layer's one-block-per-step geometry
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := sim.NewPlant(sim.PlantConfig{DT: 30, InitialSoC: 0.9, InitialSoE: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	forecast := make([]float64, 16)
	for i := range forecast {
		forecast[i] = 15e3 + 10e3*math.Sin(float64(i)/3)
	}
	traj := &Trajectory{
		SoC:          make([]float64, 16),
		SoE:          make([]float64, 16),
		BatteryTempK: make([]float64, 16),
		CoolantTempK: make([]float64, 16),
	}
	plan, err := o.PlanTrip(plant, forecast, traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != o.planner.Spec().Dim() {
		t.Fatalf("plan length %d != dim %d", len(plan), o.planner.Spec().Dim())
	}

	// Replay the rollout independently and compare the extracted states.
	tape := make([]stepTape, 16)
	o.objectiveFwd(plan, tape)
	for k := 0; k < 16; k++ {
		wantSoC, wantSoE := tape[k].socPre, tape[k].soePre
		if tape[k].socClampHi {
			wantSoC = 1
		}
		if tape[k].soeClampHi {
			wantSoE = 1
		}
		if traj.SoC[k] != wantSoC || traj.SoE[k] != wantSoE ||
			traj.BatteryTempK[k] != tape[k].tb1 || traj.CoolantTempK[k] != tape[k].tc1 {
			t.Fatalf("step %d: trajectory does not match rollout tape", k)
		}
	}
	// The trajectory must be physical: monotone SoC drain under pure
	// positive load is not guaranteed (regen is absent here), but states
	// must stay inside their windows.
	for k := 0; k < 16; k++ {
		if traj.SoC[k] < 0 || traj.SoC[k] > 1 || traj.SoE[k] < 0 || traj.SoE[k] > 1.0001 {
			t.Fatalf("step %d: unphysical trajectory state soc=%v soe=%v", k, traj.SoC[k], traj.SoE[k])
		}
		if traj.BatteryTempK[k] < 250 || traj.BatteryTempK[k] > 340 {
			t.Fatalf("step %d: unphysical temperature %v", k, traj.BatteryTempK[k])
		}
	}

	if _, err := o.PlanTrip(plant, forecast, &Trajectory{SoC: make([]float64, 2)}); err == nil {
		t.Fatal("short trajectory buffers must be rejected")
	}
}

func TestPlanTripWarmAllocsZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 12
	cfg.BlockSize = 1
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := sim.NewPlant(sim.PlantConfig{DT: 30})
	if err != nil {
		t.Fatal(err)
	}
	forecast := make([]float64, 12)
	for i := range forecast {
		forecast[i] = 20e3
	}
	traj := &Trajectory{
		SoC:          make([]float64, 12),
		SoE:          make([]float64, 12),
		BatteryTempK: make([]float64, 12),
		CoolantTempK: make([]float64, 12),
	}
	if _, err := o.PlanTrip(plant, forecast, traj); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	allocs := testing.AllocsPerRun(10, func() {
		plant.HEES.Battery.SoC -= 1e-4 // perturb so the solve is not a no-op
		if _, err := o.PlanTrip(plant, forecast, traj); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PlanTrip allocates %.1f times per call", allocs)
	}
	t.Logf("warm PlanTrip: %.2fms per solve", float64(time.Since(start).Milliseconds())/11)
}
