package core

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// uddsRequests returns the bus-power series of one UDDS repetition — the
// canonical workload for the simulation benchmarks (mild urban cycle, so the
// run exercises both battery-only cruising and capacitor-assisted bursts).
func uddsRequests(tb testing.TB) []float64 {
	tb.Helper()
	return vehicle.MidSizeEV().PowerSeries(drivecycle.UDDS())
}

// benchPlant builds the default paper plant.
func benchPlant(tb testing.TB) *sim.Plant {
	tb.Helper()
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	return plant
}

// BenchmarkSimStep measures the steady-state cost of one simulated second
// under the OTEM controller: each outer iteration runs a 600-step UDDS
// window on a fresh plant, so ns/op ÷ 600 is the per-step cost including
// every 4th-step replan.
func BenchmarkSimStep(b *testing.B) {
	requests := uddsRequests(b)[:600]
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plant := benchPlant(b)
		o, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(plant, o, requests, sim.Config{Horizon: cfg.Horizon})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Steps), "steps/op")
		}
	}
}

const (
	// simBenchAllocBudget is the committed ceiling on steady-state heap
	// allocations per simulated step. The hot path (replan + plant step)
	// allocates nothing once warm, so per-run allocations are dominated by
	// the fixed plant/controller construction; 0.05 allocs/step leaves room
	// for measurement noise while still failing on a single stray
	// per-replan allocation (≈0.25/step at ReplanInterval 4).
	simBenchAllocBudget = 0.05
	// simBenchSetupAllowance covers the one-time construction cost per
	// benchmark iteration (plant, controller, solver buffers — ≈44 allocs
	// measured) that is independent of the step count.
	simBenchSetupAllowance = 120
)

// simBenchReport is the BENCH_sim.json schema produced by `make sim-bench`.
type simBenchReport struct {
	Benchmark     string  `json:"benchmark"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Steps         int     `json:"steps"`
	Runs          int     `json:"runs"`
	NsPerStep     float64 `json:"ns_per_step"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	BytesPerStep  float64 `json:"bytes_per_step"`
	AllocBudget   float64 `json:"alloc_budget_allocs_per_step"`
}

// TestSimBenchJSON is the `make sim-bench` harness: a full UDDS drive cycle
// under the OTEM controller, timed with testing.Benchmark, per-step cost and
// allocation numbers written to the path in SIM_BENCH_JSON. Without the
// environment variable the test runs a short smoke window (nothing written)
// so plain `go test ./...` stays fast. In both modes it fails if the
// per-step allocation count exceeds the committed budget — the CI guard
// against hot-path regressions.
func TestSimBenchJSON(t *testing.T) {
	out := os.Getenv("SIM_BENCH_JSON")
	requests := uddsRequests(t)
	name := "DriveCycleUDDS"
	if out == "" {
		requests = requests[:120]
		name = "DriveCycleUDDS/smoke"
	}
	cfg := DefaultConfig()

	var steps int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plant := benchPlant(b)
			o, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r, err := sim.Run(plant, o, requests, sim.Config{Horizon: cfg.Horizon})
			if err != nil {
				b.Fatal(err)
			}
			steps = r.Steps
		}
	})
	if steps == 0 || res.N == 0 {
		t.Fatal("benchmark did not run")
	}

	allocsPerRun := float64(res.MemAllocs) / float64(res.N)
	bytesPerRun := float64(res.MemBytes) / float64(res.N)
	nsPerStep := float64(res.NsPerOp()) / float64(steps)
	report := simBenchReport{
		Benchmark:     name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Steps:         steps,
		Runs:          res.N,
		NsPerStep:     nsPerStep,
		StepsPerSec:   1e9 / nsPerStep,
		AllocsPerStep: allocsPerRun / float64(steps),
		BytesPerStep:  bytesPerRun / float64(steps),
		AllocBudget:   simBenchAllocBudget,
	}
	t.Logf("%s: %d steps, %.0f ns/step, %.0f steps/sec, %.3f allocs/step",
		name, steps, report.NsPerStep, report.StepsPerSec, report.AllocsPerStep)

	// The regression gate: per-run allocations are a fixed construction cost
	// plus the steady-state per-step budget. A single stray allocation on
	// the replan path blows through this immediately.
	if limit := simBenchSetupAllowance + simBenchAllocBudget*float64(steps); allocsPerRun > limit {
		t.Errorf("allocation regression: %.1f allocs/run over %d steps, limit %.1f (budget %.2f allocs/step + %d setup)",
			allocsPerRun, steps, limit, simBenchAllocBudget, simBenchSetupAllowance)
	}

	if out == "" {
		return
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// BenchmarkDriveCycle measures a full UDDS route (≈1369 steps) under OTEM —
// the number `make sim-bench` tracks in BENCH_sim.json.
func BenchmarkDriveCycle(b *testing.B) {
	requests := uddsRequests(b)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plant := benchPlant(b)
		o, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(plant, o, requests, sim.Config{Horizon: cfg.Horizon})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Steps), "steps/op")
		}
	}
}
