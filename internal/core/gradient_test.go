package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/optimize"
	"repro/internal/sim"
	"repro/internal/units"
)

// randomizedOTEM builds a controller with a captured random-but-physical
// plant state and forecast.
func randomizedOTEM(t *testing.T, rng *rand.Rand) *OTEM {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Horizon = 20
	cfg.BlockSize = 5
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plant.HEES.Battery.SoC = 0.3 + 0.65*rng.Float64()
	plant.HEES.Cap.SoE = 0.15 + 0.8*rng.Float64()
	plant.Loop.BatteryTemp = units.CToK(20 + 20*rng.Float64())
	plant.Loop.CoolantTemp = plant.Loop.BatteryTemp - 2*rng.Float64()
	o.roll.capture(plant, o.cfg)
	for k := range o.fc {
		o.fc[k] = -30e3 + 110e3*rng.Float64()
	}
	return o
}

func TestObjectiveFwdMatchesObjective(t *testing.T) {
	// The taped forward pass must be bit-identical to the plain objective.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		o := randomizedOTEM(t, rng)
		z := make([]float64, o.planner.Spec().Dim())
		for i := range z {
			if i%2 == 0 {
				z[i] = -1 + 2*rng.Float64()
			} else {
				z[i] = rng.Float64()
			}
		}
		plain := o.objective(z)
		tape := make([]stepTape, o.cfg.Horizon)
		taped := o.objectiveFwd(z, tape)
		if plain != taped {
			t.Fatalf("trial %d: taped forward %v != plain %v", trial, taped, plain)
		}
	}
}

func TestAnalyticGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	worstRel := 0.0
	for trial := 0; trial < 40; trial++ {
		o := randomizedOTEM(t, rng)
		dim := o.planner.Spec().Dim()
		z := make([]float64, dim)
		for i := range z {
			if i%2 == 0 {
				z[i] = -0.9 + 1.8*rng.Float64()
			} else {
				z[i] = 0.05 + 0.9*rng.Float64()
			}
		}
		analytic := make([]float64, dim)
		costA := o.objectiveGrad(z, analytic)
		costF := o.objective(z)
		if math.Abs(costA-costF) > 1e-9*math.Abs(costF) {
			t.Fatalf("trial %d: gradient forward cost %v != objective %v", trial, costA, costF)
		}
		numeric := make([]float64, dim)
		zCopy := append([]float64(nil), z...)
		optimize.NumericGradient(o.objective, zCopy, numeric)

		scale := 0.0
		for i := range numeric {
			scale = math.Max(scale, math.Abs(numeric[i]))
		}
		if scale == 0 {
			continue
		}
		for i := range numeric {
			rel := math.Abs(analytic[i]-numeric[i]) / scale
			if rel > worstRel {
				worstRel = rel
			}
			// Finite differences near clamp kinks legitimately disagree;
			// the tolerance below is loose enough for smooth regions and a
			// few trials crossing kinks still pass on the max-scale metric.
			if rel > 2e-3 {
				t.Fatalf("trial %d dim %d: analytic %v vs numeric %v (rel %.2e, scale %.3g)",
					trial, i, analytic[i], numeric[i], rel, scale)
			}
		}
	}
	t.Logf("worst relative gradient deviation: %.3e", worstRel)
}

func TestAnalyticGradientMatchesOnRegenAndSaturation(t *testing.T) {
	// Exercise the regen (negative request) and saturated-control corners.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		o := randomizedOTEM(t, rng)
		for k := range o.fc {
			o.fc[k] = -40e3 // heavy regen throughout
		}
		dim := o.planner.Spec().Dim()
		z := make([]float64, dim)
		for i := range z {
			if i%2 == 0 {
				z[i] = -0.8 // charging the capacitor hard
			} else {
				z[i] = 0.9
			}
		}
		analytic := make([]float64, dim)
		o.objectiveGrad(z, analytic)
		numeric := make([]float64, dim)
		optimize.NumericGradient(o.objective, z, numeric)
		scale := 0.0
		for i := range numeric {
			scale = math.Max(scale, math.Abs(numeric[i]))
		}
		for i := range numeric {
			if math.Abs(analytic[i]-numeric[i]) > 2e-3*scale+1e-9 {
				t.Fatalf("regen trial %d dim %d: %v vs %v", trial, i, analytic[i], numeric[i])
			}
		}
	}
}

func TestAnalyticGradientProducesSameControl(t *testing.T) {
	// End to end: an OTEM run with the adjoint must match the headline
	// metrics of a numeric-gradient run closely (they may differ slightly
	// because optimizer paths diverge at round-off, but the physics must
	// agree).
	requests := make([]float64, 200)
	for i := range requests {
		requests[i] = 20e3 + 15e3*math.Sin(float64(i)/20)
	}
	run := func(numeric bool) sim.Result {
		cfg := DefaultConfig()
		cfg.Horizon = 20
		cfg.BlockSize = 5
		cfg.ReplanInterval = 5
		cfg.NumericGradient = numeric
		plant, err := sim.NewPlant(sim.PlantConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(false)
	n := run(true)
	if math.Abs(a.QlossPct-n.QlossPct) > 0.03*n.QlossPct {
		t.Errorf("adjoint run qloss %v deviates from numeric %v", a.QlossPct, n.QlossPct)
	}
	if math.Abs(a.HEESEnergyJ-n.HEESEnergyJ) > 0.03*n.HEESEnergyJ {
		t.Errorf("adjoint run energy %v deviates from numeric %v", a.HEESEnergyJ, n.HEESEnergyJ)
	}
}
