package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestPlannerBeatsExhaustiveGrid validates the inner solver end to end: on
// a realistic snapshot, the continuous optimiser's plan must cost no more
// than the best point of an exhaustive grid over the same blocked decision
// space (the grid is a lower-resolution search of the identical objective,
// so the continuous solution should match or beat it).
func TestPlannerBeatsExhaustiveGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 15
	cfg.BlockSize = 5 // 3 blocks × 2 inputs = 6 decision variables
	cfg.ReplanInterval = 5
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A demanding snapshot: warm battery, half-charged capacitor, burst in
	// the forecast.
	plant.Loop.BatteryTemp = units.CToK(34)
	plant.Loop.CoolantTemp = units.CToK(33)
	plant.HEES.Battery.SoC = 0.7
	plant.HEES.Cap.SoE = 0.5
	o.roll.capture(plant, o.cfg)
	for k := range o.fc {
		if k >= 5 && k < 10 {
			o.fc[k] = 70e3
		} else {
			o.fc[k] = 5e3
		}
	}

	plan, _, err := o.planner.Plan(o.objective)
	if err != nil {
		t.Fatal(err)
	}
	planCost := o.objective(plan)

	// Exhaustive grid: 7 capU levels × 5 coolU levels per block = 35³
	// combinations.
	capLevels := []float64{-1, -0.5, -0.2, 0, 0.2, 0.5, 1}
	coolLevels := []float64{0, 0.25, 0.5, 0.75, 1}
	z := make([]float64, 6)
	best := planCost + 1e18
	for _, c0 := range capLevels {
		for _, k0 := range coolLevels {
			for _, c1 := range capLevels {
				for _, k1 := range coolLevels {
					for _, c2 := range capLevels {
						for _, k2 := range coolLevels {
							z[0], z[1] = c0, k0
							z[2], z[3] = c1, k1
							z[4], z[5] = c2, k2
							if f := o.objective(z); f < best {
								best = f
							}
						}
					}
				}
			}
		}
	}
	// Allow a hair of slack for line-search termination.
	if planCost > best*1.0005 {
		t.Errorf("planner cost %.0f exceeds exhaustive grid best %.0f", planCost, best)
	}
}
