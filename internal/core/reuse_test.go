package core

import (
	"testing"

	"repro/internal/sim"
)

// warmOTEM builds a plant and a controller and runs enough warm replans that
// every internal buffer has reached its steady-state size.
func warmOTEM(tb testing.TB) (*OTEM, *sim.Plant, []float64) {
	tb.Helper()
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := New(DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	forecast := make([]float64, o.cfg.Horizon)
	for k := range forecast {
		forecast[k] = 30e3
	}
	for i := 0; i < 3; i++ {
		o.replan(plant, forecast)
	}
	return o, plant, forecast
}

// TestReplanReusesBuffers pins the tentpole invariant behind the zero-alloc
// numbers: once warm, successive replans write into the same backing arrays —
// the tape, the plan, the forecast pad and the tape key are never reallocated.
// Identity is checked by element address, which is stable exactly when the
// backing array is reused (no unsafe needed).
func TestReplanReusesBuffers(t *testing.T) {
	o, plant, forecast := warmOTEM(t)

	tape0 := &o.tape[0]
	plan0 := &o.plan[0]
	fc0 := &o.fc[0]
	tapeZ0 := &o.tapeZ[0]
	planCap, tapeZCap := cap(o.plan), cap(o.tapeZ)

	for i := 0; i < 2; i++ {
		o.replan(plant, forecast)
		if &o.tape[0] != tape0 {
			t.Fatalf("replan %d reallocated the adjoint tape", i)
		}
		if &o.plan[0] != plan0 || cap(o.plan) != planCap {
			t.Fatalf("replan %d reallocated the plan buffer", i)
		}
		if &o.fc[0] != fc0 {
			t.Fatalf("replan %d reallocated the forecast pad", i)
		}
		if &o.tapeZ[0] != tapeZ0 || cap(o.tapeZ) != tapeZCap {
			t.Fatalf("replan %d reallocated the tape key", i)
		}
	}
}

// TestReplanSteadyStateAllocsZero is the headline acceptance check: a warm
// replan — rollout capture, forecast pad, warm-started L-BFGS solve with
// adjoint gradients, plan copy-out — performs zero heap allocations.
func TestReplanSteadyStateAllocsZero(t *testing.T) {
	o, plant, forecast := warmOTEM(t)
	allocs := testing.AllocsPerRun(10, func() {
		o.replan(plant, forecast)
	})
	if allocs > 0 {
		t.Errorf("warm replan allocated %.1f times per run, want 0", allocs)
	}
}

// TestTapeReuseSkipsForwardPass verifies the tape cache is both hit and
// correct: a gradient request at the decision vector the objective last
// evaluated must produce exactly the gradient of a cold evaluation.
func TestTapeReuseSkipsForwardPass(t *testing.T) {
	o, _, _ := warmOTEM(t)

	z := make([]float64, o.planner.Spec().Dim())
	for i := range z {
		z[i] = 0.25
	}
	// Objective records the tape at z; the gradient call should reuse it.
	cost := o.objective(z)
	if !o.tapeMatches(z) {
		t.Fatal("tape not recorded by objective evaluation")
	}
	gWarm := make([]float64, len(z))
	if got := o.objectiveGrad(z, gWarm); got != cost {
		t.Fatalf("cached forward cost = %v, want %v", got, cost)
	}

	// Invalidate the cache and recompute from scratch.
	o.tapeValid = false
	gCold := make([]float64, len(z))
	costCold := o.objectiveGrad(z, gCold)
	if costCold != cost {
		t.Fatalf("cold forward cost = %v, want %v", costCold, cost)
	}
	for i := range gCold {
		if gWarm[i] != gCold[i] {
			t.Fatalf("grad[%d]: cached %v != cold %v", i, gWarm[i], gCold[i])
		}
	}
}
