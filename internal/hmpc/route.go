package hmpc

import (
	"math"

	"repro/internal/core/floats"
	"repro/internal/drivecycle"
	"repro/internal/fleet"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// comfortK is the cabin comfort point at which the HVAC draws nothing —
// the same constant internal/vehicle uses for its power series.
const comfortK = 295.0

// Segment is one stretch of a previewed route: what a connected-vehicle
// traffic service knows about the road ahead, at segment (not per-second)
// resolution.
type Segment struct {
	// Seconds is the segment duration at the previewed traffic speed.
	Seconds float64
	// MeanSpeed is the expected traffic speed over the segment, m/s.
	MeanSpeed float64
	// GradePct is the mean road grade, rise over run × 100.
	GradePct float64
	// MeanPowerW optionally carries the expected mean bus power demand
	// over the segment (traction + HVAC), watts. Zero derives it from
	// MeanSpeed/GradePct through the vehicle model instead.
	MeanPowerW float64
}

// Route is a segment-level route preview. It deliberately carries less
// information than a realized drive cycle: the outer planner sees block
// means, never the per-second burst structure the inner layer reacts to.
type Route struct {
	// Name identifies the route in plans and logs.
	Name string
	// AmbientK is the previewed outside-air temperature, kelvin.
	AmbientK float64
	// Segments is the route in driving order.
	Segments []Segment
}

// Duration returns the previewed route length in seconds.
func (r Route) Duration() float64 {
	var total float64
	for _, s := range r.Segments {
		total += s.Seconds
	}
	return total
}

// RouteFromCycle condenses a drive cycle into a segment-level preview:
// mean traffic speed and expected mean power per segSeconds stretch. This
// is the information loss a real preview has — the outer layer knows each
// segment's expected demand, not when inside it the bursts land.
func RouteFromCycle(c *drivecycle.Cycle, p vehicle.Params, segSeconds, ambientK float64) Route {
	power := p.PowerSeriesAt(c, ambientK)
	segSamples := int(math.Round(segSeconds / c.DT))
	if segSamples < 1 {
		segSamples = 1
	}
	var segs []Segment
	for lo := 0; lo < len(power); lo += segSamples {
		hi := lo + segSamples
		if hi > len(power) {
			hi = len(power)
		}
		var sumV, sumP float64
		for i := lo; i < hi; i++ {
			sumV += c.Speed[i]
			sumP += power[i]
		}
		n := float64(hi - lo)
		segs = append(segs, Segment{
			Seconds:    n * c.DT,
			MeanSpeed:  sumV / n,
			MeanPowerW: sumP / n,
		})
	}
	return Route{Name: c.Name, AmbientK: ambientK, Segments: segs}
}

// SynthCycle synthesizes a route realization from the fleet scenario
// model, so hierarchical-MPC studies and fleet sweeps draw from one route
// distribution.
func SynthCycle(usage fleet.UsageClass, seconds float64, seed int64) (*drivecycle.Cycle, error) {
	return drivecycle.Synthesize(fleet.SynthConfigFor(usage, seconds, seed))
}

// segmentPower returns a segment's expected bus power demand: the carried
// MeanPowerW when the preview supplies one, otherwise the vehicle model
// at the segment's mean speed and grade plus the HVAC load.
func (r Route) segmentPower(p vehicle.Params, s Segment) float64 {
	if !floats.Zero(s.MeanPowerW) {
		return s.MeanPowerW
	}
	v := s.MeanSpeed
	bus := p.BusPower(v, 0)
	if !floats.Zero(s.GradePct) {
		grade := s.GradePct / 100
		gp := p.Mass * units.Gravity * grade / math.Sqrt(1+grade*grade) * v
		if gp > 0 {
			gp /= p.DrivetrainEff
		} else {
			gp *= p.RegenEff
		}
		bus += gp
	}
	return bus + p.HVACPerKelvin*math.Abs(r.AmbientK-comfortK)
}

// Preview expands the route into the per-step expected power series the
// outer planner block-averages: each segment's expected power held
// constant over its duration, sampled every dt seconds. dst is reused
// when it has the capacity.
func (r Route) Preview(p vehicle.Params, dt float64, dst []float64) []float64 {
	steps := int(math.Ceil(r.Duration() / dt))
	if cap(dst) < steps {
		dst = make([]float64, steps)
	}
	dst = dst[:steps]
	i := 0
	carried := 0.0 // accumulated segment time not yet emitted as steps
	for _, s := range r.Segments {
		pw := r.segmentPower(p, s)
		carried += s.Seconds
		for carried >= dt-1e-9 && i < steps {
			dst[i] = pw
			i++
			carried -= dt
		}
	}
	for ; i < steps; i++ {
		dst[i] = 0
	}
	return dst
}
