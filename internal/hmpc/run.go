package hmpc

import (
	"context"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Result is one hierarchical run: the simulation result plus the
// route-start outer plan and the layer replan counters.
type Result struct {
	sim.Result
	// Plan is the outer plan solved at the route start (what POST
	// /v1/plan returns for the same spec).
	Plan *Plan
	// OuterReplans counts outer solves including the route-start one;
	// InnerReplans the inner horizon solves; DivergenceReplans the inner
	// solves forced early by the reference trigger.
	OuterReplans, InnerReplans, DivergenceReplans int
}

// Build constructs the full two-layer stack for a spec: the realized
// request series, the plant, and the hierarchical controller with its
// route-start outer plan already solved and installed.
func Build(spec Spec) (*Controller, *sim.Plant, []float64, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, nil, nil, err
	}
	cycle, err := spec.route()
	if err != nil {
		return nil, nil, nil, err
	}
	params := vehicle.MidSizeEV()
	// The realized series the simulation drives: per-second power from
	// the actual speed trace. The outer layer never sees it — only the
	// segment-level preview below.
	requests := params.PowerSeriesAt(cycle, spec.AmbientK)
	route := RouteFromCycle(cycle, params, spec.BlockSeconds, spec.AmbientK)
	preview := route.Preview(params, cycle.DT, make([]float64, 0, len(requests)))

	plantCfg := sim.PlantConfig{UltracapF: spec.UltracapF, Ambient: spec.AmbientK, DT: cycle.DT}
	plant, err := sim.NewPlant(plantCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	planner, err := NewPlanner(spec, preview, plantCfg)
	if err != nil {
		return nil, nil, nil, err
	}

	innerCfg := core.DefaultConfig()
	innerCfg.Horizon = spec.Horizon
	innerCfg.SoCRefWeight = enabled(spec.SoCRefWeight)
	innerCfg.TempRefWeight = enabled(spec.TempRefWeight)
	inner, err := core.New(innerCfg)
	if err != nil {
		return nil, nil, nil, err
	}

	// Solve the route-start outer plan from the plant's initial state —
	// the same state the simulation starts from — and install the
	// reference before the first inner decision.
	if err := planner.Replan(plant, 0); err != nil {
		return nil, nil, nil, err
	}
	inner.SetReference(planner.Reference())

	ctrl := &Controller{planner: planner, inner: inner, initial: planner.Snapshot()}
	return ctrl, plant, requests, nil
}

// PlanRoute solves only the outer layer: the cacheable per-route plan.
func PlanRoute(spec Spec) (*Plan, error) {
	ctrl, _, _, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return ctrl.Plan(), nil
}

// Run simulates the two-layer controller over the spec's route. cfg's
// Horizon defaults to the spec's inner horizon.
func Run(ctx context.Context, spec Spec, cfg sim.Config) (*Result, error) {
	ctrl, plant, requests, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = ctrl.planner.spec.Horizon
	}
	res, err := sim.RunContext(ctx, plant, ctrl, requests, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Result:            res,
		Plan:              ctrl.Plan(),
		OuterReplans:      ctrl.OuterReplans(),
		InnerReplans:      ctrl.InnerReplans(),
		DivergenceReplans: ctrl.DivergenceReplans(),
	}, nil
}
