package hmpc

import (
	"errors"
	"fmt"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/core/floats"
	"repro/internal/drivecycle"
	"repro/internal/fleet"
)

// ErrBadSpec marks spec validation failures so transport layers can map
// them onto client-error statuses; match with errors.Is.
var ErrBadSpec = errors.New("hmpc: invalid spec")

// Spec parameterises one hierarchical run: the route (a registered cycle
// or a synthesized fleet-class realization), the plant, and the two-layer
// geometry. The zero value takes the defaults below. Because the weights
// and tolerances default to nonzero values, a NEGATIVE value is the
// explicit off switch — the collapsed-outer identity test relies on it.
type Spec struct {
	// Cycle names a registered drive cycle; empty synthesizes a route
	// from Usage/RouteSeconds/Seed instead.
	Cycle string
	// Usage is the fleet usage class shaping a synthesized route
	// (commuter, delivery, highway).
	Usage string
	// Seed drives the route synthesiser.
	Seed int64
	// RouteSeconds is the synthesized route duration.
	RouteSeconds float64
	// Repeats drives the route back to back this many times.
	Repeats int
	// UltracapF sizes the ultracapacitor bank, farads.
	UltracapF float64
	// AmbientK is the outside-air temperature, kelvin.
	AmbientK float64
	// Horizon is the inner controller's window, steps.
	Horizon int
	// BlockSeconds is the outer coarse-grid block length.
	BlockSeconds float64
	// MaxBlocks caps the outer horizon; 1 collapses the outer layer to a
	// single block.
	MaxBlocks int
	// SoCRefWeight and TempRefWeight are the inner tracking weights
	// (core.Config); negative disables tracking.
	SoCRefWeight, TempRefWeight float64
	// SoCTol and TempTolK are the inner early-replan divergence
	// tolerances; negative disables the trigger.
	SoCTol, TempTolK float64
	// OuterSoCTol and OuterTempTolK trigger a full outer re-plan of the
	// remaining trip; negative disables.
	OuterSoCTol, OuterTempTolK float64
}

// offable implements the 0-means-default / negative-means-off convention
// for a tunable with a nonzero default. Negative values pass through
// unchanged (every consumer treats "> 0" as enabled), which keeps
// withDefaults idempotent: a resolved spec re-resolves to itself.
func offable(v, def float64) float64 {
	if floats.Zero(v) {
		return def
	}
	return v
}

// enabled clamps an offable tunable at its point of use: negative (the
// explicit off switch) reads as zero.
func enabled(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// withDefaults fills unset fields with the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Cycle == "" && s.Usage == "" {
		s.Usage = string(fleet.UsageCommuter)
	}
	if s.Cycle == "" && floats.Zero(s.RouteSeconds) {
		s.RouteSeconds = 900
	}
	if s.Cycle == "" && s.Seed == 0 {
		s.Seed = 1
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if floats.Zero(s.UltracapF) {
		s.UltracapF = 25000
	}
	if floats.Zero(s.AmbientK) {
		s.AmbientK = 298
	}
	if s.Horizon == 0 {
		s.Horizon = core.DefaultConfig().Horizon
	}
	if floats.Zero(s.BlockSeconds) {
		s.BlockSeconds = 30
	}
	if s.MaxBlocks == 0 {
		s.MaxBlocks = 64
	}
	s.SoCRefWeight = offable(s.SoCRefWeight, 2e6)
	s.TempRefWeight = offable(s.TempRefWeight, 4e4)
	s.SoCTol = offable(s.SoCTol, 0.04)
	s.TempTolK = offable(s.TempTolK, 1.5)
	s.OuterSoCTol = offable(s.OuterSoCTol, 0.08)
	s.OuterTempTolK = offable(s.OuterTempTolK, 3)
	return s
}

// Validate reports an error for an unusable spec (after defaults).
func (s Spec) Validate() error {
	switch {
	case s.Cycle == "" && s.Usage != string(fleet.UsageCommuter) &&
		s.Usage != string(fleet.UsageDelivery) && s.Usage != string(fleet.UsageHighway):
		return fmt.Errorf("%w: unknown usage class %q", ErrBadSpec, s.Usage)
	case s.Cycle == "" && (s.RouteSeconds < 60 || s.RouteSeconds > 7200):
		return fmt.Errorf("%w: RouteSeconds = %g outside [60, 7200]", ErrBadSpec, s.RouteSeconds)
	case s.Repeats < 1 || s.Repeats > 50:
		return fmt.Errorf("%w: Repeats = %d outside [1, 50]", ErrBadSpec, s.Repeats)
	case s.UltracapF <= 0:
		return fmt.Errorf("%w: UltracapF = %g, must be > 0", ErrBadSpec, s.UltracapF)
	case s.AmbientK < 230 || s.AmbientK > 330:
		return fmt.Errorf("%w: AmbientK = %g outside [230, 330]", ErrBadSpec, s.AmbientK)
	case s.Horizon < 1:
		return fmt.Errorf("%w: Horizon = %d, must be >= 1", ErrBadSpec, s.Horizon)
	case s.BlockSeconds < 1:
		return fmt.Errorf("%w: BlockSeconds = %g, must be >= 1", ErrBadSpec, s.BlockSeconds)
	case s.MaxBlocks < 1 || s.MaxBlocks > 256:
		return fmt.Errorf("%w: MaxBlocks = %d outside [1, 256]", ErrBadSpec, s.MaxBlocks)
	}
	return nil
}

// AppendCanonical implements canon.Spec: every field that influences the
// outer plan or the hierarchical run, post-defaults and in fixed order.
// The serve plan cache keys on this encoding.
func (s Spec) AppendCanonical(dst []byte) []byte {
	s = s.withDefaults()
	dst = append(dst, "otem.hmpc"...)
	dst = canon.Str(dst, "c", s.Cycle)
	dst = canon.Str(dst, "g", s.Usage)
	dst = canon.Int64(dst, "s", s.Seed)
	dst = canon.Float(dst, "r", s.RouteSeconds)
	dst = canon.Int(dst, "n", s.Repeats)
	dst = canon.Float(dst, "u", s.UltracapF)
	dst = canon.Float(dst, "a", s.AmbientK)
	dst = canon.Int(dst, "h", s.Horizon)
	dst = canon.Float(dst, "b", s.BlockSeconds)
	dst = canon.Int(dst, "mb", s.MaxBlocks)
	dst = canon.Float(dst, "ws", s.SoCRefWeight)
	dst = canon.Float(dst, "wt", s.TempRefWeight)
	dst = canon.Float(dst, "ts", s.SoCTol)
	dst = canon.Float(dst, "tt", s.TempTolK)
	dst = canon.Float(dst, "os", s.OuterSoCTol)
	dst = canon.Float(dst, "ot", s.OuterTempTolK)
	return dst
}

// route resolves the spec's realized drive cycle.
func (s Spec) route() (*drivecycle.Cycle, error) {
	var (
		c   *drivecycle.Cycle
		err error
	)
	if s.Cycle != "" {
		c, err = drivecycle.ByName(s.Cycle)
	} else {
		c, err = SynthCycle(fleet.UsageClass(s.Usage), s.RouteSeconds, s.Seed)
	}
	if err != nil {
		return nil, err
	}
	if s.Repeats > 1 {
		c = c.Repeat(s.Repeats)
	}
	return c, nil
}

var _ canon.Spec = Spec{}
