package hmpc

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/canon"
	"repro/internal/drivecycle"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func TestSpecCanonicalStable(t *testing.T) {
	// The canonical encoding is a cache key: defaults must be folded in so
	// an empty spec and a spelled-out default spec share one entry.
	empty := canon.String(Spec{})
	spelled := canon.String(Spec{
		Usage: "commuter", Seed: 1, RouteSeconds: 900, Repeats: 1,
		UltracapF: 25000, AmbientK: 298, Horizon: 40, BlockSeconds: 30, MaxBlocks: 64,
	})
	if empty != spelled {
		t.Fatalf("defaulted encodings differ:\n%s\n%s", empty, spelled)
	}
	if !strings.HasPrefix(empty, "otem.hmpc|") {
		t.Fatalf("canonical prefix wrong: %s", empty)
	}
	// Negative (explicitly-off) weights must encode differently from the
	// defaults, or collapsed runs would collide with tracked runs.
	off := canon.String(Spec{SoCRefWeight: -1})
	if off == empty {
		t.Fatal("disabled tracking weight encodes identically to the default")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Usage: "aviation"},
		{RouteSeconds: 10},
		{Repeats: 99},
		{AmbientK: 100},
		{BlockSeconds: 0.25},
		{MaxBlocks: 1000},
	}
	for i, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
	if err := (Spec{}).withDefaults().Validate(); err != nil {
		t.Fatalf("zero spec must validate after defaults: %v", err)
	}
}

func TestRoutePreviewConservesEnergy(t *testing.T) {
	// The segment preview loses burst timing, not energy: its integral
	// must match the realized power series' integral almost exactly
	// (segment means times segment durations).
	c, err := drivecycle.ByName("UDDS")
	if err != nil {
		t.Fatal(err)
	}
	p := vehicle.MidSizeEV()
	requests := p.PowerSeriesAt(c, 308)
	route := RouteFromCycle(c, p, 30, 308)
	preview := route.Preview(p, c.DT, nil)
	if len(preview) != len(requests) {
		t.Fatalf("preview length %d != requests %d", len(preview), len(requests))
	}
	var eReq, ePrev float64
	for i := range requests {
		eReq += requests[i] * c.DT
		ePrev += preview[i] * c.DT
	}
	if rel := math.Abs(eReq-ePrev) / math.Abs(eReq); rel > 1e-9 {
		t.Fatalf("preview energy %.6e deviates from realized %.6e (rel %.2e)", ePrev, eReq, rel)
	}
	// And it must genuinely be coarser: the preview's peak is well below
	// the realized peak on a stop-and-go cycle.
	var maxReq, maxPrev float64
	for i := range requests {
		maxReq = math.Max(maxReq, requests[i])
		maxPrev = math.Max(maxPrev, preview[i])
	}
	if maxPrev >= maxReq {
		t.Fatalf("segment preview peak %.0f not below realized peak %.0f", maxPrev, maxReq)
	}
}

func TestSegmentModelPower(t *testing.T) {
	p := vehicle.MidSizeEV()
	r := Route{AmbientK: 308, Segments: []Segment{{Seconds: 60, MeanSpeed: 25}}}
	flat := r.segmentPower(p, r.Segments[0])
	r.Segments[0].GradePct = 5
	climb := r.segmentPower(p, r.Segments[0])
	if climb <= flat {
		t.Fatalf("5%% grade power %.0f not above flat %.0f", climb, flat)
	}
	r.Segments[0].GradePct = -5
	descent := r.segmentPower(p, r.Segments[0])
	if descent >= flat {
		t.Fatalf("-5%% grade power %.0f not below flat %.0f", descent, flat)
	}
	// A carried MeanPowerW wins over the model.
	r.Segments[0].MeanPowerW = 1234
	if got := r.segmentPower(p, r.Segments[0]); got != 1234 {
		t.Fatalf("MeanPowerW not honoured: %v", got)
	}
}

func buildPlanner(t *testing.T, spec Spec) (*Planner, *sim.Plant) {
	t.Helper()
	spec = spec.withDefaults()
	cycle, err := spec.route()
	if err != nil {
		t.Fatal(err)
	}
	p := vehicle.MidSizeEV()
	route := RouteFromCycle(cycle, p, spec.BlockSeconds, spec.AmbientK)
	preview := route.Preview(p, cycle.DT, nil)
	plantCfg := sim.PlantConfig{UltracapF: spec.UltracapF, Ambient: spec.AmbientK, DT: cycle.DT}
	plant, err := sim.NewPlant(plantCfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(spec, preview, plantCfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl, plant
}

func TestPlannerReplanFillsReferences(t *testing.T) {
	pl, plant := buildPlanner(t, Spec{Usage: "highway", RouteSeconds: 600, AmbientK: 308})
	if err := pl.Replan(plant, 0); err != nil {
		t.Fatal(err)
	}
	ref := pl.Reference()
	if len(ref.SoC) != pl.steps || len(ref.TempK) != pl.steps {
		t.Fatalf("reference lengths %d/%d != steps %d", len(ref.SoC), len(ref.TempK), pl.steps)
	}
	for i := 0; i < pl.steps; i++ {
		if ref.SoC[i] <= 0 || ref.SoC[i] > 1 {
			t.Fatalf("step %d: reference SoC %v outside (0, 1]", i, ref.SoC[i])
		}
		if ref.TempK[i] < 270 || ref.TempK[i] > 340 {
			t.Fatalf("step %d: reference temp %v K unphysical", i, ref.TempK[i])
		}
	}
	// The schedule must drain monotonically-ish from the initial SoC: the
	// battery only discharges on a positive-power route, so the reference
	// at the end is below the start.
	if ref.SoC[pl.steps-1] >= plant.HEES.Battery.SoC {
		t.Fatalf("terminal reference SoC %v not below initial %v", ref.SoC[pl.steps-1], plant.HEES.Battery.SoC)
	}

	snap := pl.Snapshot()
	if snap.Blocks != pl.blocks || snap.Steps != pl.steps {
		t.Fatalf("snapshot geometry %d/%d != planner %d/%d", snap.Blocks, snap.Steps, pl.blocks, pl.steps)
	}
	if len(snap.SoC) != pl.blocks+1 || len(snap.CapU) != pl.blocks {
		t.Fatalf("snapshot lengths: soc %d capU %d for %d blocks", len(snap.SoC), len(snap.CapU), pl.blocks)
	}
	if snap.Spec != canon.String(pl.spec) {
		t.Fatalf("snapshot spec %q != canonical %q", snap.Spec, canon.String(pl.spec))
	}
	for b, u := range snap.CapU {
		if u < -1.0001 || u > 1.0001 || snap.CoolU[b] < -1e-9 || snap.CoolU[b] > 1.0001 {
			t.Fatalf("block %d: decisions out of bounds capU=%v coolU=%v", b, u, snap.CoolU[b])
		}
	}
}

func TestPlannerWarmReplanAllocsZero(t *testing.T) {
	pl, plant := buildPlanner(t, Spec{Usage: "commuter", RouteSeconds: 600, AmbientK: 305})
	if err := pl.Replan(plant, 0); err != nil {
		t.Fatal(err)
	}
	step := 0
	allocs := testing.AllocsPerRun(8, func() {
		step += pl.blockSteps
		plant.HEES.Battery.SoC -= 2e-4
		plant.Loop.BatteryTemp += 0.05
		if err := pl.Replan(plant, step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm outer Replan allocates %.1f times per call", allocs)
	}
}

func TestRunHierarchical(t *testing.T) {
	spec := Spec{Usage: "highway", RouteSeconds: 600, AmbientK: 308}
	res, err := Run(context.Background(), spec, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 600 {
		t.Fatalf("steps %d != 600", res.Steps)
	}
	if res.Plan == nil || res.Plan.Blocks < 2 {
		t.Fatalf("missing or degenerate outer plan: %+v", res.Plan)
	}
	if res.OuterReplans < 1 {
		t.Fatal("route-start outer plan not counted")
	}
	if res.InnerReplans < res.Steps/8 {
		t.Fatalf("implausibly few inner replans: %d", res.InnerReplans)
	}
	if res.QlossPct <= 0 || res.HEESEnergyJ <= 0 || res.MaxBatteryTemp < res.Result.AvgBatteryTemp {
		t.Fatalf("unphysical result: %+v", res.Result)
	}
	if res.Controller != "HMPC" {
		t.Fatalf("controller name %q", res.Controller)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Usage: "commuter", RouteSeconds: 300}, sim.Config{}); err == nil {
		t.Fatal("expected cancellation error")
	}
}
