package hmpc

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// BenchmarkPlanRoute measures the cold outer solve: route synthesis,
// preview, planner construction and the route-start plan — the latency a
// POST /v1/plan cache miss pays.
func BenchmarkPlanRoute(b *testing.B) {
	spec := Spec{Cycle: "UDDS", AmbientK: 308}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanRoute(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmOuterReplan measures the steady-state outer replan on a
// drifting plant — the per-block cost the hierarchical controller pays
// mid-route. The warm path must not allocate.
func BenchmarkWarmOuterReplan(b *testing.B) {
	pl, plant := buildBenchPlanner(b, Spec{Usage: "commuter", RouteSeconds: 600, AmbientK: 305})
	if err := pl.Replan(plant, 0); err != nil {
		b.Fatal(err)
	}
	step := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step += pl.blockSteps
		plant.HEES.Battery.SoC -= 1e-5
		plant.Loop.BatteryTemp += 0.002
		if err := pl.Replan(plant, step); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchPlanner mirrors buildPlanner for benchmarks.
func buildBenchPlanner(tb testing.TB, spec Spec) (*Planner, *sim.Plant) {
	tb.Helper()
	ctrl, plant, _, err := Build(spec)
	if err != nil {
		tb.Fatal(err)
	}
	return ctrl.planner, plant
}

// hmpcBenchReport is the BENCH_hmpc.json schema produced by `make
// hmpc-bench`.
type hmpcBenchReport struct {
	Benchmark        string  `json:"benchmark"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Blocks           int     `json:"outer_blocks"`
	Steps            int     `json:"steps"`
	PlanNs           float64 `json:"outer_plan_ns"`
	PlanAllocs       float64 `json:"outer_plan_allocs"`
	WarmReplanNs     float64 `json:"warm_outer_replan_ns"`
	WarmReplanAllocs float64 `json:"warm_outer_replan_allocs"`
	RunNsPerStep     float64 `json:"hier_ns_per_step"`
	RunStepsPerSec   float64 `json:"hier_steps_per_sec"`
	AllocBudget      float64 `json:"warm_replan_alloc_budget"`
}

// TestHMPCBenchJSON is the `make hmpc-bench` harness: cold outer-plan
// latency, warm outer-replan cost on a drifting plant, and end-to-end
// hierarchical throughput, written to the path in HMPC_BENCH_JSON.
// Without the environment variable a short smoke route runs (nothing
// written) so plain `go test ./...` stays fast. In both modes it fails
// if the warm outer replan allocates — the zero-alloc contract of the
// //lint:hotpath gate, re-checked at benchmark scale.
func TestHMPCBenchJSON(t *testing.T) {
	out := os.Getenv("HMPC_BENCH_JSON")
	spec := Spec{Cycle: "UDDS", AmbientK: 308}
	name := "HierUDDS"
	if out == "" {
		spec = Spec{Usage: "commuter", RouteSeconds: 120, AmbientK: 305}
		name = "HierCommuter/smoke"
	}

	// Cold solve: the /v1/plan cache-miss latency.
	planRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PlanRoute(spec); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Warm replan: per-block steady-state cost, plant drifting under it.
	pl, plant := buildBenchPlanner(t, spec)
	step := 0
	replanRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step += pl.blockSteps
			plant.HEES.Battery.SoC -= 1e-6
			plant.Loop.BatteryTemp += 0.0002
			if err := pl.Replan(plant, step); err != nil {
				b.Fatal(err)
			}
		}
	})
	warmAllocs := float64(replanRes.MemAllocs) / float64(replanRes.N)
	if warmAllocs > 0 {
		t.Errorf("warm outer replan allocates %.2f times per call, want 0", warmAllocs)
	}

	// End-to-end: the full two-layer simulation.
	var steps, blocks int
	runRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := Run(context.Background(), spec, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			steps, blocks = r.Steps, r.Plan.Blocks
		}
	})
	if steps == 0 || runRes.N == 0 {
		t.Fatal("benchmark did not run")
	}

	nsPerStep := float64(runRes.NsPerOp()) / float64(steps)
	report := hmpcBenchReport{
		Benchmark:        name,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Blocks:           blocks,
		Steps:            steps,
		PlanNs:           float64(planRes.NsPerOp()),
		PlanAllocs:       float64(planRes.MemAllocs) / float64(planRes.N),
		WarmReplanNs:     float64(replanRes.NsPerOp()),
		WarmReplanAllocs: warmAllocs,
		RunNsPerStep:     nsPerStep,
		RunStepsPerSec:   1e9 / nsPerStep,
		AllocBudget:      0,
	}
	t.Logf("%s: plan %.2f ms, warm replan %.2f ms (%.2f allocs), run %.0f steps/sec",
		name, report.PlanNs/1e6, report.WarmReplanNs/1e6, warmAllocs, report.RunStepsPerSec)

	if out == "" {
		return
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
