package hmpc

import (
	"math"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/sim"
)

// Planner is the outer scheduling layer: a coarse-grid OTEM instance (one
// decision block per BlockSeconds, Δt = BlockSeconds) solved over the
// whole remaining trip, whose predicted state trajectory becomes the
// inner layer's Reference. All buffers are preallocated at construction;
// the warm Replan path is allocation-free, which allocflow proves via the
// hotpath annotation.
//
// A Planner is single-goroutine state, like the mpc.Planner it wraps.
type Planner struct {
	spec       Spec // resolved (withDefaults applied)
	preview    []float64
	steps      int
	innerDT    float64
	blockSteps int
	blocks     int

	coarse *core.OTEM
	cplant *sim.Plant
	fc     []float64       // per-block mean of the remaining preview
	traj   core.Trajectory // block-end states of the last solve
	ref    core.Reference  // per-inner-step references, rewritten in place
	plan   []float64       // last coarse decision vector (aliases coarse's buffer)

	lastStep int // inner step of the last outer replan
	replans  int
}

// NewPlanner builds the outer layer for a resolved spec: preview is the
// per-inner-step expected power series (Route.Preview), plantCfg the real
// plant's configuration — the coarse clone copies it with Δt stretched to
// the block length.
func NewPlanner(spec Spec, preview []float64, plantCfg sim.PlantConfig) (*Planner, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	plantCfg = plantCfg.Defaults()
	steps := len(preview)

	blockSteps := int(math.Round(spec.BlockSeconds / plantCfg.DT))
	if blockSteps < 1 {
		blockSteps = 1
	}
	blocks := (steps + blockSteps - 1) / blockSteps
	if blocks < 1 {
		blocks = 1
	}
	if blocks > spec.MaxBlocks {
		blocks = spec.MaxBlocks
	}

	// The coarse clone plant: same pack, bank, converters and cooling
	// loop, integrated on the block grid. Replan overwrites its state
	// from the realized plant, so the configured initial state is
	// irrelevant.
	coarseCfg := plantCfg
	coarseCfg.DT = plantCfg.DT * float64(blockSteps)
	cplant, err := sim.NewPlant(coarseCfg)
	if err != nil {
		return nil, err
	}

	// The outer solver is core.OTEM itself with one block per step: the
	// paper-default weights price cooling energy, aging and HEES energy
	// per block exactly as the inner cost does per second (every running
	// term scales with Δt). The longer horizon gets a higher iteration
	// budget; the warm mid-route replans converge in far fewer.
	outerCfg := core.DefaultConfig()
	outerCfg.Horizon = blocks
	outerCfg.BlockSize = 1
	outerCfg.ReplanInterval = 1
	outerCfg.Optimizer = optimize.Options{
		MaxIterations: 60,
		Tolerance:     1e-4,
		Memory:        6,
		MaxLineSearch: 25,
	}
	coarse, err := core.New(outerCfg)
	if err != nil {
		return nil, err
	}

	return &Planner{
		spec:       spec,
		preview:    preview,
		steps:      steps,
		innerDT:    plantCfg.DT,
		blockSteps: blockSteps,
		blocks:     blocks,
		coarse:     coarse,
		cplant:     cplant,
		fc:         make([]float64, blocks),
		traj: core.Trajectory{
			SoC:          make([]float64, blocks),
			SoE:          make([]float64, blocks),
			BatteryTempK: make([]float64, blocks),
			CoolantTempK: make([]float64, blocks),
		},
		ref: core.Reference{
			SoC:      make([]float64, steps),
			TempK:    make([]float64, steps),
			SoCTol:   spec.SoCTol,
			TempTolK: spec.TempTolK,
		},
	}, nil
}

// Reference returns the trajectory the inner controller tracks; its
// slices are rewritten in place by Replan.
func (pl *Planner) Reference() *core.Reference { return &pl.ref }

// Blocks reports the outer horizon length.
func (pl *Planner) Blocks() int { return pl.blocks }

// Replans reports how many outer solves have run.
func (pl *Planner) Replans() int { return pl.replans }

// syncState copies the realized plant state into the coarse clone, the
// initial condition of the outer solve.
func (pl *Planner) syncState(p *sim.Plant) {
	pl.cplant.HEES.Battery.SoC = p.HEES.Battery.SoC
	pl.cplant.HEES.Battery.Temp = p.Loop.BatteryTemp
	pl.cplant.HEES.Cap.SoE = p.HEES.Cap.SoE
	pl.cplant.Loop.BatteryTemp = p.Loop.BatteryTemp
	pl.cplant.Loop.CoolantTemp = p.Loop.CoolantTemp
}

// Replan re-solves the outer problem over the remaining trip from the
// realized plant state at inner step `step`, then rewrites the shared
// reference trajectories in place — the next inner replan tracks the new
// schedule without any further wiring. Warm mid-route replans reuse the
// previous outer solution shifted by the executed blocks.
//
//lint:hotpath the warm outer replan fires mid-route on the divergence trigger; allocflow proves it allocation-free
func (pl *Planner) Replan(p *sim.Plant, step int) error {
	if shift := (step - pl.lastStep) / pl.blockSteps; shift > 0 {
		pl.coarse.AdvanceWarmStart(shift)
	}
	pl.lastStep = step
	pl.syncState(p)

	// Per-block mean of the remaining preview, zero past the route end
	// (consistent with the simulator's zero-padded forecasts).
	for b := 0; b < pl.blocks; b++ {
		lo := step + b*pl.blockSteps
		var sum float64
		for j := lo; j < lo+pl.blockSteps && j < pl.steps; j++ {
			sum += pl.preview[j]
		}
		pl.fc[b] = sum / float64(pl.blockSteps)
	}

	plan, err := pl.coarse.PlanTrip(pl.cplant, pl.fc, &pl.traj)
	if err != nil {
		return err
	}
	pl.plan = plan
	pl.expandRefs(p, step)
	pl.replans++
	return nil
}

// expandRefs linearly interpolates the block-end states into per-step
// references from `step` onward, holding the final block state to the end
// of the route. Entries before `step` are in the past and stay untouched.
func (pl *Planner) expandRefs(p *sim.Plant, step int) {
	s0 := p.HEES.Battery.SoC
	t0 := p.Loop.BatteryTemp
	for b := 0; b < pl.blocks; b++ {
		s1 := pl.traj.SoC[b]
		t1 := pl.traj.BatteryTempK[b]
		for j := 0; j < pl.blockSteps; j++ {
			i := step + b*pl.blockSteps + j
			if i >= pl.steps {
				return
			}
			f := float64(j+1) / float64(pl.blockSteps)
			pl.ref.SoC[i] = s0 + (s1-s0)*f
			pl.ref.TempK[i] = t0 + (t1-t0)*f
		}
		s0, t0 = s1, t1
	}
	for i := step + pl.blocks*pl.blockSteps; i < pl.steps; i++ {
		pl.ref.SoC[i] = s0
		pl.ref.TempK[i] = t0
	}
}

// Plan is the wire-level snapshot of an outer solve: the block-boundary
// reference trajectories plus the coarse decisions, the payload of
// otem-serve's POST /v1/plan and the otem.plan/v1 JSON schema.
type Plan struct {
	// Spec is the canonical spec encoding that produced the plan (the
	// plan-cache key).
	Spec string
	// BlockSeconds and Blocks describe the coarse grid.
	BlockSeconds float64
	Blocks       int
	// Steps is the number of inner steps the plan covers.
	Steps int
	// SoC, SoE and TempK are the block-boundary state trajectories,
	// length Blocks+1: the initial state followed by each block-end state.
	SoC, SoE, TempK []float64
	// CapU and CoolU are the coarse decisions per block: normalised
	// ultracapacitor bus power in [-1, 1] and cooling intensity in [0, 1].
	CapU, CoolU []float64
}

// Snapshot renders the last outer solve as a Plan. It allocates; the hot
// path never calls it.
func (pl *Planner) Snapshot() *Plan {
	p := &Plan{
		Spec:         canon.String(pl.spec),
		BlockSeconds: pl.innerDT * float64(pl.blockSteps),
		Blocks:       pl.blocks,
		Steps:        pl.steps,
		SoC:          make([]float64, 0, pl.blocks+1),
		SoE:          make([]float64, 0, pl.blocks+1),
		TempK:        make([]float64, 0, pl.blocks+1),
		CapU:         make([]float64, 0, pl.blocks),
		CoolU:        make([]float64, 0, pl.blocks),
	}
	p.SoC = append(p.SoC, pl.cplant.HEES.Battery.SoC)
	p.SoE = append(p.SoE, pl.cplant.HEES.Cap.SoE)
	p.TempK = append(p.TempK, pl.cplant.Loop.BatteryTemp)
	for b := 0; b < pl.blocks; b++ {
		p.SoC = append(p.SoC, pl.traj.SoC[b])
		p.SoE = append(p.SoE, pl.traj.SoE[b])
		p.TempK = append(p.TempK, pl.traj.BatteryTempK[b])
		// One block per coarse step and two inputs per step, so the
		// decision vector is laid out [capU₀ coolU₀ capU₁ coolU₁ …].
		p.CapU = append(p.CapU, pl.plan[2*b])
		p.CoolU = append(p.CoolU, pl.plan[2*b+1])
	}
	return p
}
