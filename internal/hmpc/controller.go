package hmpc

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Controller is the hierarchical controller: the fast inner OTEM tracking
// the outer Planner's schedule, with an outer re-plan trigger when the
// realized state drifts past the coarse tolerances. It implements
// sim.Controller; construct via Build.
type Controller struct {
	planner *Planner
	inner   *core.OTEM
	step    int
	initial *Plan // the route-start outer plan (the cacheable artifact)
}

// Name implements sim.Controller.
func (h *Controller) Name() string { return "HMPC" }

// refSample reads a reference entry, holding the last value past the end.
func refSample(s []float64, i int) float64 {
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// outerDiverged reports whether the realized state has left the outer
// tolerance tube around the schedule. It rate-limits to one check per
// coarse block: divergence below the outer grid's resolution is the inner
// trigger's job.
func (h *Controller) outerDiverged(p *sim.Plant) bool {
	spec := &h.planner.spec
	if h.step-h.planner.lastStep < h.planner.blockSteps {
		return false
	}
	i := h.step - 1
	ref := &h.planner.ref
	if spec.OuterSoCTol > 0 && len(ref.SoC) > 0 &&
		math.Abs(p.HEES.Battery.SoC-refSample(ref.SoC, i)) > spec.OuterSoCTol {
		return true
	}
	if spec.OuterTempTolK > 0 && len(ref.TempK) > 0 &&
		math.Abs(p.Loop.BatteryTemp-refSample(ref.TempK, i)) > spec.OuterTempTolK {
		return true
	}
	return false
}

// Decide implements sim.Controller: re-plan the outer schedule when the
// trip has drifted past the coarse tolerances, then let the inner OTEM
// track it. An outer solve failure keeps the previous references — the
// inner layer remains a complete controller without them.
func (h *Controller) Decide(p *sim.Plant, forecast []float64) sim.Action {
	if h.step > 0 && h.outerDiverged(p) {
		_ = h.planner.Replan(p, h.step)
	}
	act := h.inner.Decide(p, forecast)
	h.step++
	return act
}

// Plan returns the route-start outer plan.
func (h *Controller) Plan() *Plan { return h.initial }

// OuterReplans reports outer solves (≥ 1: the route-start plan).
func (h *Controller) OuterReplans() int { return h.planner.Replans() }

// InnerReplans reports the inner controller's horizon solves.
func (h *Controller) InnerReplans() int { return h.inner.Replans() }

// DivergenceReplans reports inner replans forced early by the reference
// divergence trigger.
func (h *Controller) DivergenceReplans() int { return h.inner.DivergenceReplans() }

var _ sim.Controller = (*Controller)(nil)
