// Package hmpc implements the two-layer hierarchical MPC of Amini, Sun &
// Kolmanovsky (arXiv 1809.10002) on top of the flat OTEM controller.
//
// The flat controller (internal/core) optimises over a short receding
// horizon — 40 s by default — and is therefore blind to everything the
// route holds beyond it: a highway merge ten minutes out, a long climb, a
// hot second half. The two-layer split fixes that without giving up the
// fast inner replan:
//
//   - The OUTER layer (Planner) consumes a route preview — segment mean
//     speeds, grades and ambient derived from internal/drivecycle or the
//     fleet scenario synthesiser — on a coarse grid (one decision block
//     per BlockSeconds) covering the whole trip. It is literally a second
//     core.OTEM instance run against a coarse clone of the plant
//     (Δt = BlockSeconds), so mpc.Planner, optimize.Workspace and the
//     hand-derived adjoint are reused unchanged. Its solution is turned
//     into per-second SoC and battery-temperature reference trajectories.
//   - The INNER layer is the unmodified fast OTEM controller with the
//     reference-tracking terms of core.Config.SoCRefWeight/TempRefWeight
//     enabled, pulling each short-horizon solve toward the schedule. When
//     the realized state drifts past Reference tolerances the inner layer
//     replans early; past the coarser outer tolerances the outer layer
//     re-solves the remaining trip and rewrites the references in place.
//
// The outer plan is a pure function of the canonical Spec, which is what
// makes it cacheable: otem-serve's POST /v1/plan keys the plan cache on
// Spec's canonical encoding while the per-step tracking stays in the
// simulation path. With zero tracking weights and disabled tolerances the
// hierarchical controller is bit-identical to flat OTEM — pinned by a
// property test over every registered drive cycle.
package hmpc
