package vehicle

import (
	"math"
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/units"
)

func TestMidSizeEVValid(t *testing.T) {
	if err := MidSizeEV().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero mass", func(p *Params) { p.Mass = 0 }},
		{"zero CdA", func(p *Params) { p.CdA = 0 }},
		{"negative rolling", func(p *Params) { p.RollingResistance = -0.01 }},
		{"efficiency > 1", func(p *Params) { p.DrivetrainEff = 1.2 }},
		{"regen > 1", func(p *Params) { p.RegenEff = 1.2 }},
		{"zero traction cap", func(p *Params) { p.MaxTractionPower = 0 }},
		{"negative regen cap", func(p *Params) { p.MaxRegenPower = -1 }},
		{"negative aux", func(p *Params) { p.AuxPower = -1 }},
	}
	for _, m := range mutations {
		p := MidSizeEV()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestWheelForceComponents(t *testing.T) {
	p := MidSizeEV()
	// At standstill with no acceleration there is no force.
	if f := p.WheelForce(0, 0); f != 0 {
		t.Errorf("force at rest = %v", f)
	}
	// Pure inertia at standstill launch.
	if f := p.WheelForce(0, 2); math.Abs(f-2*p.Mass) > 1e-9 {
		t.Errorf("launch force = %v, want %v", f, 2*p.Mass)
	}
	// Cruise force = rolling + aero.
	v := 30.0
	want := p.Mass*units.Gravity*p.RollingResistance + 0.5*units.AirDensity*p.CdA*v*v
	if f := p.WheelForce(v, 0); math.Abs(f-want) > 1e-9 {
		t.Errorf("cruise force = %v, want %v", f, want)
	}
	// Aero grows quadratically.
	aero20 := p.WheelForce(20, 0) - p.Mass*units.Gravity*p.RollingResistance
	aero40 := p.WheelForce(40, 0) - p.Mass*units.Gravity*p.RollingResistance
	if math.Abs(aero40/aero20-4) > 1e-9 {
		t.Errorf("aero ratio = %v, want 4", aero40/aero20)
	}
}

func TestBusPowerTractionIncludesLosses(t *testing.T) {
	p := MidSizeEV()
	v, a := 25.0, 0.5
	wheel := p.WheelForce(v, a) * v
	want := wheel/p.DrivetrainEff + p.AuxPower
	if got := p.BusPower(v, a); math.Abs(got-want) > 1e-9 {
		t.Errorf("BusPower = %v, want %v", got, want)
	}
	if got := p.BusPower(v, a); got <= wheel {
		t.Error("bus power must exceed wheel power when discharging")
	}
}

func TestBusPowerRegenRecoversFraction(t *testing.T) {
	p := MidSizeEV()
	v, a := 20.0, -2.0
	wheel := p.WheelForce(v, a) * v
	if wheel >= 0 {
		t.Fatalf("test setup: wheel power %v not negative", wheel)
	}
	want := wheel*p.RegenEff + p.AuxPower
	if got := p.BusPower(v, a); math.Abs(got-want) > 1e-9 {
		t.Errorf("regen BusPower = %v, want %v", got, want)
	}
}

func TestBusPowerCaps(t *testing.T) {
	p := MidSizeEV()
	// Massive acceleration at speed: traction clipped.
	if got := p.BusPower(35, 5); got > p.MaxTractionPower+p.AuxPower {
		t.Errorf("traction not capped: %v", got)
	}
	// Massive braking: regen clipped.
	if got := p.BusPower(35, -8); got < -p.MaxRegenPower+p.AuxPower-1e-9 {
		t.Errorf("regen not capped: %v", got)
	}
}

func TestBusPowerIdleIsAuxOnly(t *testing.T) {
	p := MidSizeEV()
	if got := p.BusPower(0, 0); got != p.AuxPower {
		t.Errorf("idle power = %v, want aux %v", got, p.AuxPower)
	}
}

func TestPowerSeriesUS06Magnitudes(t *testing.T) {
	p := MidSizeEV()
	series := p.PowerSeries(drivecycle.US06())
	s := Stats(series, 1)
	// The paper's Table I reports parallel-architecture average power around
	// 17 kW on US06; the raw request (before storage losses) should land in
	// the same regime.
	if s.Mean < 8e3 || s.Mean > 25e3 {
		t.Errorf("US06 mean power = %v W, want 8–25 kW", s.Mean)
	}
	if s.Peak < 60e3 || s.Peak > p.MaxTractionPower+p.AuxPower {
		t.Errorf("US06 peak power = %v W", s.Peak)
	}
	if s.MinRegen >= 0 {
		t.Error("US06 must contain regen (negative) samples")
	}
	if s.RegenEnergy >= 0 {
		t.Error("regen energy should be negative")
	}
}

func TestPowerSeriesOrdering(t *testing.T) {
	// Aggressive cycles demand more average power than mild ones.
	p := MidSizeEV()
	mean := func(c *drivecycle.Cycle) float64 {
		return Stats(p.PowerSeries(c), c.DT).Mean
	}
	us06 := mean(drivecycle.US06())
	hwfet := mean(drivecycle.HWFET())
	udds := mean(drivecycle.UDDS())
	nycc := mean(drivecycle.NYCC())
	if !(us06 > udds && us06 > nycc) {
		t.Errorf("US06 (%v) should out-demand UDDS (%v) and NYCC (%v)", us06, udds, nycc)
	}
	if !(hwfet > udds) {
		t.Errorf("HWFET (%v) should out-demand UDDS (%v)", hwfet, udds)
	}
	if !(nycc < udds) {
		t.Errorf("NYCC (%v) should be the mildest (UDDS %v)", nycc, udds)
	}
}

func TestPowerSeriesLength(t *testing.T) {
	c := drivecycle.NYCC()
	series := MidSizeEV().PowerSeries(c)
	if len(series) != c.Samples() {
		t.Errorf("series length %d, want %d", len(series), c.Samples())
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(nil, 1)
	if s.Mean != 0 || s.Peak != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestStatsEnergySplit(t *testing.T) {
	s := Stats([]float64{10, -5, 20, -15, 0}, 2)
	if s.TractionEnergy != 60 {
		t.Errorf("TractionEnergy = %v, want 60", s.TractionEnergy)
	}
	if s.RegenEnergy != -40 {
		t.Errorf("RegenEnergy = %v, want -40", s.RegenEnergy)
	}
	if s.Peak != 20 || s.MinRegen != -15 {
		t.Errorf("Peak/MinRegen = %v/%v", s.Peak, s.MinRegen)
	}
	if s.Mean != 2 {
		t.Errorf("Mean = %v, want 2", s.Mean)
	}
}

func TestPowerSeriesAtAddsHVAC(t *testing.T) {
	p := MidSizeEV()
	c := drivecycle.NYCC()
	comfort := p.PowerSeries(c)
	hot := p.PowerSeriesAt(c, 311) // 38 °C
	cold := p.PowerSeriesAt(c, 263)
	wantHot := p.HVACPerKelvin * 16
	for i := range comfort {
		if math.Abs(hot[i]-comfort[i]-wantHot) > 1e-9 {
			t.Fatalf("hot HVAC delta at %d: %v, want %v", i, hot[i]-comfort[i], wantHot)
		}
		if cold[i] <= comfort[i] {
			t.Fatal("cold climate should add heating load too")
		}
	}
}

func TestValidateRejectsNegativeHVAC(t *testing.T) {
	p := MidSizeEV()
	p.HVACPerKelvin = -1
	if p.Validate() == nil {
		t.Error("negative HVACPerKelvin accepted")
	}
}
