// Package vehicle implements the backward-facing EV power-train model that
// replaces ADVISOR in this reproduction (see DESIGN.md): given a drive-cycle
// speed trace, it computes the electrical power request P_e(t) at the DC bus
// from road load (aerodynamic drag, rolling resistance), inertia, drivetrain
// efficiency, regenerative-braking recovery and auxiliary loads.
//
// Positive power = the storage must deliver energy (traction); negative
// power = regenerated energy flows back into the storage.
package vehicle

import (
	"fmt"
	"math"

	"repro/internal/drivecycle"
	"repro/internal/units"
)

// Params describes the vehicle and its power train.
type Params struct {
	// Mass is the kerb mass plus payload in kg.
	Mass float64
	// CdA is the drag coefficient times frontal area in m².
	CdA float64
	// RollingResistance is the dimensionless rolling coefficient C_r.
	RollingResistance float64
	// DrivetrainEff is the combined inverter+motor+gear efficiency applied
	// to traction power, in (0, 1].
	DrivetrainEff float64
	// RegenEff is the fraction of braking power recovered to the bus,
	// in [0, 1].
	RegenEff float64
	// MaxTractionPower caps the bus-side traction power in watts; demands
	// beyond it are clipped, as a power-limited real vehicle would.
	MaxTractionPower float64
	// MaxRegenPower caps the recoverable braking power in watts (friction
	// brakes absorb the rest).
	MaxRegenPower float64
	// AuxPower is the constant accessory load (electronics) in watts.
	AuxPower float64
	// HVACPerKelvin adds climate-control load proportional to the gap
	// between ambient and the 295 K cabin comfort point, in W/K — the HVAC
	// influence the paper's authors studied in their companion work
	// (Al Faruque & Vatanparvar, ASP-DAC 2016).
	HVACPerKelvin float64
}

// MidSizeEV returns parameters for the mid-size EV used throughout the
// experiments (Tesla-Model-S-class mass and drag).
func MidSizeEV() Params {
	return Params{
		Mass:              2200,
		CdA:               0.62,
		RollingResistance: 0.011,
		DrivetrainEff:     0.90,
		RegenEff:          0.60,
		MaxTractionPower:  90e3,
		MaxRegenPower:     50e3,
		AuxPower:          1200,
		HVACPerKelvin:     120,
	}
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.Mass <= 0:
		return fmt.Errorf("vehicle: Mass = %g, must be > 0", p.Mass)
	case p.CdA <= 0:
		return fmt.Errorf("vehicle: CdA = %g, must be > 0", p.CdA)
	case p.RollingResistance < 0:
		return fmt.Errorf("vehicle: RollingResistance = %g, must be >= 0", p.RollingResistance)
	case p.DrivetrainEff <= 0 || p.DrivetrainEff > 1:
		return fmt.Errorf("vehicle: DrivetrainEff = %g, must be in (0, 1]", p.DrivetrainEff)
	case p.RegenEff < 0 || p.RegenEff > 1:
		return fmt.Errorf("vehicle: RegenEff = %g, must be in [0, 1]", p.RegenEff)
	case p.MaxTractionPower <= 0:
		return fmt.Errorf("vehicle: MaxTractionPower = %g, must be > 0", p.MaxTractionPower)
	case p.MaxRegenPower < 0:
		return fmt.Errorf("vehicle: MaxRegenPower = %g, must be >= 0", p.MaxRegenPower)
	case p.AuxPower < 0:
		return fmt.Errorf("vehicle: AuxPower = %g, must be >= 0", p.AuxPower)
	case p.HVACPerKelvin < 0:
		return fmt.Errorf("vehicle: HVACPerKelvin = %g, must be >= 0", p.HVACPerKelvin)
	}
	return nil
}

// WheelForce returns the total tractive force at the wheels in newtons for
// speed v (m/s) and acceleration a (m/s²): F = m·a + m·g·C_r + ½ρ·CdA·v².
// Rolling resistance applies only while moving.
func (p Params) WheelForce(v, a float64) float64 {
	f := p.Mass * a
	if v > 0 {
		f += p.Mass * units.Gravity * p.RollingResistance
		f += 0.5 * units.AirDensity * p.CdA * v * v
	}
	return f
}

// BusPower returns the electrical power request at the DC bus in watts for
// speed v and acceleration a, including drivetrain losses, regen recovery
// limits and the auxiliary load.
func (p Params) BusPower(v, a float64) float64 {
	wheel := p.WheelForce(v, a) * v
	var bus float64
	switch {
	case wheel > 0:
		bus = wheel / p.DrivetrainEff
		if bus > p.MaxTractionPower {
			bus = p.MaxTractionPower
		}
	case wheel < 0:
		bus = wheel * p.RegenEff
		if bus < -p.MaxRegenPower {
			bus = -p.MaxRegenPower
		}
	}
	return bus + p.AuxPower
}

// PowerSeries converts a drive cycle into the per-step bus power request
// series P_e(t) consumed by the controllers (one value per cycle sample,
// computed from the mid-step speed and forward-difference acceleration),
// at the comfort-point ambient (no HVAC load).
func (p Params) PowerSeries(c *drivecycle.Cycle) []float64 {
	return p.PowerSeriesAt(c, hvacComfortK)
}

// hvacComfortK is the cabin comfort point at which the HVAC draws nothing.
const hvacComfortK = 295.0

// PowerSeriesAt is PowerSeries at an explicit ambient temperature (kelvin):
// the HVAC load |ambient − 295 K|·HVACPerKelvin is added to every sample,
// so hot- or cold-climate studies see the climate-control drain.
func (p Params) PowerSeriesAt(c *drivecycle.Cycle, ambientK float64) []float64 {
	hvac := p.HVACPerKelvin * math.Abs(ambientK-hvacComfortK)
	out := make([]float64, c.Samples())
	for i := range out {
		v0 := c.Speed[i]
		v1 := v0
		if i+1 < len(c.Speed) {
			v1 = c.Speed[i+1]
		}
		a := (v1 - v0) / c.DT
		vMid := (v0 + v1) / 2
		out[i] = p.BusPower(vMid, a) + hvac
	}
	return out
}

// SeriesStats summarises a power-request series.
type SeriesStats struct {
	// Mean is the average power in watts (traction plus regen).
	Mean float64
	// Peak is the maximum power request in watts.
	Peak float64
	// MinRegen is the most negative (largest regen) power in watts.
	MinRegen float64
	// TractionEnergy is the integral of positive power, joules.
	TractionEnergy float64
	// RegenEnergy is the integral of negative power (≤ 0), joules.
	RegenEnergy float64
}

// Stats summarises a power series sampled at dt seconds.
func Stats(series []float64, dt float64) SeriesStats {
	var s SeriesStats
	if len(series) == 0 {
		return s
	}
	var sum float64
	s.MinRegen = series[0]
	for _, p := range series {
		sum += p
		if p > s.Peak {
			s.Peak = p
		}
		if p < s.MinRegen {
			s.MinRegen = p
		}
		if p > 0 {
			s.TractionEnergy += p * dt
		} else {
			s.RegenEnergy += p * dt
		}
	}
	s.Mean = sum / float64(len(series))
	return s
}
