// Package policy implements the three state-of-the-art baseline
// methodologies the paper compares OTEM against (§IV-B):
//
//  1. Parallel [Shin DATE'11]: passive parallel HEES, no thermal or energy
//     management at all.
//  2. ActiveCooling [Karimi & Li]: battery-only storage with a thermostatic
//     (hysteresis bang-bang) active cooling loop.
//  3. Dual [Shin DATE'14]: switched dual HEES that redirects load to the
//     ultracapacitor when the battery temperature crosses a threshold, and
//     recharges the capacitor from the battery when the pack is cool.
//
// All three implement sim.Controller so they run on the identical plant as
// the OTEM controller.
package policy

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/hees"
	"repro/internal/sim"
	"repro/internal/units"
)

// Methodology names one of the paper's compared management strategies. It
// is a typed string so the experiment grids, the public facade and the CLIs
// share one vocabulary instead of loose literals; the values are the
// canonical presentation names used in every figure and table.
type Methodology string

// The four methodologies of the paper's evaluation (§IV-B), plus the
// battery-only strawman used by tests and ablations.
const (
	// MethodologyParallel is the passive parallel HEES [Shin DATE'11].
	MethodologyParallel Methodology = "Parallel"
	// MethodologyCooling is battery-only storage with thermostatic active
	// cooling [Karimi & Li].
	MethodologyCooling Methodology = "ActiveCooling"
	// MethodologyDual is the switched dual HEES [Shin DATE'14].
	MethodologyDual Methodology = "Dual"
	// MethodologyOTEM is the paper's MPC controller (constructed by
	// internal/core; ByMethodology rejects it because this package only
	// builds baselines).
	MethodologyOTEM Methodology = "OTEM"
	// MethodologyBattery is the unmanaged battery-direct strawman.
	MethodologyBattery Methodology = "BatteryOnly"
)

// String implements fmt.Stringer.
func (m Methodology) String() string { return string(m) }

// Valid reports whether m is one of the defined methodologies.
func (m Methodology) Valid() bool {
	switch m {
	case MethodologyParallel, MethodologyCooling, MethodologyDual,
		MethodologyOTEM, MethodologyBattery:
		return true
	}
	return false
}

// ErrUnknown reports a baseline or methodology name this package does not
// recognise. Match it with errors.Is; the public facade re-exports it as
// otem.ErrUnknownBaseline.
var ErrUnknown = errors.New("policy: unknown baseline")

// ByMethodology constructs the baseline controller for a methodology.
// MethodologyOTEM (an MPC, not a baseline) and unknown values return an
// error wrapping ErrUnknown.
func ByMethodology(m Methodology) (sim.Controller, error) {
	switch m {
	case MethodologyParallel:
		return Parallel{}, nil
	case MethodologyCooling:
		return NewActiveCooling(), nil
	case MethodologyDual:
		return NewDual(), nil
	case MethodologyBattery:
		return BatteryOnly{}, nil
	case MethodologyOTEM:
		return nil, fmt.Errorf("%w %q (the OTEM MPC is built by internal/core, not policy)", ErrUnknown, string(m))
	}
	return nil, fmt.Errorf("%w %q (known: %s, %s, %s, %s, %s)", ErrUnknown, string(m),
		MethodologyParallel, MethodologyCooling, MethodologyDual, MethodologyBattery, MethodologyOTEM)
}

// Parallel is the management-free passive parallel baseline.
type Parallel struct{}

// Name implements sim.Controller.
func (Parallel) Name() string { return "Parallel" }

// Decide implements sim.Controller: always the hard-wired parallel path,
// never any cooling.
func (Parallel) Decide(*sim.Plant, []float64) sim.Action {
	return sim.Action{Arch: sim.ArchParallel}
}

// ForecastDepth implements sim.ForecastReader: the policy never reads the
// window, so the batched rollout skips filling it.
func (Parallel) ForecastDepth() int { return 0 }

// ActiveCooling is the battery-only baseline with a proportional cooling
// loop: above the setpoint the cooler depresses the inlet temperature in
// proportion to the excess, holding the pack near TargetTemp.
type ActiveCooling struct {
	// TargetTemp is the regulation setpoint, kelvin.
	TargetTemp float64
	// OffBand switches the loop off once the battery is this far below the
	// setpoint, kelvin (hysteresis against pump chatter).
	OffBand float64
	// Gain maps battery-temperature excess to inlet-temperature depression
	// (dimensionless, > 0).
	Gain float64

	cooling bool
}

// NewActiveCooling returns the baseline regulating near 26 °C: the
// methodology keeps the pack as cold as its cooler allows, without any
// economisation — the paper's Fig. 9 premise that pure active cooling
// consumes visibly more power than every other methodology.
func NewActiveCooling() *ActiveCooling {
	return &ActiveCooling{TargetTemp: units.CToK(26), OffBand: 1.5, Gain: 4}
}

// Name implements sim.Controller.
func (*ActiveCooling) Name() string { return "ActiveCooling" }

// Decide implements sim.Controller.
func (a *ActiveCooling) Decide(p *sim.Plant, _ []float64) sim.Action {
	tb := p.Loop.BatteryTemp
	if tb >= a.TargetTemp {
		a.cooling = true
	} else if tb <= a.TargetTemp-a.OffBand {
		a.cooling = false
	}
	act := sim.Action{Arch: sim.ArchBatteryDirect}
	if a.cooling {
		act.CoolingOn = true
		// Proportional law: inlet depressed below the coolant return by the
		// temperature excess; the plant clamps to the feasible range (C2/C3).
		act.InletTemp = p.Loop.CoolantTemp - a.Gain*(tb-a.TargetTemp)
	}
	return act
}

// ForecastDepth implements sim.ForecastReader: the thermostat only reads
// the plant temperature, never the window.
func (*ActiveCooling) ForecastDepth() int { return 0 }

// Dual is the switched dual-architecture baseline of Shin DATE'14.
type Dual struct {
	// SwitchTemp is the battery temperature above which the load is
	// redirected to the ultracapacitor, kelvin.
	SwitchTemp float64
	// ReleaseTemp is the temperature below which the battery resumes and
	// the capacitor may be recharged, kelvin.
	ReleaseTemp float64
	// RechargeTargetSoE is the SoE the policy restores while cool.
	RechargeTargetSoE float64
	// RechargePower is the bus power used to recharge the capacitor, W.
	RechargePower float64
	// RechargeMaxLoad suppresses recharging when the drive load exceeds
	// this, W (recharging under heavy load would overheat the battery —
	// the pathology the paper's Fig. 1 discussion points out).
	RechargeMaxLoad float64
	// PeakThreshold targets the capacitor's limited energy at the load
	// peaks while hot: requests below it stay on the battery, whose I²R
	// heat is small at light load.
	PeakThreshold float64

	onCap bool
}

// NewDual returns the baseline with the paper-motivated defaults: redirect
// at 33 °C, release at 31 °C.
func NewDual() *Dual {
	return &Dual{
		SwitchTemp:        units.CToK(31),
		ReleaseTemp:       units.CToK(30),
		RechargeTargetSoE: 0.90,
		RechargePower:     4e3,
		RechargeMaxLoad:   8e3,
		PeakThreshold:     20e3,
	}
}

// Name implements sim.Controller.
func (*Dual) Name() string { return "Dual" }

// Decide implements sim.Controller.
func (d *Dual) Decide(p *sim.Plant, forecast []float64) sim.Action {
	pe := forecast[0]
	tb := p.Loop.BatteryTemp
	cap := p.HEES.Cap

	// Hysteresis on the thermal switch.
	if tb >= d.SwitchTemp {
		d.onCap = true
	} else if tb <= d.ReleaseTemp {
		d.onCap = false
	}

	// Regenerative braking: store it in the capacitor when there is
	// headroom; otherwise the battery takes it.
	if pe < 0 {
		if cap.SoE < cap.Params.MaxSoE {
			return sim.Action{Arch: sim.ArchDual, DualMode: hees.DualCap}
		}
		return sim.Action{Arch: sim.ArchDual, DualMode: hees.DualBattery}
	}

	// While hot, spend the capacitor's limited energy on the load peaks
	// (heat is quadratic in current, so peaks dominate battery heating)
	// whenever it can actually serve them.
	if d.onCap && pe >= d.PeakThreshold &&
		cap.SoE > cap.Params.MinSoE && cap.MaxDischargePower() >= pe {
		return sim.Action{Arch: sim.ArchDual, DualMode: hees.DualCap}
	}

	// Recharge the capacitor from the battery during light load so it is
	// ready for the next redirection — the behaviour the paper's Fig. 1
	// discussion attributes to [16] (and notes may itself heat the battery).
	if cap.SoE < d.RechargeTargetSoE && pe < d.RechargeMaxLoad {
		return sim.Action{
			Arch:            sim.ArchDual,
			DualMode:        hees.DualBatteryCharge,
			DualChargePower: d.RechargePower,
		}
	}
	return sim.Action{Arch: sim.ArchDual, DualMode: hees.DualBattery}
}

// ForecastDepth implements sim.ForecastReader: the policy reads only the
// present request forecast[0].
func (*Dual) ForecastDepth() int { return 1 }

// BatteryOnly is a minimal no-management, battery-direct controller used by
// tests and ablations (no cooling, no ultracapacitor).
type BatteryOnly struct{}

// Name implements sim.Controller.
func (BatteryOnly) Name() string { return "BatteryOnly" }

// Decide implements sim.Controller.
func (BatteryOnly) Decide(*sim.Plant, []float64) sim.Action {
	return sim.Action{Arch: sim.ArchBatteryDirect}
}

// ForecastDepth implements sim.ForecastReader: no window reads.
func (BatteryOnly) ForecastDepth() int { return 0 }

var (
	_ sim.Controller     = Parallel{}
	_ sim.Controller     = (*ActiveCooling)(nil)
	_ sim.Controller     = (*Dual)(nil)
	_ sim.Controller     = BatteryOnly{}
	_ sim.ForecastReader = Parallel{}
	_ sim.ForecastReader = (*ActiveCooling)(nil)
	_ sim.ForecastReader = (*Dual)(nil)
	_ sim.ForecastReader = BatteryOnly{}
)

// ByName constructs a baseline controller by name. It accepts both the
// legacy lowercase CLI names ("parallel", "cooling", "dual", "battery") and
// the canonical Methodology values, case-insensitively. Unknown names
// return an error wrapping ErrUnknown.
func ByName(name string) (sim.Controller, error) {
	switch strings.ToLower(name) {
	case "parallel":
		return ByMethodology(MethodologyParallel)
	case "cooling", "activecooling":
		return ByMethodology(MethodologyCooling)
	case "dual":
		return ByMethodology(MethodologyDual)
	case "battery", "batteryonly":
		return ByMethodology(MethodologyBattery)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknown, name)
}
