package policy

import (
	"testing"

	"repro/internal/units"
)

// TestPaperBaselineOrderings pins the qualitative shape of the paper's
// baseline comparison on US06 ×5 at 25 kF (the Figs. 6/8/9 workload):
//
//	capacity loss: ActiveCooling < Dual < Parallel < BatteryOnly
//	average power: ActiveCooling and Dual above Parallel (management costs),
//	               ActiveCooling the most expensive (paper Fig. 9 premise)
//	temperature:   ActiveCooling holds the safe zone; the unmanaged
//	               architectures violate it
//
// These orderings are the calibration contract the experiment suite relies
// on; if a model-parameter change breaks one of them, the paper's
// tables/figures will no longer reproduce.
func TestPaperBaselineOrderings(t *testing.T) {
	requests := us06Requests(t, 5)
	type row struct {
		qloss, avgP, viol, maxT float64
	}
	results := map[string]row{}
	for _, name := range []string{"battery", "parallel", "dual", "cooling"} {
		ctrl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := runPolicy(t, ctrl, 25000, requests)
		results[name] = row{r.QlossPct, r.AvgPowerW, r.ThermalViolationSec, r.MaxBatteryTemp}
	}

	if !(results["cooling"].qloss < results["dual"].qloss &&
		results["dual"].qloss < results["parallel"].qloss &&
		results["parallel"].qloss < results["battery"].qloss) {
		t.Errorf("capacity-loss ordering broken: cooling=%v dual=%v parallel=%v battery=%v",
			results["cooling"].qloss, results["dual"].qloss,
			results["parallel"].qloss, results["battery"].qloss)
	}
	if results["cooling"].avgP <= results["parallel"].avgP ||
		results["cooling"].avgP <= results["dual"].avgP {
		t.Errorf("active cooling avg power %v should be the most expensive (parallel %v, dual %v)",
			results["cooling"].avgP, results["parallel"].avgP, results["dual"].avgP)
	}
	if results["cooling"].viol != 0 {
		t.Errorf("active cooling should hold the safe zone, violated %v s", results["cooling"].viol)
	}
	if results["battery"].viol == 0 || results["parallel"].viol == 0 {
		t.Error("unmanaged architectures should violate the 40 °C limit on US06 ×5")
	}
	// Dual at 25 kF lands near the paper's 0.85× loss ratio vs parallel.
	ratio := results["dual"].qloss / results["parallel"].qloss
	if ratio < 0.60 || ratio > 0.95 {
		t.Errorf("dual/parallel loss ratio = %.3f, want ≈0.85 (paper Table I)", ratio)
	}
	if results["cooling"].maxT > units.CToK(40) {
		t.Errorf("active cooling peak temp %v exceeds the safe limit", results["cooling"].maxT)
	}
}
