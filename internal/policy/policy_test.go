package policy

import (
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

func us06Requests(t *testing.T, repeats int) []float64 {
	t.Helper()
	cycle := drivecycle.US06().Repeat(repeats)
	return vehicle.MidSizeEV().PowerSeries(cycle)
}

func runPolicy(t *testing.T, ctrl sim.Controller, capF float64, requests []float64) sim.Result {
	t.Helper()
	plant, err := sim.NewPlant(sim.PlantConfig{UltracapF: capF})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestByName(t *testing.T) {
	for _, n := range []string{"parallel", "cooling", "dual", "battery"} {
		c, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
		if c == nil {
			t.Errorf("ByName(%q) returned nil", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestControllerNames(t *testing.T) {
	if (Parallel{}).Name() != "Parallel" {
		t.Error("Parallel name")
	}
	if NewActiveCooling().Name() != "ActiveCooling" {
		t.Error("ActiveCooling name")
	}
	if NewDual().Name() != "Dual" {
		t.Error("Dual name")
	}
	if (BatteryOnly{}).Name() != "BatteryOnly" {
		t.Error("BatteryOnly name")
	}
}

func TestParallelRunsUS06(t *testing.T) {
	res := runPolicy(t, Parallel{}, 25000, us06Requests(t, 2))
	if res.FallbackSteps > res.Steps/10 {
		t.Errorf("parallel fell back on %d of %d steps", res.FallbackSteps, res.Steps)
	}
	if res.MaxBatteryTemp <= 298 {
		t.Error("battery never heated on US06")
	}
	if res.QlossPct <= 0 {
		t.Error("no aging recorded")
	}
	if res.CoolingEnergyJ != 0 {
		t.Error("parallel must not cool")
	}
}

func TestActiveCoolingHoldsTemperature(t *testing.T) {
	requests := us06Requests(t, 3)
	cooled := runPolicy(t, NewActiveCooling(), 25000, requests)
	uncooled := runPolicy(t, BatteryOnly{}, 25000, requests)
	if cooled.CoolingEnergyJ <= 0 {
		t.Error("thermostat never engaged")
	}
	if cooled.MaxBatteryTemp >= uncooled.MaxBatteryTemp {
		t.Errorf("cooling did not lower peak temperature: %.2f vs %.2f °C",
			units.KToC(cooled.MaxBatteryTemp), units.KToC(uncooled.MaxBatteryTemp))
	}
	if cooled.MaxBatteryTemp > units.CToK(40) {
		t.Errorf("active cooling let the pack exceed the safe limit: %.2f °C",
			units.KToC(cooled.MaxBatteryTemp))
	}
	// Cooling consumes: Fig. 9's premise.
	if cooled.AvgPowerW <= uncooled.AvgPowerW {
		t.Errorf("cooled avg power %v should exceed uncooled %v", cooled.AvgPowerW, uncooled.AvgPowerW)
	}
}

func TestActiveCoolingProportionalHysteresis(t *testing.T) {
	a := NewActiveCooling()
	plant, err := sim.NewPlant(sim.PlantConfig{InitialTemp: units.CToK(25)})
	if err != nil {
		t.Fatal(err)
	}
	// Well below the setpoint: off.
	act := a.Decide(plant, []float64{0})
	if act.CoolingOn {
		t.Error("cooling on below the setpoint")
	}
	// Above the setpoint: on, with the inlet depressed proportionally.
	plant.Loop.BatteryTemp = units.CToK(34)
	plant.Loop.CoolantTemp = units.CToK(33)
	act = a.Decide(plant, []float64{0})
	if !act.CoolingOn {
		t.Fatal("cooling off above setpoint")
	}
	wantInlet := plant.Loop.CoolantTemp - a.Gain*(units.CToK(34)-a.TargetTemp)
	if act.InletTemp != wantInlet {
		t.Errorf("inlet = %v, want %v", act.InletTemp, wantInlet)
	}
	// Hotter battery → colder commanded inlet.
	plant.Loop.BatteryTemp = units.CToK(36)
	act2 := a.Decide(plant, []float64{0})
	if act2.InletTemp >= act.InletTemp {
		t.Error("inlet command should deepen as the battery heats")
	}
	// Inside the hysteresis band (just below setpoint): stays on.
	plant.Loop.BatteryTemp = a.TargetTemp - a.OffBand/2
	act = a.Decide(plant, []float64{0})
	if !act.CoolingOn {
		t.Error("hysteresis lost: switched off inside band")
	}
	// Below the band: off again.
	plant.Loop.BatteryTemp = a.TargetTemp - 2*a.OffBand
	act = a.Decide(plant, []float64{0})
	if act.CoolingOn {
		t.Error("cooling on below the hysteresis band")
	}
}

func TestDualReducesCapacityLossVsParallel(t *testing.T) {
	requests := us06Requests(t, 3)
	par := runPolicy(t, Parallel{}, 25000, requests)
	dual := runPolicy(t, NewDual(), 25000, requests)
	if dual.QlossPct >= par.QlossPct {
		t.Errorf("dual capacity loss %.4g should beat parallel %.4g (paper Fig. 8)",
			dual.QlossPct, par.QlossPct)
	}
	if dual.MaxBatteryTemp >= par.MaxBatteryTemp {
		t.Errorf("dual peak temp %.2f °C should be below parallel %.2f °C (paper Fig. 6)",
			units.KToC(dual.MaxBatteryTemp), units.KToC(par.MaxBatteryTemp))
	}
}

func TestDualSmallCapViolatesWhereBigDoesNot(t *testing.T) {
	// Paper Fig. 1: with a small ultracapacitor the dual policy cannot hold
	// the temperature — the capacitor depletes and the battery reheats.
	requests := us06Requests(t, 5)
	small := runPolicy(t, NewDual(), 5000, requests)
	big := runPolicy(t, NewDual(), 25000, requests)
	if small.MaxBatteryTemp <= big.MaxBatteryTemp {
		t.Errorf("small cap should run hotter: %.2f vs %.2f °C",
			units.KToC(small.MaxBatteryTemp), units.KToC(big.MaxBatteryTemp))
	}
	if small.ThermalViolationSec <= big.ThermalViolationSec {
		t.Errorf("small cap should violate the safe zone longer: %v s vs %v s",
			small.ThermalViolationSec, big.ThermalViolationSec)
	}
	if small.QlossPct <= big.QlossPct {
		t.Errorf("small cap should age the battery more: %v vs %v", small.QlossPct, big.QlossPct)
	}
}

func TestDualRegenPrefersCap(t *testing.T) {
	d := NewDual()
	plant, err := sim.NewPlant(sim.PlantConfig{InitialSoE: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	act := d.Decide(plant, []float64{-20e3})
	if act.Arch != sim.ArchDual || act.DualMode.String() != "ultracap" {
		t.Errorf("regen action = %+v, want dual/ultracap", act)
	}
	// Full cap: regen to battery.
	plant.HEES.Cap.SoE = 1.0
	act = d.Decide(plant, []float64{-20e3})
	if act.DualMode.String() != "battery" {
		t.Errorf("regen with full cap = %+v, want battery", act)
	}
}

func TestDualRechargesWhenCool(t *testing.T) {
	d := NewDual()
	plant, err := sim.NewPlant(sim.PlantConfig{InitialSoE: 0.5, InitialTemp: units.CToK(25)})
	if err != nil {
		t.Fatal(err)
	}
	act := d.Decide(plant, []float64{5e3})
	if act.DualMode.String() != "battery+charge" {
		t.Errorf("cool+low SoE should recharge, got %v", act.DualMode)
	}
	// Heavy load suppresses recharging.
	act = d.Decide(plant, []float64{50e3})
	if act.DualMode.String() != "battery" {
		t.Errorf("heavy load should not recharge, got %v", act.DualMode)
	}
}

func TestDualSwitchesToCapWhenHot(t *testing.T) {
	d := NewDual()
	plant, err := sim.NewPlant(sim.PlantConfig{InitialTemp: units.CToK(36)})
	if err != nil {
		t.Fatal(err)
	}
	act := d.Decide(plant, []float64{20e3})
	if act.DualMode.String() != "ultracap" {
		t.Errorf("hot battery should switch to cap, got %v", act.DualMode)
	}
	// Depleted cap: battery anyway.
	plant.HEES.Cap.SoE = 0.1
	act = d.Decide(plant, []float64{20e3})
	if act.DualMode.String() != "battery" {
		t.Errorf("hot battery with empty cap should use battery, got %v", act.DualMode)
	}
}
