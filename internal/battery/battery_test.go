package battery

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestNCR18650AValid(t *testing.T) {
	if err := NCR18650A().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*CellParams)
	}{
		{"zero capacity", func(p *CellParams) { p.CapacityAh = 0 }},
		{"negative ref temp", func(p *CellParams) { p.RefTemp = -1 }},
		{"zero heat capacity", func(p *CellParams) { p.HeatCapacity = 0 }},
		{"inverted SoC window", func(p *CellParams) { p.MinSoC = 0.9; p.MaxSoC = 0.2 }},
		{"SoC above 1", func(p *CellParams) { p.MaxSoC = 1.5 }},
		{"zero safe temp", func(p *CellParams) { p.SafeTemp = 0 }},
		{"zero max current", func(p *CellParams) { p.MaxCurrent = 0 }},
		{"negative activation energy", func(p *CellParams) { p.L[1] = -5 }},
	}
	for _, m := range mutations {
		p := NCR18650A()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", m.name)
		}
	}
}

func TestOCVShape(t *testing.T) {
	p := NCR18650A()
	full := p.OCV(1)
	empty := p.OCV(0)
	if full < 3.9 || full > 4.3 {
		t.Errorf("OCV(1) = %v, want ≈4.1 V", full)
	}
	if empty > 3.0 || empty < 2.0 {
		t.Errorf("OCV(0) = %v, want ≈2.65 V", empty)
	}
	// Monotone increasing over the usable window.
	prev := p.OCV(0.2)
	for z := 0.25; z <= 1.0001; z += 0.05 {
		v := p.OCV(z)
		if v < prev {
			t.Errorf("OCV not monotone at z=%v: %v < %v", z, v, prev)
		}
		prev = v
	}
	// Clamping outside [0,1].
	if p.OCV(1.5) != p.OCV(1) || p.OCV(-0.5) != p.OCV(0) {
		t.Error("OCV does not clamp SoC")
	}
}

func TestResistanceTemperatureEffect(t *testing.T) {
	p := NCR18650A()
	rCold := p.Resistance(0.5, units.CToK(0))
	rRef := p.Resistance(0.5, units.CToK(25))
	rHot := p.Resistance(0.5, units.CToK(40))
	if !(rCold > rRef && rRef > rHot) {
		t.Errorf("resistance not decreasing with T: %v, %v, %v", rCold, rRef, rHot)
	}
	// At the reference temperature the correction must vanish.
	base := p.R[0]*math.Exp(p.R[1]*0.5) + p.R[2]
	if math.Abs(rRef-base) > 1e-12 {
		t.Errorf("Resistance at RefTemp = %v, want %v", rRef, base)
	}
}

func TestResistanceLowSoCHigher(t *testing.T) {
	p := NCR18650A()
	if p.Resistance(0.05, p.RefTemp) <= p.Resistance(0.9, p.RefTemp) {
		t.Error("resistance should rise at low SoC")
	}
}

func TestHeatRateEntropySigns(t *testing.T) {
	p := NCR18650A()
	T := units.CToK(25)
	r := p.Resistance(0.5, T)
	jouleOnly := func(i float64) float64 { return i * i * r }

	// Discharge: exothermic entropy (dVoc/dT > 0) adds to the Joule term.
	qDis := p.HeatRate(3, 0.5, T)
	if qDis <= jouleOnly(3) {
		t.Errorf("discharge heat %v should exceed pure Joule %v", qDis, jouleOnly(3))
	}
	// Charge: the entropic term is endothermic; at low current the cell
	// cools on net (regenerative braking absorbs heat).
	qChg := p.HeatRate(-1, 0.5, T)
	if qChg >= jouleOnly(1) {
		t.Errorf("charge heat %v should be below pure Joule %v", qChg, jouleOnly(1))
	}
	// At high charge current Joule dominates again.
	if q := p.HeatRate(-10, 0.5, T); q <= 0 {
		t.Errorf("high-rate charge heat %v, want > 0 (Joule dominated)", q)
	}
	if p.HeatRate(0, 0.5, T) != 0 {
		t.Error("zero current must generate zero heat")
	}
}

func TestAgingRateArrhenius(t *testing.T) {
	p := NCR18650A()
	r25 := p.AgingRate(2, units.CToK(25))
	r40 := p.AgingRate(2, units.CToK(40))
	if r40 <= r25 {
		t.Errorf("aging must accelerate with temperature: %v vs %v", r40, r25)
	}
	// Paper-cited behaviour: roughly 1.5–2.5× per 15 K near room temperature.
	ratio := r40 / r25
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("aging ratio over 15 K = %v, want in [1.3, 3.5]", ratio)
	}
	if p.AgingRate(0, units.CToK(25)) != 0 {
		t.Error("zero current must not age the cell")
	}
}

func TestAgingRateSuperlinearInCurrent(t *testing.T) {
	p := NCR18650A()
	T := units.CToK(30)
	// With L[2] > 1, splitting a current in half more than halves the rate:
	// rate(2I) > 2·rate(I).
	if p.AgingRate(4, T) <= 2*p.AgingRate(2, T) {
		t.Error("aging should be super-linear in current (peak shaving must pay off)")
	}
}

func TestAgingRateMonotoneProperty(t *testing.T) {
	p := NCR18650A()
	f := func(a, b float64) bool {
		ia, ib := math.Abs(math.Mod(a, 10)), math.Abs(math.Mod(b, 10))
		if math.IsNaN(ia) || math.IsNaN(ib) {
			return true
		}
		lo, hi := math.Min(ia, ib), math.Max(ia, ib)
		return p.AgingRate(lo, 300) <= p.AgingRate(hi, 300)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPackValidation(t *testing.T) {
	cell := NCR18650A()
	if _, err := NewPack(cell, 0, 1, 0.5, 300); err == nil {
		t.Error("accepted zero series count")
	}
	if _, err := NewPack(cell, 96, -1, 0.5, 300); err == nil {
		t.Error("accepted negative parallel count")
	}
	if _, err := NewPack(cell, 96, 74, 1.5, 300); err == nil {
		t.Error("accepted SoC > 1")
	}
	if _, err := NewPack(cell, 96, 74, 0.5, -10); err == nil {
		t.Error("accepted negative temperature")
	}
	bad := cell
	bad.CapacityAh = -1
	if _, err := NewPack(bad, 96, 74, 0.5, 300); err == nil {
		t.Error("accepted invalid cell params")
	}
}

func TestTeslaPackAggregates(t *testing.T) {
	b := MustTeslaModelSPack(1.0, units.CToK(25))
	if got := b.CellCount(); got != 96*74 {
		t.Errorf("CellCount = %d", got)
	}
	if got := b.CapacityAh(); math.Abs(got-3.1*74) > 1e-9 {
		t.Errorf("CapacityAh = %v", got)
	}
	voc := b.OCV()
	if voc < 380 || voc > 410 {
		t.Errorf("pack OCV = %v, want ≈ 390 V at full charge", voc)
	}
	r := b.Resistance()
	if r < 0.02 || r > 0.2 {
		t.Errorf("pack resistance = %v Ω, want tens of mΩ", r)
	}
	if b.MaxDischargePower() < 200e3 {
		t.Errorf("MaxDischargePower = %v, want > 200 kW", b.MaxDischargePower())
	}
}

func TestCurrentForPowerRoundTrip(t *testing.T) {
	b := MustTeslaModelSPack(0.8, units.CToK(25))
	for _, p := range []float64{-50e3, -10e3, 0, 5e3, 40e3, 120e3} {
		i, err := b.CurrentForPower(p)
		if err != nil {
			t.Fatalf("CurrentForPower(%v): %v", p, err)
		}
		got := (b.OCV() - b.Resistance()*i) * i
		if math.Abs(got-p) > 1e-6*(1+math.Abs(p)) {
			t.Errorf("power round trip: got %v, want %v", got, p)
		}
		if p > 0 && i <= 0 {
			t.Errorf("discharge power %v gave current %v", p, i)
		}
		if p < 0 && i >= 0 {
			t.Errorf("charge power %v gave current %v", p, i)
		}
	}
}

func TestCurrentForPowerInfeasible(t *testing.T) {
	b := MustTeslaModelSPack(0.8, units.CToK(25))
	_, err := b.CurrentForPower(b.MaxDischargePower() * 1.01)
	if !errors.Is(err, ErrPowerInfeasible) {
		t.Errorf("err = %v, want ErrPowerInfeasible", err)
	}
}

func TestStepDischargeDrainsSoC(t *testing.T) {
	b := MustTeslaModelSPack(0.9, units.CToK(25))
	soc0 := b.SoC
	res, err := b.Step(50e3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.SoC >= soc0 {
		t.Errorf("SoC did not drop: %v -> %v", soc0, b.SoC)
	}
	if res.HeatRate <= 0 {
		t.Errorf("HeatRate = %v, want > 0", res.HeatRate)
	}
	if res.JouleLoss <= 0 {
		t.Errorf("JouleLoss = %v", res.JouleLoss)
	}
	if res.ChemicalEnergy <= 50e3 {
		t.Errorf("ChemicalEnergy = %v, want > delivered 50 kJ (includes losses)", res.ChemicalEnergy)
	}
	if res.AgingPct <= 0 {
		t.Errorf("AgingPct = %v, want > 0", res.AgingPct)
	}
	if b.CapacityLossPct != res.AgingPct {
		t.Errorf("pack loss %v != step loss %v", b.CapacityLossPct, res.AgingPct)
	}
}

func TestStepChargeRaisesSoC(t *testing.T) {
	b := MustTeslaModelSPack(0.5, units.CToK(25))
	soc0 := b.SoC
	res, err := b.Step(-30e3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.SoC <= soc0 {
		t.Errorf("SoC did not rise on charge: %v -> %v", soc0, b.SoC)
	}
	if res.Current >= 0 {
		t.Errorf("charge current = %v, want < 0", res.Current)
	}
	if res.ChemicalEnergy >= 0 {
		t.Errorf("ChemicalEnergy = %v, want < 0 (energy stored)", res.ChemicalEnergy)
	}
	if res.TerminalVoltage <= b.OCV() {
		t.Errorf("charging terminal voltage %v should exceed OCV %v", res.TerminalVoltage, b.OCV())
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	b := MustTeslaModelSPack(0.5, units.CToK(25))
	if _, err := b.Step(1000, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := b.StepCurrent(10, -1); err == nil {
		t.Error("dt<0 accepted")
	}
}

func TestStepCoulombCounting(t *testing.T) {
	// Discharging at exactly 1C for one hour should drain 100 % SoC.
	b := MustTeslaModelSPack(1.0, units.CToK(25))
	iC := b.CapacityAh() // amperes for 1C
	dt := 1.0
	for s := 0; s < 3600; s++ {
		if _, err := b.StepCurrent(iC, dt); err != nil {
			t.Fatal(err)
		}
	}
	if b.SoC > 1e-9 {
		t.Errorf("after 1C for 1 h, SoC = %v, want 0", b.SoC)
	}
}

func TestStepEnergyConservation(t *testing.T) {
	// Chemical energy = delivered energy + Joule loss for one step.
	b := MustTeslaModelSPack(0.8, units.CToK(25))
	power := 60e3
	dt := 1.0
	res, err := b.Step(power, dt)
	if err != nil {
		t.Fatal(err)
	}
	delivered := power * dt
	if math.Abs(res.ChemicalEnergy-(delivered+res.JouleLoss*dt)) > 1e-6*res.ChemicalEnergy {
		t.Errorf("energy balance: chem %v, delivered+loss %v",
			res.ChemicalEnergy, delivered+res.JouleLoss*dt)
	}
}

func TestSoCClampAtEmpty(t *testing.T) {
	b := MustTeslaModelSPack(0.001, units.CToK(25))
	for s := 0; s < 100; s++ {
		if _, err := b.StepCurrent(b.MaxCurrent(), 10); err != nil {
			t.Fatal(err)
		}
	}
	if b.SoC < 0 {
		t.Errorf("SoC went negative: %v", b.SoC)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	b := MustTeslaModelSPack(0.7, units.CToK(25))
	c := b.Clone()
	if _, err := c.Step(50e3, 5); err != nil {
		t.Fatal(err)
	}
	if b.SoC != 0.7 || b.CapacityLossPct != 0 {
		t.Error("Clone mutation leaked into original")
	}
}

func TestEffectiveCapacityReflectsAging(t *testing.T) {
	b := MustTeslaModelSPack(0.7, units.CToK(25))
	b.CapacityLossPct = 20
	want := b.CapacityAh() * 0.8
	if got := b.EffectiveCapacityAh(); math.Abs(got-want) > 1e-9 {
		t.Errorf("EffectiveCapacityAh = %v, want %v", got, want)
	}
}

func TestHeatConsistencyStepVsCellModel(t *testing.T) {
	// Pack heat rate must equal cellcount × per-cell heat at the same
	// operating point.
	b := MustTeslaModelSPack(0.6, units.CToK(30))
	res, err := b.StepCurrent(148, 1) // 2 A per string
	if err != nil {
		t.Fatal(err)
	}
	// Recompute from pre-step state: per-cell current 148/74 = 2 A.
	p := NCR18650A()
	want := p.HeatRate(2, 0.6, units.CToK(30)) * 96 * 74
	if math.Abs(res.HeatRate-want) > 1e-9*math.Abs(want) {
		t.Errorf("HeatRate = %v, want %v", res.HeatRate, want)
	}
}

func TestLFP26650Valid(t *testing.T) {
	if err := LFP26650().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLFPChemistryShape(t *testing.T) {
	lfp := LFP26650()
	nca := NCR18650A()
	// Lower nominal voltage.
	if lfp.OCV(0.5) >= nca.OCV(0.5) {
		t.Errorf("LFP OCV %v should be below NCA %v", lfp.OCV(0.5), nca.OCV(0.5))
	}
	// Much flatter plateau: the 30–90 % swing is a fraction of NCA's.
	lfpSwing := lfp.OCV(0.9) - lfp.OCV(0.3)
	ncaSwing := nca.OCV(0.9) - nca.OCV(0.3)
	if lfpSwing >= ncaSwing/2 {
		t.Errorf("LFP swing %v not flat vs NCA %v", lfpSwing, ncaSwing)
	}
	// OCV still monotone.
	prev := lfp.OCV(0.05)
	for z := 0.1; z <= 1.0001; z += 0.05 {
		v := lfp.OCV(z)
		if v < prev {
			t.Fatalf("LFP OCV not monotone at %v", z)
		}
		prev = v
	}
	// Higher thermal tolerance and slower aging at the same conditions.
	if lfp.SafeTemp <= nca.SafeTemp {
		t.Error("LFP should tolerate higher temperature")
	}
	if lfp.AgingRate(3, units.CToK(35)) >= nca.AgingRate(3, units.CToK(35)) {
		t.Error("LFP should age slower at moderate temperature")
	}
}

func TestLFPPackRuns(t *testing.T) {
	// A 112S30P LFP pack reaches a comparable bus voltage (~360 V).
	p, err := NewPack(LFP26650(), 112, 30, 0.9, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.OCV(); v < 330 || v > 400 {
		t.Errorf("LFP pack OCV = %v, want ≈360 V", v)
	}
	if _, err := p.Step(40e3, 1); err != nil {
		t.Fatal(err)
	}
}
