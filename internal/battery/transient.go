package battery

import (
	"fmt"
	"math"

	"repro/internal/core/floats"
	"repro/internal/units"
)

// RCPair is one parallel resistor–capacitor branch of a Thevenin battery
// model, capturing the diffusion-driven transient voltage relaxation the
// quasi-static model (Pack) omits. The paper notes that "a more detailed
// battery electrical model … will not contradict our methodology";
// TransientPack exists to check that claim quantitatively.
type RCPair struct {
	// R is the branch resistance in ohms (cell level).
	R float64
	// C is the branch capacitance in farads (cell level).
	C float64
}

// DefaultRCPair returns a diffusion branch typical of 18650-class cells:
// a ~30 s relaxation constant with a polarisation resistance comparable to
// half the ohmic resistance.
func DefaultRCPair() RCPair { return RCPair{R: 0.012, C: 2500} }

// Validate reports an error for non-physical parameters.
func (rc RCPair) Validate() error {
	if rc.R <= 0 || rc.C <= 0 {
		return fmt.Errorf("battery: RC pair (%g Ω, %g F) must be positive", rc.R, rc.C)
	}
	return nil
}

// Tau returns the branch time constant R·C in seconds.
func (rc RCPair) Tau() float64 { return rc.R * rc.C }

// TransientPack augments Pack with one RC polarisation branch per cell:
//
//	V_term = OCV(z) − V_rc − I·R₀(z,T)
//	dV_rc/dt = I_cell/C − V_rc/(R·C)
//
// The polarisation voltage V_rc is shared by all cells (identical cells,
// lumped model), expressed at cell level.
type TransientPack struct {
	// Pack is the underlying quasi-static pack (SoC, temperature, aging).
	*Pack
	// RC is the polarisation branch.
	RC RCPair
	// Vrc is the cell-level polarisation voltage, volts.
	Vrc float64
}

// NewTransientPack wraps a pack with a polarisation branch.
func NewTransientPack(pack *Pack, rc RCPair) (*TransientPack, error) {
	if pack == nil {
		return nil, fmt.Errorf("battery: nil pack")
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return &TransientPack{Pack: pack, RC: rc}, nil
}

// TerminalVoltage returns the pack terminal voltage at the given pack
// current, including the polarisation drop.
func (tp *TransientPack) TerminalVoltage(packCurrent float64) float64 {
	cellI := packCurrent / float64(tp.Parallel)
	v := tp.Cell.TerminalVoltage(cellI, tp.SoC, tp.Temp) - tp.Vrc
	return v * float64(tp.Series)
}

// Step draws the terminal power (watts, discharge positive) for dt seconds,
// advancing SoC, aging and the polarisation state. The effective
// open-circuit voltage seen by the quadratic power solve is OCV − V_rc.
func (tp *TransientPack) Step(power, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("battery: non-positive dt %g", dt)
	}
	voc := tp.OCV() - tp.Vrc*float64(tp.Series)
	r := tp.Resistance()
	disc := voc*voc - 4*r*power
	if disc < 0 {
		return StepResult{}, fmt.Errorf("%w: %.0f W (transient)", ErrPowerInfeasible, power)
	}
	i := (voc - math.Sqrt(disc)) / (2 * r)

	// Advance the polarisation branch (backward Euler, unconditionally
	// stable): V⁺ = (V + dt·I_cell/C) / (1 + dt/(R·C)).
	cellI := i / float64(tp.Parallel)
	tp.Vrc = (tp.Vrc + dt*cellI/tp.RC.C) / (1 + dt/tp.RC.Tau())

	res := tp.stepWithCurrent(i, dt)
	// Correct the terminal voltage and heat for the polarisation drop: the
	// RC branch dissipates V_rc²/R per cell.
	res.TerminalVoltage -= tp.Vrc * float64(tp.Series)
	rcHeat := tp.Vrc * tp.Vrc / tp.RC.R * float64(tp.CellCount())
	res.HeatRate += rcHeat
	return res, nil
}

// RelaxationError runs both models over the same power profile and returns
// the RMS relative difference of the drawn chemical energy — the
// quantitative check that the quasi-static simplification holds for
// control purposes.
func RelaxationError(cell CellParams, series, parallel int, rc RCPair, profile []float64, dt float64) (float64, error) {
	staticPack, err := NewPack(cell, series, parallel, 0.9, units.CToK(25))
	if err != nil {
		return 0, err
	}
	base, err := NewPack(cell, series, parallel, 0.9, units.CToK(25))
	if err != nil {
		return 0, err
	}
	transient, err := NewTransientPack(base, rc)
	if err != nil {
		return 0, err
	}
	var sumSq float64
	var n int
	for _, p := range profile {
		rs, err := staticPack.Step(p, dt)
		if err != nil {
			return 0, err
		}
		rt, err := transient.Step(p, dt)
		if err != nil {
			return 0, err
		}
		if !floats.Zero(rs.ChemicalEnergy) {
			d := (rt.ChemicalEnergy - rs.ChemicalEnergy) / math.Abs(rs.ChemicalEnergy)
			sumSq += d * d
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return math.Sqrt(sumSq / float64(n)), nil
}
