package battery

import (
	"math"
	"testing"

	"repro/internal/units"
)

func newTransient(t *testing.T) *TransientPack {
	t.Helper()
	pack, err := NewPack(NCR18650A(), 96, 24, 0.9, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTransientPack(pack, DefaultRCPair())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestRCPairValidate(t *testing.T) {
	if err := DefaultRCPair().Validate(); err != nil {
		t.Fatal(err)
	}
	if (RCPair{R: 0, C: 100}).Validate() == nil {
		t.Error("zero R accepted")
	}
	if (RCPair{R: 0.01, C: -1}).Validate() == nil {
		t.Error("negative C accepted")
	}
	if got := (RCPair{R: 0.01, C: 3000}).Tau(); math.Abs(got-30) > 1e-12 {
		t.Errorf("Tau = %v, want 30", got)
	}
}

func TestNewTransientPackValidation(t *testing.T) {
	if _, err := NewTransientPack(nil, DefaultRCPair()); err == nil {
		t.Error("nil pack accepted")
	}
	pack, _ := NewPack(NCR18650A(), 96, 24, 0.9, 298)
	if _, err := NewTransientPack(pack, RCPair{}); err == nil {
		t.Error("invalid RC accepted")
	}
}

func TestPolarisationBuildsAndRelaxes(t *testing.T) {
	tp := newTransient(t)
	// Sustained discharge builds polarisation voltage.
	for i := 0; i < 120; i++ {
		if _, err := tp.Step(40e3, 1); err != nil {
			t.Fatal(err)
		}
	}
	built := tp.Vrc
	if built <= 0 {
		t.Fatalf("polarisation did not build: %v", built)
	}
	// Rest relaxes it toward zero with time constant τ≈30 s.
	for i := 0; i < 90; i++ {
		if _, err := tp.Step(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if tp.Vrc >= built*0.1 {
		t.Errorf("polarisation did not relax after 3τ: %v of %v", tp.Vrc, built)
	}
}

func TestTransientVoltageSagsBelowStatic(t *testing.T) {
	tp := newTransient(t)
	static, _ := NewPack(NCR18650A(), 96, 24, 0.9, units.CToK(25))
	var vT, vS float64
	for i := 0; i < 60; i++ {
		rt, err := tp.Step(50e3, 1)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := static.Step(50e3, 1)
		if err != nil {
			t.Fatal(err)
		}
		vT, vS = rt.TerminalVoltage, rs.TerminalVoltage
	}
	if vT >= vS {
		t.Errorf("transient terminal voltage %v should sag below static %v under load", vT, vS)
	}
}

func TestTransientHeatIncludesPolarisationLoss(t *testing.T) {
	tp := newTransient(t)
	// Warm up the branch.
	for i := 0; i < 120; i++ {
		if _, err := tp.Step(40e3, 1); err != nil {
			t.Fatal(err)
		}
	}
	static, _ := NewPack(NCR18650A(), 96, 24, tp.SoC, units.CToK(25))
	rt, err := tp.Step(40e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := static.Step(40e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.HeatRate <= rs.HeatRate {
		t.Errorf("transient heat %v should exceed static %v (RC dissipation)", rt.HeatRate, rs.HeatRate)
	}
}

func TestTransientStepRejectsBadInput(t *testing.T) {
	tp := newTransient(t)
	if _, err := tp.Step(1e3, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := tp.Step(1e9, 1); err == nil {
		t.Error("infeasible power accepted")
	}
}

func TestRelaxationErrorSmall(t *testing.T) {
	// The paper's claim: the quasi-static simplification does not change
	// the energy accounting materially. On a pulsed drive-like profile the
	// RMS relative difference in per-step chemical energy must be small.
	profile := make([]float64, 600)
	for i := range profile {
		switch {
		case i%60 < 10:
			profile[i] = 70e3
		case i%60 < 40:
			profile[i] = 15e3
		default:
			profile[i] = -10e3
		}
	}
	rmse, err := RelaxationError(NCR18650A(), 96, 24, DefaultRCPair(), profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse <= 0 {
		t.Error("models identical — transient branch inert?")
	}
	if rmse > 0.05 {
		t.Errorf("quasi-static error %.4f exceeds 5%% — simplification claim violated", rmse)
	}
}
