package battery

import (
	"testing"

	"repro/internal/units"
)

func BenchmarkPackStep(b *testing.B) {
	pack := MustTeslaModelSPack(0.8, units.CToK(25))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pack.Step(40e3, 1); err != nil {
			b.Fatal(err)
		}
		pack.SoC = 0.8 // keep the operating point fixed
	}
}

func BenchmarkCellOCV(b *testing.B) {
	p := NCR18650A()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.OCV(0.5)
	}
	_ = sink
}

func BenchmarkAgingRate(b *testing.B) {
	p := NCR18650A()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.AgingRate(3, 305)
	}
	_ = sink
}
