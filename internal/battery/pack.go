package battery

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// ErrPowerInfeasible is returned when a requested terminal power exceeds
// the pack's instantaneous capability Voc²/(4R).
var ErrPowerInfeasible = errors.New("battery: requested power exceeds pack capability")

// Pack is a battery pack of Series×Parallel identical cells with the lumped
// thermal model of paper §II-D: all cells share one temperature node.
//
// The zero value is not usable; construct with NewPack.
type Pack struct {
	// Cell holds the per-cell parameters.
	Cell CellParams
	// Series and Parallel define the pack topology.
	Series, Parallel int

	// SoC is the pack state of charge as a fraction in [0, 1] (Eq. 1).
	SoC float64
	// Temp is the lumped cell temperature T_b in kelvin.
	Temp float64
	// CapacityLossPct is the accumulated capacity loss Q_loss in percent of
	// rated capacity (Eq. 5, integrated).
	CapacityLossPct float64
}

// NewPack builds a pack with the given topology, initial state of charge
// (fraction) and temperature (kelvin).
func NewPack(cell CellParams, series, parallel int, soc, temp float64) (*Pack, error) {
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	if series <= 0 || parallel <= 0 {
		return nil, fmt.Errorf("battery: topology %dS%dP invalid", series, parallel)
	}
	if soc < 0 || soc > 1 {
		return nil, fmt.Errorf("battery: initial SoC %g outside [0, 1]", soc)
	}
	if temp <= 0 {
		return nil, fmt.Errorf("battery: initial temperature %g K invalid", temp)
	}
	return &Pack{Cell: cell, Series: series, Parallel: parallel, SoC: soc, Temp: temp}, nil
}

// MustTeslaModelSPack returns an NCR18650A pack in the Tesla-Model-S-like 96S74P
// topology the paper references (§II-A), at the given initial SoC and
// temperature.
func MustTeslaModelSPack(soc, temp float64) *Pack {
	p, err := NewPack(NCR18650A(), 96, 74, soc, temp)
	if err != nil {
		panic("battery: MustTeslaModelSPack defaults invalid: " + err.Error())
	}
	return p
}

// CellCount returns the total number of cells.
func (b *Pack) CellCount() int { return b.Series * b.Parallel }

// CapacityAh returns the rated pack capacity in ampere-hours.
func (b *Pack) CapacityAh() float64 { return b.Cell.CapacityAh * float64(b.Parallel) }

// EffectiveCapacityAh returns the pack capacity corrected for accumulated
// aging.
func (b *Pack) EffectiveCapacityAh() float64 {
	return b.CapacityAh() * (1 - b.CapacityLossPct/100)
}

// OCV returns the pack open-circuit voltage at the current state of charge.
func (b *Pack) OCV() float64 { return b.Cell.OCV(b.SoC) * float64(b.Series) }

// Resistance returns the pack internal resistance at the current state.
func (b *Pack) Resistance() float64 {
	return b.Cell.Resistance(b.SoC, b.Temp) * float64(b.Series) / float64(b.Parallel)
}

// HeatCapacity returns the lumped thermal capacity of the whole pack in J/K.
func (b *Pack) HeatCapacity() float64 {
	return b.Cell.HeatCapacity * float64(b.CellCount())
}

// MaxDischargePower returns the theoretical instantaneous power capability
// Voc²/(4R) in watts at the current state.
func (b *Pack) MaxDischargePower() float64 {
	voc := b.OCV()
	return voc * voc / (4 * b.Resistance())
}

// MaxCurrent returns the pack discharge-current limit in amperes
// (constraint C6 at pack level).
func (b *Pack) MaxCurrent() float64 { return b.Cell.MaxCurrent * float64(b.Parallel) }

// StepPrep carries the state-dependent quantities one integration step
// needs: the cell and pack open-circuit voltage and internal resistance at
// the present (SoC, Temp). Evaluating them once per step and sharing the
// result between the bus solve, the current integration and the heat model
// removes the two to three redundant exponential evaluations the unhoisted
// accessors cost.
//
// Bit-identity contract: every field is produced by exactly the expression
// the corresponding accessor (OCV, Resistance) uses, so substituting a prep
// field for a direct call yields identical bits — the property the fleet
// digest and the simulation goldens pin.
type StepPrep struct {
	// CellVoc and CellR are the per-cell open-circuit voltage (volts) and
	// internal resistance (ohms) at the pack state.
	CellVoc, CellR float64
	// VOC and R are the pack-level values Pack.OCV and Pack.Resistance
	// would return.
	VOC, R float64
}

// PrepareStep evaluates the state-dependent cell quantities once. The prep
// is valid until the pack state (SoC, Temp, CapacityLossPct) next changes.
func (b *Pack) PrepareStep() StepPrep {
	cellVoc := b.Cell.OCV(b.SoC)
	cellR := b.Cell.Resistance(b.SoC, b.Temp)
	return StepPrep{
		CellVoc: cellVoc,
		CellR:   cellR,
		VOC:     cellVoc * float64(b.Series),
		R:       cellR * float64(b.Series) / float64(b.Parallel),
	}
}

// CurrentForPower solves the terminal power balance P = (Voc − R·I)·I for
// the pack current I (discharge positive). For charging, pass power < 0.
// It returns ErrPowerInfeasible when |power| exceeds the pack capability.
func (b *Pack) CurrentForPower(power float64) (float64, error) {
	return currentForPowerPrepared(b.PrepareStep(), power)
}

// currentForPowerPrepared is CurrentForPower on hoisted state quantities.
func currentForPowerPrepared(pre StepPrep, power float64) (float64, error) {
	voc := pre.VOC
	r := pre.R
	// (Voc − R·I)·I = P  →  R·I² − Voc·I + P = 0
	// Discharge root: I = (Voc − sqrt(Voc² − 4·R·P)) / (2R); the same
	// expression yields the (negative) charging current for P < 0.
	disc := voc*voc - 4*r*power
	if disc < 0 {
		return 0, fmt.Errorf("%w: %.0f W > %.0f W", ErrPowerInfeasible, power, voc*voc/(4*r))
	}
	return (voc - math.Sqrt(disc)) / (2 * r), nil
}

// StepResult reports what happened during one integration step of the pack.
type StepResult struct {
	// Current is the pack current in amperes (discharge positive).
	Current float64
	// TerminalVoltage is the pack terminal voltage in volts.
	TerminalVoltage float64
	// HeatRate is the total internal heat generation Q_b of the pack in
	// watts (Eq. 4 summed over cells).
	HeatRate float64
	// JouleLoss is the resistive loss I²R of the pack in watts.
	JouleLoss float64
	// ChemicalEnergy is the energy drawn from (positive) or returned to
	// (negative) the cells' chemistry during the step, in joules:
	// Voc·I·Δt. This is dE_bat in the paper's cost function.
	ChemicalEnergy float64
	// AgingPct is the capacity loss accumulated during the step, in percent
	// of rated capacity.
	AgingPct float64
}

// Step draws the given terminal power (watts, discharge positive) for dt
// seconds: it solves the current, integrates SoC (Eq. 1) and aging (Eq. 5),
// and reports energies and heat. The pack temperature is NOT advanced here —
// thermal integration is owned by the cooling-system model, which needs the
// returned HeatRate.
//
// SoC is clamped to [0, 1]; callers enforce the usable window (C4)
// at the policy level.
func (b *Pack) Step(power, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("battery: non-positive dt %g", dt)
	}
	pre := b.PrepareStep()
	i, err := currentForPowerPrepared(pre, power)
	if err != nil {
		return StepResult{}, err
	}
	return b.StepCurrentPrepared(pre, i, dt), nil
}

// StepCurrent advances the pack with a prescribed pack current (amperes,
// discharge positive) rather than a power request; used by the passive
// parallel architecture where the current split is solved externally.
func (b *Pack) StepCurrent(i, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("battery: non-positive dt %g", dt)
	}
	return b.stepWithCurrent(i, dt), nil
}

func (b *Pack) stepWithCurrent(i, dt float64) StepResult {
	return b.StepCurrentPrepared(b.PrepareStep(), i, dt)
}

// StepCurrentPrepared is StepCurrent on hoisted state quantities: pre must
// come from PrepareStep on the pack's present state (the parallel-bus
// solver evaluates it once and shares it between the split solve and this
// integration). dt must be positive — the caller's architecture step has
// already validated it.
func (b *Pack) StepCurrentPrepared(pre StepPrep, i, dt float64) StepResult {
	voc := pre.VOC
	r := pre.R
	vterm := voc - i*r

	cellI := i / float64(b.Parallel)
	// Eq. 4 with the hoisted cell resistance — the expression tree of
	// CellParams.HeatRate with pre.CellR substituted for the recomputation.
	heat := (cellI*cellI*pre.CellR + cellI*b.Temp*b.Cell.DVocDT) * float64(b.CellCount())
	joule := i * i * r
	aging := b.Cell.AgingRate(cellI, b.Temp) * dt

	// Eq. 1: SoC_t = SoC_0 − ∫ I/C dt, against the aging-corrected capacity
	// so long-horizon lifetime studies see the fade.
	capC := units.AhToCoulomb(b.EffectiveCapacityAh())
	b.SoC = units.Clamp(b.SoC-i*dt/capC, 0, 1)
	b.CapacityLossPct += aging

	return StepResult{
		Current:         i,
		TerminalVoltage: vterm,
		HeatRate:        heat,
		JouleLoss:       joule,
		ChemicalEnergy:  voc * i * dt,
		AgingPct:        aging,
	}
}

// Clone returns an independent copy of the pack, used by predictive
// controllers to roll the model forward without disturbing the plant.
func (b *Pack) Clone() *Pack {
	cp := *b
	return &cp
}
