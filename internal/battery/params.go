// Package battery models the Li-ion cells and battery pack of the paper's
// HEES (paper §II-A): the equivalent-circuit electrical model (Eqs. 1–3),
// internal heat generation (Eq. 4) and the Arrhenius capacity-loss aging
// model (Eq. 5), plus series×parallel pack aggregation.
//
// Sign convention: current and power are positive when discharging (the pack
// delivers energy to the vehicle) and negative when charging (regenerative
// braking).
package battery

import (
	"fmt"

	"repro/internal/units"
)

// CellParams holds the empirical coefficients of one Li-ion cell. The
// functional forms follow the paper exactly:
//
//	Voc(SoC)  = V[0]·e^{V[1]·z} + V[2]·z⁴ + V[3]·z³ + V[4]·z² + V[5]·z + V[6]   (Eq. 2)
//	R(SoC,T)  = (R[0]·e^{R[1]·z} + R[2]) · e^{Kr·(1/T − 1/Tref)}                (Eq. 3)
//	Q̇         = I·(Voc − Vterm) + I·T·dVoc/dT                                    (Eq. 4)
//	dQloss/dt = L[0]·e^{−L[1]/(R̄·T)}·|I|^{L[2]}                                  (Eq. 5)
//
// where z is the state of charge as a fraction in [0, 1] and R̄ is the ideal
// gas constant.
type CellParams struct {
	// CapacityAh is the rated cell capacity in ampere-hours at the nominal
	// discharge rate.
	CapacityAh float64
	// V are the open-circuit-voltage coefficients of Eq. 2 (volts).
	V [7]float64
	// R are the internal-resistance coefficients of Eq. 3 at RefTemp (ohms).
	R [3]float64
	// Kr is the Arrhenius-style temperature sensitivity of the resistance in
	// kelvin; resistance decreases as temperature rises (Kr > 0), capturing
	// the higher usable capacity of Li-ion cells at elevated temperature.
	Kr float64
	// RefTemp is the reference temperature for R, in kelvin.
	RefTemp float64
	// DVocDT is the entropy coefficient dVoc/dT in V/K (Eq. 4).
	DVocDT float64
	// HeatCapacity is the lumped thermal capacity C_b of one cell in J/K.
	HeatCapacity float64
	// L are the capacity-loss coefficients of Eq. 5: L[0] pre-exponential
	// (percent capacity per second at unit current), L[1] activation energy
	// in J/mol, L[2] current exponent.
	L [3]float64
	// MinSoC and MaxSoC bound the usable state-of-charge window as
	// fractions (constraint C4; the paper uses 20 %–100 %).
	MinSoC, MaxSoC float64
	// SafeTemp is the upper battery temperature limit T̄_b of constraint C1
	// in kelvin; exceeding it is a thermal violation.
	SafeTemp float64
	// MaxCurrent is the per-cell discharge-current limit in amperes (part
	// of constraint C6).
	MaxCurrent float64
}

// NCR18650A returns parameters representative of the Panasonic NCR18650A
// cell the paper cites (Tesla Model S pack chemistry). The OCV/resistance
// shapes follow the Chen & Rincón-Mora equivalent-circuit fits for the same
// cell family; aging uses a Millner-style Arrhenius activation energy.
func NCR18650A() CellParams {
	return CellParams{
		CapacityAh: 3.1,
		// Voc: -1.031·e^{-35z} + 0.3201·z³ − 0.1178·z² + 0.2156·z + 3.685
		V:            [7]float64{-1.031, -35, 0, 0.3201, -0.1178, 0.2156, 3.685},
		R:            [3]float64{0.0400, -20, 0.0240},
		Kr:           1500,
		RefTemp:      units.CToK(25),
		DVocDT:       7e-4,
		HeatCapacity: 40, // ≈46 g × 0.9 J/(g·K)
		L:            [3]float64{16000.0, 60000, 1.20},
		MinSoC:       0.20,
		MaxSoC:       1.00,
		SafeTemp:     units.CToK(40),
		MaxCurrent:   15,
	}
}

// Validate reports an error when the parameter set is physically
// inconsistent.
func (p CellParams) Validate() error {
	switch {
	case p.CapacityAh <= 0:
		return fmt.Errorf("battery: CapacityAh = %g, must be > 0", p.CapacityAh)
	case p.RefTemp <= 0:
		return fmt.Errorf("battery: RefTemp = %g K, must be > 0", p.RefTemp)
	case p.HeatCapacity <= 0:
		return fmt.Errorf("battery: HeatCapacity = %g, must be > 0", p.HeatCapacity)
	case p.MinSoC < 0 || p.MaxSoC > 1 || p.MinSoC >= p.MaxSoC:
		return fmt.Errorf("battery: SoC window [%g, %g] invalid", p.MinSoC, p.MaxSoC)
	case p.SafeTemp <= 0:
		return fmt.Errorf("battery: SafeTemp = %g K, must be > 0", p.SafeTemp)
	case p.MaxCurrent <= 0:
		return fmt.Errorf("battery: MaxCurrent = %g, must be > 0", p.MaxCurrent)
	case p.L[1] < 0:
		return fmt.Errorf("battery: activation energy L[1] = %g, must be >= 0", p.L[1])
	}
	return nil
}

// LFP26650 returns parameters representative of a 26650 LiFePO4 cell — the
// flat-plateau, thermally tolerant alternative chemistry. Compared to the
// NCA-class NCR18650A: lower nominal voltage (~3.2 V), much flatter OCV
// across the SoC window, lower energy density but a higher safe-temperature
// limit and slower Arrhenius aging (higher activation energy).
func LFP26650() CellParams {
	return CellParams{
		CapacityAh: 3.3,
		// Flat plateau near 3.28 V with a steep knee below ~10 % SoC.
		V:            [7]float64{-0.82, -28, 0, 0.045, -0.035, 0.065, 3.26},
		R:            [3]float64{0.0300, -22, 0.0150},
		Kr:           1200,
		RefTemp:      units.CToK(25),
		DVocDT:       2e-4,
		HeatCapacity: 78, // ≈85 g × 0.92 J/(g·K)
		L:            [3]float64{30000.0, 63000, 1.10},
		MinSoC:       0.20,
		MaxSoC:       1.00,
		SafeTemp:     units.CToK(45),
		MaxCurrent:   20,
	}
}
