package battery

import (
	"math"

	"repro/internal/core/floats"
	"repro/internal/units"
)

// OCVPrime returns dVoc/dz at state of charge z (fraction), the analytic
// derivative of Eq. 2. State estimators (extended Kalman filters) linearise
// the measurement model with it.
func (p *CellParams) OCVPrime(z float64) float64 {
	z = units.Clamp(z, 0, 1)
	z2 := z * z
	return p.V[0]*p.V[1]*math.Exp(p.V[1]*z) +
		4*p.V[2]*z2*z + 3*p.V[3]*z2 + 2*p.V[4]*z + p.V[5]
}

// ResistancePrime returns dR/dz at state of charge z and temperature T, the
// analytic derivative of Eq. 3 (including the Arrhenius factor, which does
// not depend on z).
func (p *CellParams) ResistancePrime(z, T float64) float64 {
	z = units.Clamp(z, 0, 1)
	d := p.R[0] * p.R[1] * math.Exp(p.R[1]*z)
	if floats.Zero(p.Kr) || T <= 0 {
		return d
	}
	return d * math.Exp(p.Kr*(1/T-1/p.RefTemp))
}
