package battery

import (
	"math"

	"repro/internal/core/floats"
	"repro/internal/units"
)

// OCV returns the open-circuit voltage of a cell at state of charge z
// (fraction in [0, 1]) per paper Eq. 2. z is clamped to [0, 1].
func (p *CellParams) OCV(z float64) float64 {
	z = units.Clamp(z, 0, 1)
	z2 := z * z
	return p.V[0]*math.Exp(p.V[1]*z) + p.V[2]*z2*z2 + p.V[3]*z2*z + p.V[4]*z2 + p.V[5]*z + p.V[6]
}

// Resistance returns the cell internal resistance at state of charge z and
// temperature T (kelvin) per paper Eq. 3, including the Arrhenius
// temperature correction: resistance drops as the cell warms.
func (p *CellParams) Resistance(z, T float64) float64 {
	z = units.Clamp(z, 0, 1)
	r25 := p.R[0]*math.Exp(p.R[1]*z) + p.R[2]
	if floats.Zero(p.Kr) || T <= 0 {
		return r25
	}
	return r25 * math.Exp(p.Kr*(1/T-1/p.RefTemp))
}

// HeatRate returns the internal heat generation of one cell in watts per
// paper Eq. 4 for cell current i (amperes, discharge positive), state of
// charge z and temperature T. Both the Joule term I·(Voc−Vterm) = I²R and
// the entropic term I·T·dVoc/dT are included.
func (p *CellParams) HeatRate(i, z, T float64) float64 {
	r := p.Resistance(z, T)
	return i*i*r + i*T*p.DVocDT
}

// AgingRate returns the capacity-loss rate of one cell in percent of rated
// capacity per second, per paper Eq. 5, for cell current i (amperes) and
// temperature T (kelvin). The rate is zero at zero current and grows
// super-linearly with |i| when L[2] > 1, so load peaks age the cell
// disproportionately.
func (p *CellParams) AgingRate(i, T float64) float64 {
	ai := math.Abs(i)
	if floats.Zero(ai) || T <= 0 {
		return 0
	}
	return p.L[0] * math.Exp(-p.L[1]/(units.GasConstant*T)) * math.Pow(ai, p.L[2])
}

// TerminalVoltage returns the cell terminal voltage under cell current i
// (discharge positive) at state of charge z and temperature T:
// V = Voc − i·R. During charge (i < 0) the terminal voltage exceeds Voc.
func (p *CellParams) TerminalVoltage(i, z, T float64) float64 {
	return p.OCV(z) - i*p.Resistance(z, T)
}
