package chart

import (
	"math"
	"strings"
	"testing"
)

func render(c *Chart) string {
	var sb strings.Builder
	c.Render(&sb)
	return sb.String()
}

func TestRenderEmpty(t *testing.T) {
	out := render(New("empty"))
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output:\n%s", out)
	}
}

func TestRenderSingleSeries(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		y[i] = math.Sin(float64(i) / 10)
	}
	c := New("sine")
	c.YLabel = "amplitude"
	c.XLabel = "t"
	c.XMax = 100
	c.Add("wave", y)
	out := render(c)
	if !strings.Contains(out, "sine") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* wave") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "amplitude") {
		t.Error("y label missing")
	}
	if strings.Count(out, "\n") < 16 {
		t.Error("canvas too short")
	}
	// The axis spans the sine's extremes plus 5 % padding.
	if !strings.Contains(out, "1.10") || !strings.Contains(out, "-1.10") {
		t.Errorf("y axis not scaled to data:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	c := New("two")
	c.Add("a", []float64{0, 1, 2})
	c.Add("b", []float64{2, 1, 0})
	out := render(c)
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legend markers wrong:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series markers missing from canvas")
	}
}

func TestRenderHLine(t *testing.T) {
	c := New("limit")
	c.Add("temp", []float64{30, 32, 35, 38})
	c.WithHLine(40)
	out := render(c)
	if !strings.Contains(out, "----") {
		t.Error("reference line missing")
	}
	// The hline must stretch the y range to include 40.
	if !strings.Contains(out, "40") {
		t.Errorf("y axis does not include the reference:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := New("flat")
	c.Add("const", []float64{5, 5, 5, 5})
	out := render(c)
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	c := New("nan")
	c.Add("x", []float64{1, math.NaN(), 3})
	out := render(c)
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into output")
	}
}

func TestRenderTinyCanvasClamped(t *testing.T) {
	c := New("tiny")
	c.Width = 1
	c.Height = 1
	c.Add("x", []float64{1, 2, 3})
	out := render(c)
	if out == "" {
		t.Error("no output for tiny canvas")
	}
}

func TestDownsamplingLongSeries(t *testing.T) {
	y := make([]float64, 10000)
	for i := range y {
		y[i] = float64(i % 100)
	}
	c := New("long")
	c.Add("saw", y)
	out := render(c)
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if len(l) > 90 {
			t.Fatalf("line too long (%d): %q", len(l), l)
		}
	}
}
