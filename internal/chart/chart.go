// Package chart renders time series as ASCII line charts for the terminal —
// the experiment commands use it so the paper's *figures* come out as
// figures, not just tables. It is deliberately small: fixed-size canvas,
// multiple labelled series, automatic y-scaling, step downsampling.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core/floats"
)

// Series is one labelled line.
type Series struct {
	// Label appears in the legend.
	Label string
	// Y holds the sample values (all series share the same x spacing).
	Y []float64
}

// Chart is a fixed-size ASCII canvas.
type Chart struct {
	// Title is printed above the canvas.
	Title string
	// Width and Height are the canvas size in characters (defaults 72×16).
	Width, Height int
	// YLabel annotates the axis (e.g. "°C").
	YLabel string
	// XLabel annotates the x axis (e.g. "time (s)").
	XLabel string
	// XMax is the x value of the last sample (for axis annotation).
	XMax float64
	// HLine draws an optional horizontal reference line at this y value.
	HLine *float64

	series []Series
}

// markers cycles through per-series point characters.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// New returns a chart with the default canvas size.
func New(title string) *Chart {
	return &Chart{Title: title, Width: 72, Height: 16}
}

// Add appends a series. All series should have equal length; shorter ones
// simply end early.
func (c *Chart) Add(label string, y []float64) *Chart {
	c.series = append(c.series, Series{Label: label, Y: y})
	return c
}

// WithHLine sets a horizontal reference (e.g. the 40 °C safe limit).
func (c *Chart) WithHLine(y float64) *Chart {
	c.HLine = &y
	return c
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi, any := c.bounds()
	if !any {
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}
	if c.HLine != nil {
		lo = math.Min(lo, *c.HLine)
		hi = math.Max(hi, *c.HLine)
	}
	if floats.Eq(hi, lo) {
		hi = lo + 1
	}
	// A little headroom so lines do not hug the frame.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(y float64) int {
		r := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	if c.HLine != nil {
		r := row(*c.HLine)
		for x := 0; x < width; x++ {
			grid[r][x] = '-'
		}
	}
	maxLen := 0
	for _, s := range c.series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for x := 0; x < width; x++ {
			// Downsample: average the bucket of samples mapping to column x.
			loIdx := x * maxLen / width
			hiIdx := (x + 1) * maxLen / width
			if hiIdx <= loIdx {
				hiIdx = loIdx + 1
			}
			var sum float64
			var n int
			for i := loIdx; i < hiIdx && i < len(s.Y); i++ {
				sum += s.Y[i]
				n++
			}
			if n == 0 {
				continue
			}
			grid[row(sum/float64(n))][x] = m
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	for r := 0; r < height; r++ {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%9.2f |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", width))
	if c.XLabel != "" || c.XMax > 0 {
		fmt.Fprintf(w, "%9s  0%s%.0f %s\n", "",
			strings.Repeat(" ", max(1, width-len(fmt.Sprintf("%.0f", c.XMax))-2)), c.XMax, c.XLabel)
	}
	// Legend.
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	if c.YLabel != "" {
		legend = append(legend, "y: "+c.YLabel)
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "%9s  %s\n", "", strings.Join(legend, "   "))
	}
}

func (c *Chart) bounds() (lo, hi float64, any bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
			any = true
		}
	}
	return lo, hi, any
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
