package linalg

// This file follows the BLAS/gonum kernel conventions: dimension misuse
// panics are the documented API contract (callers hold the invariants, and
// the MPC hot loop cannot afford error plumbing per Dot), and exact
// floating-point zero tests implement sparsity fast paths and
// division-by-zero singularity guards whose semantics an epsilon would
// change.
//lint:file-ignore nopanic dimension-misuse panics are the documented kernel contract, per the gonum convention
//lint:file-ignore floatcompare exact zero tests here are sparsity skips and singularity guards; an epsilon would alter numerics

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length; the data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Matrix) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = x
}

// Add accumulates x into the element at row i, column j.
func (m *Matrix) Add(i, j int, x float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += x
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// MulVec returns m·v as a new vector. It panics on dimension mismatch.
func (m *Matrix) MulVec(v Vector) Vector {
	out := make(Vector, m.rows)
	m.MulVecTo(out, v)
	return out
}

// MulVecTo writes m·v into dst without allocating. dst must have length
// m.rows and must not alias v; it panics on dimension mismatch.
func (m *Matrix) MulVecTo(dst, v Vector) {
	if len(v) != m.cols {
		panic(dimErr("MulVec", m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(dimErr("MulVecTo dst", m.rows, len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
}

// Zero sets every element of m to zero, keeping the backing storage.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(dimErr("Mul", m.cols, b.rows))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, x := range brow {
				orow[j] += a * x
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
	}
	return b.String()
}

// ErrSingular is returned when a factorisation or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LUFactor holds an LU factorisation with partial pivoting (PA = LU).
type LUFactor struct {
	lu   *Matrix
	perm []int
	sign int
}

// LU computes the LU factorisation of the square matrix a with partial
// pivoting. It returns ErrSingular if a pivot underflows.
func LU(a *Matrix) (*LUFactor, error) {
	f := &LUFactor{}
	if err := f.Factorize(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize recomputes the factorisation for a new matrix a, reusing the
// receiver's storage when the dimensions match (so a solver stepping a
// fixed-size system allocates only on the first call). It returns
// ErrSingular if a pivot underflows; the factor contents are then undefined.
func (f *LUFactor) Factorize(a *Matrix) error {
	if a.rows != a.cols {
		panic(dimErr("LU", a.rows, a.cols))
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n || f.lu.cols != n {
		f.lu = NewMatrix(n, n)
		f.perm = make([]int, n)
	}
	lu := f.lu
	copy(lu.data, a.data)
	perm := f.perm
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest |value| in column k at or below row k.
		p, best := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > best {
				p, best = i, a
			}
		}
		if best == 0 || math.IsNaN(best) {
			return ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			sign = -sign
		}
		piv := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / piv
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	f.sign = sign
	return nil
}

// Solve solves A·x = b for the factored matrix, returning a new vector.
func (f *LUFactor) Solve(b Vector) Vector {
	x := make(Vector, f.lu.rows)
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b for the factored matrix, writing the solution into
// dst without allocating. dst must have length n and must not alias b; it
// panics on dimension mismatch.
func (f *LUFactor) SolveTo(dst, b Vector) {
	n := f.lu.rows
	if len(b) != n {
		panic(dimErr("LUFactor.Solve", n, len(b)))
	}
	if len(dst) != n {
		panic(dimErr("LUFactor.SolveTo dst", n, len(dst)))
	}
	x := dst
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu.data[i*n : i*n+i]
		for j, l := range row {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.data[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu.data[i*n+i]
	}
}

// Dim returns the order n of the factored matrix.
func (f *LUFactor) Dim() int { return f.lu.rows }

// Det returns the determinant of the factored matrix.
func (f *LUFactor) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// SolveLinear is a convenience wrapper that factors a and solves a·x = b.
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix a (a = L·Lᵀ). Only the lower triangle of a is
// read. It returns ErrSingular if a is not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		panic(dimErr("Cholesky", a.rows, a.cols))
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrSingular
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the lower Cholesky factor L of A.
func CholeskySolve(l *Matrix, b Vector) Vector {
	x := make(Vector, l.rows)
	CholeskySolveTo(l, x, b)
	return x
}

// CholeskySolveTo solves A·x = b given the lower Cholesky factor L of A,
// writing the solution into dst without allocating. dst must have length n;
// aliasing b is allowed (the forward sweep consumes b[i] before writing
// dst[i]). It panics on dimension mismatch.
func CholeskySolveTo(l *Matrix, dst, b Vector) {
	n := l.rows
	if len(b) != n {
		panic(dimErr("CholeskySolve", n, len(b)))
	}
	if len(dst) != n {
		panic(dimErr("CholeskySolveTo dst", n, len(dst)))
	}
	// Solve L·y = b (y shares dst's storage).
	y := dst
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.data[i*n+k] * y[k]
		}
		y[i] = s / l.data[i*n+i]
	}
	// Solve Lᵀ·x = y.
	x := y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.data[k*n+i] * x[k]
		}
		x[i] = s / l.data[i*n+i]
	}
}

// SolveTridiag solves a tridiagonal system using the Thomas algorithm.
// sub, diag and sup are the sub-, main- and super-diagonals; len(diag) == n,
// len(sub) == len(sup) == n-1 (they may be length n with the unused entry
// ignored for convenience). It returns ErrSingular on a zero pivot.
func SolveTridiag(sub, diag, sup, rhs Vector) (Vector, error) {
	n := len(diag)
	if len(rhs) != n {
		panic(dimErr("SolveTridiag", n, len(rhs)))
	}
	if n == 0 {
		return Vector{}, nil
	}
	if len(sub) < n-1 || len(sup) < n-1 {
		panic("linalg: SolveTridiag off-diagonals too short")
	}
	c := make(Vector, n)
	d := make(Vector, n)
	if diag[0] == 0 {
		return nil, ErrSingular
	}
	c[0] = 0
	if n > 1 {
		c[0] = sup[0] / diag[0]
	}
	d[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i-1]*c[i-1]
		if den == 0 || math.IsNaN(den) {
			return nil, ErrSingular
		}
		if i < n-1 {
			c[i] = sup[i] / den
		}
		d[i] = (rhs[i] - sub[i-1]*d[i-1]) / den
	}
	x := d
	for i := n - 2; i >= 0; i-- {
		x[i] -= c[i] * x[i+1]
	}
	return x, nil
}

// LeastSquares solves min‖A·x − b‖₂ via the normal equations AᵀA·x = Aᵀb
// (Cholesky). A tiny ridge term is added automatically when AᵀA is not
// positive definite (rank-deficient designs), which regularises instead of
// failing.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	if a.rows != len(b) {
		panic(dimErr("LeastSquares", a.rows, len(b)))
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	l, err := Cholesky(ata)
	if err != nil {
		// Ridge fallback: AᵀA + λI with λ scaled to the diagonal magnitude.
		var trace float64
		n := ata.rows
		for i := 0; i < n; i++ {
			trace += ata.At(i, i)
		}
		lambda := 1e-10 * (trace/float64(n) + 1)
		for i := 0; i < n; i++ {
			ata.Add(i, i, lambda)
		}
		l, err = Cholesky(ata)
		if err != nil {
			return nil, err
		}
	}
	return CholeskySolve(l, atb), nil
}
