package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasicAccess(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Errorf("matrix contents wrong: %v", m)
	}
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Errorf("Dims = %d,%d", r, c)
	}
}

func TestMatrixAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestMatrixFromRowsAndRow(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	row := m.Row(1)
	if row[0] != 3 || row[1] != 4 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row should return a copy")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec(Vector{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul =\n%v\nwant\n%v", got, want)
			}
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	r, c := at.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("Transpose dims %dx%d", r, c)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("Transpose contents wrong:\n%v", at)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	v := Vector{1, 2, 3}
	got := id.MulVec(v)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("I*v = %v", got)
		}
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	b := Vector{5, -2, 9}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Errorf("A·x[%d] = %v, want %v", i, ax[i], b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LU(a); err != ErrSingular {
		t.Errorf("LU of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 8}, {4, 6}})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Errorf("Det = %v, want -14", got)
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant => nonsingular
		}
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix.
	a := MatrixFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce a.
	llt := l.Mul(l.Transpose())
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(llt.At(i, j)-a.At(i, j)) > 1e-12 {
				t.Fatalf("L·Lᵀ =\n%v\nwant\n%v", llt, a)
			}
		}
	}
	b := Vector{1, 2, 3}
	x := CholeskySolve(l, b)
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Errorf("Cholesky solve residual at %d: %v", i, ax[i]-b[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrSingular {
		t.Errorf("Cholesky of indefinite matrix: err = %v, want ErrSingular", err)
	}
}

func TestSolveTridiag(t *testing.T) {
	// System:
	// [ 2 -1  0] [x0]   [1]
	// [-1  2 -1] [x1] = [0]
	// [ 0 -1  2] [x2]   [1]
	sub := Vector{-1, -1}
	diag := Vector{2, 2, 2}
	sup := Vector{-1, -1}
	rhs := Vector{1, 0, 1}
	x, err := SolveTridiag(sub, diag, sup, rhs)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{1, 1, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveTridiag = %v, want %v", x, want)
		}
	}
}

func TestSolveTridiagSizes(t *testing.T) {
	// n=1 system.
	x, err := SolveTridiag(Vector{}, Vector{4}, Vector{}, Vector{8})
	if err != nil || math.Abs(x[0]-2) > 1e-15 {
		t.Errorf("1x1 tridiag: x=%v err=%v", x, err)
	}
	// n=0 system.
	x, err = SolveTridiag(Vector{}, Vector{}, Vector{}, Vector{})
	if err != nil || len(x) != 0 {
		t.Errorf("0x0 tridiag: x=%v err=%v", x, err)
	}
}

func TestSolveTridiagSingular(t *testing.T) {
	_, err := SolveTridiag(Vector{0}, Vector{0, 1}, Vector{0}, Vector{1, 1})
	if err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveTridiagMatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		sub := make(Vector, n-1)
		diag := make(Vector, n)
		sup := make(Vector, n-1)
		rhs := make(Vector, n)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			diag[i] = 4 + rng.Float64()
			a.Set(i, i, diag[i])
			rhs[i] = rng.NormFloat64()
			if i < n-1 {
				sup[i] = rng.NormFloat64()
				sub[i] = rng.NormFloat64()
				a.Set(i, i+1, sup[i])
				a.Set(i+1, i, sub[i])
			}
		}
		x1, err := SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			return false
		}
		x2, err := SolveLinear(a, rhs)
		if err != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: y = 2x + 1 sampled at 5 points.
	a := NewMatrix(5, 2)
	b := make(Vector, 5)
	for i := 0; i < 5; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-9 || math.Abs(coef[1]-1) > 1e-9 {
		t.Errorf("coef = %v, want [2, 1]", coef)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	a := NewMatrix(n, 3)
	b := make(Vector, n)
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		a.Set(i, 0, x*x)
		a.Set(i, 1, x)
		a.Set(i, 2, 1)
		b[i] = 0.5*x*x - 1.5*x + 3 + 0.01*rng.NormFloat64()
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, -1.5, 3}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 0.01 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
}

func TestLeastSquaresRankDeficientRegularised(t *testing.T) {
	// Two identical columns: the ridge fallback must return a finite answer
	// that still fits the data.
	a := NewMatrix(4, 2)
	b := make(Vector, 4)
	for i := 0; i < 4; i++ {
		x := float64(i + 1)
		a.Set(i, 0, x)
		a.Set(i, 1, x)
		b[i] = 3 * x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(coef)
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-3 {
			t.Errorf("rank-deficient fit residual %v at %d", pred[i]-b[i], i)
		}
	}
}
