package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSystem builds a random diagonally dominant n×n matrix (nonsingular)
// and a random right-hand side from the given source.
func randomSystem(rng *rand.Rand, n int) (*Matrix, Vector) {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(n))
	}
	b := make(Vector, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// TestMulVecToMatchesMulVec: the in-place product must be bit-identical to
// the allocating form on random rectangular matrices.
func TestMulVecToMatchesMulVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		v := make(Vector, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := m.MulVec(v)
		got := make(Vector, rows)
		// Pre-poison dst: MulVecTo must overwrite, not accumulate.
		for i := range got {
			got[i] = 1e300
		}
		m.MulVecTo(got, v)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSolveToMatchesSolve: a reused LUFactor + SolveTo must reproduce the
// allocating LU/Solve path bit-for-bit on random nonsingular systems.
func TestSolveToMatchesSolve(t *testing.T) {
	var f LUFactor // reused across all property iterations
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a, b := randomSystem(rng, n)
		want, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		if err := f.Factorize(a); err != nil {
			return false
		}
		if f.Dim() != n {
			return false
		}
		got := make(Vector, n)
		f.SolveTo(got, b)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCholeskySolveToMatchesCholeskySolve covers the SPD path, including the
// documented in-place aliasing form dst == b.
func TestCholeskySolveToMatchesCholeskySolve(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// Random SPD matrix: Mᵀ·M + n·I.
		m, _ := randomSystem(rng, n)
		spd := m.Transpose().Mul(m)
		for i := 0; i < n; i++ {
			spd.Add(i, i, float64(n))
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(spd)
		if err != nil {
			return false
		}
		want := CholeskySolve(l, b)
		got := make(Vector, n)
		CholeskySolveTo(l, got, b)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Aliased form: solve in place over a copy of b.
		aliased := append(Vector(nil), b...)
		CholeskySolveTo(l, aliased, aliased)
		for i := range want {
			if aliased[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLUFactorReusesStorage: refactorising with the same dimension must not
// reallocate the factor's backing storage, and refactorising after a larger
// system must still produce correct results.
func TestLUFactorReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f LUFactor
	a, b := randomSystem(rng, 5)
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	lu0 := &f.lu.data[0]
	piv0 := &f.perm[0]
	x := make(Vector, 5)
	for round := 0; round < 3; round++ {
		a2, b2 := randomSystem(rng, 5)
		if err := f.Factorize(a2); err != nil {
			t.Fatal(err)
		}
		if &f.lu.data[0] != lu0 || &f.perm[0] != piv0 {
			t.Fatalf("round %d: Factorize reallocated same-dimension storage", round)
		}
		f.SolveTo(x, b2)
		want, err := SolveLinear(a2, b2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("round %d: SolveTo diverged from SolveLinear at %d", round, i)
			}
		}
	}
	// Dimension change: correctness must survive a grow.
	a3, b3 := randomSystem(rng, 8)
	if err := f.Factorize(a3); err != nil {
		t.Fatal(err)
	}
	x3 := make(Vector, 8)
	f.SolveTo(x3, b3)
	want, err := SolveLinear(a3, b3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x3[i] != want[i] {
			t.Fatalf("after grow: SolveTo diverged from SolveLinear at %d", i)
		}
	}
	_ = b
}

// TestFactorizeSolveToSteadyStateAllocsZero: the thermal stepper's inner
// pattern — Zero, refill, Factorize, SolveTo on owned storage — must not
// allocate once warm.
func TestFactorizeSolveToSteadyStateAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := randomSystem(rng, 6)
	var f LUFactor
	x := make(Vector, 6)
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		a.Zero()
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				a.Set(i, j, float64(i*6+j))
			}
			a.Add(i, i, 100)
		}
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		f.SolveTo(x, b)
	})
	if allocs > 0 {
		t.Errorf("warm Factorize+SolveTo allocated %.1f times per run, want 0", allocs)
	}
}
