package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorNorm2(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	// Overflow-safe scaling.
	big := Vector{1e200, 1e200}
	want := 1e200 * math.Sqrt(2)
	if got := big.Norm2(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2(big) = %v, want %v", got, want)
	}
	if got := (Vector{}).Norm2(); got != 0 {
		t.Errorf("Norm2(empty) = %v, want 0", got)
	}
}

func TestVectorNormInf(t *testing.T) {
	if got := (Vector{-7, 2, 5}).NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := (Vector{}).NormInf(); got != 0 {
		t.Errorf("NormInf(empty) = %v, want 0", got)
	}
}

func TestVectorAXPY(t *testing.T) {
	v := Vector{1, 2}
	v.AXPY(2, Vector{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Errorf("AXPY result %v", v)
	}
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{1, 1, 1}).Sub(Vector{0, 1, 2}).Scale(2)
	want := Vector{4, 4, 4}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("chained ops = %v, want %v", v, want)
		}
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestVectorMinMaxSum(t *testing.T) {
	v := Vector{3, -1, 7, 0}
	if v.Min() != -1 {
		t.Errorf("Min = %v", v.Min())
	}
	if v.Max() != 7 {
		t.Errorf("Max = %v", v.Max())
	}
	if v.Sum() != 9 {
		t.Errorf("Sum = %v", v.Sum())
	}
}

func TestVectorFill(t *testing.T) {
	v := NewVector(4).Fill(2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("Fill produced %v", v)
		}
	}
}

func TestVectorHasNaN(t *testing.T) {
	if (Vector{1, 2}).HasNaN() {
		t.Error("false positive NaN")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("missed NaN")
	}
}

func TestDotCauchySchwarzProperty(t *testing.T) {
	// |v·w| <= |v||w| for random vectors.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		v, w := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		return math.Abs(v.Dot(w)) <= v.Norm2()*w.Norm2()*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
