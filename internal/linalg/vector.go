// Package linalg provides the small dense linear-algebra kernel used by the
// optimisation and thermal-network code: vectors, column-major-free dense
// matrices, LU and Cholesky factorisations, and a tridiagonal solver.
//
// The package is deliberately minimal — it implements exactly what the MPC
// solver and the lumped thermal models need, with bounds-checked, allocation
// conscious APIs in the spirit of the standard library.
package linalg

// See matrix.go: kernel-convention panics and exact zero tests are the
// contract in this file too.
//lint:file-ignore nopanic dimension-misuse panics are the documented kernel contract, per the gonum convention
//lint:file-ignore floatcompare the exact zero test in Norm2 is the LAPACK dnrm2 scaling idiom; an epsilon would alter numerics

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector {
	if n < 0 {
		panic("linalg: negative vector length")
	}
	return make(Vector, n)
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x and returns v for chaining.
func (v Vector) Fill(x float64) Vector {
	for i := range v {
		v[i] = x
	}
	return v
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(dimErr("Dot", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, computed with scaling to avoid
// overflow for large components.
func (v Vector) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes v ← v + alpha*w in place and returns v.
// It panics if lengths differ.
func (v Vector) AXPY(alpha float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(dimErr("AXPY", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale multiplies every element of v by alpha in place and returns v.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Sub computes v ← v - w in place and returns v. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(dimErr("Sub", len(v), len(w)))
	}
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Add computes v ← v + w in place and returns v. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(dimErr("Add", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// HasNaN reports whether any element of v is NaN.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

func dimErr(op string, a, b int) string {
	return fmt.Sprintf("linalg: %s dimension mismatch: %d vs %d", op, a, b)
}
