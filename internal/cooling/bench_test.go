package cooling

import "testing"

func BenchmarkCNStep(b *testing.B) {
	p := DefaultParams()
	tb, tc := 305.0, 303.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, tc = p.CNStep2(tb, tc, 1500, -2000, 55, 298, 1)
		if tb < 200 {
			b.Fatal("diverged")
		}
	}
}

func BenchmarkLoopStepActive(b *testing.B) {
	l, err := NewLoop(DefaultParams(), 305)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.StepActive(1500, 295, 1); err != nil {
			b.Fatal(err)
		}
	}
}
