// Package cooling models the active battery cooling system of paper §II-D:
// a two-node lumped thermal network (battery cells ↔ coolant, Eqs. 14–15)
// discretised with the Crank–Nicolson scheme of Eq. 17, the cooler power
// model of Eq. 16 and the constant-flow pump.
//
// The same Loop also provides the passive mode used by the parallel/dual
// baseline architectures, where the pump is off and the pack sheds heat only
// through weak natural convection to ambient.
package cooling

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Params describes one cooling loop. All temperatures kelvin, powers watts.
type Params struct {
	// BatteryHeatCapacity is the lumped thermal capacity C_b of the whole
	// battery pack in J/K (cell heat capacity × cell count).
	BatteryHeatCapacity float64
	// CoolantHeatCapacity is the thermal capacity C_c of the coolant volume
	// inside the pack in J/K.
	CoolantHeatCapacity float64
	// HBC is the battery↔coolant heat-transfer coefficient h_bc in W/K
	// (pack level).
	HBC float64
	// FlowHeatRate is the advective heat-capacity rate ṁ·c_p of the pumped
	// coolant in W/K. The paper fixes the flow rate, making this constant
	// while the pump runs.
	FlowHeatRate float64
	// CoolerEfficiency is η_c of Eq. 16, relating cooler electrical power
	// to the enthalpy extracted from the coolant.
	CoolerEfficiency float64
	// MaxCoolerPower is the cooler electrical power limit P̄_c of
	// constraint C3.
	MaxCoolerPower float64
	// PumpPower is the constant pump electrical power P_m while the loop
	// runs.
	PumpPower float64
	// MinInletTemp is the lowest achievable cooler outlet (= pack inlet)
	// temperature, a physical floor for the control input T_i.
	MinInletTemp float64
	// AmbientCoupling is the natural-convection coefficient between the
	// coolant/pack envelope and ambient air in W/K when the pump is off
	// (passive architectures).
	AmbientCoupling float64
}

// DefaultParams returns a cooling loop sized for the Tesla-like pack used in
// the experiments. The low CoolerEfficiency reflects the paper's premise
// that active cooling is power-hungry — methodologies that cool consume
// visibly more average power (paper Fig. 9).
func DefaultParams() Params {
	return Params{
		BatteryHeatCapacity: 40 * 96 * 24, // 96S24P × 40 J/K
		CoolantHeatCapacity: 20e3,
		HBC:                 2000,
		FlowHeatRate:        300,
		CoolerEfficiency:    0.45,
		MaxCoolerPower:      8e3,
		PumpPower:           150,
		MinInletTemp:        units.CToK(5),
		AmbientCoupling:     55,
	}
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.BatteryHeatCapacity <= 0:
		return fmt.Errorf("cooling: BatteryHeatCapacity = %g, must be > 0", p.BatteryHeatCapacity)
	case p.CoolantHeatCapacity <= 0:
		return fmt.Errorf("cooling: CoolantHeatCapacity = %g, must be > 0", p.CoolantHeatCapacity)
	case p.HBC <= 0:
		return fmt.Errorf("cooling: HBC = %g, must be > 0", p.HBC)
	case p.FlowHeatRate <= 0:
		return fmt.Errorf("cooling: FlowHeatRate = %g, must be > 0", p.FlowHeatRate)
	case p.CoolerEfficiency <= 0:
		return fmt.Errorf("cooling: CoolerEfficiency = %g, must be > 0", p.CoolerEfficiency)
	case p.MaxCoolerPower <= 0:
		return fmt.Errorf("cooling: MaxCoolerPower = %g, must be > 0", p.MaxCoolerPower)
	case p.PumpPower < 0:
		return fmt.Errorf("cooling: PumpPower = %g, must be >= 0", p.PumpPower)
	case p.MinInletTemp <= 0:
		return fmt.Errorf("cooling: MinInletTemp = %g, must be > 0", p.MinInletTemp)
	case p.AmbientCoupling < 0:
		return fmt.Errorf("cooling: AmbientCoupling = %g, must be >= 0", p.AmbientCoupling)
	}
	return nil
}

// Loop is the thermal state of the battery pack and its coolant.
// Construct with NewLoop.
type Loop struct {
	// Params holds the loop design parameters.
	Params Params
	// BatteryTemp is the lumped battery cell temperature T_b in kelvin.
	BatteryTemp float64
	// CoolantTemp is the coolant temperature T_c inside the pack in kelvin.
	CoolantTemp float64
}

// NewLoop returns a loop with both nodes at the given initial temperature.
func NewLoop(params Params, initialTemp float64) (*Loop, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if initialTemp <= 0 {
		return nil, fmt.Errorf("cooling: initial temperature %g K invalid", initialTemp)
	}
	return &Loop{Params: params, BatteryTemp: initialTemp, CoolantTemp: initialTemp}, nil
}

// StepResult reports one thermal integration step.
type StepResult struct {
	// CoolerPower is the electrical power drawn by the cooler (Eq. 16), W.
	CoolerPower float64
	// PumpPower is the electrical power drawn by the pump, W.
	PumpPower float64
	// InletTemp is the (possibly clamped) coolant inlet temperature used.
	InletTemp float64
}

// TotalPower returns the electrical power of the cooling system for the step.
func (r StepResult) TotalPower() float64 { return r.CoolerPower + r.PumpPower }

// CoolerPowerFor returns the electrical power (Eq. 16) required to supply
// coolant at inlet temperature ti given the current loop state:
// P_c = (ṁc_p/η_c)·(T_o − T_i), with T_o the coolant temperature returning
// from the pack.
func (l *Loop) CoolerPowerFor(ti float64) float64 {
	if ti >= l.CoolantTemp {
		return 0
	}
	return l.Params.FlowHeatRate / l.Params.CoolerEfficiency * (l.CoolantTemp - ti)
}

// MinFeasibleInlet returns the lowest inlet temperature the cooler can
// produce right now without violating C3 (max power) or the physical floor.
func (l *Loop) MinFeasibleInlet() float64 {
	byPower := l.CoolantTemp - l.Params.CoolerEfficiency*l.Params.MaxCoolerPower/l.Params.FlowHeatRate
	return math.Max(byPower, l.Params.MinInletTemp)
}

// StepActive advances the loop by dt seconds with the pump running, the
// battery generating qb watts of internal heat, and the cooler commanded to
// supply coolant at inlet temperature ti.
//
// The command is clamped to the feasible range [MinFeasibleInlet, T_c]
// (constraints C2 and C3); the clamped value actually applied is reported in
// the result. The two-node dynamics are integrated with the Crank–Nicolson
// scheme of paper Eq. 17.
func (l *Loop) StepActive(qb, ti, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("cooling: non-positive dt %g", dt)
	}
	// C2: the cooler only ever lowers the coolant temperature.
	ti = units.Clamp(ti, l.MinFeasibleInlet(), l.CoolantTemp)
	pc := l.CoolerPowerFor(ti)

	l.advance(qb, l.Params.FlowHeatRate, ti, dt)
	return StepResult{CoolerPower: pc, PumpPower: l.Params.PumpPower, InletTemp: ti}, nil
}

// StepPassive advances the loop by dt seconds with the pump off: the pack
// envelope exchanges heat with ambient through natural convection only.
// Used by the parallel and dual baseline architectures, which have no active
// cooling system.
func (l *Loop) StepPassive(qb, ambient, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("cooling: non-positive dt %g", dt)
	}
	l.advance(qb, l.Params.AmbientCoupling, ambient, dt)
	return StepResult{}, nil
}

// advance integrates the coupled two-node network via CNStep.
func (l *Loop) advance(qb, w, tin, dt float64) {
	l.BatteryTemp, l.CoolantTemp = l.Params.CNStep(l.BatteryTemp, l.CoolantTemp, qb, w, tin, dt)
}

// CNStep integrates the coupled two-node network
//
//	C_b·dT_b/dt = h_bc·(T_c − T_b) + Q_b                  (Eq. 14)
//	C_c·dT_c/dt = h_bc·(T_b − T_c) + w·(T_in − T_c)        (Eq. 15)
//
// for one step of dt seconds with the Crank–Nicolson averaging of Eq. 17,
// where w is either the pumped advection rate (active cooling) or the
// ambient coupling (passive), and tin the inlet or ambient temperature
// respectively. The 2×2 linear system is solved in closed form — this is a
// pure, allocation-free function so model-predictive rollouts can call it
// millions of times; Loop wraps it for plant integration.
func (p Params) CNStep(tb, tc, qb, w, tin, dt float64) (tbNext, tcNext float64) {
	return p.CNStep2(tb, tc, qb, 0, w, tin, dt)
}

// CNStep2 generalises CNStep with an additional direct heat term qc on the
// coolant node (negative = extraction). Predictive controllers use it to
// model the cooler as a linear heat sink −η_c·P_c on the circulating
// coolant, which is the same physics as the inlet-temperature form
// (flow·(T_c−T_i) = η_c·P_c) but smooth and linear in the control.
func (p Params) CNStep2(tb, tc, qb, qc, w, tin, dt float64) (tbNext, tcNext float64) {
	a := p.HBC / 2
	w2 := w / 2
	cb := p.BatteryHeatCapacity / dt
	cc := p.CoolantHeatCapacity / dt

	// [cb+a   -a      ] [tb+]   [ (cb-a)·tb + a·tc + qb          ]
	// [-a     cc+a+w2 ] [tc+] = [ a·tb + (cc-a-w2)·tc + w·tin    ]
	m00 := cb + a
	m01 := -a
	m10 := -a
	m11 := cc + a + w2
	r0 := (cb-a)*tb + a*tc + qb
	r1 := a*tb + (cc-a-w2)*tc + w*tin + qc

	det := m00*m11 - m01*m10 // strictly positive for valid parameters
	tbNext = (r0*m11 - m01*r1) / det
	tcNext = (m00*r1 - r0*m10) / det
	return tbNext, tcNext
}

// Clone returns an independent copy of the loop for model rollouts.
func (l *Loop) Clone() *Loop {
	cp := *l
	return &cp
}
