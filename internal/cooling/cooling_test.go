package cooling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func newLoop(t *testing.T, temp float64) *Loop {
	t.Helper()
	l, err := NewLoop(DefaultParams(), temp)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero battery capacity", func(p *Params) { p.BatteryHeatCapacity = 0 }},
		{"zero coolant capacity", func(p *Params) { p.CoolantHeatCapacity = 0 }},
		{"zero hbc", func(p *Params) { p.HBC = 0 }},
		{"zero flow", func(p *Params) { p.FlowHeatRate = 0 }},
		{"zero cooler efficiency", func(p *Params) { p.CoolerEfficiency = 0 }},
		{"zero max cooler power", func(p *Params) { p.MaxCoolerPower = 0 }},
		{"negative pump power", func(p *Params) { p.PumpPower = -1 }},
		{"zero min inlet", func(p *Params) { p.MinInletTemp = 0 }},
		{"negative ambient coupling", func(p *Params) { p.AmbientCoupling = -1 }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop(DefaultParams(), -5); err == nil {
		t.Error("accepted negative temperature")
	}
	bad := DefaultParams()
	bad.HBC = -1
	if _, err := NewLoop(bad, 300); err == nil {
		t.Error("accepted invalid params")
	}
}

func TestHeatingWithoutCooling(t *testing.T) {
	l := newLoop(t, units.CToK(25))
	// 2 kW of battery heat with only weak ambient coupling: temperature
	// must rise monotonically.
	prev := l.BatteryTemp
	for i := 0; i < 600; i++ {
		if _, err := l.StepPassive(2000, units.CToK(25), 1); err != nil {
			t.Fatal(err)
		}
		if l.BatteryTemp < prev-1e-9 {
			t.Fatalf("temperature dropped while heating at step %d", i)
		}
		prev = l.BatteryTemp
	}
	if l.BatteryTemp < units.CToK(26) {
		t.Errorf("after 600 s of 2 kW, T_b = %v °C, want noticeable rise", units.KToC(l.BatteryTemp))
	}
}

func TestPassiveCoolsTowardAmbient(t *testing.T) {
	l := newLoop(t, units.CToK(45))
	ambient := units.CToK(25)
	for i := 0; i < 3600; i++ {
		if _, err := l.StepPassive(0, ambient, 1); err != nil {
			t.Fatal(err)
		}
	}
	if l.BatteryTemp < ambient-1e-6 {
		t.Errorf("passive cooling undershot ambient: %v", units.KToC(l.BatteryTemp))
	}
	if l.BatteryTemp > units.CToK(45) {
		t.Error("no cooling happened")
	}
}

func TestActiveCoolingPullsTemperatureDown(t *testing.T) {
	l := newLoop(t, units.CToK(40))
	// Full cooling with no heat input.
	for i := 0; i < 600; i++ {
		if _, err := l.StepActive(0, l.MinFeasibleInlet(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if l.BatteryTemp > units.CToK(35) {
		t.Errorf("active cooling too weak: T_b = %v °C after 10 min", units.KToC(l.BatteryTemp))
	}
}

func TestActiveCoolingBeatsPassive(t *testing.T) {
	qb := 1500.0
	active := newLoop(t, units.CToK(30))
	passive := newLoop(t, units.CToK(30))
	for i := 0; i < 900; i++ {
		if _, err := active.StepActive(qb, active.MinFeasibleInlet(), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := passive.StepPassive(qb, units.CToK(25), 1); err != nil {
			t.Fatal(err)
		}
	}
	if active.BatteryTemp >= passive.BatteryTemp {
		t.Errorf("active (%v) should be cooler than passive (%v)",
			units.KToC(active.BatteryTemp), units.KToC(passive.BatteryTemp))
	}
}

func TestCoolerPowerEquation16(t *testing.T) {
	l := newLoop(t, units.CToK(35))
	p := l.Params
	ti := l.CoolantTemp - 5
	want := p.FlowHeatRate / p.CoolerEfficiency * 5
	if got := l.CoolerPowerFor(ti); math.Abs(got-want) > 1e-9 {
		t.Errorf("CoolerPowerFor = %v, want %v", got, want)
	}
	// C2: inlet above coolant temperature draws no cooler power.
	if got := l.CoolerPowerFor(l.CoolantTemp + 5); got != 0 {
		t.Errorf("cooler power for warm inlet = %v, want 0", got)
	}
}

func TestStepActiveClampsToC3(t *testing.T) {
	l := newLoop(t, units.CToK(35))
	// Request an absurdly cold inlet; the applied inlet must respect the
	// max cooler power.
	res, err := l.StepActive(0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoolerPower > l.Params.MaxCoolerPower+1e-9 {
		t.Errorf("cooler power %v exceeds C3 limit %v", res.CoolerPower, l.Params.MaxCoolerPower)
	}
	if res.InletTemp < l.Params.MinInletTemp {
		t.Errorf("inlet temp %v below physical floor", res.InletTemp)
	}
}

func TestStepActiveNoopWhenInletEqualsCoolant(t *testing.T) {
	l := newLoop(t, units.CToK(30))
	res, err := l.StepActive(0, l.CoolantTemp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoolerPower != 0 {
		t.Errorf("cooler power = %v, want 0", res.CoolerPower)
	}
	if res.PumpPower != l.Params.PumpPower {
		t.Errorf("pump power = %v, want %v", res.PumpPower, l.Params.PumpPower)
	}
	if math.Abs(l.BatteryTemp-units.CToK(30)) > 1e-9 {
		t.Errorf("equilibrium disturbed: %v", l.BatteryTemp)
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	l := newLoop(t, 300)
	if _, err := l.StepActive(0, 295, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := l.StepPassive(0, 295, -1); err == nil {
		t.Error("dt<0 accepted")
	}
}

func TestEnergyBalanceSteadyState(t *testing.T) {
	// Drive to steady state with constant heat and constant inlet; at
	// steady state the heat removed by advection must equal the heat input:
	// w·(T_c − T_i) = Q_b, and battery-coolant flux equals Q_b too.
	l := newLoop(t, units.CToK(30))
	qb := 1200.0
	ti := units.CToK(20)
	for i := 0; i < 100000; i++ {
		if _, err := l.StepActive(qb, ti, 1); err != nil {
			t.Fatal(err)
		}
	}
	p := l.Params
	advected := p.FlowHeatRate * (l.CoolantTemp - ti)
	if math.Abs(advected-qb) > qb*0.01 {
		t.Errorf("steady-state advection %v, want %v", advected, qb)
	}
	conducted := p.HBC * (l.BatteryTemp - l.CoolantTemp)
	if math.Abs(conducted-qb) > qb*0.01 {
		t.Errorf("steady-state conduction %v, want %v", conducted, qb)
	}
}

func TestCrankNicolsonStability(t *testing.T) {
	// Even with a huge time step the CN scheme must stay bounded.
	l := newLoop(t, units.CToK(30))
	for i := 0; i < 50; i++ {
		if _, err := l.StepActive(5000, units.CToK(10), 60); err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(l.BatteryTemp) || l.BatteryTemp < 200 || l.BatteryTemp > 400 {
			t.Fatalf("unstable integration: T_b = %v", l.BatteryTemp)
		}
	}
}

func TestMinFeasibleInletRespectsBothLimits(t *testing.T) {
	l := newLoop(t, units.CToK(30))
	p := l.Params
	byPower := l.CoolantTemp - p.CoolerEfficiency*p.MaxCoolerPower/p.FlowHeatRate
	want := math.Max(byPower, p.MinInletTemp)
	if got := l.MinFeasibleInlet(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinFeasibleInlet = %v, want %v", got, want)
	}
	// Power at the min feasible inlet must not exceed C3.
	if pc := l.CoolerPowerFor(l.MinFeasibleInlet()); pc > p.MaxCoolerPower+1e-9 {
		t.Errorf("power at min inlet %v exceeds C3 %v", pc, p.MaxCoolerPower)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	l := newLoop(t, 300)
	c := l.Clone()
	if _, err := c.StepActive(5000, 280, 10); err != nil {
		t.Fatal(err)
	}
	if l.BatteryTemp != 300 || l.CoolantTemp != 300 {
		t.Error("Clone mutation leaked")
	}
}

func TestTemperatureOrderingUnderHeat(t *testing.T) {
	// While the battery heats and the loop cools, T_b ≥ T_c must hold.
	l := newLoop(t, units.CToK(25))
	for i := 0; i < 1200; i++ {
		if _, err := l.StepActive(3000, units.CToK(15), 1); err != nil {
			t.Fatal(err)
		}
		if l.BatteryTemp < l.CoolantTemp-1e-9 {
			t.Fatalf("coolant hotter than battery at step %d: %v < %v", i, l.BatteryTemp, l.CoolantTemp)
		}
	}
}

func TestPassiveEquilibriumProperty(t *testing.T) {
	// Starting anywhere, with zero heat the passive loop converges towards
	// ambient and never oscillates past it.
	f := func(t0 float64) bool {
		start := units.CToK(15 + math.Abs(math.Mod(t0, 40)))
		l, err := NewLoop(DefaultParams(), start)
		if err != nil {
			return false
		}
		ambient := units.CToK(25)
		for i := 0; i < 2000; i++ {
			if _, err := l.StepPassive(0, ambient, 5); err != nil {
				return false
			}
		}
		// Must be between start and ambient (no overshoot).
		lo, hi := math.Min(start, ambient), math.Max(start, ambient)
		return l.BatteryTemp >= lo-1e-6 && l.BatteryTemp <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
