package bms

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// SensedController wraps a controller so its decisions are made from the
// EKF-estimated state of charge rather than the simulator's oracle value —
// closing the sensing loop the paper's evaluation leaves open. At each step
// the wrapper synthesises the measurements a real BMS would have (pack
// current from the present request, terminal voltage with sensor noise),
// updates the estimator, and presents the controller with a plant view
// whose battery SoC is the estimate.
type SensedController struct {
	// Inner is the wrapped controller.
	Inner sim.Controller
	// Est is the state estimator, updated once per step.
	Est *SoCEstimator
	// VoltageNoise is the terminal-voltage sensor noise σ, volts.
	VoltageNoise float64

	rng *rand.Rand
	// scratch plant view (shallow copy with a cloned battery).
	view sim.Plant
}

// NewSensedController wraps inner with the estimator and a deterministic
// (seeded) voltage-sensor noise source.
func NewSensedController(inner sim.Controller, est *SoCEstimator, voltageNoise float64, seed int64) *SensedController {
	return &SensedController{
		Inner:        inner,
		Est:          est,
		VoltageNoise: voltageNoise,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Name implements sim.Controller.
func (s *SensedController) Name() string {
	return fmt.Sprintf("%s[ekf]", s.Inner.Name())
}

// Decide implements sim.Controller.
func (s *SensedController) Decide(p *sim.Plant, forecast []float64) sim.Action {
	b := p.HEES.Battery
	// Synthesise the measurable quantities: approximate pack current from
	// the present request at the nominal voltage, and the terminal voltage
	// from the true state plus sensor noise.
	voc := b.OCV()
	i := 0.0
	if voc > 0 {
		i = forecast[0] / voc
	}
	vTrue := voc - i*b.Resistance()
	vMeas := vTrue + s.VoltageNoise*s.rng.NormFloat64()
	s.Est.Step(i, vMeas, p.Loop.BatteryTemp, p.DT)

	// Present the controller with the estimated state.
	s.view = *p
	estBattery := *b
	estBattery.SoC = s.Est.SoC
	estHEES := *p.HEES
	estHEES.Battery = &estBattery
	s.view.HEES = &estHEES
	return s.Inner.Decide(&s.view, forecast)
}

var _ sim.Controller = (*SensedController)(nil)
