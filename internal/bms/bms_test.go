package bms

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestNewSoCEstimatorValidation(t *testing.T) {
	cell := battery.NCR18650A()
	if _, err := NewSoCEstimator(cell, 0, 24, 0.5, 0.01); err == nil {
		t.Error("zero series accepted")
	}
	if _, err := NewSoCEstimator(cell, 96, 24, 1.5, 0.01); err == nil {
		t.Error("SoC > 1 accepted")
	}
	if _, err := NewSoCEstimator(cell, 96, 24, 0.5, 0); err == nil {
		t.Error("zero variance accepted")
	}
	bad := cell
	bad.CapacityAh = -1
	if _, err := NewSoCEstimator(bad, 96, 24, 0.5, 0.01); err == nil {
		t.Error("invalid cell accepted")
	}
}

// simulateDrive runs a pack through a varying load and feeds noisy
// measurements into the estimator, returning true and estimated SoC series.
func simulateDrive(t *testing.T, est *SoCEstimator, steps int, noiseV float64, seed int64) (trueSoC, estSoC []float64) {
	t.Helper()
	pack, err := battery.NewPack(battery.NCR18650A(), est.Series, est.Parallel, 0.9, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		power := 15e3 + 10e3*math.Sin(float64(i)/40)
		res, err := pack.Step(power, 1)
		if err != nil {
			t.Fatal(err)
		}
		measV := res.TerminalVoltage + noiseV*rng.NormFloat64()
		est.Step(res.Current, measV, pack.Temp, 1)
		trueSoC = append(trueSoC, pack.SoC)
		estSoC = append(estSoC, est.SoC)
	}
	return trueSoC, estSoC
}

func TestEstimatorConvergesFromWrongGuess(t *testing.T) {
	cell := battery.NCR18650A()
	// True initial SoC is 0.9; the estimator starts at 0.5.
	est, err := NewSoCEstimator(cell, 96, 24, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	est.MeasurementNoise = 0.25 // 0.5 V std
	trueS, estS := simulateDrive(t, est, 1200, 0.5, 7)

	finalErr := math.Abs(estS[len(estS)-1] - trueS[len(trueS)-1])
	if finalErr > 0.03 {
		t.Errorf("final SoC error = %.4f, want < 0.03 (est %.3f, true %.3f)",
			finalErr, estS[len(estS)-1], trueS[len(trueS)-1])
	}
	// The initial error was 0.4; convergence must be substantial.
	if initialErr := math.Abs(estS[0] - trueS[0]); finalErr > initialErr/4 {
		t.Errorf("EKF barely converged: %.4f -> %.4f", initialErr, finalErr)
	}
	// Uncertainty must shrink below the prior.
	if est.Sigma() >= math.Sqrt(0.05) {
		t.Errorf("posterior sigma %.4f not below prior", est.Sigma())
	}
}

func TestEstimatorTracksUnderNoise(t *testing.T) {
	cell := battery.NCR18650A()
	est, err := NewSoCEstimator(cell, 96, 24, 0.9, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	est.MeasurementNoise = 4 // 2 V std — very noisy sensor
	trueS, estS := simulateDrive(t, est, 900, 2.0, 11)
	var worst float64
	for i := 200; i < len(trueS); i++ {
		if d := math.Abs(estS[i] - trueS[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("tracking error %.4f under noise, want < 0.05", worst)
	}
}

func TestEstimatorSoCStaysInRange(t *testing.T) {
	cell := battery.NCR18650A()
	est, _ := NewSoCEstimator(cell, 96, 24, 0.02, 0.05)
	// Deep discharge with absurd measurements must not push SoC outside
	// [0, 1].
	for i := 0; i < 500; i++ {
		est.Step(400, 100, 298, 1)
		if est.SoC < 0 || est.SoC > 1 {
			t.Fatalf("SoC out of range: %v", est.SoC)
		}
	}
}

func TestEstimatorIgnoresNonPositiveDt(t *testing.T) {
	cell := battery.NCR18650A()
	est, _ := NewSoCEstimator(cell, 96, 24, 0.5, 0.01)
	before := est.SoC
	est.Step(100, 350, 298, 0)
	if est.SoC != before {
		t.Error("dt=0 mutated the estimate")
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	p := battery.NCR18650A()
	const h = 1e-6
	for _, z := range []float64{0.15, 0.3, 0.5, 0.7, 0.9} {
		fd := (p.OCV(z+h) - p.OCV(z-h)) / (2 * h)
		if got := p.OCVPrime(z); math.Abs(got-fd) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("OCVPrime(%v) = %v, finite diff %v", z, got, fd)
		}
		fdR := (p.Resistance(z+h, 305) - p.Resistance(z-h, 305)) / (2 * h)
		if got := p.ResistancePrime(z, 305); math.Abs(got-fdR) > 1e-4*(1+math.Abs(fdR)) {
			t.Errorf("ResistancePrime(%v) = %v, finite diff %v", z, got, fdR)
		}
	}
}

func TestMonitorCountsViolations(t *testing.T) {
	pack, err := battery.NewPack(battery.NCR18650A(), 96, 24, 0.5, 298)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(pack)
	if !m.Healthy() {
		t.Error("fresh monitor unhealthy")
	}
	m.Observe(0.5, 300, 100, 1) // all fine
	if !m.Healthy() {
		t.Error("healthy sample flagged")
	}
	m.Observe(0.5, units.CToK(45), 100, 1) // C1
	m.Observe(0.1, 300, 100, 1)            // C4
	m.Observe(0.5, 300, 1e4, 1)            // C6
	if m.Healthy() {
		t.Error("violations missed")
	}
	if m.TempViolationSec != 1 || m.SoCViolationSec != 1 || m.CurrentViolationSec != 1 {
		t.Errorf("violation seconds: %v %v %v", m.TempViolationSec, m.SoCViolationSec, m.CurrentViolationSec)
	}
	if m.PeakCurrent != 1e4 {
		t.Errorf("PeakCurrent = %v", m.PeakCurrent)
	}
	if m.Samples != 4 {
		t.Errorf("Samples = %d", m.Samples)
	}
	if !strings.Contains(m.String(), "violations") {
		t.Error("String() malformed")
	}
}

func TestSensedControllerConvergesAndServes(t *testing.T) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Estimator starts badly wrong (0.5 vs true 1.0).
	est, err := NewSoCEstimator(battery.NCR18650A(), 96, 24, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	est.MeasurementNoise = 1.0
	inner := policy.NewDual()
	ctrl := NewSensedController(inner, est, 1.0, 3)
	if ctrl.Name() != "Dual[ekf]" {
		t.Errorf("Name = %q", ctrl.Name())
	}
	requests := make([]float64, 600)
	for i := range requests {
		requests[i] = 15e3 + 10e3*math.Sin(float64(i)/30)
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The load was served and the estimator converged to the true state.
	if res.FinalSoC >= 1.0 {
		t.Error("load not served through the sensing wrapper")
	}
	if d := math.Abs(est.SoC - plant.HEES.Battery.SoC); d > 0.05 {
		t.Errorf("estimator ended %.3f from truth", d)
	}
	// The true plant must not have been mutated by the estimated view.
	if plant.HEES.Battery.SoC == est.SoC && est.SoC == 0.5 {
		t.Error("suspicious: view leaked into plant")
	}
}

func TestSensedControllerDeterministic(t *testing.T) {
	run := func() float64 {
		plant, _ := sim.NewPlant(sim.PlantConfig{})
		est, _ := NewSoCEstimator(battery.NCR18650A(), 96, 24, 0.8, 0.05)
		ctrl := NewSensedController(policy.BatteryOnly{}, est, 0.5, 9)
		requests := make([]float64, 120)
		for i := range requests {
			requests[i] = 20e3
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.QlossPct
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}
