// Package bms implements the battery-management-system substrate the paper
// builds on (§I cites BMS monitoring [9, 10]): an extended Kalman filter
// that estimates the pack state of charge from the measurable terminal
// quantities (pack current, terminal voltage, temperature), plus a safety
// monitor that tracks the paper's operating-limit violations (C1, C4, C6).
//
// The controller experiments use oracle state by default (as the paper
// does); the estimator quantifies what a deployed system would actually
// know.
package bms

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/core/floats"
	"repro/internal/units"
)

// SoCEstimator is a one-state extended Kalman filter over the coulomb-
// counting process model (paper Eq. 1) with the equivalent-circuit terminal
// voltage as the measurement (Eqs. 2–3):
//
//	process:     z⁺ = z − I·Δt/C + w,     w ~ N(0, Q)
//	measurement: V  = OCV(z) − I·R(z,T) + v,  v ~ N(0, R)
type SoCEstimator struct {
	// Cell and topology define the pack model used for the measurement
	// equation.
	Cell             battery.CellParams
	Series, Parallel int

	// ProcessNoise Q is the per-step variance of the SoC random walk
	// (fraction²) — models current-sensor bias and capacity error.
	ProcessNoise float64
	// MeasurementNoise R is the variance of the pack-voltage measurement
	// (volt²).
	MeasurementNoise float64

	// SoC is the current estimate (fraction).
	SoC float64
	// P is the estimate variance (fraction²).
	P float64
}

// NewSoCEstimator builds an estimator with an initial guess and variance.
func NewSoCEstimator(cell battery.CellParams, series, parallel int, initialSoC, initialVar float64) (*SoCEstimator, error) {
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	if series <= 0 || parallel <= 0 {
		return nil, fmt.Errorf("bms: topology %dS%dP invalid", series, parallel)
	}
	if initialSoC < 0 || initialSoC > 1 {
		return nil, fmt.Errorf("bms: initial SoC %g outside [0, 1]", initialSoC)
	}
	if initialVar <= 0 {
		return nil, errors.New("bms: initial variance must be > 0")
	}
	return &SoCEstimator{
		Cell:             cell,
		Series:           series,
		Parallel:         parallel,
		ProcessNoise:     1e-10,
		MeasurementNoise: 1.0,
		SoC:              initialSoC,
		P:                initialVar,
	}, nil
}

// Step fuses one measurement: pack current (amperes, discharge positive),
// pack terminal voltage (volts) and lumped temperature (kelvin), over a
// step of dt seconds. It returns the updated SoC estimate.
func (e *SoCEstimator) Step(packCurrent, packVoltage, temp, dt float64) float64 {
	if dt <= 0 {
		return e.SoC
	}
	// --- Predict (coulomb counting, Eq. 1) ---
	capC := units.AhToCoulomb(e.Cell.CapacityAh * float64(e.Parallel))
	e.SoC = units.Clamp(e.SoC-packCurrent*dt/capC, 0, 1)
	e.P += e.ProcessNoise

	// --- Update (terminal-voltage measurement) ---
	s := float64(e.Series)
	cellI := packCurrent / float64(e.Parallel)
	predV := s * e.Cell.TerminalVoltage(cellI, e.SoC, temp)
	// H = dV/dz = S·(OCV'(z) − I_cell·R'(z,T)).
	h := s * (e.Cell.OCVPrime(e.SoC) - cellI*e.Cell.ResistancePrime(e.SoC, temp))
	innov := packVoltage - predV
	sVar := h*h*e.P + e.MeasurementNoise
	if sVar <= 0 {
		return e.SoC
	}
	k := e.P * h / sVar
	e.SoC = units.Clamp(e.SoC+k*innov, 0, 1)
	e.P *= 1 - k*h
	if e.P < 1e-12 {
		e.P = 1e-12
	}
	return e.SoC
}

// Sigma returns the current 1-σ estimate uncertainty (fraction).
func (e *SoCEstimator) Sigma() float64 { return math.Sqrt(e.P) }

// Monitor tracks the paper's operating-limit violations over a drive.
type Monitor struct {
	// Limits.
	SafeTemp   float64 // C1 upper bound, kelvin
	MinSoC     float64 // C4 lower bound, fraction
	MaxCurrent float64 // C6 pack discharge limit, amperes

	// Counters.
	TempViolationSec    float64
	SoCViolationSec     float64
	CurrentViolationSec float64
	PeakTemp            float64
	PeakCurrent         float64
	Samples             int
}

// NewMonitor builds a monitor from the pack's own limits.
func NewMonitor(pack *battery.Pack) *Monitor {
	return &Monitor{
		SafeTemp:   pack.Cell.SafeTemp,
		MinSoC:     pack.Cell.MinSoC,
		MaxCurrent: pack.MaxCurrent(),
	}
}

// Observe records one step of dt seconds.
func (m *Monitor) Observe(soc, temp, current, dt float64) {
	m.Samples++
	if temp > m.SafeTemp {
		m.TempViolationSec += dt
	}
	if soc < m.MinSoC {
		m.SoCViolationSec += dt
	}
	if current > m.MaxCurrent {
		m.CurrentViolationSec += dt
	}
	if temp > m.PeakTemp {
		m.PeakTemp = temp
	}
	if current > m.PeakCurrent {
		m.PeakCurrent = current
	}
}

// Healthy reports whether no limit was ever violated.
func (m *Monitor) Healthy() bool {
	return floats.Zero(m.TempViolationSec) && floats.Zero(m.SoCViolationSec) && floats.Zero(m.CurrentViolationSec)
}

// String summarises the monitor.
func (m *Monitor) String() string {
	return fmt.Sprintf("bms: %d samples, violations temp=%.0fs soc=%.0fs current=%.0fs, peaks T=%.1fK I=%.0fA",
		m.Samples, m.TempViolationSec, m.SoCViolationSec, m.CurrentViolationSec, m.PeakTemp, m.PeakCurrent)
}
