package ultracap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMaxwellBCValid(t *testing.T) {
	for _, f := range []float64{5000, 10000, 20000, 25000} {
		if err := MaxwellBC(f).Validate(); err != nil {
			t.Errorf("MaxwellBC(%v): %v", f, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*BankParams)
	}{
		{"zero capacitance", func(p *BankParams) { p.NameplateF = 0 }},
		{"zero module voltage", func(p *BankParams) { p.ModuleVoltage = 0 }},
		{"zero bus voltage", func(p *BankParams) { p.BusVoltage = 0 }},
		{"negative ESR", func(p *BankParams) { p.ESR = -0.1 }},
		{"zero max power", func(p *BankParams) { p.MaxPower = 0 }},
		{"inverted SoE window", func(p *BankParams) { p.MinSoE = 0.9; p.MaxSoE = 0.3 }},
	}
	for _, m := range mutations {
		p := MaxwellBC(25000)
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestEnergyCapacityScalesWithSize(t *testing.T) {
	e25 := MaxwellBC(25000).EnergyCapacity()
	e5 := MaxwellBC(5000).EnergyCapacity()
	if math.Abs(e25/e5-5) > 1e-12 {
		t.Errorf("energy ratio = %v, want 5", e25/e5)
	}
	// 25 kF at 15 V: ½·25000·225 = 2.8125 MJ.
	if math.Abs(e25-2.8125e6) > 1 {
		t.Errorf("EnergyCapacity(25kF) = %v, want 2.8125 MJ", e25)
	}
}

func TestReferralPreservesEnergy(t *testing.T) {
	p := MaxwellBC(20000)
	// ½·C_ref·V_bus² must equal ½·C·V_module².
	refE := 0.5 * p.ReferredCapacitance() * p.BusVoltage * p.BusVoltage
	if math.Abs(refE-p.EnergyCapacity()) > 1e-6*p.EnergyCapacity() {
		t.Errorf("referred energy %v != module energy %v", refE, p.EnergyCapacity())
	}
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(MaxwellBC(25000), 1.2); err == nil {
		t.Error("accepted SoE > 1")
	}
	if _, err := NewBank(MaxwellBC(25000), -0.1); err == nil {
		t.Error("accepted SoE < 0")
	}
	bad := MaxwellBC(25000)
	bad.NameplateF = -1
	if _, err := NewBank(bad, 0.5); err == nil {
		t.Error("accepted invalid params")
	}
}

func TestVoltageSquareRootLaw(t *testing.T) {
	b, err := NewBank(MaxwellBC(25000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Voltage(); math.Abs(got-390) > 1e-9 {
		t.Errorf("Voltage at full = %v, want 390", got)
	}
	b.SoE = 0.25
	if got := b.Voltage(); math.Abs(got-195) > 1e-9 {
		t.Errorf("Voltage at SoE=0.25 = %v, want 195 (V_r/2)", got)
	}
	b.SoE = 0
	if got := b.Voltage(); got != 0 {
		t.Errorf("Voltage at empty = %v", got)
	}
}

func TestSoEForVoltageInverse(t *testing.T) {
	p := MaxwellBC(10000)
	f := func(soe float64) bool {
		soe = math.Abs(math.Mod(soe, 1))
		b := &Bank{Params: p, SoE: soe}
		return math.Abs(p.SoEForVoltage(b.Voltage())-soe) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if p.SoEForVoltage(-5) != 0 {
		t.Error("negative voltage should map to SoE 0")
	}
	if p.SoEForVoltage(2*p.BusVoltage) != 1 {
		t.Error("over-voltage should clamp to SoE 1")
	}
}

func TestStepDischargeDrainsEnergy(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 1.0)
	e0 := b.StoredEnergy()
	res, err := b.Step(50e3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Current <= 0 {
		t.Errorf("discharge current = %v", res.Current)
	}
	drained := e0 - b.StoredEnergy()
	// Drain = delivered + ESR loss.
	want := 50e3*1.0 + res.ESRLoss
	if math.Abs(drained-want) > 1e-6*want {
		t.Errorf("drained %v, want %v", drained, want)
	}
	if res.TerminalVoltage >= 390 {
		t.Errorf("terminal voltage under load = %v, want < OCV", res.TerminalVoltage)
	}
}

func TestStepChargeStoresEnergy(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 0.5)
	e0 := b.StoredEnergy()
	res, err := b.Step(-30e3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Current >= 0 {
		t.Errorf("charge current = %v, want < 0", res.Current)
	}
	gained := b.StoredEnergy() - e0
	// Stored = |delivered| − ESR loss.
	want := 30e3*1.0 - res.ESRLoss
	if math.Abs(gained-want) > 1e-6*want {
		t.Errorf("gained %v, want %v", gained, want)
	}
}

func TestStepDepletionReturnsErrEmpty(t *testing.T) {
	b, _ := NewBank(MaxwellBC(5000), 0.05)
	// 5 kF bank holds 562.5 kJ; at 5 % that's ~28 kJ. Ask for a feasible
	// 500 W (below V²/4R ≈ 845 W at this SoE) for 60 s = 30 kJ > stored.
	_, err := b.Step(500, 60)
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if b.SoE != 0 {
		t.Errorf("SoE after depletion = %v, want 0", b.SoE)
	}
}

func TestStepOverchargeClamps(t *testing.T) {
	b, _ := NewBank(MaxwellBC(5000), 0.999)
	if _, err := b.Step(-100e3, 10); err != nil {
		t.Fatal(err)
	}
	if b.SoE > 1 {
		t.Errorf("SoE exceeded 1: %v", b.SoE)
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 0.5)
	if _, err := b.Step(1000, 0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestStepZeroPowerIsNoOp(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 0.7)
	res, err := b.Step(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Current != 0 || res.ESRLoss != 0 || b.SoE != 0.7 {
		t.Errorf("zero-power step changed state: %+v SoE=%v", res, b.SoE)
	}
}

func TestMaxDischargePowerMinOfSagAndC7(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 1.0)
	p := b.Params
	// At full charge the binding limit is min(V²/4R, C7).
	want := math.Min(390*390/(4*p.ESR), p.MaxPower)
	if got := b.MaxDischargePower(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxDischargePower = %v, want %v", got, want)
	}
	b.SoE = 0.01
	// At 39 V the sag limit V²/4R is far below C7.
	want = 39.0 * 39.0 / (4 * p.ESR)
	if got := b.MaxDischargePower(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxDischargePower at low SoE = %v, want %v", got, want)
	}
	// An idealised zero-ESR bank is limited only by C7.
	ideal := p
	ideal.ESR = 0
	bi := &Bank{Params: ideal, SoE: 1}
	if got := bi.MaxDischargePower(); got != p.MaxPower {
		t.Errorf("ideal bank MaxDischargePower = %v, want C7 %v", got, p.MaxPower)
	}
}

func TestESRScalesInverselyWithSize(t *testing.T) {
	if MaxwellBC(5000).ESR <= MaxwellBC(25000).ESR {
		t.Error("smaller banks must have higher referred ESR")
	}
	ratio := MaxwellBC(5000).ESR / MaxwellBC(25000).ESR
	if math.Abs(ratio-5) > 1e-9 {
		t.Errorf("ESR ratio 5k/25k = %v, want 5", ratio)
	}
}

func TestHeadroomAndAvailableEnergy(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 0.6)
	eCap := b.Params.EnergyCapacity()
	if got, want := b.HeadroomEnergy(), 0.4*eCap; math.Abs(got-want) > 1e-6 {
		t.Errorf("HeadroomEnergy = %v, want %v", got, want)
	}
	if got, want := b.AvailableEnergy(), 0.4*eCap; math.Abs(got-want) > 1e-6 {
		t.Errorf("AvailableEnergy = %v, want %v", got, want)
	}
	b.SoE = 0.1 // below MinSoE
	if got := b.AvailableEnergy(); got != 0 {
		t.Errorf("AvailableEnergy below window = %v, want 0", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	b, _ := NewBank(MaxwellBC(25000), 0.8)
	c := b.Clone()
	if _, err := c.Step(40e3, 5); err != nil {
		t.Fatal(err)
	}
	if b.SoE != 0.8 {
		t.Error("Clone mutation leaked into original")
	}
}

func TestRoundTripEfficiencyBelowOne(t *testing.T) {
	// Discharging then recharging the same terminal energy must end with
	// less stored energy than we started with (ESR losses both ways).
	b, _ := NewBank(MaxwellBC(25000), 0.9)
	e0 := b.StoredEnergy()
	if _, err := b.Step(60e3, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Step(-60e3, 5); err != nil {
		t.Fatal(err)
	}
	if b.StoredEnergy() >= e0 {
		t.Errorf("round trip created energy: %v -> %v", e0, b.StoredEnergy())
	}
}

func TestStepSoEMonotoneUnderDischarge(t *testing.T) {
	f := func(powerKW, soe float64) bool {
		s := 0.3 + math.Abs(math.Mod(soe, 0.7))
		b := &Bank{Params: MaxwellBC(25000), SoE: s}
		p := math.Min(math.Abs(math.Mod(powerKW, 80))*1e3, b.MaxDischargePower())
		before := b.SoE
		_, err := b.Step(p, 1)
		if err != nil && !errors.Is(err, ErrEmpty) {
			return false
		}
		return b.SoE <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
