// Package ultracap models the ultracapacitor bank of the HEES (paper §II-B):
// state of energy (SoE), the square-root voltage law (Eqs. 6–9) and bank
// aggregation.
//
// Sizing convention. The paper's knob is a nameplate capacitance in farads
// (5,000–25,000 F, Maxwell BC-series modules). Physically the module stack
// sits at a low voltage and is coupled to the battery-voltage bus; we refer
// the capacitance to the bus through the ideal turns ratio
// n = BusVoltage/ModuleVoltage, which preserves stored energy exactly
// (½·C·V² is invariant under referral: C/n² at n·V). All terminal
// quantities exposed by Bank (Voltage, current) are referred to the bus.
//
// Sign convention matches the battery package: positive power/current =
// discharging the bank into the load.
package ultracap

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core/floats"
	"repro/internal/units"
)

// BankParams describes an ultracapacitor bank.
type BankParams struct {
	// NameplateF is the module-level capacitance in farads — the "size"
	// used throughout the paper's evaluation (Table I).
	NameplateF float64
	// ModuleVoltage is the rated voltage of the physical module stack in
	// volts (Eq. 6 V_r at module level).
	ModuleVoltage float64
	// BusVoltage is the nominal battery/DC-bus voltage the bank is referred
	// to, in volts.
	BusVoltage float64
	// ESR is the bank equivalent series resistance referred to the bus, in
	// ohms. The paper neglects the module ESR (≈2.2 mΩ); referred to the
	// bus it becomes comparable to the battery pack resistance and governs
	// the passive current split of the parallel architecture (Eqs. 10–13).
	ESR float64
	// MaxPower is the bank power limit (constraint C7) in watts.
	MaxPower float64
	// MinSoE and MaxSoE bound the usable state-of-energy window as
	// fractions (constraint C5; the paper uses 20 %–100 %).
	MinSoE, MaxSoE float64
}

// MaxwellBC returns a Maxwell BC-series-like bank of the given nameplate
// capacitance (farads), referred to a 390 V bus. The bus-referred ESR scales
// inversely with the bank size: a larger bank has more parallel module
// strings, so both its capacitance and its conductance grow together.
func MaxwellBC(nameplateF float64) BankParams {
	const (
		refF   = 25000.0
		refESR = 0.10 // Ω at the reference 25 kF size, bus-referred
	)
	return BankParams{
		NameplateF:    nameplateF,
		ModuleVoltage: 15,
		BusVoltage:    390,
		ESR:           refESR * refF / nameplateF,
		MaxPower:      90e3,
		MinSoE:        0.20,
		MaxSoE:        1.00,
	}
}

// Validate reports an error for physically inconsistent parameters.
func (p BankParams) Validate() error {
	switch {
	case p.NameplateF <= 0:
		return fmt.Errorf("ultracap: NameplateF = %g, must be > 0", p.NameplateF)
	case p.ModuleVoltage <= 0:
		return fmt.Errorf("ultracap: ModuleVoltage = %g, must be > 0", p.ModuleVoltage)
	case p.BusVoltage <= 0:
		return fmt.Errorf("ultracap: BusVoltage = %g, must be > 0", p.BusVoltage)
	case p.ESR < 0:
		return fmt.Errorf("ultracap: ESR = %g, must be >= 0", p.ESR)
	case p.MaxPower <= 0:
		return fmt.Errorf("ultracap: MaxPower = %g, must be > 0", p.MaxPower)
	case p.MinSoE < 0 || p.MaxSoE > 1 || p.MinSoE >= p.MaxSoE:
		return fmt.Errorf("ultracap: SoE window [%g, %g] invalid", p.MinSoE, p.MaxSoE)
	}
	return nil
}

// EnergyCapacity returns E_cap = ½·C·V_r² in joules (Eq. 6). The value is
// invariant under bus referral.
func (p BankParams) EnergyCapacity() float64 {
	return 0.5 * p.NameplateF * p.ModuleVoltage * p.ModuleVoltage
}

// ReferredCapacitance returns the bank capacitance referred to the bus:
// C·(V_module/V_bus)².
func (p BankParams) ReferredCapacitance() float64 {
	r := p.ModuleVoltage / p.BusVoltage
	return p.NameplateF * r * r
}

// ErrEmpty is returned when a discharge request cannot be met because the
// bank has reached zero stored energy.
var ErrEmpty = errors.New("ultracap: bank is empty")

// Bank is an ultracapacitor bank with state of energy tracking (Eq. 9).
// Construct with NewBank.
type Bank struct {
	// Params holds the bank design parameters.
	Params BankParams
	// SoE is the state of energy as a fraction in [0, 1].
	SoE float64
}

// NewBank returns a bank at the given initial state of energy (fraction).
func NewBank(params BankParams, soe float64) (*Bank, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if soe < 0 || soe > 1 {
		return nil, fmt.Errorf("ultracap: initial SoE %g outside [0, 1]", soe)
	}
	return &Bank{Params: params, SoE: soe}, nil
}

// Voltage returns the open-circuit bank voltage referred to the bus:
// V = V_bus·√SoE (Eq. 8 with the referred rated voltage).
func (b *Bank) Voltage() float64 {
	return b.Params.BusVoltage * math.Sqrt(math.Max(0, b.SoE))
}

// StoredEnergy returns the energy currently stored, in joules.
func (b *Bank) StoredEnergy() float64 {
	return b.SoE * b.Params.EnergyCapacity()
}

// StepResult reports one integration step of the bank.
type StepResult struct {
	// Current is the bus-referred bank current in amperes (discharge
	// positive), I = C·dV/dt (Eq. 7).
	Current float64
	// TerminalVoltage is the bus-referred terminal voltage under load.
	TerminalVoltage float64
	// InternalEnergy is the energy removed from (positive) or added to
	// (negative) the dielectric during the step, in joules — the paper's
	// dE_cap term (terminal energy plus ESR loss).
	InternalEnergy float64
	// ESRLoss is the resistive loss dissipated during the step, in joules.
	ESRLoss float64
}

// Step draws the given terminal power (watts, discharge positive, ESR loss
// added internally) for dt seconds and integrates SoE per Eq. 9. The SoE is
// clamped to [0, 1]; when a discharge request would take it below zero the
// step delivers what is available and returns ErrEmpty alongside the partial
// result.
func (b *Bank) Step(power, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("ultracap: non-positive dt %g", dt)
	}
	v := b.Voltage()
	var (
		i    float64
		loss float64
	)
	if !floats.Zero(power) {
		if v <= 0 && power > 0 {
			return StepResult{}, ErrEmpty
		}
		// Solve (V − R·I)·I = P for the terminal current when discharging;
		// when charging the same quadratic gives the negative root.
		r := b.Params.ESR
		if floats.Zero(r) {
			if v <= 0 {
				// Charging a fully empty ideal bank: current is defined by
				// energy flow only; approximate with V at the end of step.
				i = 0
			} else {
				i = power / v
			}
		} else {
			disc := v*v - 4*r*power
			if disc < 0 {
				return StepResult{}, fmt.Errorf("ultracap: power %g W infeasible at V=%g", power, v)
			}
			i = (v - math.Sqrt(disc)) / (2 * r)
		}
		loss = i * i * b.Params.ESR * dt
	}

	// Internal energy change = terminal energy + ESR loss (Eq. 9 with the
	// loss folded into the drawn energy).
	dE := power*dt + loss
	eCap := b.Params.EnergyCapacity()
	newSoE := b.SoE - dE/eCap

	var err error
	if newSoE < 0 {
		newSoE = 0
		err = ErrEmpty
	}
	if newSoE > 1 {
		newSoE = 1
	}
	b.SoE = newSoE

	return StepResult{
		Current:         i,
		TerminalVoltage: v - i*b.Params.ESR,
		InternalEnergy:  dE,
		ESRLoss:         loss,
	}, err
}

// MaxDischargePower returns the largest terminal power the bank can supply
// at its present voltage, V²/(4R) (or +Inf for an ideal bank), additionally
// capped by the C7 limit.
func (b *Bank) MaxDischargePower() float64 {
	v := b.Voltage()
	if floats.Zero(b.Params.ESR) {
		return b.Params.MaxPower
	}
	return math.Min(v*v/(4*b.Params.ESR), b.Params.MaxPower)
}

// HeadroomEnergy returns how much more energy the bank can absorb before
// reaching the usable maximum, in joules.
func (b *Bank) HeadroomEnergy() float64 {
	return math.Max(0, (b.Params.MaxSoE-b.SoE)*b.Params.EnergyCapacity())
}

// AvailableEnergy returns the energy available above the usable minimum, in
// joules (constraint C5).
func (b *Bank) AvailableEnergy() float64 {
	return math.Max(0, (b.SoE-b.Params.MinSoE)*b.Params.EnergyCapacity())
}

// Clone returns an independent copy, used by predictive controllers.
func (b *Bank) Clone() *Bank {
	cp := *b
	return &cp
}

// SoEForVoltage inverts Eq. 8: the state of energy at which the bank's
// open-circuit voltage equals v (bus-referred). Values outside the physical
// range are clamped to [0, 1].
func (p BankParams) SoEForVoltage(v float64) float64 {
	if v <= 0 {
		return 0
	}
	r := v / p.BusVoltage
	return units.Clamp(r*r, 0, 1)
}
