// Package lifetime projects the battery to its end of life (20 % capacity
// loss, paper §I) by repeatedly driving a route under a methodology while
// carrying the accumulated state of health into the plant: the faded pack
// has less capacity and higher internal resistance, so later routes age it
// faster — the feedback the paper's single-route evaluation extrapolates
// away. The projection re-simulates a route every block and extrapolates
// in between, so an end of life thousands of routes out costs only dozens
// of simulations.
package lifetime

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/charger"
	"repro/internal/core/floats"
	"repro/internal/sim"
)

// Config tunes a projection.
type Config struct {
	// EndOfLifePct is the capacity loss that ends the battery's life
	// (default 20, the paper's criterion).
	EndOfLifePct float64
	// BlockRoutes is how many routes each simulated per-route loss is
	// extrapolated over before re-simulating with updated health
	// (default 250).
	BlockRoutes int
	// MaxRoutes bounds the projection (default 40000).
	MaxRoutes int
	// ResistanceGrowthPerPct is the fractional internal-resistance increase
	// per percent of capacity loss (default 0.02: +40 % at end of life,
	// a common empirical pairing of fade and impedance rise).
	ResistanceGrowthPerPct float64
	// RouteKm is the route length used for the distance metric (optional).
	RouteKm float64
	// Charger, when non-nil, recharges the pack to its pre-route state of
	// charge after each simulated route and adds the charging aging to the
	// per-route loss — projections without it overestimate battery life.
	Charger *charger.Params
	// ChargeAmbient is the parking-lot temperature for charging sessions,
	// kelvin (default 298).
	ChargeAmbient float64
	// Horizon is the forecast window handed to the controller each
	// simulated route (default 40, the paper's MPC horizon).
	Horizon int
	// Progress, when non-nil, is called after each simulated block with
	// the routes driven so far and the MaxRoutes bound. The projection is
	// sequential, so calls are too.
	Progress func(routesDone, maxRoutes int)
}

func (c Config) withDefaults() Config {
	if floats.Zero(c.EndOfLifePct) {
		c.EndOfLifePct = 20
	}
	if c.BlockRoutes == 0 {
		c.BlockRoutes = 250
	}
	if c.MaxRoutes == 0 {
		c.MaxRoutes = 40000
	}
	if floats.Zero(c.ResistanceGrowthPerPct) {
		c.ResistanceGrowthPerPct = 0.02
	}
	if floats.Zero(c.ChargeAmbient) {
		c.ChargeAmbient = 298
	}
	if c.Horizon < 1 {
		c.Horizon = 40
	}
	return c
}

// AppendCanonical implements the canonical-encoding contract (see package
// canon) over every field that influences the deterministic outcome; the
// Progress callback is deliberately excluded.
func (c Config) AppendCanonical(dst []byte) []byte {
	c = c.withDefaults()
	dst = append(dst, "otem.lifetime"...)
	dst = canon.Float(dst, "e", c.EndOfLifePct)
	dst = canon.Int(dst, "b", c.BlockRoutes)
	dst = canon.Int(dst, "x", c.MaxRoutes)
	dst = canon.Float(dst, "g", c.ResistanceGrowthPerPct)
	dst = canon.Float(dst, "d", c.RouteKm)
	dst = canon.Int(dst, "h", c.Horizon)
	dst = canon.Float(dst, "a", c.ChargeAmbient)
	if c.Charger != nil {
		dst = canon.Float(dst, "cc", c.Charger.CRate)
		dst = canon.Float(dst, "cv", c.Charger.VmaxPerCell)
		dst = canon.Float(dst, "co", c.Charger.CutoffCRate)
		dst = canon.Float(dst, "ce", c.Charger.Efficiency)
		dst = canon.Float(dst, "cd", c.Charger.MaxDuration)
	} else {
		dst = canon.Str(dst, "cc", "none")
	}
	return dst
}

// Point is one sampled state of the projection.
type Point struct {
	// Routes driven so far.
	Routes int
	// CapacityLossPct is the accumulated fade at this point.
	CapacityLossPct float64
	// LossPerRoutePct is the per-route loss measured at this health.
	LossPerRoutePct float64
}

// Projection is the outcome of Project.
type Projection struct {
	// Points samples the fade trajectory (one per simulated block).
	Points []Point
	// RoutesToEOL is the projected number of routes until end of life
	// (== Config.MaxRoutes when the bound was hit first).
	RoutesToEOL int
	// DistanceToEOLKm is RoutesToEOL × Config.RouteKm (0 if RouteKm unset).
	DistanceToEOLKm float64
	// AccelerationFactor is the ratio of the last block's per-route loss to
	// the first block's: how much the fade feedback sped aging up.
	AccelerationFactor float64
}

// PlantFactory builds a plant whose battery carries the given accumulated
// capacity loss (percent) and resistance-growth factor (≥ 1).
type PlantFactory func(capacityLossPct, resistanceFactor float64) (*sim.Plant, error)

// ControllerFactory builds a fresh controller per simulated block
// (controllers are stateful).
type ControllerFactory func() (sim.Controller, error)

// DefaultPlantFactory adapts a sim.PlantConfig into a PlantFactory that
// applies the health state to the pack.
func DefaultPlantFactory(cfg sim.PlantConfig) PlantFactory {
	return func(lossPct, rFactor float64) (*sim.Plant, error) {
		plant, err := sim.NewPlant(cfg)
		if err != nil {
			return nil, err
		}
		b := plant.HEES.Battery
		b.CapacityLossPct = lossPct
		// Impedance growth: scale the resistance coefficients of Eq. 3.
		b.Cell.R[0] *= rFactor
		b.Cell.R[2] *= rFactor
		return plant, nil
	}
}

// Project runs the fade trajectory to end of life.
func Project(newPlant PlantFactory, newController ControllerFactory, requests []float64, cfg Config) (*Projection, error) {
	return ProjectContext(context.Background(), newPlant, newController, requests, cfg)
}

// ProjectContext is Project with cooperative cancellation. The projection
// is inherently sequential — each simulated block depends on the health
// state accumulated by its predecessors — so the batching lever here is
// cancellation: the route simulation inside each block aborts mid-route
// when ctx fires (with an error matching runner.ErrCanceled), which lets
// callers fan a projection per methodology out on the batch runner and
// still stop the whole fleet promptly.
func ProjectContext(ctx context.Context, newPlant PlantFactory, newController ControllerFactory, requests []float64, cfg Config) (*Projection, error) {
	if newPlant == nil || newController == nil {
		return nil, errors.New("lifetime: nil factory")
	}
	if len(requests) == 0 {
		return nil, errors.New("lifetime: empty request series")
	}
	cfg = cfg.withDefaults()

	out := &Projection{}
	loss := 0.0
	routes := 0
	var firstRate float64
	for loss < cfg.EndOfLifePct && routes < cfg.MaxRoutes {
		rFactor := 1 + cfg.ResistanceGrowthPerPct*loss
		plant, err := newPlant(loss, rFactor)
		if err != nil {
			return nil, err
		}
		ctrl, err := newController()
		if err != nil {
			return nil, err
		}
		startSoC := plant.HEES.Battery.SoC
		res, err := sim.RunContext(ctx, plant, ctrl, requests, sim.Config{Horizon: cfg.Horizon})
		if err != nil {
			return nil, fmt.Errorf("lifetime: route at %.2f%% loss: %w", loss, err)
		}
		rate := res.QlossPct
		if cfg.Charger != nil {
			chg, err := charger.Charge(plant.HEES.Battery, plant.Loop, *cfg.Charger, startSoC, cfg.ChargeAmbient)
			if err != nil {
				return nil, fmt.Errorf("lifetime: charge at %.2f%% loss: %w", loss, err)
			}
			rate += chg.AgingPct
		}
		if rate <= 0 {
			return nil, fmt.Errorf("lifetime: non-positive per-route loss %g", rate)
		}
		if floats.Zero(firstRate) {
			firstRate = rate
		}
		out.Points = append(out.Points, Point{Routes: routes, CapacityLossPct: loss, LossPerRoutePct: rate})

		// Extrapolate over the block, but stop exactly at end of life.
		remaining := cfg.EndOfLifePct - loss
		block := cfg.BlockRoutes
		if need := int(remaining/rate) + 1; need < block {
			block = need
		}
		if routes+block > cfg.MaxRoutes {
			block = cfg.MaxRoutes - routes
		}
		loss += rate * float64(block)
		routes += block
		out.AccelerationFactor = rate / firstRate
		if cfg.Progress != nil {
			cfg.Progress(routes, cfg.MaxRoutes)
		}
	}
	out.RoutesToEOL = routes
	out.DistanceToEOLKm = float64(routes) * cfg.RouteKm
	return out, nil
}

// Write renders the projection.
func (p *Projection) Write(w io.Writer, label string) {
	fmt.Fprintf(w, "# lifetime projection: %s\n", label)
	fmt.Fprintf(w, "%10s %16s %18s\n", "routes", "capacity loss %", "loss/route %")
	for _, pt := range p.Points {
		fmt.Fprintf(w, "%10d %16.3f %18.6f\n", pt.Routes, pt.CapacityLossPct, pt.LossPerRoutePct)
	}
	fmt.Fprintf(w, "routes to end of life: %d", p.RoutesToEOL)
	if p.DistanceToEOLKm > 0 {
		fmt.Fprintf(w, " (%.0f km)", p.DistanceToEOLKm)
	}
	fmt.Fprintf(w, "; aging acceleration ×%.2f\n", p.AccelerationFactor)
}
