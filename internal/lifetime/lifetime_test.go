package lifetime

import (
	"strings"
	"testing"

	"repro/internal/charger"
	"repro/internal/drivecycle"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func baselineFactory() ControllerFactory {
	return func() (sim.Controller, error) { return policy.Parallel{}, nil }
}

func shortRoute(t *testing.T) []float64 {
	t.Helper()
	return vehicle.MidSizeEV().PowerSeries(drivecycle.US06())
}

func TestProjectValidation(t *testing.T) {
	requests := shortRoute(t)
	pf := DefaultPlantFactory(sim.PlantConfig{})
	if _, err := Project(nil, baselineFactory(), requests, Config{}); err == nil {
		t.Error("nil plant factory accepted")
	}
	if _, err := Project(pf, nil, requests, Config{}); err == nil {
		t.Error("nil controller factory accepted")
	}
	if _, err := Project(pf, baselineFactory(), nil, Config{}); err == nil {
		t.Error("empty route accepted")
	}
}

func TestProjectReachesEndOfLife(t *testing.T) {
	requests := shortRoute(t)
	proj, err := Project(DefaultPlantFactory(sim.PlantConfig{}), baselineFactory(), requests, Config{
		EndOfLifePct: 20,
		BlockRoutes:  2500,
		MaxRoutes:    200000,
		RouteKm:      12.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if proj.RoutesToEOL <= 0 || proj.RoutesToEOL >= 200000 {
		t.Fatalf("RoutesToEOL = %d", proj.RoutesToEOL)
	}
	if len(proj.Points) < 2 {
		t.Fatalf("too few sample points: %d", len(proj.Points))
	}
	// Fade must accumulate monotonically.
	for i := 1; i < len(proj.Points); i++ {
		if proj.Points[i].CapacityLossPct <= proj.Points[i-1].CapacityLossPct {
			t.Fatal("capacity loss not monotone")
		}
	}
	// The feedback accelerates aging: a faded pack has higher resistance
	// (more heat) and less capacity (deeper SoC swings).
	if proj.AccelerationFactor <= 1 {
		t.Errorf("aging acceleration = %v, want > 1", proj.AccelerationFactor)
	}
	if proj.DistanceToEOLKm <= 0 {
		t.Error("distance not computed")
	}
	// Plausible EV pack life on a hard cycle: tens of thousands of km.
	if proj.DistanceToEOLKm < 1e4 || proj.DistanceToEOLKm > 1e6 {
		t.Errorf("distance to EOL = %.0f km, implausible", proj.DistanceToEOLKm)
	}
}

func TestProjectRespectsMaxRoutes(t *testing.T) {
	requests := shortRoute(t)
	proj, err := Project(DefaultPlantFactory(sim.PlantConfig{}), baselineFactory(), requests, Config{
		EndOfLifePct: 20,
		BlockRoutes:  100,
		MaxRoutes:    300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if proj.RoutesToEOL != 300 {
		t.Errorf("RoutesToEOL = %d, want capped at 300", proj.RoutesToEOL)
	}
}

func TestDualOutlivesParallel(t *testing.T) {
	// The paper's BLT claim, end to end: the managed architecture reaches
	// end of life later than the unmanaged one. The route must be long
	// enough for the battery to reach dual's thermal threshold (a single
	// US06 is over before the pack warms up).
	requests := vehicle.MidSizeEV().PowerSeries(drivecycle.US06().Repeat(3))
	cfg := Config{EndOfLifePct: 20, BlockRoutes: 4000, MaxRoutes: 200000}
	par, err := Project(DefaultPlantFactory(sim.PlantConfig{}), baselineFactory(), requests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Project(DefaultPlantFactory(sim.PlantConfig{}),
		func() (sim.Controller, error) { return policy.NewDual(), nil }, requests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dual.RoutesToEOL <= par.RoutesToEOL {
		t.Errorf("dual EOL %d routes should exceed parallel %d", dual.RoutesToEOL, par.RoutesToEOL)
	}
}

func TestDefaultPlantFactoryAppliesHealth(t *testing.T) {
	pf := DefaultPlantFactory(sim.PlantConfig{})
	fresh, err := pf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	aged, err := pf(15, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if aged.HEES.Battery.CapacityLossPct != 15 {
		t.Errorf("loss not applied: %v", aged.HEES.Battery.CapacityLossPct)
	}
	if aged.HEES.Battery.EffectiveCapacityAh() >= fresh.HEES.Battery.EffectiveCapacityAh() {
		t.Error("capacity fade not applied")
	}
	if aged.HEES.Battery.Resistance() <= fresh.HEES.Battery.Resistance() {
		t.Error("impedance growth not applied")
	}
}

func TestWriteRendersProjection(t *testing.T) {
	p := &Projection{
		Points:             []Point{{0, 0, 0.01}, {100, 1, 0.011}},
		RoutesToEOL:        2000,
		DistanceToEOLKm:    25400,
		AccelerationFactor: 1.1,
	}
	var sb strings.Builder
	p.Write(&sb, "unit")
	out := sb.String()
	if !strings.Contains(out, "routes to end of life: 2000") || !strings.Contains(out, "25400 km") {
		t.Errorf("Write output:\n%s", out)
	}
}

func TestChargingShortensProjectedLife(t *testing.T) {
	requests := shortRoute(t)
	base := Config{EndOfLifePct: 20, BlockRoutes: 5000, MaxRoutes: 300000}
	without, err := Project(DefaultPlantFactory(sim.PlantConfig{}), baselineFactory(), requests, base)
	if err != nil {
		t.Fatal(err)
	}
	chg := charger.Default()
	withCfg := base
	withCfg.Charger = &chg
	with, err := Project(DefaultPlantFactory(sim.PlantConfig{}), baselineFactory(), requests, withCfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.RoutesToEOL >= without.RoutesToEOL {
		t.Errorf("charging aging should shorten life: %d vs %d routes",
			with.RoutesToEOL, without.RoutesToEOL)
	}
	// But not absurdly: charging at 0.5 C is gentler than driving.
	if float64(with.RoutesToEOL) < 0.3*float64(without.RoutesToEOL) {
		t.Errorf("charging dominates aging implausibly: %d vs %d", with.RoutesToEOL, without.RoutesToEOL)
	}
}
