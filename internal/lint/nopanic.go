package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic in library packages.
//
// The batch engine survives a panicking simulation only because
// internal/runner recovers it — but a recovered panic still kills that
// route's result. Library code must return errors; panics are reserved
// for init-time wiring and Must*-style constructors whose inputs are
// compile-time constants, plus explicitly justified programmer-error
// contracts (e.g. dimension mismatches in the linalg kernels, which
// follow the gonum convention — suppressed there file-by-file).
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: `forbid panic outside init functions and Must*-style constructors

Library packages must surface failures as errors so the runner's batch
isolation and the facade's sentinel errors stay meaningful. panic is
allowed inside func init and functions whose name starts with Must/must
(constructors for compile-time-constant inputs); anything else needs a
//lint:ignore nopanic or //lint:file-ignore nopanic with a reason.`,
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs may die loudly
	}
	inspectWithStack(pass, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return
		}
		name := enclosingFuncName(stack)
		if name == "init" || strings.HasPrefix(strings.ToLower(name), "must") {
			return
		}
		pass.Reportf(call.Pos(), "panic in library code (func %s); return an error, or rename to Must* if inputs are compile-time constants", funcLabel(name))
	})
	return nil
}

func funcLabel(name string) string {
	if name == "" {
		return "<package scope>"
	}
	return name
}
