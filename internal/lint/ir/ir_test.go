package ir

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildSrc type-checks one file and returns the IR of every declared
// function by name.
func buildSrc(t *testing.T, src string) (map[string]*Func, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	out := make(map[string]*Func)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			f := Build(info, fd)
			if f == nil {
				t.Fatalf("Build(%s) = nil", fd.Name.Name)
			}
			if err := Sanity(f); err != nil {
				t.Fatalf("Sanity(%s): %v", fd.Name.Name, err)
			}
			out[fd.Name.Name] = f
		}
	}
	return out, info, fset
}

// useValue finds the value at the nth use of identifier name (0-based).
func useValue(t *testing.T, f *Func, name string, nth int) Value {
	t.Helper()
	var found []Value
	ast.Inspect(f.Decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if v := f.ValueAt(id); v != nil {
				found = append(found, v)
			}
		}
		return true
	})
	if nth >= len(found) {
		t.Fatalf("only %d tracked uses of %q, want index %d", len(found), name, nth)
	}
	return found[nth]
}

func TestCFGIfDiamond(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}
`)
	f := fs["f"]
	// entry, if.then, if.done, if.else = 4 blocks, all reachable.
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d (%v), want 4", len(f.Blocks), f.Blocks)
	}
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			t.Errorf("%s unreachable", b)
		}
	}
	// The merge block holds exactly one phi for x, with two edges.
	var merge *Block
	for _, b := range f.Blocks {
		if len(b.Phis) > 0 {
			merge = b
		}
	}
	if merge == nil || len(merge.Phis) != 1 {
		t.Fatalf("no single-phi merge block found")
	}
	phi := merge.Phis[0]
	if phi.V.Name() != "x" || len(phi.Edges) != 2 {
		t.Fatalf("phi = %s with %d edges", phi, len(phi.Edges))
	}
	for _, e := range phi.Edges {
		d, ok := e.(*Def)
		if !ok {
			t.Fatalf("phi edge %v is not a Def", e)
		}
		if lit, ok := d.Rhs.(*ast.BasicLit); !ok || (lit.Value != "2" && lit.Value != "3") {
			t.Errorf("phi edge def rhs = %v, want literal 2 or 3", d.Rhs)
		}
	}
	// The use of x in `return x` resolves to the phi.
	if v := useValue(t, f, "x", 0); v != phi {
		t.Errorf("return x resolves to %v, want %v", v, phi)
	}
	// The initial x := 1 is never observed (overwritten on both arms).
	var first *Def
	for _, d := range f.Defs() {
		if lit, ok := d.Rhs.(*ast.BasicLit); ok && lit.Value == "1" {
			first = d
		}
	}
	if first == nil {
		t.Fatal("def x := 1 not found")
	}
	if f.Observed(first) {
		t.Error("x := 1 reported observed; both branches overwrite it")
	}
}

func TestCFGLoopPhi(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func sum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	f := fs["sum"]
	// The loop head merges i and s from entry and the back edge.
	var loop *Block
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Comment, "for.loop") {
			loop = b
		}
	}
	if loop == nil {
		t.Fatal("no for.loop block")
	}
	if len(loop.Phis) != 2 {
		t.Fatalf("loop phis = %d, want 2 (i and s)", len(loop.Phis))
	}
	// Branch convention: loop has two successors, last node is the cond.
	if len(loop.Succs) != 2 {
		t.Fatalf("loop succs = %d, want 2", len(loop.Succs))
	}
	if _, ok := loop.Nodes[len(loop.Nodes)-1].(ast.Expr); !ok {
		t.Error("loop block does not end in its condition expression")
	}
	// Every def is observed (s feeds the return through phis, i the cond).
	for _, d := range f.Defs() {
		if !f.Observed(d) {
			t.Errorf("%s not observed", d)
		}
	}
}

func TestUntrackedAddressTakenAndCaptured(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func f() (int, int, int) {
	a := 1
	p := &a
	_ = p
	b := 2
	g := func() int { return b }
	c := 3
	c = c + 1
	return a, g(), c
}
`)
	f := fs["f"]
	// a: address taken; b: captured. Both untracked.
	if v := useValue(t, f, "c", 0); v == nil {
		t.Fatal("c should be tracked")
	}
	for _, d := range f.Defs() {
		if d.V.Name() == "a" || d.V.Name() == "b" {
			t.Errorf("untracked variable %s has a Def", d.V.Name())
		}
	}
}

func TestRangeSwitchGotoBuild(t *testing.T) {
	// A grab bag of control flow that must build and pass Sanity (the
	// buildSrc helper checks it for every function).
	fs, _, _ := buildSrc(t, `package p
func f(xs []int, m map[string]int) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			continue
		}
		total += i * x
	}
L:
	for k, v := range m {
		switch {
		case v > 10:
			break L
		case v > 5:
			total += v
			fallthrough
		default:
			total += len(k)
		}
	}
	i := 0
loop:
	if i < 3 {
		i++
		goto loop
	}
	select {
	default:
		total += i
	}
	return total
}
`)
	f := fs["f"]
	reach := 0
	for _, b := range f.Blocks {
		if f.Reachable(b) {
			reach++
		}
	}
	if reach < 10 {
		t.Errorf("only %d reachable blocks; the control flow looks collapsed", reach)
	}
}

func TestNamedResultsObservedAtReturn(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func f() (err error) {
	err = nil
	return
}
func g() (n int) {
	n = 3
	return 5
}
`)
	for _, name := range []string{"f", "g"} {
		f := fs[name]
		for _, d := range f.Defs() {
			if !f.Observed(d) {
				t.Errorf("%s: named-result def %s not observed at return", name, d)
			}
		}
	}
}

func TestForwardConstantReaching(t *testing.T) {
	// A tiny may-be-zero analysis over the diamond: facts are maps from
	// Value to "known constant" strings; the true edge of `c` refines
	// nothing, but defs overwrite.
	fs, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`)
	f := fs["f"]
	type fact map[Value]string
	lit := func(e ast.Expr) string {
		if l, ok := e.(*ast.BasicLit); ok {
			return l.Value
		}
		return ""
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	join := func(b *Block, in []Edge[fact]) fact {
		out := fact{}
		// Meet: keep only agreeing entries.
		for k, v := range in[0].Out {
			ok := true
			for _, e := range in[1:] {
				if e.Out[k] != v {
					ok = false
				}
			}
			if ok {
				out[k] = v
			}
		}
		// Phi: constant if all edges agree.
		for _, phi := range b.Phis {
			var c string
			agree := true
			for i, p := range b.Preds {
				var ec string
				for _, e := range in {
					if e.Pred == p {
						ec = e.Out[phi.Edges[i]]
					}
				}
				if i == 0 {
					c = ec
				} else if ec != c {
					agree = false
				}
			}
			if agree && c != "" {
				out[phi] = c
			}
		}
		return out
	}
	flowFor := func(fn *Func, lit func(ast.Expr) string) func(*Block, fact) []fact {
		return func(b *Block, in fact) []fact {
			out := fact{}
			for k, v := range in {
				out[k] = v
			}
			for _, n := range b.Nodes {
				fn.eachDef(n, func(id *ast.Ident, rhs ast.Expr, _ DefKind, _ token.Token) {
					if d := fn.DefAt(id); d != nil && rhs != nil {
						if c := lit(rhs); c != "" {
							out[d] = c
						}
					}
				})
			}
			return []fact{out}
		}
	}
	flow := flowFor(f, lit)
	retBlockOf := func(f *Func) *Block {
		for _, b := range f.Blocks {
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.ReturnStmt); ok {
					return b
				}
			}
		}
		t.Fatal("no return block")
		return nil
	}

	ins := Forward(f, fact{}, join, flow, equal)
	// At the block holding `return x`, x's phi must NOT be a known
	// constant: the arms disagree (1 vs 2).
	retVal := useValue(t, f, "x", 0)
	phi, ok := retVal.(*Phi)
	if !ok {
		t.Fatalf("return x resolved to %v; expected a phi", retVal)
	}
	if c, known := ins[retBlockOf(f)][phi]; known {
		t.Errorf("phi wrongly constant %q at return", c)
	}

	// When both arms agree, the phi IS a known constant at the merge.
	fs2, _, _ := buildSrc(t, `package p
func g(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 2
	}
	return x
}
`)
	g := fs2["g"]
	ins2 := Forward(g, fact{}, join, flowFor(g, lit), equal)
	retVal2 := useValue(t, g, "x", 0)
	phi2, ok := retVal2.(*Phi)
	if !ok {
		t.Fatalf("g: return x resolved to %v; expected a phi", retVal2)
	}
	if c := ins2[retBlockOf(g)][phi2]; c != "2" {
		t.Errorf("agreeing phi fact = %q at return, want \"2\"", c)
	}
}

func TestBranchConventionTrueFalse(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func f(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}
`)
	f := fs["f"]
	entry := f.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(entry.Succs))
	}
	cond, ok := entry.Nodes[len(entry.Nodes)-1].(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		t.Fatalf("entry does not end in the == condition")
	}
	// Succs[0] (true) holds `return 0`; Succs[1] (false) holds `return *p`.
	hasReturnValue := func(b *Block, want string) bool {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 {
				if l, ok := r.Results[0].(*ast.BasicLit); ok {
					return l.Value == want
				}
				if _, ok := r.Results[0].(*ast.StarExpr); ok {
					return want == "*"
				}
			}
		}
		return false
	}
	if !hasReturnValue(entry.Succs[0], "0") {
		t.Errorf("Succs[0] (true edge) does not return 0: %v", entry.Succs[0].Nodes)
	}
	if !hasReturnValue(entry.Succs[1], "*") {
		t.Errorf("Succs[1] (false edge) does not return *p: %v", entry.Succs[1].Nodes)
	}
}

func TestDeadStoreAfterUse(t *testing.T) {
	fs, _, _ := buildSrc(t, `package p
func f() int {
	x := 1
	y := x + 1
	x = 99
	return y
}
`)
	f := fs["f"]
	var dead []*Def
	for _, d := range f.Defs() {
		if !f.Observed(d) {
			dead = append(dead, d)
		}
	}
	if len(dead) != 1 || dead[0].V.Name() != "x" {
		t.Fatalf("dead defs = %v, want exactly x = 99", dead)
	}
	if lit, ok := dead[0].Rhs.(*ast.BasicLit); !ok || lit.Value != "99" {
		t.Errorf("dead def rhs = %v, want 99", dead[0].Rhs)
	}
}

func TestBuildNilForBodylessDecl(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", "package p\n\nfunc external()\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	if Build(&types.Info{}, fd) != nil {
		t.Error("Build on a bodyless declaration should return nil")
	}
}

func ExampleBuild() {
	src := `package p
func abs(x int) int {
	if x < 0 {
		x = -x
	}
	return x
}
`
	fset := token.NewFileSet()
	file, _ := parser.ParseFile(fset, "p.go", src, 0)
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		fmt.Println("typecheck:", err)
		return
	}
	f := Build(info, file.Decls[0].(*ast.FuncDecl))
	fmt.Println("blocks:", len(f.Blocks), "phis:", len(f.Phis()))
	// Output: blocks: 3 phis: 1
}
