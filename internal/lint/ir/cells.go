package ir

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Cell is the conservative store/load summary of one local variable the
// SSA renaming cannot track — its address is taken with &x, a closure
// captures it, or a pointer-receiver method call takes &x implicitly.
// Where SSA answers "which definition reaches this use?", a cell answers
// the weaker, flow-insensitive questions that remain provable once
// pointers are involved:
//
//   - Stores: every value syntactically stored into the variable, whether
//     directly (x = e) or through a local pointer that may point to it
//     (*p = e). A may-analysis (taint) holds if any store does; a
//     must-analysis (nil proofs) holds only if all of them do and the
//     cell has not escaped.
//   - Reads: how many uses read the variable, directly or through a
//     may-aliasing pointer dereference. Zero reads on a non-escaped cell
//     means every store is dead.
//   - Escaped: the address left the function's view — passed to a call,
//     returned, stored into a field/slice/map, captured by a closure, or
//     reached a context the analysis does not enumerate. An escaped cell
//     still supports may-claims (a store that happened, happened) but no
//     must-claims (unseen code may store or read anything).
//
// The alias relation is a one-function, flow-insensitive may-points-to
// closure: p may point to x if p is ever assigned &x or a copy of a
// pointer that may point to x. That over-approximates aliasing, which is
// the sound direction for every consumer.
type Cell struct {
	// V is the summarized variable.
	V *types.Var
	// Stores are the recorded store sites, in traversal (source) order.
	Stores []CellStore
	// Reads counts the observed read sites (direct uses and may-alias
	// dereferences).
	Reads int
	// Escaped reports that the variable's address left the function's
	// view, so the store/read sets may be incomplete.
	Escaped bool
}

// CellStore is one recorded store into a cell.
type CellStore struct {
	// Pos anchors the store for diagnostics (the target identifier or the
	// dereference expression).
	Pos token.Pos
	// Rhs is the stored expression when the store pairs one target with
	// one value (or, for Tuple stores, the whole multi-value source);
	// nil for zero-value declarations, inc/dec, op-assign and range
	// variables, whose stored value the summary does not model.
	Rhs ast.Expr
	// Direct reports a store through the variable's own identifier
	// (x = e), as opposed to a may-alias dereference (*p = e).
	Direct bool
	// Zero marks the implicit zero value of an uninitialized declaration.
	Zero bool
	// Tuple marks a store whose value is one position of a multi-value
	// source (x, y := f()); Rhs then holds the whole source expression.
	Tuple bool
}

// Cell returns the store/load summary for an untracked local, or nil when
// v is SSA-tracked (use ValueAt instead) or not a local of this function.
func (f *Func) Cell(v *types.Var) *Cell { return f.cells[v] }

// Cells returns every cell in deterministic (declaration position) order.
func (f *Func) Cells() []*Cell {
	out := make([]*Cell, 0, len(f.cells))
	for _, c := range f.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V.Pos() < out[j].V.Pos() })
	return out
}

// cellBuilder holds the state of one buildCells run.
type cellBuilder struct {
	f *Func
	// pts is the may-points-to relation: local pointer var -> celled
	// locals it may address.
	pts map[*types.Var]map[*types.Var]bool
	// handled marks AST nodes pass 2 already classified (assignment
	// targets, blessed &x and pointer-copy operands), so the generic
	// ident/unary cases do not re-classify them as escapes or reads.
	handled map[ast.Node]bool
}

// buildCells computes the store/load summaries for the function's
// untracked locals. It runs after buildSSA, so f.tracked is final: a cell
// is created for every local variable that appears in the body but lost
// (or never had) SSA tracking.
func (f *Func) buildCells() {
	f.cells = make(map[*types.Var]*Cell)
	if !f.hasUntracked {
		return
	}
	b := &cellBuilder{
		f:       f,
		pts:     make(map[*types.Var]map[*types.Var]bool),
		handled: make(map[ast.Node]bool),
	}
	b.pointsTo()
	ast.Inspect(f.Decl, b.visit)
}

// local resolves obj to a variable declared inside the function, or nil.
func (b *cellBuilder) local(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v == nil || v.IsField() || v.Name() == "_" {
		return nil
	}
	if v.Pos() < b.f.Decl.Pos() || v.Pos() > b.f.Decl.End() {
		return nil
	}
	return v
}

// celled resolves obj to an untracked local — a variable that has (or
// should get) a cell — or nil.
func (b *cellBuilder) celled(obj types.Object) *types.Var {
	v := b.local(obj)
	if v == nil || b.f.tracked[v] {
		return nil
	}
	return v
}

func (b *cellBuilder) cell(v *types.Var) *Cell {
	c := b.f.cells[v]
	if c == nil {
		c = &Cell{V: v}
		b.f.cells[v] = c
	}
	return c
}

func (b *cellBuilder) escape(v *types.Var) { b.cell(v).Escaped = true }
func (b *cellBuilder) read(v *types.Var)   { b.cell(v).Reads++ }
func (b *cellBuilder) store(v *types.Var, s CellStore) {
	c := b.cell(v)
	c.Stores = append(c.Stores, s)
}

// escapePtr escapes everything p may point to.
func (b *cellBuilder) escapePtr(p *types.Var) {
	for x := range b.pts[p] {
		b.escape(x)
	}
}

// lhsVar resolves a simple-identifier assignment target to its local
// variable (Defs for :=, Uses for plain assignment), or nil.
func (b *cellBuilder) lhsVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v := b.local(b.f.Info.Defs[id]); v != nil {
		return v
	}
	return b.local(b.f.Info.Uses[id])
}

// addrOf returns the celled local whose address the expression takes
// (&x, possibly parenthesized), or nil.
func (b *cellBuilder) addrOf(e ast.Expr) *types.Var {
	ue, ok := unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	id, ok := unparen(ue.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return b.celled(b.f.Info.Uses[id])
}

// eachPair walks an assignment's (lhs, rhs) pairs; rhs is nil for every
// target of an unpaired (tuple) assignment.
func eachPair(lhs, rhs []ast.Expr, fn func(l, r ast.Expr)) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			fn(lhs[i], rhs[i])
		}
		return
	}
	for _, l := range lhs {
		fn(l, nil)
	}
}

// pointsTo builds the flow-insensitive may-points-to closure. Direct
// edges come from p = &x; copy edges (q = p) are collected first and
// closed transitively, because q = p may precede p = &x in source order
// while still aliasing at runtime inside a loop.
func (b *cellBuilder) pointsTo() {
	copyEdges := make(map[*types.Var]map[*types.Var]bool) // dst -> srcs
	addPts := func(p, x *types.Var) {
		s := b.pts[p]
		if s == nil {
			s = make(map[*types.Var]bool)
			b.pts[p] = s
		}
		s[x] = true
	}
	record := func(l, r ast.Expr) {
		p := b.lhsVar(l)
		if p == nil || r == nil {
			return
		}
		if x := b.addrOf(r); x != nil {
			addPts(p, x)
			return
		}
		if id, ok := unparen(r).(*ast.Ident); ok {
			if q := b.local(b.f.Info.Uses[id]); q != nil && ptrVar(q) {
				s := copyEdges[p]
				if s == nil {
					s = make(map[*types.Var]bool)
					copyEdges[p] = s
				}
				s[q] = true
			}
		}
	}
	ast.Inspect(b.f.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			eachPair(n.Lhs, n.Rhs, record)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			eachPair(lhs, n.Values, record)
		}
		return true
	})
	// Transitive closure over copy edges; the sets only grow, bounded by
	// #cells × #pointer vars.
	for changed := true; changed; {
		changed = false
		for p, srcs := range copyEdges {
			for q := range srcs {
				for x := range b.pts[q] {
					if !b.pts[p][x] {
						addPts(p, x)
						changed = true
					}
				}
			}
		}
	}
}

// blessRhs marks an alias-creating right-hand side (a blessed &x or a
// pointer copy feeding a simple local target) as handled, so the generic
// cases do not classify it as an escape.
func (b *cellBuilder) blessRhs(r ast.Expr) {
	if r == nil {
		return
	}
	switch e := unparen(r).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND && b.addrOf(r) != nil {
			b.handled[e] = true
			// Taking the address is not a read of the value: bless the
			// inner ident so traversal does not count one.
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				b.handled[id] = true
			}
		}
	case *ast.Ident:
		if p := b.local(b.f.Info.Uses[e]); p != nil && b.pts[p] != nil {
			b.handled[e] = true
		}
	}
}

// assignTarget classifies one (lhs, rhs) pair of an assignment or
// declaration: direct stores to celled vars, may-alias stores through
// *p, and pointer reassignments.
func (b *cellBuilder) assignTarget(l, r ast.Expr, nRhs int, op bool) {
	if v := b.celled(b.lhsVar(l)); v != nil {
		id := unparen(l)
		rhs := r
		tuple := r == nil && nRhs == 1
		if op {
			// x += e reads x, then stores a value the summary does not
			// model (it derives from the old one).
			b.read(v)
			rhs, tuple = nil, false
		}
		b.store(v, CellStore{Pos: l.Pos(), Rhs: rhs, Direct: true, Tuple: tuple})
		b.handled[id] = true
		b.blessRhs(r)
		return
	}
	if p := b.lhsVar(l); p != nil && (ptrVar(p) || b.pts[p] != nil) {
		// Reassigning the pointer itself: not a cell event, and its RHS
		// may create an alias.
		b.handled[unparen(l)] = true
		b.blessRhs(r)
		return
	}
	if se, ok := unparen(l).(*ast.StarExpr); ok {
		if id, ok := unparen(se.X).(*ast.Ident); ok {
			if p := b.local(b.f.Info.Uses[id]); p != nil {
				rhs := r
				tuple := r == nil && nRhs == 1
				if op {
					rhs, tuple = nil, false
				}
				for x := range b.pts[p] {
					if op {
						b.read(x)
					}
					b.store(x, CellStore{Pos: se.Pos(), Rhs: rhs, Tuple: tuple})
				}
				b.handled[se] = true
				b.handled[id] = true
			}
		}
	}
}

// visit is the pass-2 classifier. Any appearance of a celled variable or
// an aliasing pointer in a context the cases below do not bless is an
// escape — unknown uses must never strengthen a must-claim.
func (b *cellBuilder) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		op := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
		// For unpaired assignments the shared source is n.Rhs[0].
		tupleSrc := ast.Expr(nil)
		if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 {
			tupleSrc = n.Rhs[0]
		}
		eachPair(n.Lhs, n.Rhs, func(l, r ast.Expr) {
			if r == nil && tupleSrc != nil {
				b.assignTarget(l, nil, 1, op)
				// Record the shared source on the store just appended.
				if v := b.celled(b.lhsVar(l)); v != nil && !op {
					c := b.cell(v)
					c.Stores[len(c.Stores)-1].Rhs = tupleSrc
				}
				return
			}
			b.assignTarget(l, r, len(n.Rhs), op)
		})

	case *ast.ValueSpec:
		for i, id := range n.Names {
			var r ast.Expr
			switch {
			case len(n.Values) == len(n.Names):
				r = n.Values[i]
			case len(n.Values) == 1:
				r = n.Values[0]
			}
			if v := b.celled(b.f.Info.Defs[id]); v != nil {
				switch {
				case len(n.Values) == 0:
					b.store(v, CellStore{Pos: id.Pos(), Direct: true, Zero: true})
				case len(n.Values) == len(n.Names):
					b.store(v, CellStore{Pos: id.Pos(), Rhs: r, Direct: true})
				default:
					b.store(v, CellStore{Pos: id.Pos(), Rhs: r, Direct: true, Tuple: true})
				}
				b.handled[id] = true
				b.blessRhs(r)
				continue
			}
			if p := b.local(b.f.Info.Defs[id]); p != nil && (ptrVar(p) || b.pts[p] != nil) {
				b.handled[id] = true
				b.blessRhs(r)
			}
		}

	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if v := b.celled(b.f.Info.Uses[id]); v != nil {
				b.read(v)
				b.store(v, CellStore{Pos: id.Pos(), Direct: true})
				b.handled[id] = true
			}
		}

	case *ast.RangeStmt:
		for _, e := range [2]ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := b.celled(b.f.Info.Uses[id]); v != nil {
					b.store(v, CellStore{Pos: id.Pos(), Direct: true})
					b.handled[id] = true
				}
			}
		}

	case *ast.StarExpr:
		// A dereference not consumed as an assignment target is a read
		// through the pointer.
		if b.handled[n] {
			return true
		}
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if p := b.local(b.f.Info.Uses[id]); p != nil {
				for x := range b.pts[p] {
					b.read(x)
				}
				b.handled[id] = true
			}
		}

	case *ast.SelectorExpr:
		// x.M() on a celled x where M has a pointer receiver takes &x
		// implicitly: the address escapes into the method. Field selection
		// and value-receiver methods are plain reads (handled by the
		// ident case).
		if sel, ok := b.f.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if v := b.celled(b.f.Info.Uses[id]); v != nil {
					if m, ok := sel.Obj().(*types.Func); ok {
						if recv := m.Type().(*types.Signature).Recv(); recv != nil {
							_, recvPtr := recv.Type().Underlying().(*types.Pointer)
							_, exprPtr := sel.Recv().Underlying().(*types.Pointer)
							if recvPtr && !exprPtr {
								b.escape(v)
								b.read(v)
								b.handled[id] = true
							}
						}
					}
				}
			}
		}

	case *ast.UnaryExpr:
		// &x in any context the assignment cases did not bless: the
		// address escapes (call argument, return value, composite
		// literal, field store, ...).
		if n.Op == token.AND && !b.handled[n] {
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if v := b.celled(b.f.Info.Uses[id]); v != nil {
					b.escape(v)
					b.handled[id] = true
				}
			}
		}

	case *ast.FuncLit:
		// Everything a closure touches escapes and counts as read: the
		// literal may run at any time, before or after any store.
		ast.Inspect(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			for _, obj := range [2]types.Object{b.f.Info.Uses[id], b.f.Info.Defs[id]} {
				if v := b.celled(obj); v != nil {
					b.escape(v)
					b.read(v)
				}
				if p := b.local(obj); p != nil {
					b.escapePtr(p)
				}
			}
			return true
		})
		return false

	case *ast.Ident:
		if b.handled[n] {
			return true
		}
		if v := b.celled(b.f.Info.Uses[n]); v != nil {
			b.read(v)
		}
		if p := b.local(b.f.Info.Uses[n]); p != nil && b.pts[p] != nil {
			// The pointer itself used in an unblessed context (call
			// argument, return, field store, comparison): everything it
			// may point to escapes.
			b.escapePtr(p)
		}
	}
	return true
}

// ptrVar reports whether v has pointer type (it can participate in the
// alias relation even before anything points anywhere).
func ptrVar(v *types.Var) bool {
	if v == nil {
		return false
	}
	_, ok := v.Type().Underlying().(*types.Pointer)
	return ok
}
