package ir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// FuzzSSABuild hammers CFG/SSA construction with arbitrary parseable Go
// source and checks its invariants: Build never panics, and every function
// that type-checks yields an IR where each block reachable from the entry
// is sealed (dominator assigned, phi edges complete — Sanity's contract).
// Inputs that do not parse or type-check are skipped, not failures: the
// lint driver only ever hands Build type-checked syntax.
func FuzzSSABuild(f *testing.F) {
	seeds := []string{
		`func f() {}`,
		`func f(x int) int {
	if x < 0 {
		x = -x
	}
	return x
}`,
		`func f(xs []int) (total int) {
	for i, x := range xs {
		if x < 0 {
			continue
		}
		total += i * x
	}
	return
}`,
		`func f(n int) int {
	s := 0
	i := 0
loop:
	if i < n {
		s += i
		i++
		goto loop
	}
	return s
}`,
		`func f(v int) string {
	switch {
	case v > 10:
		return "big"
	case v > 5:
		fallthrough
	default:
		return "small"
	}
}`,
		`func f(ch chan int) int {
	select {
	case x := <-ch:
		return x
	default:
		return 0
	}
}`,
		`func f() int {
	x := 1
	defer func() { x = 2 }()
	p := &x
	_ = p
	return x
}`,
		`func f(m map[string]int) {
L:
	for k := range m {
		for i := 0; ; i++ {
			if i > len(k) {
				break L
			}
			if i == 3 {
				continue L
			}
		}
	}
}`,
		`func f() {
	for {
	}
}`,
		`func f(c bool) int {
	if c {
		return 1
	}
	panic("no")
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\n\n" + body
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		// No importer: files that import anything fail the check and skip,
		// keeping the corpus focused on control-flow shapes.
		conf := &types.Config{Error: func(error) {}}
		if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn := Build(info, fd)
			if fd.Body == nil {
				if fn != nil {
					t.Fatalf("Build returned IR for bodyless %s", fd.Name.Name)
				}
				continue
			}
			if fn == nil {
				t.Fatalf("Build(%s) = nil for a function with a body", fd.Name.Name)
			}
			if err := Sanity(fn); err != nil {
				t.Fatalf("Sanity(%s): %v\nsource:\n%s", fd.Name.Name, err, src)
			}
			// Every block node must be positioned inside the declaration —
			// a cheap proxy for "the CFG only contains this function's
			// statements".
			for _, b := range fn.Blocks {
				for _, n := range b.Nodes {
					if n.Pos() < fd.Pos() || n.End() > fd.End() {
						t.Fatalf("%s: block node %T outside the declaration", fd.Name.Name, n)
					}
				}
			}
		}
	})
}
