package ir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Value is one SSA version of a tracked variable: the definition (or
// merge of definitions) that reaches a particular program point.
type Value interface {
	// Var is the source variable the value versions.
	Var() *types.Var
	// String renders the value for diagnostics and tests.
	String() string
}

// Param is the value a parameter, receiver or named result holds on entry
// to the function (named results start at their zero value).
type Param struct {
	V *types.Var
	// Result marks a named result, whose entry value is the zero value
	// rather than a caller-supplied argument.
	Result bool
}

func (p *Param) Var() *types.Var { return p.V }
func (p *Param) String() string {
	if p.Result {
		return "zero(" + p.V.Name() + ")"
	}
	return "param(" + p.V.Name() + ")"
}

// Def is one assignment to a tracked variable.
type Def struct {
	V *types.Var
	// Ident is the left-hand-side identifier being defined.
	Ident *ast.Ident
	// Rhs is the expression assigned, when the assignment pairs one
	// left-hand side with one right-hand side. It is nil for tuple
	// assignments (x, err := f()), range variables, inc/dec statements and
	// zero-valued declarations — Kind tells them apart.
	Rhs ast.Expr
	// Stmt is the statement containing the definition.
	Stmt ast.Node
	// Block is the basic block the definition executes in.
	Block *Block
	// Kind classifies the definition site.
	Kind DefKind
	// Tok is the assignment operator for DefAssign (token.ASSIGN,
	// token.DEFINE, or an op= token).
	Tok token.Token
}

// DefKind classifies a Def site.
type DefKind uint8

const (
	// DefAssign is a plain or op= assignment with a paired Rhs expression
	// (nil Rhs means the value comes from a tuple-returning call).
	DefAssign DefKind = iota
	// DefDecl is a var declaration; Rhs is nil for the zero value.
	DefDecl
	// DefRange is a range key/value variable (fresh each iteration).
	DefRange
	// DefIncDec is an x++ / x-- statement.
	DefIncDec
)

func (d *Def) Var() *types.Var { return d.V }
func (d *Def) String() string  { return fmt.Sprintf("def(%s@b%d)", d.V.Name(), d.Block.Index) }

// Phi merges the values reaching a join block, one edge per predecessor
// (Edges is parallel to Block.Preds).
type Phi struct {
	V     *types.Var
	Block *Block
	Edges []Value
}

func (p *Phi) Var() *types.Var { return p.V }
func (p *Phi) String() string  { return fmt.Sprintf("phi(%s@b%d)", p.V.Name(), p.Block.Index) }

// Unknown is the value of a variable the builder does not track (address
// taken, captured by a closure, implicit pointer-receiver &x) or a use the
// renaming could not reach (unreachable code).
type Unknown struct {
	V      *types.Var
	Reason string
}

func (u *Unknown) Var() *types.Var { return u.V }
func (u *Unknown) String() string  { return "unknown(" + u.V.Name() + ")" }

// ValueAt returns the SSA value reaching the given use identifier, or nil
// when the identifier is not a tracked-variable use.
func (f *Func) ValueAt(id *ast.Ident) Value { return f.uses[id] }

// DefAt returns the Def created at the given defining identifier, or nil.
func (f *Func) DefAt(id *ast.Ident) *Def { return f.defs[id] }

// Defs returns every definition in the function, in deterministic
// (block, program) order.
func (f *Func) Defs() []*Def { return f.allDefs }

// Phis returns every phi value, in deterministic order.
func (f *Func) Phis() []*Phi { return f.allPhis }

// Tracked reports whether v participates in SSA construction. Untracked
// variables (address taken, captured) resolve every use to Unknown.
func (f *Func) Tracked(v *types.Var) bool { return f.tracked[v] }

// ReachingAt returns the value of tracked named result v reaching the
// given return statement (recorded during renaming for naked-return
// reasoning), and whether one was recorded.
func (f *Func) ReachingAt(ret *ast.ReturnStmt, v *types.Var) (Value, bool) {
	val, ok := f.atReturn[ret][v]
	return val, ok
}

// Observed reports whether the value can be read after its definition:
// some identifier use resolves to it, directly or through a chain of phis,
// or it is live at a return statement (named results). A definition whose
// value is never observed is a dead store.
func (f *Func) Observed(v Value) bool { return f.observed[v] }

// buildSSA runs variable discovery, phi placement, renaming and the
// observed-set fixpoint over the already built CFG.
func (f *Func) buildSSA() {
	f.tracked = make(map[*types.Var]bool)
	f.params = make(map[*types.Var]*Param)
	f.uses = make(map[*ast.Ident]Value)
	f.defs = make(map[*ast.Ident]*Def)
	f.observed = make(map[Value]bool)
	f.atReturn = make(map[*ast.ReturnStmt]map[*types.Var]Value)

	f.collectVars()
	defBlocks := f.collectDefSites()
	f.placePhis(defBlocks)
	r := &renamer{f: f, stacks: make(map[*types.Var][]Value), directUse: make(map[Value]bool)}
	r.rename(f.Entry())
	f.computeObserved(r.directUse)
}

// collectVars finds the trackable variables: those declared inside the
// function (parameters, receiver, named results, locals) whose address is
// never taken, that no closure captures, and that never receive an
// implicit &x through a pointer-receiver method call on an addressable
// value.
func (f *Func) collectVars() {
	lo, hi := f.Decl.Pos(), f.Decl.End()
	local := func(obj types.Object) *types.Var {
		v, ok := obj.(*types.Var)
		if !ok || v == nil || v.IsField() || v.Name() == "_" {
			return nil
		}
		if v.Pos() < lo || v.Pos() > hi {
			return nil
		}
		return v
	}

	// Candidates: every variable defined by an identifier inside the
	// declaration (params and results included — their names live in
	// Decl.Type / Decl.Recv).
	ast.Inspect(f.Decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := local(f.Info.Defs[id]); v != nil {
				f.tracked[v] = true
				f.vars = append(f.vars, v)
			}
		}
		return true
	})

	// Disqualifiers.
	drop := func(v *types.Var) {
		if v != nil && f.tracked[v] {
			f.hasUntracked = true
			delete(f.tracked, v)
		}
	}
	ast.Inspect(f.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					drop(local(f.Info.Uses[id]))
					drop(local(f.Info.Defs[id]))
				}
			}
		case *ast.FuncLit:
			// Anything referenced inside a closure escapes SSA tracking:
			// the closure may run at any time (defer included) and read or
			// write the variable. Variables *declared* inside the literal
			// are dropped too — their defs and uses belong to the
			// literal's own CFG, which this Func does not model.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					drop(local(f.Info.Uses[id]))
					drop(local(f.Info.Defs[id]))
				}
				return true
			})
			return false
		case *ast.SelectorExpr:
			// v.M() where M has a pointer receiver and v is an addressable
			// non-pointer: the call takes &v implicitly.
			if sel, ok := f.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if m, ok := sel.Obj().(*types.Func); ok {
					if recv := m.Type().(*types.Signature).Recv(); recv != nil {
						_, recvPtr := recv.Type().Underlying().(*types.Pointer)
						_, exprPtr := sel.Recv().Underlying().(*types.Pointer)
						if recvPtr && !exprPtr {
							if id, ok := unparen(n.X).(*ast.Ident); ok {
								drop(local(f.Info.Uses[id]))
							}
						}
					}
				}
			}
		}
		return true
	})

	// Deterministic variable order for phi placement, tracked only.
	sort.Slice(f.vars, func(i, j int) bool { return f.vars[i].Pos() < f.vars[j].Pos() })
	vars := f.vars[:0]
	seen := make(map[*types.Var]bool)
	for _, v := range f.vars {
		if f.tracked[v] && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	f.vars = vars

	// Entry values for parameters, the receiver and named results.
	sig, ok := f.Info.Defs[f.Decl.Name].(*types.Func)
	if ok {
		s := sig.Type().(*types.Signature)
		if r := s.Recv(); r != nil && f.tracked[r] {
			f.params[r] = &Param{V: r}
		}
		for i := 0; i < s.Params().Len(); i++ {
			if v := s.Params().At(i); f.tracked[v] {
				f.params[v] = &Param{V: v}
			}
		}
		for i := 0; i < s.Results().Len(); i++ {
			if v := s.Results().At(i); f.tracked[v] {
				f.params[v] = &Param{V: v, Result: true}
			}
		}
	}
}

// collectDefSites returns, per tracked variable, the set of blocks that
// define it (phi placement input).
func (f *Func) collectDefSites() map[*types.Var]map[*Block]bool {
	sites := make(map[*types.Var]map[*Block]bool)
	record := func(v *types.Var, b *Block) {
		if v == nil || !f.tracked[v] {
			return
		}
		s := sites[v]
		if s == nil {
			s = make(map[*Block]bool)
			sites[v] = s
		}
		s[b] = true
	}
	entry := f.Entry()
	for v := range f.params {
		record(v, entry)
	}
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			f.eachDef(n, func(id *ast.Ident, _ ast.Expr, _ DefKind, _ token.Token) {
				if v, ok := f.defObj(id); ok {
					record(v, b)
				}
			})
		}
	}
	return sites
}

// defObj resolves a defining identifier to its variable: Defs for :=,
// Uses for plain assignment to an existing variable.
func (f *Func) defObj(id *ast.Ident) (*types.Var, bool) {
	if v, ok := f.Info.Defs[id].(*types.Var); ok && v != nil {
		return v, true
	}
	if v, ok := f.Info.Uses[id].(*types.Var); ok && v != nil {
		return v, true
	}
	return nil, false
}

// eachDef calls fn for every variable-defining identifier directly in node
// n (no recursion into control-flow substructure: block nodes only hold
// straight-line statements, condition expressions and RangeStmt markers).
func (f *Func) eachDef(n ast.Node, fn func(id *ast.Ident, rhs ast.Expr, kind DefKind, tok token.Token)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		paired := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if paired {
				rhs = n.Rhs[i]
			}
			fn(id, rhs, DefAssign, n.Tok)
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			fn(id, nil, DefIncDec, n.Tok)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			paired := len(vs.Names) == len(vs.Values)
			for i, id := range vs.Names {
				if id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if paired {
					rhs = vs.Values[i]
				}
				fn(id, rhs, DefDecl, token.DEFINE)
			}
		}
	case *ast.RangeStmt:
		for _, e := range [2]ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				fn(id, nil, DefRange, n.Tok)
			}
		}
	}
}

// placePhis inserts phi values at the iterated dominance frontier of each
// variable's definition blocks (standard minimal SSA placement).
func (f *Func) placePhis(sites map[*types.Var]map[*Block]bool) {
	for _, v := range f.vars {
		blocks := sites[v]
		if len(blocks) == 0 {
			continue
		}
		work := make([]*Block, 0, len(blocks))
		for b := range blocks {
			work = append(work, b)
		}
		sort.Slice(work, func(i, j int) bool { return work[i].Index < work[j].Index })
		placed := make(map[*Block]bool)
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, d := range b.df {
				if placed[d] {
					continue
				}
				placed[d] = true
				phi := &Phi{V: v, Block: d, Edges: make([]Value, len(d.Preds))}
				d.Phis = append(d.Phis, phi)
				f.allPhis = append(f.allPhis, phi)
				if !blocks[d] {
					blocks[d] = true
					work = append(work, d)
				}
			}
		}
	}
}

// renamer performs the classic dominator-tree renaming walk.
type renamer struct {
	f      *Func
	stacks map[*types.Var][]Value
	// directUse marks values some use identifier resolves to (the seed of
	// the observed fixpoint).
	directUse map[Value]bool
}

func (r *renamer) top(v *types.Var) Value {
	if s := r.stacks[v]; len(s) > 0 {
		return s[len(s)-1]
	}
	return &Unknown{V: v, Reason: "no reaching definition"}
}

func (r *renamer) push(v *types.Var, val Value) int {
	r.stacks[v] = append(r.stacks[v], val)
	return 1
}

// rename processes block b and recurses over its dominator children.
func (r *renamer) rename(b *Block) {
	f := r.f
	pushed := make(map[*types.Var]int)

	if b == f.Entry() {
		for _, v := range f.vars {
			if p, ok := f.params[v]; ok {
				pushed[v] += r.push(v, p)
			}
		}
	}
	for _, phi := range b.Phis {
		pushed[phi.V] += r.push(phi.V, phi)
	}

	for _, n := range b.Nodes {
		r.node(n, b, pushed)
	}

	// Fill phi edges of successors: the value flowing along the b->succ
	// edge is whatever is on top of the stack here.
	for _, s := range b.Succs {
		for _, phi := range s.Phis {
			for i, p := range s.Preds {
				if p == b {
					phi.Edges[i] = r.top(phi.V)
				}
			}
		}
	}

	for _, c := range b.children {
		r.rename(c)
	}

	for v, n := range pushed {
		r.stacks[v] = r.stacks[v][:len(r.stacks[v])-n]
	}
}

// node processes one block node: record uses against the current stacks,
// then push definitions.
func (r *renamer) node(n ast.Node, b *Block, pushed map[*types.Var]int) {
	f := r.f
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			r.uses(rhs)
		}
		opAssign := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if opAssign {
					r.useIdent(id) // x += 1 reads x first
				}
				continue
			}
			r.uses(lhs) // x.f = v, x[i] = v: the base is read
		}
		r.defs(n, b, pushed)
	case *ast.IncDecStmt:
		r.uses(n.X)
		r.defs(n, b, pushed)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						r.uses(val)
					}
				}
			}
		}
		r.defs(n, b, pushed)
	case *ast.RangeStmt:
		// Only the per-iteration key/value defs live here; X was evaluated
		// in a predecessor block and Body has its own blocks.
		r.defs(n, b, pushed)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			r.uses(res)
		}
		// Named results are observed at every return: explicitly via a
		// naked return, implicitly because deferred code may read them.
		sig, ok := f.Info.Defs[f.Decl.Name].(*types.Func)
		if ok {
			s := sig.Type().(*types.Signature)
			for i := 0; i < s.Results().Len(); i++ {
				if v := s.Results().At(i); v.Name() != "" && f.tracked[v] {
					val := r.top(v)
					r.directUse[val] = true
					at := f.atReturn[n]
					if at == nil {
						at = make(map[*types.Var]Value)
						f.atReturn[n] = at
					}
					at[v] = val
				}
			}
		}
	default:
		r.uses(n)
	}
}

// defs pushes the definitions node n makes in block b.
func (r *renamer) defs(n ast.Node, b *Block, pushed map[*types.Var]int) {
	f := r.f
	f.eachDef(n, func(id *ast.Ident, rhs ast.Expr, kind DefKind, tok token.Token) {
		v, ok := f.defObj(id)
		if !ok || !f.tracked[v] {
			return
		}
		d := &Def{V: v, Ident: id, Rhs: rhs, Stmt: n, Block: b, Kind: kind, Tok: tok}
		f.defs[id] = d
		f.allDefs = append(f.allDefs, d)
		pushed[v] += r.push(v, d)
	})
}

// uses records every tracked-variable use identifier inside n against the
// current renaming stacks, skipping nested function literals (whose
// variables are untracked by construction).
func (r *renamer) uses(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			r.useIdent(id)
		}
		return true
	})
}

func (r *renamer) useIdent(id *ast.Ident) {
	if v, ok := r.f.Info.Uses[id].(*types.Var); ok && r.f.tracked[v] {
		val := r.top(v)
		r.f.uses[id] = val
		r.directUse[val] = true
	}
}

// computeObserved closes the direct-use set over phi edges: a definition
// is observed if a use resolves to it or if it flows into an observed phi.
func (f *Func) computeObserved(direct map[Value]bool) {
	for v := range direct {
		f.observed[v] = true
	}
	// Propagate: an edge value of an observed phi is observed. The
	// iteration count is bounded by the number of phis.
	for changed := true; changed; {
		changed = false
		for _, phi := range f.allPhis {
			if !f.observed[phi] {
				continue
			}
			for _, e := range phi.Edges {
				if e != nil && !f.observed[e] {
					f.observed[e] = true
					changed = true
				}
			}
		}
	}
}

func unparen(e ast.Expr) ast.Expr { return ast.Unparen(e) }
