package ir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFor typechecks one file and returns the IR of the named function.
func buildFor(t *testing.T, src, name string) *Func {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cells.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return Build(info, fd)
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// cellByName finds the cell of the named variable.
func cellByName(t *testing.T, fn *Func, name string) *Cell {
	t.Helper()
	for _, c := range fn.Cells() {
		if c.V.Name() == name {
			return c
		}
	}
	t.Fatalf("no cell for %q (cells: %d)", name, len(fn.Cells()))
	return nil
}

// TestCellPointerStore pins the core shape: a local written only through
// &x aliases gets a cell recording both stores, the read, and no escape.
func TestCellPointerStore(t *testing.T) {
	fn := buildFor(t, `package p

func f() int {
	x := 1
	p := &x
	*p = 2
	return x
}
`, "f")
	c := cellByName(t, fn, "x")
	if c.Escaped {
		t.Error("x escaped: &x only ever fed a local pointer")
	}
	if len(c.Stores) != 2 {
		t.Fatalf("stores = %d, want 2 (x := 1 and *p = 2)", len(c.Stores))
	}
	if !c.Stores[0].Direct || c.Stores[1].Direct {
		t.Errorf("store directness = %v, %v; want direct then indirect", c.Stores[0].Direct, c.Stores[1].Direct)
	}
	if c.Reads != 1 {
		t.Errorf("reads = %d, want 1 (return x)", c.Reads)
	}
	// x is untracked by SSA but summarized by the cell.
	if fn.Tracked(c.V) {
		t.Error("address-taken x still SSA-tracked")
	}
}

// TestCellAliasCopyAndTransitivity: a copied pointer aliases the same
// cell, including when the copy precedes the address-take in source.
func TestCellAliasCopyAndTransitivity(t *testing.T) {
	fn := buildFor(t, `package p

func f(cond bool) int {
	x := 0
	var q *int
	for i := 0; i < 2; i++ {
		if q != nil {
			*q = 7
		}
		p := &x
		q = p
	}
	return x
}
`, "f")
	c := cellByName(t, fn, "x")
	stores := 0
	for _, s := range c.Stores {
		if !s.Direct {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("indirect stores = %d, want 1 (*q = 7 reaches x through the copy chain)", stores)
	}
}

// TestCellEscapes enumerates the escape contexts.
func TestCellEscapes(t *testing.T) {
	src := `package p

func sink(p *int)

type box struct{ p *int }

func call() { x := 0; sink(&x) }
func ret() *int { x := 0; return &x }
func field() box { x := 0; return box{p: &x} }
func capt() func() int {
	x := 0
	return func() int { x++; return x }
}
func ptrEscape() {
	x := 0
	p := &x
	sink(p)
}
`
	for _, name := range []string{"call", "ret", "field", "capt", "ptrEscape"} {
		fn := buildFor(t, src, name)
		c := cellByName(t, fn, "x")
		if !c.Escaped {
			t.Errorf("%s: x did not escape", name)
		}
	}
}

// TestCellNoEscapeNoReads: stores through a purely local alias with no
// reads — the dead-store shape unusedwrite narrows its exemption with.
func TestCellNoEscapeNoReads(t *testing.T) {
	fn := buildFor(t, `package p

func f() {
	x := 1
	p := &x
	*p = 2
}
`, "f")
	c := cellByName(t, fn, "x")
	if c.Escaped {
		t.Error("x escaped")
	}
	if c.Reads != 0 {
		t.Errorf("reads = %d, want 0", c.Reads)
	}
	if len(c.Stores) != 2 {
		t.Errorf("stores = %d, want 2", len(c.Stores))
	}
}

// TestCellZeroAndTupleStores pin the store classification used by the
// nil provers (Zero counts as provably zero-valued, Tuple does not).
func TestCellZeroAndTupleStores(t *testing.T) {
	fn := buildFor(t, `package p

func pair() (int, error) { return 0, nil }

func f() error {
	var err error
	p := &err
	_ = p
	_, err = pair()
	return err
}
`, "f")
	c := cellByName(t, fn, "err")
	// _ = p is an unblessed pointer use: conservative escape.
	if !c.Escaped {
		t.Error("err should escape through _ = p (unblessed context)")
	}
	var zero, tuple int
	for _, s := range c.Stores {
		if s.Zero {
			zero++
		}
		if s.Tuple {
			tuple++
		}
	}
	if zero != 1 || tuple != 1 {
		t.Errorf("zero/tuple stores = %d/%d, want 1/1", zero, tuple)
	}
}

// TestCellImplicitReceiver: calling a pointer-receiver method on an
// addressable local takes &x implicitly — the cell must escape.
func TestCellImplicitReceiver(t *testing.T) {
	fn := buildFor(t, `package p

type counter int

func (c *counter) bump() { *c++ }

func f() int {
	var c counter
	c.bump()
	return int(c)
}
`, "f")
	cell := cellByName(t, fn, "c")
	if !cell.Escaped {
		t.Error("implicit &c receiver did not escape the cell")
	}
}

// TestCellOpAssignReads: x += through an alias both reads and stores.
func TestCellOpAssignReads(t *testing.T) {
	fn := buildFor(t, `package p

func f() int {
	x := 1
	p := &x
	*p += 2
	return x
}
`, "f")
	c := cellByName(t, fn, "x")
	if c.Reads != 2 {
		t.Errorf("reads = %d, want 2 (*p += reads, return x reads)", c.Reads)
	}
	if len(c.Stores) != 2 {
		t.Errorf("stores = %d, want 2", len(c.Stores))
	}
	if c.Escaped {
		t.Error("x escaped")
	}
}

// TestTrackedVarsHaveNoCells: SSA-tracked locals never get cells.
func TestTrackedVarsHaveNoCells(t *testing.T) {
	fn := buildFor(t, `package p

func f(a int) int {
	b := a + 1
	return b
}
`, "f")
	if n := len(fn.Cells()); n != 0 {
		t.Errorf("all-tracked function has %d cells", n)
	}
}
