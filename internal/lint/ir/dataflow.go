package ir

import "fmt"

// Edge carries the dataflow fact arriving along one CFG edge, tagged with
// the predecessor it came from — the join hook needs the predecessor
// identity to evaluate phi values (phi edge i belongs to Preds[i]).
type Edge[T any] struct {
	Pred *Block
	Out  T
}

// Forward runs a forward dataflow fixpoint over the reachable blocks of f
// and returns the stable fact at the *entry* of every reachable block.
//
//   - entry is the boundary fact for the entry block.
//   - join merges the facts arriving over the incoming edges of a block
//     (it also evaluates the block's phis, which is why it sees Edges and
//     not a pre-merged value). It is never called for the entry block.
//   - flow transfers a block's entry fact through its Nodes and returns
//     one fact per successor, in Succs order — branch refinement (the
//     nilness analyzer's x == nil splits) is expressed by returning
//     different facts on the true and false edges. Returning fewer facts
//     than successors replicates the last fact (or the input when empty).
//   - equal bounds the iteration: the driver stops when every block's
//     entry fact is stable under it. The lattice must have finite height
//     for the fixpoint to terminate.
//
// Blocks are visited in reverse postorder, which converges in one pass for
// acyclic graphs and quickly for loops. Only predecessors that have been
// visited contribute to a join (the optimistic initial state), so loop
// back edges refine rather than destroy information.
func Forward[T any](f *Func, entry T, join func(b *Block, in []Edge[T]) T, flow func(b *Block, in T) []T, equal func(a, b T) bool) map[*Block]T {
	// Reachable blocks in reverse postorder.
	var order []*Block
	for _, b := range f.Blocks {
		if f.Reachable(b) {
			order = append(order, b)
		}
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j].rpo < order[i].rpo {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	ins := make(map[*Block]T, len(order))
	outs := make(map[*Block][]T, len(order))
	visited := make(map[*Block]bool, len(order))

	succOut := func(p *Block, succIdx int) T {
		o := outs[p]
		switch {
		case succIdx < len(o):
			return o[succIdx]
		case len(o) > 0:
			return o[len(o)-1]
		default:
			return ins[p]
		}
	}

	for round := 0; ; round++ {
		changed := false
		for _, b := range order {
			var in T
			if b == f.Entry() {
				in = entry
			} else {
				var edges []Edge[T]
				for _, p := range b.Preds {
					if !visited[p] {
						continue
					}
					// A predecessor may reach b through several edges
					// (rare, but e.g. degenerate switches); deliver one
					// Edge per matching successor slot.
					for si, s := range p.Succs {
						if s == b {
							edges = append(edges, Edge[T]{Pred: p, Out: succOut(p, si)})
						}
					}
				}
				if len(edges) == 0 {
					continue // no processed predecessor yet
				}
				in = join(b, edges)
			}
			if visited[b] && equal(ins[b], in) {
				continue
			}
			ins[b] = in
			outs[b] = flow(b, in)
			visited[b] = true
			changed = true
		}
		if !changed {
			break
		}
		if round > len(order)*4+100 {
			// Defensive bound: a non-converging lattice is a bug in the
			// caller, not a reason to spin the driver forever.
			break
		}
	}
	return ins
}

// Sanity checks the structural invariants of a built Func; the fuzzer and
// the driver tests rely on it. It verifies that every reachable block is
// sealed: predecessor/successor edges are symmetric, the dominator tree
// covers every reachable block, and each phi has exactly one edge per
// predecessor with a value on every reachable incoming edge.
func Sanity(f *Func) error {
	if f == nil {
		return nil
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function %s has no blocks", f.Decl.Name.Name)
	}
	if !f.Reachable(f.Entry()) {
		return fmt.Errorf("entry block unreachable")
	}
	index := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		index[b] = true
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				return fmt.Errorf("%s has foreign successor %s", b, s)
			}
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("edge %s->%s missing from Preds", b, s)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				return fmt.Errorf("edge %s->%s missing from Succs", p, b)
			}
		}
		if !f.Reachable(b) {
			continue
		}
		if b != f.Entry() {
			if b.idom == nil {
				return fmt.Errorf("reachable block %s has no idom", b)
			}
			if !f.Reachable(b.idom) {
				return fmt.Errorf("idom of %s is unreachable", b)
			}
		}
		for _, phi := range b.Phis {
			if len(phi.Edges) != len(b.Preds) {
				return fmt.Errorf("%s: phi(%s) has %d edges for %d preds", b, phi.V.Name(), len(phi.Edges), len(b.Preds))
			}
			for i, p := range b.Preds {
				if f.Reachable(p) && phi.Edges[i] == nil {
					return fmt.Errorf("%s: phi(%s) missing edge value from reachable pred %s", b, phi.V.Name(), p)
				}
			}
		}
	}
	// Every use and def the renaming recorded must reference a tracked var.
	for id, v := range f.uses {
		if v == nil {
			return fmt.Errorf("use of %s resolved to nil value", id.Name)
		}
	}
	for id, d := range f.defs {
		if d == nil || d.Block == nil {
			return fmt.Errorf("def of %s has no block", id.Name)
		}
	}
	return nil
}
