// Package ir is the value-flow intermediate representation behind the
// SSA-based otem-lint analyzers (detflow, errflow, nilness, unusedwrite).
//
// It is deliberately small and stdlib-only, like the rest of
// repro/internal/lint: the module builds offline with zero third-party
// dependencies, so golang.org/x/tools/go/ssa and go/cfg are off the
// table. What the analyzers actually need is much less than full
// instruction-level SSA — they need to know, for every *use* of a local
// variable, which *definitions* can reach it. Package ir answers exactly
// that question:
//
//   - Build constructs a per-function control-flow graph over the
//     unmodified go/ast statements (if/for/range/switch/select, labels,
//     goto, break/continue, fallthrough), with the convention that a
//     block ending in a condition expression has Succs[0] as its true
//     edge and Succs[1] as its false edge.
//   - Dominators are computed with the Cooper–Harvey–Kennedy iterative
//     algorithm over a reverse postorder, and dominance frontiers follow
//     in the standard way.
//   - SSA form is built at variable granularity: every assignment to a
//     trackable local (parameter, named result, := / = / op= target,
//     range variable) becomes a Def value, phi values are inserted at
//     the iterated dominance frontier of the definition sites, and a
//     renaming walk over the dominator tree maps every use identifier
//     to the Value reaching it. Variables whose address is taken, that
//     are captured by a closure, or that receive an implicit &x through
//     a pointer-receiver method call are excluded from tracking — every
//     use of such a variable resolves to an Unknown value, which keeps
//     the analyses sound at the cost of precision.
//
// On top of the SSA values, Forward is a small forward dataflow fixpoint
// driver: the transfer function returns one fact per successor edge, so
// branch refinements (the nilness analyzer's x == nil splits) fall out
// naturally, and the join hook sees which predecessor each incoming fact
// arrived from, which is what phi evaluation needs.
//
// The representation is per-function and immutable once built; the lint
// driver builds it lazily through Pass.FuncIR and shares one copy across
// every analyzer of a package.
package ir
