package ir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block of a function's control-flow graph. Nodes holds
// the straight-line statements (and branch condition expressions) in
// execution order; control only transfers at the end of the block, along
// Succs.
//
// Convention: a block whose last node is an ast.Expr (an if/for condition)
// and that has exactly two successors branches on that condition, with
// Succs[0] the true edge and Succs[1] the false edge.
type Block struct {
	// Index is the block's position in Func.Blocks (a stable, deterministic
	// identity used for ordering).
	Index int
	// Comment names the construct that created the block ("if.then",
	// "range.head", ...), for tests and debugging.
	Comment string
	// Nodes are the statements and condition expressions of the block, in
	// execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Phis are the SSA phi values placed at the head of this block, one per
	// variable that needs merging here.
	Phis []*Phi

	// dominator data, filled by computeDom for reachable blocks.
	idom     *Block
	children []*Block
	df       []*Block
	rpo      int // reverse-postorder number; -1 when unreachable
}

// Idom returns the immediate dominator (nil for the entry block and for
// unreachable blocks).
func (b *Block) Idom() *Block {
	if b.idom == b {
		return nil
	}
	return b.idom
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Comment) }

// Func is the IR of one function declaration: its CFG, dominator tree and
// SSA values.
type Func struct {
	// Decl is the declaration the IR was built from.
	Decl *ast.FuncDecl
	// Info is the type-checker output the builder resolved identifiers
	// against.
	Info *types.Info
	// Blocks is every basic block, entry first. Unreachable blocks (code
	// after return, empty select arms) are kept but excluded from
	// domination and renaming.
	Blocks []*Block

	// SSA results, filled by buildSSA.
	tracked  map[*types.Var]bool
	params   map[*types.Var]*Param
	uses     map[*ast.Ident]Value
	defs     map[*ast.Ident]*Def
	allDefs  []*Def
	allPhis  []*Phi
	observed map[Value]bool
	vars     []*types.Var // tracked vars in declaration-position order
	// cells summarizes the untracked (address-taken, captured) locals;
	// hasUntracked records whether any candidate variable lost tracking,
	// so cell construction can be skipped for the common all-SSA case.
	cells        map[*types.Var]*Cell
	hasUntracked bool
	// atReturn records, per return statement, the value of each tracked
	// named result reaching it (analyzers prove always-nil naked returns
	// with it).
	atReturn map[*ast.ReturnStmt]map[*types.Var]Value
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Reachable reports whether b is reachable from the entry block.
func (f *Func) Reachable(b *Block) bool { return b.rpo >= 0 }

// builder holds the state of one CFG construction.
type builder struct {
	f      *Func
	cur    *Block // nil once control has transferred (return/branch)
	labels map[string]*labelInfo
	// targets is the innermost break/continue environment.
	targets *targets
	// fallTarget is the next case-clause body, valid while building a
	// switch clause (the destination of a fallthrough statement).
	fallTarget *Block
}

// labelInfo tracks one label: the block the labeled statement starts in
// (created eagerly so forward gotos can reference it) and, when the
// labeled statement is a loop/switch/select, its break and continue
// destinations.
type labelInfo struct {
	start             *Block
	breakB, continueB *Block
}

// targets is one frame of the break/continue environment stack.
type targets struct {
	prev      *targets
	breakB    *Block // valid break destination (loop, switch, select)
	continueB *Block // non-nil only for loops
}

func (b *builder) block(comment string) *Block {
	blk := &Block{Index: len(b.f.Blocks), Comment: comment, rpo: -1}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block statements are flowing into, starting a fresh
// (unreachable) one if control has already transferred.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.block("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.current()
	blk.Nodes = append(blk.Nodes, n)
}

// jump ends the current block with an edge to dst (if control can reach the
// end) and marks control as transferred.
func (b *builder) jump(dst *Block) {
	if b.cur != nil && dst != nil {
		edge(b.cur, dst)
	}
	b.cur = nil
}

func (b *builder) labelInfo(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{start: b.block("label." + name)}
		b.labels[name] = li
	}
	return li
}

// breakTarget resolves an unlabeled break: the innermost enclosing loop,
// switch or select.
func (b *builder) breakTarget() *Block {
	if b.targets != nil {
		return b.targets.breakB
	}
	return nil
}

// continueTarget resolves an unlabeled continue: the innermost enclosing
// loop (switch/select frames are skipped).
func (b *builder) continueTarget() *Block {
	for t := b.targets; t != nil; t = t.prev {
		if t.continueB != nil {
			return t.continueB
		}
	}
	return nil
}

// stmt builds the CFG for one statement. label is the label attached to
// the statement (from an enclosing LabeledStmt), "" otherwise; loops and
// switches register their break/continue blocks on it.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st, "")
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.block("if.then")
		done := b.block("if.done")
		els := done
		if s.Else != nil {
			els = b.block("if.else")
		}
		edge(cond, then)
		edge(cond, els)
		b.cur = then
		b.stmt(s.Body, "")
		b.jump(done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		loop := b.block("for.loop")
		b.jump(loop)
		body := b.block("for.body")
		done := b.block("for.done")
		cont := loop
		var post *Block
		if s.Post != nil {
			post = b.block("for.post")
			cont = post
		}
		if s.Cond != nil {
			loop.Nodes = append(loop.Nodes, s.Cond)
			edge(loop, body)
			edge(loop, done)
		} else {
			edge(loop, body)
		}
		if label != "" {
			li := b.labelInfo(label)
			li.breakB, li.continueB = done, cont
		}
		b.targets = &targets{prev: b.targets, breakB: done, continueB: cont}
		b.cur = body
		b.stmt(s.Body, "")
		b.targets = b.targets.prev
		b.jump(cont)
		if post != nil {
			post.Nodes = append(post.Nodes, s.Post)
			edge(post, loop)
		}
		b.cur = done

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.block("range.head")
		b.jump(head)
		// The RangeStmt node itself sits in the head block, standing for
		// the per-iteration key/value definitions.
		head.Nodes = append(head.Nodes, s)
		body := b.block("range.body")
		done := b.block("range.done")
		edge(head, body)
		edge(head, done)
		if label != "" {
			li := b.labelInfo(label)
			li.breakB, li.continueB = done, head
		}
		b.targets = &targets{prev: b.targets, breakB: done, continueB: head}
		b.cur = body
		b.stmt(s.Body, "")
		b.targets = b.targets.prev
		b.jump(head)
		b.cur = done

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body, label)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body, label)

	case *ast.SelectStmt:
		head := b.current()
		done := b.block("select.done")
		if label != "" {
			li := b.labelInfo(label)
			li.breakB = done
		}
		b.targets = &targets{prev: b.targets, breakB: done}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.block("select.comm")
			edge(head, cb)
			b.cur = cb
			if clause.Comm != nil {
				b.stmt(clause.Comm, "")
			}
			for _, st := range clause.Body {
				b.stmt(st, "")
			}
			b.jump(done)
		}
		b.targets = b.targets.prev
		// A select with no cases blocks forever: done stays unreachable.
		b.cur = done

	case *ast.LabeledStmt:
		li := b.labelInfo(s.Label.Name)
		if b.cur != nil {
			edge(b.cur, li.start)
		}
		b.cur = li.start
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			t := b.breakTarget()
			if s.Label != nil {
				t = b.labelInfo(s.Label.Name).breakB
			}
			b.jump(t)
		case token.CONTINUE:
			t := b.continueTarget()
			if s.Label != nil {
				t = b.labelInfo(s.Label.Name).continueB
			}
			b.jump(t)
		case token.GOTO:
			if s.Label != nil {
				b.jump(b.labelInfo(s.Label.Name).start)
			} else {
				b.cur = nil
			}
		case token.FALLTHROUGH:
			b.jump(b.fallTarget)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.EmptyStmt, *ast.BadStmt:
		// no effect on the graph

	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, sends, go/defer, inc/dec.
		b.add(s)
	}
}

// buildSwitch is the shared expression/type switch construction: the init
// statement, tag expression (or type-switch assign) and every case guard
// expression evaluate in the head block; each clause body is a successor
// of the head, with fallthrough edges between consecutive bodies; a switch
// without a default keeps a direct head->done edge.
func (b *builder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init, "")
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.current()
	done := b.block("switch.done")
	if label != "" {
		li := b.labelInfo(label)
		li.breakB = done
	}

	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		if clause, ok := cc.(*ast.CaseClause); ok {
			clauses = append(clauses, clause)
		}
	}
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i, clause := range clauses {
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			head.Nodes = append(head.Nodes, e)
		}
		bodies[i] = b.block("switch.case")
		edge(head, bodies[i])
	}
	if !hasDefault {
		edge(head, done)
	}

	b.targets = &targets{prev: b.targets, breakB: done}
	savedFall := b.fallTarget
	for i, clause := range clauses {
		if i+1 < len(bodies) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = nil
		}
		b.cur = bodies[i]
		for _, st := range clause.Body {
			b.stmt(st, "")
		}
		b.jump(done)
	}
	b.fallTarget = savedFall
	b.targets = b.targets.prev
	b.cur = done
}

// Build constructs the CFG, dominator tree and SSA form for one function
// declaration. It returns nil for declarations without a body (external
// linkage stubs). The result is immutable; callers share it freely.
func Build(info *types.Info, fd *ast.FuncDecl) *Func {
	if fd == nil || fd.Body == nil || info == nil {
		return nil
	}
	f := &Func{Decl: fd, Info: info}
	b := &builder{f: f, labels: make(map[string]*labelInfo)}
	entry := b.block("entry")
	b.cur = entry
	b.stmt(fd.Body, "")
	f.computeDom()
	f.buildSSA()
	f.buildCells()
	return f
}
