package ir

// Dominator computation: the Cooper–Harvey–Kennedy iterative algorithm
// over a reverse postorder, followed by the standard dominance-frontier
// pass. Only blocks reachable from the entry participate; unreachable
// blocks keep rpo == -1 and a nil idom, and the SSA renaming skips them.

func (f *Func) computeDom() {
	entry := f.Entry()

	// Depth-first postorder over successor edges.
	var post []*Block
	seen := make([]bool, len(f.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)

	// Reverse-postorder numbering; rpo stays -1 on unreachable blocks.
	rpo := make([]*Block, len(post))
	for i := range post {
		b := post[len(post)-1-i]
		b.rpo = i
		rpo[i] = b
	}

	// Iterative idom fixpoint. The entry is its own idom (the sentinel the
	// intersection walk terminates on); Idom() reports it as nil.
	entry.idom = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var idom *Block
			for _, p := range b.Preds {
				if p.idom == nil {
					continue // unreachable or not yet processed
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.idom != idom {
				b.idom = idom
				changed = true
			}
		}
	}

	// Dominator-tree children, in deterministic block order.
	for _, b := range rpo {
		if b != entry && b.idom != nil {
			b.idom.children = append(b.idom.children, b)
		}
	}

	// Dominance frontiers (Cytron et al.): a join block b belongs to the
	// frontier of every block on the idom chain from each predecessor up
	// to (exclusive) b's idom.
	for _, b := range rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if p.idom == nil {
				continue
			}
			for r := p; r != b.idom; r = r.idom {
				if !containsBlock(r.df, b) {
					r.df = append(r.df, b)
				}
				if r == r.idom { // entry: cannot walk further up
					break
				}
			}
		}
	}
}

// intersect walks two blocks up the (partially built) dominator tree to
// their common ancestor, comparing reverse-postorder numbers.
func intersect(a, b *Block) *Block {
	for a != b {
		for a.rpo > b.rpo {
			a = a.idom
		}
		for b.rpo > a.rpo {
			b = b.idom
		}
	}
	return a
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
