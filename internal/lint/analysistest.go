package lint

import (
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture is the analysistest-style harness: it loads the fixture
// package at testdata/src/<name> (relative to the caller's directory),
// runs exactly one analyzer over it, and checks the findings against
// `// want` expectations embedded in the fixture sources.
//
// An expectation is a comment of the form
//
//	// want `regexp` `regexp` ...
//
// attached to the offending line; each back-quoted (or double-quoted)
// regexp must match the message of one distinct finding reported on that
// line. Lines without a want comment must produce no findings, and every
// finding must be claimed by an expectation — both directions fail the
// test, exactly like golang.org/x/tools/go/analysis/analysistest.
func RunFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	// `go list` skips testdata directories during wildcard expansion, so
	// enumerate every fixture sub-package explicitly.
	patterns, err := fixturePatterns(dir)
	if err != nil {
		t.Fatalf("scanning fixture %s: %v", name, err)
	}
	if len(patterns) == 0 {
		t.Fatalf("fixture %s has no Go packages", name)
	}
	mod, err := Load("", patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(mod.Packages) == 0 {
		t.Fatalf("fixture %s matched no packages", name)
	}

	findings := mod.Run([]*Analyzer{a})

	wants := collectWants(t, mod)
	// Index findings by file:line for matching.
	used := make([]bool, len(findings))
	for _, w := range wants {
		matched := false
		for i, f := range findings {
			if used[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no finding matching %q (analyzer %s)", w.file, w.line, w.re, a.Name)
		}
	}
	for i, f := range findings {
		if !used[i] {
			t.Errorf("%s: unexpected finding: %s", a.Name, f)
		}
	}
}

// fixturePatterns lists every directory under root that contains Go
// files, as explicit ./-relative go list patterns.
func fixturePatterns(root string) ([]string, error) {
	dirs := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for d := range dirs {
		out = append(out, "./"+filepath.ToSlash(d))
	}
	sort.Strings(out)
	return out, nil
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants extracts `// want ...` comments from every file of every
// loaded package.
func collectWants(t *testing.T, mod *Module) []want {
	t.Helper()
	var out []want
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Both comment forms carry expectations; the block
					// form is for lines whose line comment is already a
					// //lint: directive under test.
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						text, ok = strings.CutPrefix(c.Text, "/* want ")
						if !ok {
							continue
						}
						text = strings.TrimSuffix(text, "*/")
					}
					pos := mod.Fset.Position(c.Pos())
					n := 0
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						pat := m[1]
						if m[2] != "" {
							// Double-quoted: unescape like a Go string.
							s, err := strconv.Unquote(`"` + m[2] + `"`)
							if err != nil {
								t.Fatalf("%s: bad want pattern %q: %v", pos, m[2], err)
							}
							pat = s
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
						n++
					}
					if n == 0 {
						t.Fatalf("%s: want comment with no parsable patterns: %s", pos, c.Text)
					}
				}
			}
		}
	}
	return out
}
