package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detrandScopes are the package-path suffixes where determinism is a
// tested invariant: the 1-vs-8-worker sweep-determinism test requires the
// physics (sim), the controller (mpc) and the policy layer to be pure
// functions of their seeds and inputs, the fleet simulator promises
// bit-identical sketches at any worker count, and the hierarchical
// planner's outer plans are cache keys (POST /v1/plan) — the same spec
// must solve to the same plan forever. The storage kernels (hees,
// battery) carry the batched rollout's bit-identity contract: the
// lockstep bus solver and the prepared battery step must reproduce the
// scalar path exactly, which no wall-clock or global-source draw may
// perturb.
var detrandScopes = []string{
	"internal/sim", "internal/mpc", "internal/policy", "internal/fleet",
	"internal/hmpc", "internal/hees", "internal/battery",
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. rand.New / rand.NewSource construct seeded,
// injectable generators and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions, same hazard.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true,
}

// DetRand forbids nondeterminism sources in the deterministic core.
//
// Replaying a route must be bit-identical regardless of worker count or
// wall clock: the golden-file experiments and the sweep-determinism test
// depend on it. Inside internal/sim, internal/mpc and internal/policy the
// global math/rand source and time.Now are therefore banned; randomness
// must arrive as a seeded *rand.Rand and time as plant/step state.
// internal/fleet joins the scope: its parallel-identity test promises
// bit-identical sketches at any worker count, so every draw must come
// from the per-vehicle seeded generator. internal/hmpc joins too: its
// outer plans are golden-pinned and served from a canonical-spec-keyed
// cache, which is only sound if planning is a pure function of the spec.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: `forbid global math/rand and time.Now in deterministic packages

internal/sim, internal/mpc, internal/policy, internal/fleet and
internal/hmpc must be replayable:
identical seeds and inputs give identical traces whether the batch runs
on 1 worker or 8. The global math/rand source is shared mutable state
across goroutines, and time.Now leaks the wall clock into physics. Use a
seeded *rand.Rand threaded through the call (rand.New(rand.NewSource(s)))
and simulated time from the plant state.`,
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	if !inDetrandScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand have
			// a receiver and are the sanctioned replacement.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "global math/rand source (%s.%s) in deterministic package %s; thread a seeded *rand.Rand instead", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now in deterministic package %s; derive time from simulated step state instead", pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

func inDetrandScope(path string) bool {
	for _, s := range detrandScopes {
		if path == "repro/"+s || strings.HasSuffix(path, "/"+s) || strings.Contains(path, "/"+s+"/") {
			return true
		}
	}
	return false
}
