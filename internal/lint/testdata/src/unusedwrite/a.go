// Package unusedwrite exercises dead-store detection on the SSA
// observedness fixpoint: writes no path reads are reported, loop-carried
// and address-taken values are not.
package unusedwrite

import "errors"

func compute() int { return 42 }

func mayFail() error { return errors.New("x") }

// The initializer's value is overwritten on every path before a read.
func deadInitializer() int {
	x := compute() // want `value assigned to x is never read`
	x = compute()
	return x
}

// A plain assignment to a parameter is dead when re-assigned unread.
func overwrittenParam(n int) int {
	n = 10 // want `value assigned to n is never read`
	n = 20
	return n
}

// A trailing increment computes a value nothing observes.
func deadTrailingIncrement(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	count := len(xs)
	count++ // want `result of count\+\+ is never read; the counter is dead`
	return total
}

// Loop-carried values are observed through phis: n's increment feeds the
// next iteration and the return, so nothing here is dead.
func loopCarried(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// A plain declaration is not a write; the first real assignment is live.
func declThenAssign() int {
	var x int
	x = 7
	return x
}

// Address-taken variables leave SSA tracking: writes may be read through
// the pointer, so the analyzer stays silent.
func addressTaken() int {
	x := 1
	p := &x
	x = 2
	return *p
}

// Dead error stores belong to errflow (with its always-nil exemptions);
// unusedwrite never double-reports them.
func errorStoreExempt() error {
	err := mayFail()
	err = nil
	return err
}

// The historical address-taken exemption is narrowed by the cell
// summaries: when the address never escapes and no path reads the
// variable — directly or through any alias — every store is dead,
// including the ones through the pointer.
func addressTakenDead() int {
	x := 1 // want `value assigned to x is never read; no path reads it directly or through its pointer aliases`
	p := &x
	*p = 2 // want `value stored to x through a pointer is never read`
	x = 3  // want `value assigned to x is never read; no path reads it directly or through its pointer aliases`
	return 0
}

// Once the address escapes, writes may be observed by whoever holds the
// pointer; the exemption stands and nothing is reported.
func addressTakenEscapes(sink func(*int)) {
	x := 1
	sink(&x)
	x = 2
}
