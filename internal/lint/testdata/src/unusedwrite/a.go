// Package unusedwrite exercises dead-store detection on the SSA
// observedness fixpoint: writes no path reads are reported, loop-carried
// and address-taken values are not.
package unusedwrite

import "errors"

func compute() int { return 42 }

func mayFail() error { return errors.New("x") }

// The initializer's value is overwritten on every path before a read.
func deadInitializer() int {
	x := compute() // want `value assigned to x is never read`
	x = compute()
	return x
}

// A plain assignment to a parameter is dead when re-assigned unread.
func overwrittenParam(n int) int {
	n = 10 // want `value assigned to n is never read`
	n = 20
	return n
}

// A trailing increment computes a value nothing observes.
func deadTrailingIncrement(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	count := len(xs)
	count++ // want `result of count\+\+ is never read; the counter is dead`
	return total
}

// Loop-carried values are observed through phis: n's increment feeds the
// next iteration and the return, so nothing here is dead.
func loopCarried(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// A plain declaration is not a write; the first real assignment is live.
func declThenAssign() int {
	var x int
	x = 7
	return x
}

// Address-taken variables leave SSA tracking: writes may be read through
// the pointer, so the analyzer stays silent.
func addressTaken() int {
	x := 1
	p := &x
	x = 2
	return *p
}

// Dead error stores belong to errflow (with its always-nil exemptions);
// unusedwrite never double-reports them.
func errorStoreExempt() error {
	err := mayFail()
	err = nil
	return err
}
