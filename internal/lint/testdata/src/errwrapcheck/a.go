// Package errwrapcheck exercises both errwrapcheck rules: %w wrapping in
// fmt.Errorf and errors.Is for sentinel comparisons.
package errwrapcheck

import (
	"errors"
	"fmt"
)

var ErrSentinel = errors.New("sentinel")

type codeError struct{ code int }

func (e *codeError) Error() string { return fmt.Sprintf("code %d", e.code) }

func wrapV(err error) error {
	return fmt.Errorf("replan failed: %v", err) // want `error formatted with %v in fmt.Errorf`
}

func wrapS(err error) error {
	return fmt.Errorf("replan failed: %s", err) // want `error formatted with %s in fmt.Errorf`
}

func wrapQ(err error) error {
	return fmt.Errorf("replan failed: %q", err) // want `error formatted with %q in fmt.Errorf`
}

func wrapConcrete(e *codeError) error {
	return fmt.Errorf("replan failed: %v", e) // want `error formatted with %v in fmt.Errorf`
}

func wrapStarWidth(err error, w int) error {
	// The * width consumes an argument; the %v still binds err.
	return fmt.Errorf("%*d: %v", w, 7, err) // want `error formatted with %v in fmt.Errorf`
}

func wrapIndexed(err error) error {
	return fmt.Errorf("%[2]s before %[1]v", err, "ctx") // want `error formatted with %v in fmt.Errorf`
}

func compareSentinel(err error) bool {
	return err == ErrSentinel // want `error compared with ==`
}

func compareNE(err, other error) bool {
	return err != other // want `error compared with !=`
}
