package errwrapcheck

import (
	"errors"
	"fmt"
)

func wrapW(err error) error {
	return fmt.Errorf("replan failed: %w", err) // %w keeps the chain
}

func wrapTwo(a, b error) error {
	return fmt.Errorf("both failed: %w / %w", a, b) // multiple %w is fine (go1.20+)
}

func formatValue(step int, soc float64) error {
	return fmt.Errorf("step %d infeasible at soc %.3f", step, soc) // no error args
}

func wrapMessage(err error) error {
	return fmt.Errorf("note %q: %w", err.Error(), err) // the string is not an error value
}

func nilChecks(err error) bool {
	if err == nil { // nil comparisons stay idiomatic
		return false
	}
	return errors.Is(err, ErrSentinel) // the sanctioned sentinel test
}
