package floatcompare

const eps = 1e-9

func clean(n, m int, a float64, s string) bool {
	if n == m { // integers compare exactly
		return true
	}
	if s == "x" { // strings too
		return true
	}
	if a != a { // the portable NaN test is allowed
		return true
	}
	const half = 0.5
	if half == 0.25+0.25 { // two constants fold at compile time
		return true
	}
	return a-0.5 < eps // ordered comparisons are fine
}
