// Package floatcompare exercises the floatcompare analyzer: every
// flagged line carries a want expectation; clean.go holds the allowed
// forms.
package floatcompare

type state struct {
	soc  float64
	temp float64
}

type pair struct{ x, y float64 }

func bad(a, b float64, s state) bool {
	if a == b { // want `floating-point comparison with ==`
		return true
	}
	if s.soc != 0 { // want `floating-point comparison with !=`
		return true
	}
	var f float32
	if f == 1.5 { // want `floating-point comparison with ==`
		return true
	}
	var p, q pair
	if p == q { // want `floating-point comparison with ==`
		return true
	}
	var c complex128
	if c == 0 { // want `floating-point comparison with ==`
		return true
	}
	var arr1, arr2 [3]float64
	return arr1 == arr2 // want `floating-point comparison with ==`
}

type kelvin float64

func named(t kelvin) bool {
	return t == 273.15 // want `floating-point comparison with ==`
}
