// Package nilness exercises guaranteed-nil dereference and decided nil
// check detection through the branch-refined value flow.
package nilness

type node struct {
	next *node
	val  int
}

// The classic shape: using the pointer inside its own nil branch.
func derefInNilBranch(n *node) int {
	if n == nil {
		return n.val // want `field access through nil pointer n: it is always nil here`
	}
	return n.val
}

// Branch refinement flows into nested blocks: inside n != nil the value
// is proven non-nil, so re-checking it is dead code.
func redundantAfterCheck(n *node) int {
	if n != nil {
		if n == nil { // want `redundant nil check: n is never nil here`
			return 0
		}
		return n.val
	}
	return -1
}

// A fresh address is inherently non-nil.
func freshAddress() int {
	m := &node{val: 3}
	if m == nil { // want `redundant nil check: m is never nil here`
		return 0
	}
	return m.val
}

// A zero-valued declaration is provably nil until assigned; the check
// always takes the true arm, and the false edge (where the value would be
// non-nil) keeps the fall-through dereference silent.
func zeroDecl() int {
	var p *node
	if p == nil { // want `nil check is always true: p is always nil here`
		return 0
	}
	return p.val
}

func starDeref() int {
	var p *int
	return *p // want `dereference of nil pointer p: it is always nil here`
}

func nilSliceIndex() int {
	var s []int
	return s[0] // want `index of nil slice s: it is always nil here`
}

func nilFuncCall() {
	var f func()
	f() // want `call of nil function f: it is always nil here`
}

// The phi meet proves non-nil when every reaching definition agrees.
func phiNonNil(a bool) int {
	var p *node
	if a {
		p = &node{val: 1}
	} else {
		p = &node{val: 2}
	}
	if p == nil { // want `redundant nil check: p is never nil here`
		return 0
	}
	return p.val
}

// Disagreeing edges meet to unknown: a possibly-nil value is silent, both
// at the (genuinely useful) check and at the guarded dereference.
func possiblyNil(a bool) int {
	p := &node{val: 1}
	if a {
		p = nil
	}
	if p == nil {
		return 0
	}
	return p.val
}

// Method values on nil pointers are legal until called; only field
// selection dereferences.
func methodValue() func() int {
	var n *node
	return n.grab
}

func (n *node) grab() int {
	if n == nil {
		return 0
	}
	return n.val
}

// Suppression applies to SSA-based findings exactly as to syntactic ones.
func suppressed(n *node) int {
	if n == nil {
		//lint:ignore nilness fixture: documenting the panic a caller would see
		return n.val
	}
	return n.val
}

// cellAlwaysNil stays provably nil even though its address is taken: the
// zero value and the store through the alias agree on nil, and the
// address never escapes, so the dereference is still caught.
func cellAlwaysNil() int {
	var p *int
	q := &p
	*q = nil
	return *p // want `dereference of nil pointer p: it is always nil here`
}

// cellAssignedNonNil is written non-nil through its alias; the stores
// disagree, the cell state is unknown, and nothing is reported.
func cellAssignedNonNil(x *int) int {
	var p *int
	q := &p
	*q = x
	if p == nil {
		return 0
	}
	return *p
}

// cellEscapes loses the proof the moment the address leaves the
// function: whatever holds the pointer may write through it.
func cellEscapes(sink func(**int)) int {
	var p *int
	sink(&p)
	if p == nil {
		return 0
	}
	return *p
}
