// Package runner stands in for repro/internal/runner (matched by path
// suffix): the pool itself is the one place allowed to spawn goroutines.
package runner

func spawn(f func()) {
	done := make(chan struct{})
	go func() { // allowed: this is the bounded pool's own machinery
		defer close(done)
		f()
	}()
	<-done
}
