// Package other is any package that is not the worker pool: go
// statements here must be flagged.
package other

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // want `naked go statement outside internal/runner`
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func fire(f func()) {
	go f() // want `naked go statement outside internal/runner`
}
