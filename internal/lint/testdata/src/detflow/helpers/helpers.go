// Package helpers sits outside the deterministic scope: nothing here is
// reported, but the analyzer must export NondetFacts describing which of
// these functions reach nondeterminism, for the sim fixture to consume.
package helpers

import (
	"math/rand"
	"time"
)

// Jitter reaches time.Now directly.
func Jitter() float64 {
	return float64(time.Now().UnixNano() % 7)
}

// Draw reaches the global math/rand source directly.
func Draw() float64 {
	return rand.Float64()
}

// Wrap reaches nondeterminism only through a same-package call.
func Wrap() float64 {
	return Jitter() + 1
}

// DoubleWrap is two hops away from time.Now.
func DoubleWrap() float64 {
	return Wrap() * 2
}

// Pure is deterministic; calling it anywhere is fine.
func Pure(x float64) float64 {
	return x * x
}

// Unit is deterministic and shares Jitter's signature, so the two can
// flow into the same function-typed variable in the sim fixture.
func Unit() float64 {
	return 1
}

// Clock smuggles the wall clock behind a function-typed package variable:
// the analyzer must export a TaintFact for it, so deterministic packages
// that copy it into a field and call it later are still caught.
var Clock = time.Now

// GlobalRNG hands out a generator seeded from the wall clock. The
// *function* carries a NondetFact, and any field the result is stored
// into carries a TaintFact.
func GlobalRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Seeded uses the sanctioned replacement: methods on a seeded *rand.Rand
// carry a receiver and are not nondeterministic.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Ticker carries the wall clock in a function-typed field; the stored
// taint is exported keyed by the owning type (Ticker.Src).
type Ticker struct {
	Src func() float64
}

// NewTicker stores the nondeterministic source.
func NewTicker() *Ticker {
	return &Ticker{Src: Jitter}
}

// Counter spells its field exactly like Ticker's, but stores a
// deterministic source: under type-qualified fact keys the two fields
// never share taint.
type Counter struct {
	Src func() float64
}

// NewCounter stores the deterministic source.
func NewCounter() *Counter {
	return &Counter{Src: Unit}
}
