// Package helpers sits outside the deterministic scope: nothing here is
// reported, but the analyzer must export NondetFacts describing which of
// these functions reach nondeterminism, for the sim fixture to consume.
package helpers

import (
	"math/rand"
	"time"
)

// Jitter reaches time.Now directly.
func Jitter() float64 {
	return float64(time.Now().UnixNano() % 7)
}

// Draw reaches the global math/rand source directly.
func Draw() float64 {
	return rand.Float64()
}

// Wrap reaches nondeterminism only through a same-package call.
func Wrap() float64 {
	return Jitter() + 1
}

// DoubleWrap is two hops away from time.Now.
func DoubleWrap() float64 {
	return Wrap() * 2
}

// Pure is deterministic; calling it anywhere is fine.
func Pure(x float64) float64 {
	return x * x
}

// Seeded uses the sanctioned replacement: methods on a seeded *rand.Rand
// carry a receiver and are not nondeterministic.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
