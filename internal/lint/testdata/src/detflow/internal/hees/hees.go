// Package hees stands in for the storage kernels: its import path ends in
// internal/hees, so calls that transitively reach nondeterminism must be
// reported here — the lockstep bus solver's bit-identity contract cannot
// survive a wall-clock or global-source draw hiding behind a helper.
package hees

import (
	"repro/internal/lint/testdata/src/detflow/helpers"
)

// BracketSlack widens the bisection bracket by a globally-drawn epsilon,
// one package hop away from the global source.
func BracketSlack(hi float64) float64 {
	return hi + 1e-9*helpers.Draw() // want `call to nondeterministic Draw`
}

// ConvergenceBudget keys the iteration cap on the wall clock, two hops
// from time.Now.
func ConvergenceBudget() float64 {
	return helpers.DoubleWrap() // want `call to nondeterministic DoubleWrap`
}

// SolveLane is deterministic end to end: pure arithmetic through a helper
// carries no NondetFact, so nothing is reported.
func SolveLane(vb, rb float64) float64 {
	return helpers.Pure(vb) / rb
}
