// Package fleet stands in for the fleet simulator: its import path ends
// in internal/fleet, so calls that transitively reach nondeterminism must
// be reported here — even when the global-source use hides in another
// package. Seeded per-vehicle generators pass.
package fleet

import (
	"math/rand"
	"time"

	"repro/internal/lint/testdata/src/detflow/helpers"
)

// Ambient reaches the global math/rand source through the helper package.
func Ambient() float64 {
	return 265 + helpers.Draw() // want `call to nondeterministic Draw`
}

// Plugged reaches time.Now two cross-package hops away.
func Plugged() bool {
	return helpers.Wrap() > 0 // want `call to nondeterministic Wrap`
}

// Roll is deterministic end to end: the per-vehicle generator is seeded,
// so the cross-package call carries no NondetFact.
func Roll(vehicle int64) float64 {
	return helpers.Seeded(vehicle) + helpers.Pure(2)
}

// vehicle mirrors internal/fleet's per-vehicle state: the generator lives
// in a struct field and is seeded from the vehicle index through a
// SplitMix64 finalizer. The value flow proves every draw deterministic,
// so nothing below is reported.
type vehicle struct {
	rng *rand.Rand
}

// vehicleSeed is the SplitMix64 finalizer internal/fleet uses to give
// every vehicle an independent, reproducible stream.
func vehicleSeed(seed int64, index int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

func newVehicle(seed int64, index int) *vehicle {
	return &vehicle{rng: rand.New(rand.NewSource(vehicleSeed(seed, index)))}
}

// Draw pulls from the seeded per-vehicle generator through the struct
// field: clean, because the stored value's provenance is a constant seed.
func (v *vehicle) Draw() float64 {
	return v.rng.Float64()
}

// smuggled launders the wall clock through struct fields: a purely
// call-graph analysis loses the trail at the store, but the value flow
// keeps it.
type smuggled struct {
	rng *rand.Rand
	now func() time.Time
}

func newSmuggled() *smuggled {
	return &smuggled{
		rng: helpers.GlobalRNG(), // want `call to nondeterministic GlobalRNG`
		now: helpers.Clock,
	}
}

// Sample draws from the smuggled wall-clock-seeded generator.
func (s *smuggled) Sample() float64 {
	return s.rng.Float64() // want `call to Float64 on a nondeterministically derived receiver`
}

// Stamp calls the wall clock through the function-typed field.
func (s *smuggled) Stamp() time.Time {
	return s.now() // want `call through nondeterministic function value`
}

// twin spells its generator field exactly like smuggled's tainted one.
// Field facts are keyed by receiver type (Type.Field), not bare field
// name, so smuggled's taint must not bleed over: twin's seeded generator
// draws cleanly.
type twin struct {
	rng *rand.Rand
	now func() time.Time
}

func newTwin(seed int64) *twin {
	return &twin{
		rng: rand.New(rand.NewSource(seed)),
		now: simulatedClock,
	}
}

// simulatedClock is a deterministic stand-in sharing helpers.Clock's
// signature.
func simulatedClock() time.Time { return time.Time{} }

// Sample draws from the seeded generator through the same-named field:
// no finding, the taint belongs to smuggled.rng alone.
func (t *twin) Sample() float64 {
	return t.rng.Float64()
}

// Stamp calls through the same-named function field: clean for twin.
func (t *twin) Stamp() int64 {
	return t.now().UnixNano()
}

// useTicker calls through the imported tainted field: the TaintFact
// (keyed Ticker.Src) crosses the package boundary.
func useTicker(tk *helpers.Ticker) float64 {
	return tk.Src() // want `call through nondeterministic function value`
}

// useCounter calls through the same-named field of the other type: the
// type-qualified key keeps Counter.Src clean, so no finding.
func useCounter(c *helpers.Counter) float64 {
	return c.Src()
}
