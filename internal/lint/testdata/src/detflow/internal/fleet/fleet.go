// Package fleet stands in for the fleet simulator: its import path ends
// in internal/fleet, so calls that transitively reach nondeterminism must
// be reported here — even when the global-source use hides in another
// package. Seeded per-vehicle generators pass.
package fleet

import "repro/internal/lint/testdata/src/detflow/helpers"

// Ambient reaches the global math/rand source through the helper package.
func Ambient() float64 {
	return 265 + helpers.Draw() // want `call to nondeterministic Draw`
}

// Plugged reaches time.Now two cross-package hops away.
func Plugged() bool {
	return helpers.Wrap() > 0 // want `call to nondeterministic Wrap`
}

// Roll is deterministic end to end: the per-vehicle generator is seeded,
// so the cross-package call carries no NondetFact.
func Roll(vehicle int64) float64 {
	return helpers.Seeded(vehicle) + helpers.Pure(2)
}
