// Package sim stands in for the deterministic core: its import path ends
// in internal/sim, so calls that transitively reach nondeterminism must be
// reported here.
package sim

import "repro/internal/lint/testdata/src/detflow/helpers"

// Step calls straight into a function that uses time.Now one package away.
func Step(x float64) float64 {
	return x + helpers.Jitter() // want `call to nondeterministic Jitter`
}

// Step2 is caught through two cross-package hops.
func Step2(x float64) float64 {
	return x + helpers.Wrap() // want `call to nondeterministic Wrap`
}

// Step3 is caught through three hops.
func Step3(x float64) float64 {
	return x + helpers.DoubleWrap() // want `call to nondeterministic DoubleWrap`
}

// Roll reaches the global math/rand source through the helper package.
func Roll() float64 {
	return helpers.Draw() // want `call to nondeterministic Draw`
}

// local funnels nondeterminism inside this package; the cross-package call
// in its body is reported, and callers of local are reported too.
func local() float64 {
	return helpers.Jitter() // want `call to nondeterministic Jitter`
}

// Step4 calls the local funnel.
func Step4(x float64) float64 {
	return x + local() // want `call to nondeterministic local`
}

// Fine is deterministic end to end.
func Fine(x float64) float64 {
	return helpers.Pure(x) + helpers.Seeded(42)
}

// pick launders nondeterminism through a function-typed local: the SSA phi
// joining the two branches carries the tainted arm to the call site.
func pick(fast bool) float64 {
	f := helpers.Unit
	if fast {
		f = helpers.Jitter
	}
	return f() // want `call through nondeterministic function value`
}

// alias launders through a chain of local copies; use-def chains resolve
// h back to the global-source helper.
func alias() float64 {
	g := helpers.Draw
	h := g
	return h() // want `call through nondeterministic function value`
}

// closure launders through a function literal: the literal's body reaches
// the global source, so the variable holding it is tainted.
func closure() float64 {
	f := func() float64 {
		return helpers.Draw() // want `call to nondeterministic Draw`
	}
	return f() // want `call through nondeterministic function value`
}

// pointerLaunder stores a tainted function value through a pointer to an
// address-taken local; the cell summary resolves the indirect store, so
// the call through f is still caught.
func pointerLaunder() float64 {
	f := helpers.Unit
	p := &f
	*p = helpers.Jitter
	return f() // want `call through nondeterministic function value`
}

// pointerClean writes only deterministic values through the alias: the
// address-taken local stays clean and the call is not reported.
func pointerClean() float64 {
	f := helpers.Unit
	p := &f
	*p = helpers.Unit
	return f()
}
