// Package hmpc stands in for the hierarchical planner: its import path
// ends in internal/hmpc, so calls that transitively reach nondeterminism
// must be reported here — the plan cache keys on the canonical spec, and
// a plan influenced by the wall clock or the global source would poison
// every consumer of that key.
package hmpc

import (
	"math/rand"

	"repro/internal/lint/testdata/src/detflow/helpers"
)

// PreviewNoise reaches the global math/rand source through the helper
// package: a laundered draw is as cache-poisoning as a direct one.
func PreviewNoise() float64 {
	return helpers.Draw() // want `call to nondeterministic Draw`
}

// SolveDeadline reaches time.Now two hops away: wall-clock-dependent
// planning would make the same spec solve to different plans.
func SolveDeadline() bool {
	return helpers.Wrap() > 0 // want `call to nondeterministic Wrap`
}

// planner mirrors internal/hmpc's seeded route synthesis: the generator
// lives in a struct field seeded from the spec, so the value flow proves
// every draw deterministic and nothing below is reported.
type planner struct {
	rng *rand.Rand
}

func newPlanner(specSeed int64) *planner {
	return &planner{rng: rand.New(rand.NewSource(specSeed))}
}

// SegmentSpeed draws from the spec-seeded generator through the struct
// field: clean, the stored value's provenance is the spec seed.
func (p *planner) SegmentSpeed() float64 {
	return p.rng.Float64()
}

// Blend is deterministic end to end: seeded helper plus a pure function.
func Blend(seed int64) float64 {
	return helpers.Seeded(seed) + helpers.Pure(3)
}
