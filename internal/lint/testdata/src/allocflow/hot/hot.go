// Package hot exercises the allocflow gate: functions reachable from
// //lint:hotpath roots must be provably allocation-free, and every
// allocating construct — local or buried in a callee — must surface as a
// finding naming the root it poisons.
package hot

import (
	"errors"
	"math"
	"strconv"

	"repro/internal/lint/testdata/src/allocflow/helpers"
)

type consumer interface{ put(float64) }

// Workspace is the warm state: preallocated buffers, no per-step growth.
type Workspace struct {
	buf  []float64
	out  consumer
	step func(float64) float64
}

// Step is the clean root: allowlisted stdlib, a proven-clean module
// callee, dynamic dispatch (policy-exempt), and a clean local helper.
//
//lint:hotpath the per-tick solve must not allocate
func (w *Workspace) Step(x float64) float64 {
	w.buf[0] = math.Abs(x)
	y := helpers.Sum(w.buf)
	y = w.step(y)
	w.out.put(y)
	return clamp(y)
}

// clamp is reached from Step and is allocation-free.
func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

var sink interface{}

// Dirty collects every direct allocating construct in one body.
//
//lint:hotpath exercise the local site kinds
func Dirty(n int, m map[string]int, s []float64, name string) {
	buf := make([]float64, n) // want `allocation on the hot path rooted at Dirty: calls make`
	s = append(s, 1)          // want `rooted at Dirty: appends to a slice`
	m["k"] = n                // want `rooted at Dirty: writes to a map`
	f := func() float64 {     // want `rooted at Dirty: creates a func literal`
		return s[0] + buf[0]
	}
	go idle()           // want `rooted at Dirty: starts a goroutine`
	defer idle()        // want `rooted at Dirty: defers a call`
	name += "!"         // want `rooted at Dirty: concatenates strings`
	_ = []byte(name)    // want `rooted at Dirty: converts between string and byte/rune slice`
	_ = strconv.Itoa(n) // want `rooted at Dirty: calls strconv.Itoa, which is outside the allocation-free allowlist`
	_ = f()
}

func idle() {}

// Solve is the acceptance case: the boxing hides inside a callee, and
// the finding lands on the callee's boxing site, named after the root.
//
//lint:hotpath solver inner loop
func Solve(x float64) float64 {
	return inner(x)
}

// inner is allocation-free itself but reaches record.
func inner(x float64) float64 {
	record(x)
	return x * 2
}

// record boxes its float64 into the package sink.
func record(x float64) {
	sink = x // want `rooted at Solve: boxes a float64 into an interface`
}

// PointerShapes passes already-pointer-shaped values into interfaces:
// the interface word holds them directly, nothing allocates.
//
//lint:hotpath pointer-shaped boxing is free
func PointerShapes(w *Workspace, f func(float64) float64) {
	sink = w
	sink = f
}

// Parse allocates only on its failing return and in a panic argument —
// both are cold by definition and exempt.
//
//lint:hotpath errors and panics are cold paths
func Parse(ok bool, n int) (float64, error) {
	if n < 0 {
		panic("bad count: " + strconv.Itoa(n))
	}
	if !ok {
		return 0, errors.New("unparseable input")
	}
	return 1, nil
}

// Tick grows its buffer only through a reviewed coldpath callee, where
// the walk stops.
//
//lint:hotpath growth is amortized in reserve
func Tick(w *Workspace) {
	w.reserve()
	w.buf[0] = 0
}

// reserve is the amortized growth slot; the annotation is load-bearing.
//
//lint:coldpath amortized doubling, reviewed with the workspace design
func (w *Workspace) reserve() {
	if len(w.buf) == 0 {
		w.buf = append(w.buf, 0)
	}
}

// Emit calls may-allocating functions across the package boundary; the
// imported AllocFacts carry the reason chains.
//
//lint:hotpath fact propagation across packages
func Emit(x float64) {
	helpers.Record(x)        // want `rooted at Emit: calls repro/internal/lint/testdata/src/allocflow/helpers.Record \(which boxes a float64 into an interface\)`
	_ = helpers.Wrap(nil, x) // want `rooted at Emit: calls repro/internal/lint/testdata/src/allocflow/helpers.Wrap \(which calls Grow \(which appends to a slice`
	_ = helpers.Sum(nil)
}

// NotARoot allocates freely: no hotpath annotation, no findings — the
// fact machinery records it for callers, the gate stays quiet.
func NotARoot(n int) []int {
	return make([]int, n)
}
