// Package helpers sits in a dependency of the hot fixture package: no
// hotpath roots live here, so nothing is reported, but the analyzer must
// export AllocFacts for the may-allocating functions so the hot package
// sees allocation through the package boundary.
package helpers

var sink interface{}

// Sum is allocation-free; calling it from a hot path is fine.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Record boxes its argument into an interface — it may allocate, and the
// exported fact says so.
func Record(x float64) {
	sink = x
}

// Grow appends — may allocate, two hops from the hot root.
func Grow(xs []float64, x float64) []float64 {
	return append(xs, x)
}

// Wrap reaches allocation only through a same-package call.
func Wrap(xs []float64, x float64) []float64 {
	return Grow(xs, x)
}
