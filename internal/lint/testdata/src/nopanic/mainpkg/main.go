// Command mainpkg shows the package-main exemption: CLIs may die loudly.
package main

func main() {
	if len("argv") > 9000 {
		panic("CLIs may panic") // allowed: package main
	}
}
