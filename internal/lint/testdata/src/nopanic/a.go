// Package nopanic exercises the nopanic analyzer: panic is allowed only
// in init functions and Must*-style constructors.
package nopanic

import "errors"

var ErrEmpty = errors.New("empty")

func Parse(s string) (int, error) {
	if s == "" {
		panic("empty input") // want `panic in library code \(func Parse\)`
	}
	return len(s), nil
}

func Handler() func() {
	return func() {
		panic("nested") // want `panic in library code \(func Handler\)`
	}
}

func MustParse(s string) int {
	n, err := Parse(s)
	if err != nil {
		panic(err) // allowed: Must*-style constructor
	}
	return n
}

func mustDefaults() int {
	panic("unreachable") // allowed: unexported must* helper
}

var registry = map[string]int{}

func init() {
	if len(registry) > 1<<20 {
		panic("nopanic fixture: impossible registry size") // allowed: init-time wiring
	}
}
