// This file opts out of floatcompare wholesale; nothing here may be
// reported even without line directives.

//lint:file-ignore floatcompare fixture: whole-file suppression form
package directives

func fileWide(a, b float64) bool {
	if a == b {
		return true
	}
	return a != b
}
