// Package directives exercises the suppression machinery shared by all
// analyzers: //lint:ignore (line), //lint:file-ignore (file), and the
// lintdirective findings for malformed directives.
package directives

func above(a, b float64) bool {
	//lint:ignore floatcompare fixture: exact comparison is the point here
	return a == b
}

func trailing(a, b float64) bool {
	return a == b //lint:ignore floatcompare fixture: trailing directive form
}

func wildcard(a, b float64) bool {
	//lint:ignore all fixture: the wildcard silences every analyzer
	return a == b
}

func unsuppressed(a, b float64) bool {
	return a == b // want `floating-point comparison with ==`
}

func typoed(a, b float64) bool {
	/* want `unknown analyzer "floatcmp" in //lint:ignore directive` */ //lint:ignore floatcmp fixture: a typoed name must be reported, not silently ignored
	return a == b                                                       // want `floating-point comparison with ==`
}

func typoedList(a, b float64) bool {
	/* want `unknown analyzer "flotcompare"` */ //lint:ignore floatcompare,flotcompare fixture: one bad name invalidates the directive
	return a == b                               // want `floating-point comparison with ==`
}

func multiline(a, b, c float64) bool {
	return a+c ==
		b //lint:ignore floatcompare fixture: trailing directive covers the whole multi-line statement
}

/* want `unknown //lint: directive` */ //lint:frobnicate floatcompare nope

/* want `malformed //lint:ignore directive` */ //lint:ignore floatcompare
