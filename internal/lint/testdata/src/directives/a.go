// Package directives exercises the suppression machinery shared by all
// analyzers: //lint:ignore (line), //lint:file-ignore (file), and the
// lintdirective findings for malformed directives.
package directives

func above(a, b float64) bool {
	//lint:ignore floatcompare fixture: exact comparison is the point here
	return a == b
}

func trailing(a, b float64) bool {
	return a == b //lint:ignore floatcompare fixture: trailing directive form
}

func wildcard(a, b float64) bool {
	//lint:ignore all fixture: the wildcard silences every analyzer
	return a == b
}

func unsuppressed(a, b float64) bool {
	return a == b // want `floating-point comparison with ==`
}

/* want `unknown //lint: directive` */ //lint:frobnicate floatcompare nope

/* want `malformed //lint:ignore directive` */ //lint:ignore floatcompare
