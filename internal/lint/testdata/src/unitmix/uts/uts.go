// Package uts mimics internal/units for the unitmix fixture: its exported
// names carry unit suffixes that must reach dependent packages as
// UnitFacts.
package uts

// MaxTempK is a temperature limit in kelvin.
const MaxTempK = 330.0

// BasePowerW is a power floor in watts.
const BasePowerW = 25.0

// CToK converts Celsius to kelvin; the name suffix declares the unit of
// the returned value.
func CToK(c float64) float64 { return c + 273.15 }

// KToC converts kelvin to Celsius.
func KToC(k float64) float64 { return k - 273.15 }

// PackEnergyWh reports stored energy in watt-hours.
func PackEnergyWh() float64 { return 5200 }
