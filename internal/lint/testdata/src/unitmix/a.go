// Package unitmix exercises unit-suffix conflict detection in additive
// arithmetic and comparisons, including units imported as facts.
package unitmix

import "repro/internal/lint/testdata/src/unitmix/uts"

func mixes(tempK, limitC, coolerPowerW, energyWh, energyJ, otherK, x float64) float64 {
	bad := tempK + limitC        // want `unit mismatch in "\+": tempK is in K but limitC is in C \(scale conflict\)`
	bad += tempK - coolerPowerW  // want `unit mismatch in "-": tempK is in K but coolerPowerW is in W \(dimension conflict\)`
	bad += energyWh + energyJ    // want `unit mismatch in "\+": energyWh is in Wh but energyJ is in J \(scale conflict\)`
	bad += uts.CToK(x) - limitC  // want `unit mismatch in "-": uts.CToK\(...\) is in K but limitC is in C \(scale conflict\)`
	bad += uts.MaxTempK - limitC // want `unit mismatch in "-": uts.MaxTempK is in K but limitC is in C \(scale conflict\)`
	if tempK > limitC {          // want `unit mismatch in ">": tempK is in K but limitC is in C \(scale conflict\)`
		bad++
	}
	return bad
}

func clean(tempK, limitC, coolerPowerW, energyWh, otherK, dt, x float64) float64 {
	ok := tempK + otherK           // same unit
	ok += coolerPowerW * dt        // multiplicative mixing is legitimate (W·s = J)
	ok += energyWh / dt            // division too
	ok += uts.CToK(limitC) - tempK // converted before mixing
	ok += uts.KToC(tempK) - limitC // converted the other way
	ok += uts.PackEnergyWh() + energyWh
	ok += x + tempK // unsuffixed operand: nothing declared, nothing checked
	HBC := 2000.0   // trailing uppercase run is an acronym, not a suffix
	ok += HBC + tempK
	return ok
}
