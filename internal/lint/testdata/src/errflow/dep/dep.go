// Package dep is the API surface the errflow fixture calls into: some
// functions can really fail, others provably return nil errors and are
// exported as NilErrorFacts.
package dep

import "errors"

// MayFail can return a real error.
func MayFail() error {
	return errors.New("dep: failed")
}

// NeverFails structurally cannot fail.
func NeverFails() error {
	return nil
}

// Tuple returns a value and an always-nil error.
func Tuple() (int, error) {
	return 42, nil
}

// Chain is always-nil through a same-package tail call.
func Chain() error {
	return NeverFails()
}

// Forward is always-nil through tuple forwarding.
func Forward() (int, error) {
	return Tuple()
}

// Sometimes fails on odd input, so it is not always-nil.
func Sometimes(n int) error {
	if n%2 == 1 {
		return errors.New("dep: odd")
	}
	return nil
}

// Pair returns a value and a real error (not always-nil).
func Pair() (int, error) {
	return 0, errors.New("dep: pair")
}

// ValueNil is always-nil proven through the value flow, not syntax: the
// error variable is declared at its zero value and only ever reassigned
// nil, so the phi joining the branches can only carry nil.
func ValueNil(cond bool) error {
	var err error
	if cond {
		err = nil
	}
	return err
}

// NamedNil is always-nil through a naked return of a named result that
// only ever holds its nil zero value.
func NamedNil(n int) (err error) {
	if n > 0 {
		return
	}
	err = nil
	return
}
