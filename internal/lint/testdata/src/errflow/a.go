// Package errflow exercises discarded-error detection: bare call
// statements dropping real errors are reported; calls proven always-nil
// through facts, explicit discards and handled errors are not.
package errflow

import (
	"fmt"

	"repro/internal/lint/testdata/src/errflow/dep"
)

// localFail is a same-package API that can fail.
func localFail() error {
	return fmt.Errorf("local: failed")
}

// localOK is same-package always-nil.
func localOK() error {
	return nil
}

func discards() {
	dep.MayFail()       // want `error returned by .*dep.MayFail is discarded`
	dep.Sometimes(3)    // want `error returned by .*dep.Sometimes is discarded`
	localFail()         // want `error returned by .*errflow.localFail is discarded`
	defer dep.MayFail() // want `error returned by .*dep.MayFail is discarded by defer`
	go dep.MayFail()    // want `error returned by .*dep.MayFail is discarded by go`
}

func exempt() {
	// Always-nil callees, proven by facts across the package boundary
	// (and by the same-package fixpoint for localOK).
	dep.NeverFails()
	dep.Chain()
	dep.Forward()
	localOK()

	// Explicit discard is a reviewed decision, not a silent drop.
	_ = dep.MayFail()
	_, _ = dep.Tuple()

	// Handled.
	if err := dep.MayFail(); err != nil {
		_ = err
	}

	// Out of scope: the contract covers module APIs, not the stdlib.
	fmt.Println("hello")
}

// localValueNil mirrors dep.ValueNil in-package: the SSA proof (zero
// value, nil-only assignments, phi join) marks it always-nil for the
// same-package fixpoint.
func localValueNil(cond bool) error {
	var err error
	if !cond {
		err = nil
	}
	return err
}

func exemptByValueFlow() {
	// Always-nil proven through the value flow, locally and by fact.
	localValueNil(true)
	dep.ValueNil(false)
	dep.NamedNil(2)
}

// deadStores drops errors with an extra step: the assignment happens, but
// no path ever reads the variable before it dies or is overwritten.
func deadStores() int {
	err := dep.MayFail() // want `error assigned to err from .*dep.MayFail is never checked`
	err = dep.Sometimes(1)
	if err != nil {
		return 1
	}
	v, err2 := dep.Pair() // want `error assigned to err2 from .*dep.Pair is never checked`
	err2 = dep.Sometimes(v)
	if err2 != nil {
		return 0
	}
	return v
}

// handledStores are the value-flow shapes that count as checking.
type holder struct{ err error }

func handledStores(h *holder) error {
	// Stored into a struct field: the field's consumers own it.
	h.err = dep.MayFail()

	// Read through a phi: the check happens after a join.
	err := dep.MayFail()
	if err == nil {
		err = dep.Sometimes(2)
	}
	if err != nil {
		return err
	}

	// Overwritten unread, but the callee is proven always-nil: nothing
	// real was dropped.
	en := dep.ValueNil(true)
	en = dep.Sometimes(4)
	return en
}

// localPtrNil proves always-nil through an address-taken local: every
// store — the zero-value declaration and the write through the alias —
// is nil, and the address never leaves the function, so the cell summary
// sustains the proof.
func localPtrNil() error {
	var err error
	p := &err
	*p = nil
	return err
}

// localPtrEscapes hands the address to another function; the cell
// escapes, the proof is refused, and callers must handle the error.
func localPtrEscapes() error {
	var err error
	fill(&err)
	return err
}

func fill(p *error) { *p = fmt.Errorf("filled") }

func cells() {
	localPtrNil()
	localPtrEscapes() // want `error returned by .*errflow.localPtrEscapes is discarded`
}
