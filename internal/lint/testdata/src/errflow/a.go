// Package errflow exercises discarded-error detection: bare call
// statements dropping real errors are reported; calls proven always-nil
// through facts, explicit discards and handled errors are not.
package errflow

import (
	"fmt"

	"repro/internal/lint/testdata/src/errflow/dep"
)

// localFail is a same-package API that can fail.
func localFail() error {
	return fmt.Errorf("local: failed")
}

// localOK is same-package always-nil.
func localOK() error {
	return nil
}

func discards() {
	dep.MayFail()       // want `error returned by .*dep.MayFail is discarded`
	dep.Sometimes(3)    // want `error returned by .*dep.Sometimes is discarded`
	localFail()         // want `error returned by .*errflow.localFail is discarded`
	defer dep.MayFail() // want `error returned by .*dep.MayFail is discarded by defer`
	go dep.MayFail()    // want `error returned by .*dep.MayFail is discarded by go`
}

func exempt() {
	// Always-nil callees, proven by facts across the package boundary
	// (and by the same-package fixpoint for localOK).
	dep.NeverFails()
	dep.Chain()
	dep.Forward()
	localOK()

	// Explicit discard is a reviewed decision, not a silent drop.
	_ = dep.MayFail()
	_, _ = dep.Tuple()

	// Handled.
	if err := dep.MayFail(); err != nil {
		_ = err
	}

	// Out of scope: the contract covers module APIs, not the stdlib.
	fmt.Println("hello")
}
