// Package hees stands in for repro/internal/hees (matched by path
// suffix): the lockstep bus solver underpins the batched fleet rollout's
// bit-identity contract, so the shared global math/rand source and the
// wall clock are banned exactly as in the simulation packages.
package hees

import (
	"math/rand"
	"time"
)

// PerturbBracket would make two identical solves disagree: the global
// source's stream depends on every other goroutine that draws from it.
func PerturbBracket(hi float64) float64 {
	return hi * (1 + 1e-12*rand.Float64()) // want `global math/rand source \(math/rand\.Float64\)`
}

// SolveDeadline keys convergence on the wall clock: the same inputs would
// bisect to different depths on a loaded machine.
func SolveDeadline() time.Time {
	return time.Now().Add(time.Millisecond) // want `time\.Now in deterministic package`
}

// JitterLanes shows the sanctioned pattern: a locally seeded generator is
// reproducible, so randomized property tests of the solver stay legal.
func JitterLanes(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 300 + 100*r.Float64()
	}
	return out
}
