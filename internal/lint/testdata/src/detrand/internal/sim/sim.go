// Package sim stands in for repro/internal/sim (matched by path suffix):
// a deterministic package where the global math/rand source and time.Now
// are banned.
package sim

import (
	"math/rand"
	"time"
)

func Jitter() float64 {
	return rand.Float64() // want `global math/rand source \(math/rand\.Float64\)`
}

func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand source \(math/rand\.Intn\)`
}

func Reseed(seed int64) {
	rand.Seed(seed) // want `global math/rand source \(math/rand\.Seed\)`
}

func Stamp() int64 {
	return time.Now().Unix() // want `time\.Now in deterministic package`
}

// Seeded shows the sanctioned pattern: an injectable generator built from
// the route seed. rand.New / rand.NewSource and *rand.Rand methods pass.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Elapsed shows that time arithmetic on simulated values is fine; only
// the wall clock is banned.
func Elapsed(start time.Time, dt time.Duration) time.Time {
	return start.Add(dt)
}
