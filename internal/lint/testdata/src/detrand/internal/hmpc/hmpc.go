// Package hmpc stands in for repro/internal/hmpc (matched by path
// suffix): outer route plans are golden-pinned and served from a
// canonical-spec-keyed cache, so planning must be a pure function of the
// spec — the global math/rand source and the wall clock are banned.
package hmpc

import (
	"math/rand"
	"time"
)

// JitterBlock perturbs a block boundary from the global source: two
// servers solving the same spec would cache different plans.
func JitterBlock(seconds float64) float64 {
	return seconds + rand.Float64() // want `global math/rand source \(math/rand\.Float64\)`
}

// PlanStamp leaks the wall clock into the plan.
func PlanStamp() int64 {
	return time.Now().Unix() // want `time\.Now in deterministic package`
}

// SynthRoute shows the sanctioned pattern: the route generator is seeded
// purely by the spec's seed, so the same spec always synthesizes the same
// route and the plan cache key stays sound.
func SynthRoute(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}
