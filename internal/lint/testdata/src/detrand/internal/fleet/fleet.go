// Package fleet stands in for repro/internal/fleet (matched by path
// suffix): the Monte Carlo fleet simulator promises bit-identical results
// at any worker count, so the shared global math/rand source and the wall
// clock are banned exactly as in the physics packages.
package fleet

import (
	"math/rand"
	"time"
)

// DrawAmbient uses the global source: a second goroutine drawing
// concurrently would perturb the stream and break parallel identity.
func DrawAmbient() float64 {
	return 265 + 48*rand.Float64() // want `global math/rand source \(math/rand\.Float64\)`
}

func PickFamily(n int) int {
	return rand.Intn(n) // want `global math/rand source \(math/rand\.Intn\)`
}

func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

// RollVehicle shows the sanctioned pattern: every draw comes from a
// generator seeded purely by (fleet seed, vehicle index), so any worker
// can roll any vehicle and produce the same scenario.
func RollVehicle(fleetSeed int64, vehicle int) float64 {
	r := rand.New(rand.NewSource(fleetSeed + int64(vehicle)))
	return r.Float64()
}
