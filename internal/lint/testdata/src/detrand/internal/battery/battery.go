// Package battery stands in for repro/internal/battery (matched by path
// suffix): the prepared battery step runs inside the batched rollout's
// bit-identical hot loop, so nondeterministic sources are banned.
package battery

import (
	"math/rand"
	"time"
)

// NoisyOCV injects measurement noise from the global source — the classic
// way a "realistic" tweak silently breaks digest identity.
func NoisyOCV(ocv float64) float64 {
	return ocv + 1e-6*rand.NormFloat64() // want `global math/rand source \(math/rand\.NormFloat64\)`
}

// AgeByWallClock makes degradation depend on when the simulation ran.
func AgeByWallClock(start time.Time) float64 {
	return time.Now().Sub(start).Hours() // want `time\.Now in deterministic package`
}

// CellLot shows the sanctioned pattern: per-cell parameter scatter drawn
// from a generator seeded by the cell index is reproducible anywhere.
func CellLot(seed int64, cell int) float64 {
	r := rand.New(rand.NewSource(seed + int64(cell)))
	return 1 + 0.02*r.NormFloat64()
}
