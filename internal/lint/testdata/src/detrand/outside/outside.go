// Package outside is not one of the deterministic packages, so the
// global source is tolerated here (synthetic drive-cycle generators and
// tests use it deliberately).
package outside

import (
	"math/rand"
	"time"
)

func Noise() float64 { return rand.Float64() }

func Wall() time.Time { return time.Now() }
