package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrWrapCheck enforces wrap-aware error plumbing.
//
// The facade exposes sentinel errors (otem.ErrUnknownCycle,
// otem.ErrUnknownBaseline, runner.ErrCanceled) that callers are documented
// to test with errors.Is. That contract only holds if every layer wraps
// with %w and never compares errors with ==. Two rules:
//
//  1. a fmt.Errorf argument that is an error must be formatted with %w,
//     not %v/%s/%q/..., so the chain stays inspectable;
//  2. == / != between two non-nil error values is forbidden — use
//     errors.Is, which sees through wrapping.
var ErrWrapCheck = &Analyzer{
	Name: "errwrapcheck",
	Doc: `require %w for errors in fmt.Errorf and errors.Is for comparisons

fmt.Errorf("...: %v", err) erases the unwrap chain, breaking
errors.Is(err, otem.ErrUnknownCycle) and friends at every layer above;
use %w. Likewise err == ErrSentinel misses wrapped sentinels; use
errors.Is(err, ErrSentinel). Comparisons against nil are fine.`,
	Run: runErrWrapCheck,
}

func runErrWrapCheck(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfCall(pass, n)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilExpr(info, n.X) || isNilExpr(info, n.Y) {
					return true
				}
				tx, ty := info.Types[n.X].Type, info.Types[n.Y].Type
				if tx != nil && ty != nil && implementsError(tx) && implementsError(ty) {
					pass.Reportf(n.OpPos, "error compared with %s; use errors.Is so wrapped sentinels still match", n.Op)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorfCall flags fmt.Errorf calls that format an error argument
// with a verb other than %w.
func checkErrorfCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.verb == 'w' || v.argIndex >= len(args) {
			continue
		}
		arg := args[v.argIndex]
		t := pass.TypesInfo.Types[arg].Type
		if t == nil || !implementsError(t) {
			continue
		}
		// A type that merely has an Error method but is being
		// formatted as a plain value is still an error to the reader;
		// keep this strict and let //lint:ignore cover exceptions.
		pass.Reportf(arg.Pos(), "error formatted with %%%c in fmt.Errorf; use %%w so errors.Is/As can unwrap it", v.verb)
	}
}

// verbUse is one conversion in a format string and the argument it binds.
type verbUse struct {
	verb     rune
	argIndex int
}

// parseVerbs walks a Printf-style format string and pairs each verb with
// its argument index, accounting for %%, flags, *-widths and [n] argument
// indexes. It is deliberately forgiving: on malformed input it simply
// stops pairing, leaving any remaining verbs unreported (gate analyzers
// must never false-positive on garbage).
func parseVerbs(format string) []verbUse {
	var out []verbUse
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// Flags.
		for i < len(rs) && isFlag(rs[i]) {
			i++
		}
		// Width / precision, each possibly '*' (which consumes an arg).
		for i < len(rs) && (rs[i] == '*' || rs[i] == '.' || isDigit(rs[i])) {
			if rs[i] == '*' {
				arg++
			}
			i++
		}
		// Explicit argument index [n].
		if i < len(rs) && rs[i] == '[' {
			j := i + 1
			n := 0
			for j < len(rs) && isDigit(rs[j]) {
				n = n*10 + int(rs[j]-'0')
				j++
			}
			if j >= len(rs) || rs[j] != ']' || n == 0 {
				return out // malformed; stop pairing
			}
			arg = n - 1
			i = j + 1
		}
		if i >= len(rs) {
			break
		}
		out = append(out, verbUse{verb: rs[i], argIndex: arg})
		arg++
	}
	return out
}

func isFlag(r rune) bool  { return r == '+' || r == '-' || r == '#' || r == ' ' || r == '0' }
func isDigit(r rune) bool { return r >= '0' && r <= '9' }

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
