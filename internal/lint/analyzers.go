package lint

// All returns the full otem-lint suite in reporting order. The slice is
// freshly allocated; callers may filter it.
func All() []*Analyzer {
	return []*Analyzer{
		AllocFlow,
		DetFlow,
		DetRand,
		ErrFlow,
		ErrWrapCheck,
		FloatCompare,
		NakedGoroutine,
		Nilness,
		NoPanic,
		UnitMix,
		UnusedWrite,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
