package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"time"

	"repro/internal/lint/ir"
)

// NondetFact marks a function as (transitively) nondeterministic: its body
// reaches the global math/rand source or time.Now through some chain of
// static calls, tainted function values, or draws from tainted
// generators. The fact is exported on the function object, so dependent
// packages learn about nondeterminism buried arbitrarily deep in their
// dependencies without re-analyzing them.
type NondetFact struct {
	// Reason is the human-readable call chain, e.g.
	// "calls helpers.Jitter (which calls time.Now)".
	Reason string
}

// AFact marks NondetFact as a Fact.
func (*NondetFact) AFact() {}

func (f *NondetFact) String() string { return f.Reason }

// DetFlow extends detrand across package boundaries and across value flow.
//
// detrand is intraprocedural and syntactic: it flags a time.Now literally
// written inside internal/sim. But determinism is a whole-program property
// of *values*, not call sites. DetFlow tracks it two ways, both over the
// shared SSA IR (internal/lint/ir):
//
//   - Call-graph closure (as before): every package exports a NondetFact
//     for each function that reaches the global math/rand source or
//     time.Now, and the deterministic packages report calls to marked
//     functions.
//   - Value flow (new): nondeterminism is a property carried by values. A
//     *rand.Rand seeded from a constant or a SplitMix64-mixed vehicle
//     index is clean wherever it flows — through locals, struct fields
//     and branch joins. A handle on the global source or the wall clock
//     is tainted even when laundered through a struct field, a closure,
//     or a function-typed variable; stores export TaintFacts so the
//     laundering may cross package boundaries. Calls through tainted
//     function values and draws from tainted generators are reported.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: `forbid transitive nondeterminism in the deterministic packages

A function in internal/sim, internal/mpc, internal/policy, internal/fleet
or internal/hmpc must not reach — at any depth, across packages, or laundered through
struct fields, closures and function values — the global math/rand source
or time.Now. detrand catches the direct uses; detflow propagates
"reaches nondeterminism" facts along the package DAG and tracks tainted
values through the SSA-based value-flow IR, flagging the call sites that
import them. A *rand.Rand seeded from a constant or a per-vehicle
SplitMix64 hash is deterministic and passes wherever it flows. Thread a
seeded *rand.Rand (or simulated time) down the call chain instead.`,
	Run:       runDetFlow,
	FactTypes: []Fact{(*NondetFact)(nil), (*TaintFact)(nil)},
}

func runDetFlow(pass *Pass) error {
	// Function-level state: reason a declared function is nondeterministic
	// to call, "" while (still) believed clean.
	type funcInfo struct {
		reason string
	}
	infos := make(map[*types.Func]*funcInfo)
	decls := make(map[*types.Func]*ast.FuncDecl)
	var order []*types.Func

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[obj] = &funcInfo{}
			decls[obj] = fd
			order = append(order, obj)
		}
	}

	funcReason := func(fn *types.Func) string {
		if fi, ok := infos[fn]; ok {
			return fi.reason
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact NondetFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Reason
			}
		}
		return ""
	}
	eng := newTaintEngine(pass, funcReason)

	// summarize decides whether one function's body performs
	// nondeterminism, updating its funcInfo; reports whether the reason
	// was newly set.
	summarize := func(obj *types.Func) bool {
		fi := infos[obj]
		if fi == nil || fi.reason != "" {
			return false
		}
		fd := decls[obj]
		irf := pass.FuncIR(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fi.reason != "" {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if r := eng.callEffect(irf, call); r != "" {
					fi.reason = r
					return false
				}
			}
			return true
		})
		return fi.reason != ""
	}

	// Function summaries are computed bottom-up over the call graph's SCC
	// condensation: when a function is summarized, its (acyclic) callees
	// already are, so most functions settle in a single visit. Members of
	// one component can reach each other, so each component iterates to
	// its own fixpoint. The outer loop re-runs only when stored-value
	// taint grows (a summarized constructor stores a wall-clock handle
	// into a field, making the field's readers nondeterministic — which
	// the summaries must observe). Reasons only transition empty->set and
	// objTaint only grows, so the whole loop terminates without a round
	// bound; memos are dropped whenever either set changed, because a
	// cached "clean" may be stale.
	t0 := time.Now()
	sccs := pass.CallGraph().SCCs()
	for {
		changed := false
		eng.resetMemos()
		for _, scc := range sccs {
			for again := true; again; {
				again = false
				for _, node := range scc {
					if node.Decl == nil {
						continue // literals are summarized at their use sites
					}
					if summarize(node.Fn) {
						again, changed = true, true
						eng.resetMemos()
					}
				}
				if again && len(scc) == 1 {
					break // a singleton's reason cannot improve further
				}
			}
		}
		// Stores into fields and package-level vars, in function bodies
		// and in package-level initializers.
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fd.Body == nil {
						continue
					}
					if eng.scanStores(pass.FuncIR(fd), fd.Body) {
						changed = true
					}
					continue
				}
				if eng.scanStores(nil, decl) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	addSummaryNanos(time.Since(t0))

	// Export facts so dependents see through this package.
	for _, obj := range order {
		if fi := infos[obj]; fi.reason != "" {
			pass.ExportObjectFact(obj, &NondetFact{Reason: fi.reason})
		}
	}
	for obj, reason := range eng.objTaint {
		pass.ExportObjectFact(obj, &TaintFact{Reason: reason})
	}

	// Inside the deterministic scope, report every call that performs or
	// launders nondeterminism. Direct uses of the banned functions are
	// detrand's findings, not repeated here.
	if !inDetrandScope(pass.Pkg.Path()) {
		return nil
	}
	eng.resetMemos()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			var irf *ir.Func
			if fd, ok := decl.(*ast.FuncDecl); ok {
				irf = pass.FuncIR(fd)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					reportNondetCall(pass, eng, irf, call, funcReason)
				}
				return true
			})
		}
	}
	return nil
}

// reportNondetCall files the detflow finding for one call site in a
// deterministic package, if any. Three shapes:
//
//   - a static call to a function known (locally or by fact) to reach
//     nondeterminism;
//   - a method call on a receiver whose value derives from the global
//     source or the wall clock (a smuggled generator handle);
//   - a call through a nondeterministic function value (a laundered
//     rand.Float64, a wall-clock closure, a tainted field of function
//     type).
func reportNondetCall(pass *Pass, eng *taintEngine, fn *ir.Func, call *ast.CallExpr, funcReason func(*types.Func) string) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callee := staticCallee(pass.TypesInfo, call)
	if callee != nil {
		if directNondetReason(callee) != "" {
			return // detrand reports direct uses
		}
		if r := funcReason(callee); r != "" {
			pass.Reportf(call.Pos(), "call to nondeterministic %s in deterministic package %s: %s %s; thread a seeded *rand.Rand or simulated time instead", callee.Name(), pass.Pkg.Path(), callee.Name(), r)
			return
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if r := eng.expr(fn, sel.X); r != "" {
					pass.Reportf(call.Pos(), "call to %s on a nondeterministically derived receiver in deterministic package %s: receiver %s; thread a seeded *rand.Rand or simulated time instead", callee.Name(), pass.Pkg.Path(), r)
				}
			}
		}
		return
	}
	if r := eng.expr(fn, call.Fun); r != "" {
		pass.Reportf(call.Pos(), "call through nondeterministic function value in deterministic package %s: value %s; thread a seeded *rand.Rand or simulated time instead", pass.Pkg.Path(), r)
	}
}

// staticCallee resolves a call expression to the *types.Func it invokes
// statically (plain call or method call on a concrete receiver), or nil
// for builtins, conversions, function values and interface dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// directNondetReason reports why calling fn is nondeterministic by itself:
// it is one of the banned package-level math/rand functions or time.Now.
func directNondetReason(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods on *rand.Rand are the sanctioned replacement
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			return fmt.Sprintf("calls %s.%s", fn.Pkg().Path(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			return "calls time.Now"
		}
	}
	return ""
}
