package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NondetFact marks a function as (transitively) nondeterministic: its body
// reaches the global math/rand source or time.Now through some chain of
// static calls. The fact is exported on the function object, so dependent
// packages learn about nondeterminism buried arbitrarily deep in their
// dependencies without re-analyzing them.
type NondetFact struct {
	// Reason is the human-readable call chain, e.g.
	// "calls helpers.Jitter (which calls time.Now)".
	Reason string
}

// AFact marks NondetFact as a Fact.
func (*NondetFact) AFact() {}

func (f *NondetFact) String() string { return f.Reason }

// DetFlow extends detrand across package boundaries.
//
// detrand is intraprocedural: it flags a time.Now literally written inside
// internal/sim. But determinism is a whole-program property — a sim
// function calling a helper in another package that calls time.Now is just
// as unreplayable, and invisible to a per-package AST walk. DetFlow builds
// the call-graph closure with facts: every package analyzed exports a
// NondetFact for each function that reaches the global math/rand source or
// time.Now (directly, through same-package calls, or through calls to
// functions already marked by the fact in dependencies), and the
// deterministic packages (internal/sim, internal/mpc, internal/policy)
// report any call to a marked function.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: `forbid transitive nondeterminism in the deterministic packages

A function in internal/sim, internal/mpc or internal/policy must not call
— at any depth, across packages — a function that reaches the global
math/rand source or time.Now. detrand catches the direct uses; detflow
propagates "reaches nondeterminism" facts along the package DAG and flags
the call sites that import it. Thread a seeded *rand.Rand (or simulated
time) down the call chain instead.`,
	Run:       runDetFlow,
	FactTypes: []Fact{(*NondetFact)(nil)},
}

func runDetFlow(pass *Pass) error {
	// Pass 1: for every function declared in this package, find direct
	// nondeterminism and record static calls to other functions.
	type funcInfo struct {
		reason string        // non-empty once known nondeterministic
		calls  []*types.Func // same-package callees, pending propagation
	}
	infos := make(map[*types.Func]*funcInfo)
	var order []*types.Func

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{}
			infos[obj] = fi
			order = append(order, obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if fi.reason == "" {
					if r := directNondetReason(callee); r != "" {
						fi.reason = r
						return true
					}
				}
				if callee.Pkg() == pass.Pkg {
					fi.calls = append(fi.calls, callee)
				} else {
					// Cross-package callee: consult the fact exported
					// when the dependency was analyzed.
					var fact NondetFact
					if fi.reason == "" && pass.ImportObjectFact(callee, &fact) {
						fi.reason = fmt.Sprintf("calls %s.%s (which %s)", callee.Pkg().Path(), callee.Name(), fact.Reason)
					}
				}
				return true
			})
		}
	}

	// Pass 2: propagate nondeterminism through same-package calls to a
	// fixpoint (the call graph may have cycles; iteration count is bounded
	// by the number of functions).
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			fi := infos[obj]
			if fi.reason != "" {
				continue
			}
			for _, callee := range fi.calls {
				if cfi, ok := infos[callee]; ok && cfi.reason != "" {
					fi.reason = fmt.Sprintf("calls %s (which %s)", callee.Name(), cfi.reason)
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: export facts so dependents see through this package, and —
	// inside the deterministic scope — report every call whose callee is
	// known nondeterministic. Direct uses of the banned functions are
	// detrand's findings, not repeated here.
	for _, obj := range order {
		if fi := infos[obj]; fi.reason != "" {
			pass.ExportObjectFact(obj, &NondetFact{Reason: fi.reason})
		}
	}
	if !inDetrandScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil || directNondetReason(callee) != "" {
				return true
			}
			var reason string
			if fi, ok := infos[callee]; ok {
				reason = fi.reason
			} else if callee.Pkg() != pass.Pkg {
				var fact NondetFact
				if pass.ImportObjectFact(callee, &fact) {
					reason = fact.Reason
				}
			}
			if reason != "" {
				pass.Reportf(call.Pos(), "call to nondeterministic %s in deterministic package %s: %s %s; thread a seeded *rand.Rand or simulated time instead", callee.Name(), pass.Pkg.Path(), callee.Name(), reason)
			}
			return true
		})
	}
	return nil
}

// staticCallee resolves a call expression to the *types.Func it invokes
// statically (plain call or method call on a concrete receiver), or nil
// for builtins, conversions, function values and interface dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// directNondetReason reports why calling fn is nondeterministic by itself:
// it is one of the banned package-level math/rand functions or time.Now.
func directNondetReason(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods on *rand.Rand are the sanctioned replacement
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			return fmt.Sprintf("calls %s.%s", fn.Pkg().Path(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			return "calls time.Now"
		}
	}
	return ""
}
