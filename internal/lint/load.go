package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// Path is the import path (e.g. "repro/internal/sim").
	Path string
	// Name is the package name.
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// GoFiles are the non-test source files, absolute paths.
	GoFiles []string
	// Files are the parsed GoFiles, in the same order.
	Files []*ast.File
	// Types and Info are the type-checker outputs.
	Types *types.Package
	// Info holds the type-checker's per-expression results.
	Info *types.Info
}

// Module is a loaded set of target packages sharing one FileSet.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, "" meaning
// the current directory), then parses and type-checks every non-test file
// of the matched packages. Dependencies — including in-module ones — are
// resolved from compiled export data, so a whole-module load costs one
// `go list -export -deps` plus a source type-check of only the targets.
//
// Test files are deliberately excluded: the lint gate covers production
// code, and table-driven tests legitimately use constructs (exact float
// literals, ad-hoc goroutines) the analyzers forbid elsewhere.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, used in place of source.
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	mod := &Module{Fset: fset}
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the offline loader does not support", t.ImportPath)
		}
		pkg := &Package{Path: t.ImportPath, Name: t.Name, Dir: t.Dir}
		for _, name := range t.GoFiles {
			full := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", full, err)
			}
			pkg.GoFiles = append(pkg.GoFiles, full)
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) == 0 {
			continue
		}
		cfg := &types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if path == "unsafe" {
					return types.Unsafe, nil
				}
				return gc.Import(path)
			}),
			Sizes: types.SizesFor("gc", runtime.GOARCH),
		}
		if t.Module != nil && t.Module.GoVersion != "" {
			cfg.GoVersion = "go" + t.Module.GoVersion
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := cfg.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", t.ImportPath, err)
		}
		pkg.Types = tpkg
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// goList shells out to `go list -export -deps -json`. The go tool is the
// one piece of build machinery the driver leans on; everything downstream
// is stdlib go/parser + go/types.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
