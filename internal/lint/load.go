package lint

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/runner"
)

// Package is one type-checked target package.
type Package struct {
	// Path is the import path (e.g. "repro/internal/sim").
	Path string
	// Name is the package name.
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// GoFiles are the non-test source files, absolute paths.
	GoFiles []string
	// Files are the parsed GoFiles, in the same order.
	Files []*ast.File
	// Imports are the import paths of the other *target* packages this
	// one depends on (directly), the edges of the analysis DAG.
	Imports []string
	// Types and Info are the type-checker outputs.
	Types *types.Package
	// Info holds the type-checker's per-expression results.
	Info *types.Info
}

// Module is a loaded set of target packages sharing one FileSet.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, "" meaning
// the current directory), then parses and type-checks every non-test file
// of the matched packages. Dependencies — including in-module ones — are
// resolved from compiled export data, so a whole-module load costs one
// `go list -export -deps` plus a source type-check of only the targets.
//
// Test files are deliberately excluded: the lint gate covers production
// code, and table-driven tests legitimately use constructs (exact float
// literals, ad-hoc goroutines) the analyzers forbid elsewhere.
//
// Packages come back topologically sorted: every package appears after
// all of its in-module dependencies, with lexicographic order breaking
// ties. That ordering is what lets the sequential driver propagate facts
// in a single pass and the parallel driver schedule the DAG in waves.
func Load(dir string, patterns ...string) (*Module, error) {
	return LoadContext(context.Background(), nil, dir, patterns...)
}

// LoadContext is Load with cooperative cancellation and bounded
// parallelism: the per-package parse + type-check jobs — independent of
// one another because in-module dependencies resolve from compiled export
// data, not source — run on the given worker pool (nil selects the
// default GOMAXPROCS-bounded pool). The result is identical to Load's at
// any worker count.
func LoadContext(ctx context.Context, pool *runner.Pool, dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, used in place of source.
	exports := make(map[string]string)
	targetSet := make(map[string]bool)
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
			targetSet[p.ImportPath] = true
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	// The gc importer caches internally but is not safe for concurrent
	// Import calls; one lock shared by every type-check job keeps package
	// identity unified across the whole module.
	var importMu sync.Mutex
	lockedImport := func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		importMu.Lock()
		defer importMu.Unlock()
		return gc.Import(path)
	}

	checked, err := runner.Map(ctx, pool, len(targets), func(ctx context.Context, i int) (*Package, error) {
		t := targets[i]
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the offline loader does not support", t.ImportPath)
		}
		pkg := &Package{Path: t.ImportPath, Name: t.Name, Dir: t.Dir}
		for _, dep := range t.Imports {
			if targetSet[dep] {
				pkg.Imports = append(pkg.Imports, dep)
			}
		}
		for _, name := range t.GoFiles {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			full := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", full, err)
			}
			pkg.GoFiles = append(pkg.GoFiles, full)
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) == 0 {
			return nil, nil
		}
		cfg := &types.Config{
			Importer: importerFunc(lockedImport),
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		if t.Module != nil && t.Module.GoVersion != "" {
			cfg.GoVersion = "go" + t.Module.GoVersion
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := cfg.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", t.ImportPath, err)
		}
		pkg.Types = tpkg
		return pkg, nil
	})
	if err != nil {
		return nil, err
	}

	mod := &Module{Fset: fset}
	for _, pkg := range checked {
		if pkg != nil {
			mod.Packages = append(mod.Packages, pkg)
		}
	}
	mod.Packages, err = topoSort(mod.Packages)
	if err != nil {
		return nil, err
	}
	return mod, nil
}

// topoSort orders packages so that dependencies precede dependents (Kahn's
// algorithm), breaking ties lexicographically for a deterministic result.
func topoSort(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	indegree := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		indegree[p.Path] = 0
	}
	for _, p := range pkgs {
		for _, dep := range p.Imports {
			if _, ok := byPath[dep]; ok {
				indegree[p.Path]++
				dependents[dep] = append(dependents[dep], p.Path)
			}
		}
	}
	var ready []string
	for path, d := range indegree {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	out := make([]*Package, 0, len(pkgs))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		var unlocked []string
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(pkgs) {
		return nil, errors.New("lint: import cycle among target packages")
	}
	return out, nil
}

// mergeSorted merges two sorted string slices into one sorted slice.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// goList shells out to `go list -export -deps -json`. The go tool is the
// one piece of build machinery the driver leans on; everything downstream
// is stdlib go/parser + go/types.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
