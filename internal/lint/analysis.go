package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/ir"
)

// Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name, Doc, Run(*Pass),
// FactTypes) so the analyzers can migrate to the real framework wholesale
// if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:ignore
	// directives. It must look like a Go identifier.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the rule and the sanctioned fix.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists the fact types this analyzer exports and imports
	// (pointers to zero values). Declaring them lets the drivers register
	// the types for vetx serialization and route stored facts back to the
	// analyzer when dependent packages are analyzed.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's syntax and type information to an analyzer,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos in Files to file positions.
	Fset *token.FileSet
	// Files are the parsed non-test Go files of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// facts is the driver-wide fact store; nil in a Pass built without a
	// driver (all fact operations become no-ops / misses).
	facts *factStore
	// irs caches the per-function SSA/CFG intermediate representation.
	// The driver shares one cache across every analyzer of a package, so
	// detflow, errflow, nilness and unusedwrite all reason over the same
	// IR and each function is lowered exactly once.
	irs *irCache
	// cg caches the package call graph (repro/internal/lint/callgraph),
	// shared like irs so the graph and its SCC condensation are built at
	// most once per package per driver run.
	cg *cgCache
}

// FuncIR returns the value-flow IR (CFG + dominators + SSA, see
// repro/internal/lint/ir) for one function declaration of this package,
// building it on first request and caching it for every later analyzer of
// the same driver run. It returns nil for declarations without a body.
func (p *Pass) FuncIR(fd *ast.FuncDecl) *ir.Func {
	if fd == nil || fd.Body == nil {
		return nil
	}
	if p.irs == nil {
		// Driverless Pass (unit tests): build uncached.
		return ir.Build(p.TypesInfo, fd)
	}
	return p.irs.get(p.TypesInfo, fd)
}

// CallGraph returns the package's call graph (static calls, SSA-resolved
// function values, package-local CHA for interface dispatch — see
// repro/internal/lint/callgraph), built on first request and cached for
// every later analyzer of the same driver run. Function-value resolution
// reuses the shared IR cache, so requesting the graph also warms FuncIR.
func (p *Pass) CallGraph() *callgraph.Graph {
	if p.cg == nil {
		// Driverless Pass (unit tests): build uncached.
		return callgraph.Build(p.TypesInfo, p.Files, p.FuncIR)
	}
	return p.cg.get(p)
}

// cgCache is the per-package call-graph store shared across analyzers.
type cgCache struct {
	mu sync.Mutex
	g  *callgraph.Graph
}

func (c *cgCache) get(p *Pass) *callgraph.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g == nil {
		t0 := time.Now()
		c.g = callgraph.Build(p.TypesInfo, p.Files, p.FuncIR)
		c.g.SCCs() // condense eagerly so the timing covers both
		callGraphNanos.Add(time.Since(t0).Nanoseconds())
	}
	return c.g
}

// irCache is the per-package IR store shared across analyzers.
type irCache struct {
	mu    sync.Mutex
	funcs map[*ast.FuncDecl]*ir.Func
}

func newIRCache() *irCache {
	return &irCache{funcs: make(map[*ast.FuncDecl]*ir.Func)}
}

func (c *irCache) get(info *types.Info, fd *ast.FuncDecl) *ir.Func {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.funcs[fd]; ok {
		return f
	}
	t0 := time.Now()
	f := ir.Build(info, fd)
	ssaBuildNanos.Add(time.Since(t0).Nanoseconds())
	c.funcs[fd] = f
	return f
}

// ssaBuildNanos accumulates wall-clock time spent lowering functions to
// SSA across the whole process, for the lint benchmark's ssa_ns field.
var ssaBuildNanos atomic.Int64

// SSABuildNanos returns the cumulative nanoseconds this process has spent
// building per-function SSA/CFG IR. The -benchjson path records the delta
// across a measured run as ssa_ns.
func SSABuildNanos() int64 { return ssaBuildNanos.Load() }

// callGraphNanos accumulates wall-clock time spent building package call
// graphs (including SCC condensation), for the benchmark's callgraph_ns.
var callGraphNanos atomic.Int64

// CallGraphNanos returns the cumulative nanoseconds spent building call
// graphs. The -benchjson path records the delta as callgraph_ns.
func CallGraphNanos() int64 { return callGraphNanos.Load() }

// summaryNanos accumulates wall-clock time the interprocedural analyzers
// (detflow, errflow, allocflow) spend computing bottom-up per-function
// summaries over the SCC condensation, for the benchmark's summary_ns.
var summaryNanos atomic.Int64

// SummaryNanos returns the cumulative nanoseconds spent computing
// per-function summaries. The -benchjson path records the delta as
// summary_ns.
func SummaryNanos() int64 { return summaryNanos.Load() }

// addSummaryNanos lets analyzers attribute a summary-computation span.
func addSummaryNanos(d time.Duration) { summaryNanos.Add(d.Nanoseconds()) }

// Reportf reports a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact records a fact about obj, visible to this analyzer when
// any dependent package is analyzed later in the same run (or, on the
// `go vet -vettool` path, in a later compilation unit via vetx files).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	p.facts.set(factKey{analyzer: p.Analyzer.Name, pkg: obj.Pkg().Path(), obj: objectKey(obj)}, fact)
}

// ImportObjectFact copies the fact this analyzer previously exported about
// obj into fact (a pointer of the matching concrete type) and reports
// whether one was found. obj may belong to any package — typically a
// dependency resolved through export data.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.get(factKey{analyzer: p.Analyzer.Name, pkg: obj.Pkg().Path(), obj: objectKey(obj)}, fact)
}

// ExportPackageFact records a fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil || p.Pkg == nil {
		return
	}
	p.facts.set(factKey{analyzer: p.Analyzer.Name, pkg: p.Pkg.Path()}, fact)
}

// ImportPackageFact copies the fact this analyzer exported about pkg into
// fact and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.get(factKey{analyzer: p.Analyzer.Name, pkg: pkg.Path()}, fact)
}

// Diagnostic is one finding, mirroring analysis.Diagnostic.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// errorType is the predeclared error interface, shared by analyzers that
// need to ask whether a type implements error.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// enclosingFuncName returns the name of the innermost FuncDecl in stack
// (an ancestor chain as maintained by inspectWithStack), or "" when the
// node is not inside a function declaration (e.g. a var initializer).
// Function literals are attributed to the declaration they appear in.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// inspectWithStack walks every file of the pass in source order, calling
// visit with each node and the stack of its ancestors (outermost first,
// not including the node itself).
func inspectWithStack(pass *Pass, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			visit(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}
