package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file renders findings in machine-readable formats: a flat JSON
// array for scripting, and SARIF 2.1.0 (the OASIS Static Analysis Results
// Interchange Format) for CI annotation surfaces like GitHub code
// scanning. Only the subset of SARIF the findings populate is modelled;
// every struct field maps 1:1 onto the spec's property of the same name.

// SARIFSchemaURI and SARIFVersion identify the emitted dialect.
const (
	SARIFSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

// SARIFLog is the top-level SARIF document.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one invocation of one tool.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool wraps the driver description.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes the analysis tool and its rules.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer, keyed by its name.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
	FullDescription  SARIFMessage `json:"fullDescription,omitempty"`
}

// SARIFMessage is a text wrapper.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations,omitempty"`
}

// SARIFLocation wraps a physical location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is a file plus an optional region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           *SARIFRegion          `json:"region,omitempty"`
}

// SARIFArtifactLocation names the file.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is a 1-based source region.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ToSARIF converts findings into a SARIF 2.1.0 log. The rules table lists
// every analyzer of the run (findings or not) plus the synthetic
// lintdirective rule, so consumers can enumerate the suite; results refer
// to rules by both id and index as the spec recommends.
func ToSARIF(findings []Finding, analyzers []*Analyzer) *SARIFLog {
	ruleIndex := make(map[string]int)
	var rules []SARIFRule
	addRule := func(id, summary, full string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, SARIFRule{
			ID:               id,
			ShortDescription: SARIFMessage{Text: summary},
			FullDescription:  SARIFMessage{Text: full},
		})
	}
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		addRule(a.Name, summary, a.Doc)
	}
	addRule("lintdirective", "malformed or unknown //lint: suppression directive",
		"//lint:ignore and //lint:file-ignore directives must carry a reason and name registered analyzers; anything else is reported so suppressions stay auditable.")

	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		if _, ok := ruleIndex[f.Analyzer]; !ok {
			addRule(f.Analyzer, f.Analyzer, f.Analyzer)
		}
		r := SARIFResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   SARIFMessage{Text: f.Message},
		}
		if f.Pos.Filename != "" {
			loc := SARIFPhysicalLocation{
				ArtifactLocation: SARIFArtifactLocation{URI: f.Pos.Filename},
			}
			if f.Pos.Line > 0 {
				loc.Region = &SARIFRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
			}
			r.Locations = []SARIFLocation{{PhysicalLocation: loc}}
		}
		results = append(results, r)
	}

	return &SARIFLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:           "otem-lint",
				InformationURI: "https://github.com/otem/repro/tree/main/internal/lint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

// WriteSARIF renders findings as an indented SARIF 2.1.0 document.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	data, err := json.MarshalIndent(ToSARIF(findings, analyzers), "", "  ")
	if err != nil {
		return fmt.Errorf("lint: encode sarif: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// jsonFinding is the flat -format=json record.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a flat JSON array (never null: zero
// findings encode as []).
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: encode json: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText renders findings in the classic one-line-per-finding form.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer); err != nil {
			return err
		}
	}
	return nil
}
