package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"

	"repro/internal/lint/callgraph"
)

// AllocFact marks a function that may allocate on some non-failing path:
// its body contains an allocating construct (make, new, append, map
// write, closure creation, interface boxing, go/defer, string
// concatenation) or it calls — transitively, through static edges — a
// function that does. The fact is exported on the function object so the
// hot-path gate in dependent packages sees allocation buried arbitrarily
// deep in module dependencies without re-analyzing them. Absence of the
// fact on a module function means "proven allocation-free" (under the
// analysis' documented exemptions), which is what lets cross-package hot
// paths stay enforceable.
type AllocFact struct {
	// Reason is the human-readable chain, e.g.
	// "calls optimize.Workspace.ensure (which makes a slice)".
	Reason string
}

// AFact marks AllocFact as a Fact.
func (*AllocFact) AFact() {}

func (f *AllocFact) String() string { return f.Reason }

// AllocFlow is the compile-time version of the BENCH_sim.json allocs/step
// budget: functions reachable from a `//lint:hotpath <reason>` root must
// be provably allocation-free, transitively.
//
// The analysis computes a per-function allocation summary bottom-up over
// the package call graph's SCC condensation, exports AllocFacts for
// may-allocating functions, and then walks the hot region — every
// function reachable from a hotpath-annotated declaration through static
// local edges — reporting each allocation site and each call whose callee
// carries an (imported or local) AllocFact.
//
// Exemptions, all deliberate policy:
//
//   - Failing returns: allocations inside a return statement that also
//     returns a non-nil error (return nil, fmt.Errorf(...)) are error-path
//     work, cold by definition.
//   - panic arguments: the program is already dying.
//   - `//lint:coldpath <reason>` on a declaration: a reviewed amortized
//     or setup path (buffer growth, first-call initialization); the walk
//     stops there and no fact is exported for it.
//   - Dynamic dispatch: calls through unresolved function values and
//     interface methods are not followed (implementations outside the
//     package are invisible; local CHA candidates may be cold
//     implementations). The indirection itself does not allocate; callees
//     that should be allocation-free need their own hotpath roots.
//   - Stdlib: calls into a small allowlist (math, math/bits, errors.Is,
//     sort.Search) are trusted allocation-free; any other stdlib call on
//     a hot path is reported as may-allocate at the call site.
var AllocFlow = &Analyzer{
	Name: "allocflow",
	Doc: `forbid allocation in functions reachable from //lint:hotpath roots

A function annotated //lint:hotpath <reason> runs at embedded rates (the
warm MPC solve, the fleet vehicle-step loop); it and everything it
reaches through static calls must be allocation-free: no make, new,
append, map writes, closure creation, interface boxing of non-pointer
values, go/defer, or string concatenation, and no calls to functions
whose exported AllocFact says they may allocate. Allocations on failing
returns and in panic arguments are exempt (error paths are cold), and
//lint:coldpath <reason> marks a reviewed amortized path the gate stops
at. Hoist buffers into warm workspaces instead of allocating per step.`,
	Run:       runAllocFlow,
	FactTypes: []Fact{(*AllocFact)(nil)},
}

// allocSite is one may-allocating construct (or suspect external call)
// in a function body, already filtered through the exemptions.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocInfo is the per-function local analysis: its allocation sites and
// the call expressions the exemptions silence (so summary propagation
// and the hot-region walk skip the same edges).
type allocInfo struct {
	sites  []allocSite
	exempt map[*ast.CallExpr]bool
}

func runAllocFlow(pass *Pass) error {
	g := pass.CallGraph()
	t0 := time.Now()

	infos := make(map[*callgraph.Node]*allocInfo, len(g.Nodes))
	cold := make(map[*callgraph.Node]bool)
	for _, n := range g.Nodes {
		if n.Decl != nil {
			if _, ok := lintAnnotation(n.Decl, "coldpath"); ok {
				cold[n] = true
			}
		}
		infos[n] = collectAllocInfo(pass, n)
	}

	// Bottom-up summaries: a function may allocate if it has a local site
	// or reaches one through a static edge. Reasons only transition
	// empty->set, so the per-component loop terminates.
	reason := make(map[*callgraph.Node]string)
	summarize := func(n *callgraph.Node) string {
		info := infos[n]
		if len(info.sites) > 0 {
			return info.sites[0].what
		}
		for _, e := range n.Out {
			callee := e.Callee
			if callee == nil || e.CHA {
				continue
			}
			if e.Site != nil && info.exempt[e.Site] {
				continue
			}
			if cold[callee] {
				continue
			}
			if r := reason[callee]; r != "" {
				return fmt.Sprintf("calls %s (which %s)", callee.Name(), r)
			}
		}
		return ""
	}
	for _, scc := range g.SCCs() {
		for again := true; again; {
			again = false
			for _, n := range scc {
				if reason[n] != "" || cold[n] {
					continue
				}
				if r := summarize(n); r != "" {
					reason[n] = r
					again = len(scc) > 1
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if n.Fn != nil && !cold[n] && reason[n] != "" {
			pass.ExportObjectFact(n.Fn, &AllocFact{Reason: reason[n]})
		}
	}
	addSummaryNanos(time.Since(t0))

	// Hot-region enforcement: walk the static local closure of every
	// hotpath root, reporting each node's own sites exactly once even
	// when several roots share callees.
	reported := make(map[string]bool)
	report := func(pos token.Pos, msg string) {
		key := fmt.Sprintf("%d|%s", pos, msg)
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, "%s", msg)
	}
	for _, root := range g.Nodes {
		if root.Decl == nil {
			continue
		}
		if _, ok := lintAnnotation(root.Decl, "hotpath"); !ok {
			continue
		}
		rootName := root.Name()
		visited := make(map[*callgraph.Node]bool)
		stack := []*callgraph.Node{root}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[n] {
				continue
			}
			visited[n] = true
			info := infos[n]
			for _, s := range info.sites {
				report(s.pos, fmt.Sprintf("allocation on the hot path rooted at %s: %s; hot-path code must be allocation-free — hoist it into a warm buffer or mark a reviewed cold branch //lint:coldpath <reason>", rootName, s.what))
			}
			for _, e := range n.Out {
				if e.Callee == nil || e.CHA {
					continue
				}
				if e.Site != nil && info.exempt[e.Site] {
					continue
				}
				if cold[e.Callee] || visited[e.Callee] {
					continue
				}
				stack = append(stack, e.Callee)
			}
		}
	}
	return nil
}

// lintAnnotation scans a declaration's doc comment for a
// `//lint:<verb> <reason>` annotation and returns the reason.
func lintAnnotation(fd *ast.FuncDecl, verb string) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:"+verb)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // a longer verb, e.g. //lint:hotpathology
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// allocWalker collects one node's allocation sites and exempt call set.
type allocWalker struct {
	pass *Pass
	node *callgraph.Node
	info *allocInfo
	// exemptRanges are source spans inside which allocation is forgiven:
	// failing returns and panic arguments.
	exemptRanges [][2]token.Pos
}

// collectAllocInfo analyzes one function body: allocation constructs,
// suspect external calls, and the exemption spans.
func collectAllocInfo(pass *Pass, n *callgraph.Node) *allocInfo {
	w := &allocWalker{
		pass: pass,
		node: n,
		info: &allocInfo{exempt: make(map[*ast.CallExpr]bool)},
	}
	var body *ast.BlockStmt
	if n.Decl != nil {
		body = n.Decl.Body
	} else {
		body = n.Lit.Body
	}
	w.findExemptRanges(body)
	w.walk(body)
	return w.info
}

// sig returns the node's own signature (for return-boxing checks).
func (w *allocWalker) sig() *types.Signature {
	if w.node.Fn != nil {
		return w.node.Fn.Type().(*types.Signature)
	}
	if tv, ok := w.pass.TypesInfo.Types[w.node.Lit]; ok {
		if s, ok := tv.Type.(*types.Signature); ok {
			return s
		}
	}
	return nil
}

// findExemptRanges records the spans of failing returns (a return whose
// error-position expression is not the nil literal — that path is
// already the cold, failing one) and panic arguments.
func (w *allocWalker) findExemptRanges(body *ast.BlockStmt) {
	sig := w.sig()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == w.node.Lit
		case *ast.ReturnStmt:
			if sig != nil && w.failingReturn(sig, n) {
				w.exemptRanges = append(w.exemptRanges, [2]token.Pos{n.Pos(), n.End()})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					w.exemptRanges = append(w.exemptRanges, [2]token.Pos{n.Lparen, n.Rparen})
				}
			}
		}
		return true
	})
}

// failingReturn reports whether ret returns a non-nil value in some
// error-typed result position (including `return f()` tuple forwarding,
// where nil-ness is the callee's business).
func (w *allocWalker) failingReturn(sig *types.Signature, ret *ast.ReturnStmt) bool {
	res := sig.Results()
	hasErr := false
	for i := 0; i < res.Len(); i++ {
		if implementsError(res.At(i).Type()) {
			hasErr = true
			break
		}
	}
	if !hasErr || len(ret.Results) == 0 {
		return false
	}
	if len(ret.Results) != res.Len() {
		return true // tuple forwarding: conservative toward exemption
	}
	for i := 0; i < res.Len(); i++ {
		if implementsError(res.At(i).Type()) && !isNilExpr(w.pass.TypesInfo, ret.Results[i]) {
			return true
		}
	}
	return false
}

func (w *allocWalker) exempt(pos token.Pos) bool {
	for _, r := range w.exemptRanges {
		if r[0] <= pos && pos <= r[1] {
			return true
		}
	}
	return false
}

func (w *allocWalker) site(pos token.Pos, what string) {
	if w.exempt(pos) {
		return
	}
	w.info.sites = append(w.info.sites, allocSite{pos: pos, what: what})
}

// walk scans the body for allocating constructs, stopping at nested
// function literals (their sites belong to their own node; creating one
// is this node's allocation).
func (w *allocWalker) walk(root ast.Node) {
	info := w.pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == w.node.Lit {
				return true
			}
			w.site(n.Pos(), "creates a func literal (closure)")
			return false
		case *ast.GoStmt:
			w.site(n.Pos(), "starts a goroutine")
		case *ast.DeferStmt:
			w.site(n.Pos(), "defers a call")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				w.site(n.Pos(), "concatenates strings")
			}
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.ValueSpec:
			w.valueSpec(n)
		case *ast.ReturnStmt:
			w.returnBoxing(n)
		case *ast.CallExpr:
			if w.exempt(n.Pos()) {
				// Calls on failing returns and in panic arguments are cold;
				// recording them silences the matching call-graph edges too.
				w.info.exempt[n] = true
			}
			w.call(n)
			if _, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, arg := range n.Args {
					w.walk(arg)
				}
				return false // the literal's body belongs to its node
			}
		}
		return true
	})
}

// assign flags map writes, string op-concat and interface boxing on
// assignment.
func (w *allocWalker) assign(as *ast.AssignStmt) {
	info := w.pass.TypesInfo
	for _, l := range as.Lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					w.site(l.Pos(), "writes to a map (may grow it)")
				}
			}
		}
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.TypeOf(as.Lhs[0])) {
		w.site(as.Pos(), "concatenates strings")
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if boxesInterface(info, info.TypeOf(as.Lhs[i]), as.Rhs[i]) {
				w.site(as.Rhs[i].Pos(), boxWhat(info, as.Rhs[i]))
			}
		}
	}
}

// valueSpec flags interface boxing in declarations.
func (w *allocWalker) valueSpec(vs *ast.ValueSpec) {
	info := w.pass.TypesInfo
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		if obj, ok := info.Defs[name].(*types.Var); ok {
			if boxesInterface(info, obj.Type(), vs.Values[i]) {
				w.site(vs.Values[i].Pos(), boxWhat(info, vs.Values[i]))
			}
		}
	}
}

// returnBoxing flags interface boxing in (non-exempt) returns.
func (w *allocWalker) returnBoxing(ret *ast.ReturnStmt) {
	sig := w.sig()
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		if boxesInterface(w.pass.TypesInfo, sig.Results().At(i).Type(), r) {
			w.site(r.Pos(), boxWhat(w.pass.TypesInfo, r))
		}
	}
}

// call flags allocating builtins, allocating conversions, boxing call
// arguments, and suspect external callees.
func (w *allocWalker) call(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies.
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			if allocatingConversion(to, from) {
				w.site(call.Pos(), "converts between string and byte/rune slice (copies)")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.site(call.Pos(), "calls make")
			case "new":
				w.site(call.Pos(), "calls new")
			case "append":
				w.site(call.Pos(), "appends to a slice (may grow it)")
			}
			return
		}
	}

	// Boxing at the call boundary: concrete non-pointer values passed to
	// interface-typed parameters.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			params := sig.Params()
			for i, arg := range call.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && call.Ellipsis.IsValid() && i == len(call.Args)-1:
					pt = params.At(params.Len() - 1).Type() // xs... passes the slice
				case sig.Variadic() && i >= params.Len()-1:
					if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
						pt = sl.Elem()
						if boxesInterface(info, pt, arg) {
							w.site(arg.Pos(), boxWhat(info, arg))
							continue
						}
						// Every spread variadic call materializes an
						// argument slice.
						if i == params.Len()-1 {
							w.site(arg.Pos(), "passes variadic arguments (allocates the argument slice)")
						}
						continue
					}
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if boxesInterface(info, pt, arg) {
					w.site(arg.Pos(), boxWhat(info, arg))
				}
			}
		}
	}

	// External callees: module functions answer through AllocFacts
	// (absence = proven clean); stdlib answers through the allowlist.
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == w.pass.Pkg {
		return // local edges are the summary fixpoint's business
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
			return // dynamic dispatch is policy-exempt, wherever the interface lives
		}
	}
	if moduleAPI(callee.Pkg()) {
		var fact AllocFact
		if w.pass.ImportObjectFact(callee, &fact) {
			w.site(call.Pos(), fmt.Sprintf("calls %s.%s (which %s)", callee.Pkg().Path(), callee.Name(), fact.Reason))
		}
		return
	}
	if stdlibAllocFree(callee) {
		return
	}
	w.site(call.Pos(), fmt.Sprintf("calls %s.%s, which is outside the allocation-free allowlist and may allocate", callee.Pkg().Path(), callee.Name()))
}

// stdlibAllocFree is the trusted allocation-free allowlist: whole
// packages whose exported functions never allocate, plus specific
// functions from mixed packages.
func stdlibAllocFree(fn *types.Func) bool {
	pkg := fn.Pkg().Path()
	switch pkg {
	case "math", "math/bits":
		return true
	}
	switch pkg + "." + fn.Name() {
	case "errors.Is", "errors.As", "sort.Search":
		return true
	}
	return false
}

// boxesInterface reports whether assigning e to a target of type `to`
// boxes a concrete value into an interface in a way that allocates:
// the target is an interface, the value is concrete (not nil, not
// already an interface), and its representation is not pointer-shaped
// (pointers, channels, maps and funcs fit the interface word directly).
func boxesInterface(info *types.Info, to types.Type, e ast.Expr) bool {
	if to == nil || e == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	from := tv.Type
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface-to-interface carries the same word
	}
	return !pointerShaped(from)
}

// pointerShaped reports whether t's values occupy a single pointer word
// (so interface conversion stores them directly, without allocating).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func boxWhat(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	return fmt.Sprintf("boxes a %s into an interface", types.TypeString(t, types.RelativeTo(nil)))
}

// allocatingConversion reports string <-> []byte/[]rune conversions,
// which copy their operand.
func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
