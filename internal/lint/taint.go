package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/ir"
)

// TaintFact marks a package-level variable or struct field whose stored
// value derives from a nondeterminism source: the global math/rand
// functions, time.Now, a function carrying a NondetFact, or another
// tainted value. detflow exports it so that a handle on the global source
// smuggled through a field or variable is still caught when a
// deterministic package reads it back out — a pure call-graph analysis
// never sees that flow.
//
// Field facts are keyed by `Type.Field` within their package (see
// objectKey), so two same-named fields of different named types no longer
// share taint. Fields of anonymous struct types still key by bare name,
// which can only over-approximate, never hide a flow.
type TaintFact struct {
	// Reason describes how the stored value reaches nondeterminism, e.g.
	// "is time.Now" or "comes from helpers.GlobalRNG (which calls time.Now)".
	Reason string
}

// AFact marks TaintFact as a Fact.
func (*TaintFact) AFact() {}

func (f *TaintFact) String() string { return f.Reason }

// taintEngine evaluates, over the shared SSA IR, whether an expression's
// value derives from a nondeterminism source. It answers two questions:
//
//   - value taint (expr): does this expression's value carry
//     nondeterminism — is it a tainted function value, a generator seeded
//     from the wall clock, a draw from such a generator?
//   - call effect (callEffect): does executing this call perform
//     nondeterminism — call a banned function, a NondetFact function, a
//     method on a tainted receiver, or a tainted function value?
//
// Local variables resolve through SSA values (Def right-hand sides, phi
// edges), so taint survives aliasing and branch joins; stores to struct
// fields and package-level variables are accumulated in objTaint (and
// exported as TaintFacts) so taint survives a round trip through the
// heap. Address-taken locals the SSA renamer drops resolve through their
// store/load cells (ir.Cell): tainted if any recorded store — direct or
// through a may-aliasing pointer — is tainted. Stores the cell summary
// does not model read as clean, keeping the engine's under-approximation
// direction: it misses findings rather than inventing them.
type taintEngine struct {
	pass *Pass
	// funcReason reports why calling fn is (transitively)
	// nondeterministic, consulting the analyzer's per-package fixpoint
	// state and imported NondetFacts. Empty means clean-so-far.
	funcReason func(fn *types.Func) string
	// objTaint holds the taint of stored locations (struct fields,
	// package-level vars) of the package under analysis. It grows
	// monotonically across fixpoint rounds.
	objTaint map[types.Object]string

	// Per-round memo tables, cleared by resetMemos whenever funcReason or
	// objTaint may have grown.
	vals map[ir.Value]string
	lits map[*ast.FuncLit]string
	// busy guards recursive evaluation across phi cycles; a cycle edge
	// optimistically reads as clean (taint, if any, enters the cycle
	// through an acyclic edge the traversal still explores).
	busy     map[ir.Value]bool
	busyLit  map[*ast.FuncLit]bool
	busyCell map[*ir.Cell]bool
	sawCycle bool
}

func newTaintEngine(pass *Pass, funcReason func(*types.Func) string) *taintEngine {
	t := &taintEngine{
		pass:       pass,
		funcReason: funcReason,
		objTaint:   make(map[types.Object]string),
	}
	t.resetMemos()
	return t
}

// resetMemos discards cached evaluations. The underlying inputs
// (funcReason, objTaint, facts) only ever grow, so stale clean results are
// the one hazard; recomputing after each fixpoint round removes it.
func (t *taintEngine) resetMemos() {
	t.vals = make(map[ir.Value]string)
	t.lits = make(map[*ast.FuncLit]string)
	t.busy = make(map[ir.Value]bool)
	t.busyLit = make(map[*ast.FuncLit]bool)
	t.busyCell = make(map[*ir.Cell]bool)
}

// setObjTaint records the first taint reason for a stored location and
// reports whether it was new.
func (t *taintEngine) setObjTaint(obj types.Object, reason string) bool {
	if _, ok := t.objTaint[obj]; ok {
		return false
	}
	t.objTaint[obj] = reason
	return true
}

// expr returns the taint reason of e's value, or "" when clean. fn is the
// IR of the enclosing function, used to resolve local variables through
// SSA; nil outside function bodies (package-level initializers) or inside
// function literals, where identifiers fall back to stored-location taint.
func (t *taintEngine) expr(fn *ir.Func, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return t.ident(fn, e)
	case *ast.ParenExpr:
		return t.expr(fn, e.X)
	case *ast.SelectorExpr:
		return t.selector(fn, e)
	case *ast.CallExpr:
		return t.call(fn, e)
	case *ast.BinaryExpr:
		// Arithmetic launders but does not clean: Now().UnixNano() % 7 is
		// still the wall clock.
		if r := t.expr(fn, e.X); r != "" {
			return r
		}
		return t.expr(fn, e.Y)
	case *ast.UnaryExpr:
		return t.expr(fn, e.X)
	case *ast.StarExpr:
		return t.expr(fn, e.X)
	case *ast.IndexExpr:
		return t.expr(fn, e.X)
	case *ast.TypeAssertExpr:
		return t.expr(fn, e.X)
	case *ast.FuncLit:
		return t.funcLit(e)
	case *ast.CompositeLit:
		// Struct literals record per-field taint via scanStores; the
		// aggregate value itself is not a draw. Element containers
		// (slices, arrays, maps) holding a tainted element are tainted —
		// indexing only strips the container.
		if tv := t.pass.TypesInfo.TypeOf(e); tv != nil {
			if _, ok := tv.Underlying().(*types.Struct); ok {
				return ""
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if r := t.expr(fn, el); r != "" {
				return r
			}
		}
		return ""
	}
	return ""
}

func (t *taintEngine) ident(fn *ir.Func, id *ast.Ident) string {
	switch obj := t.pass.TypesInfo.Uses[id].(type) {
	case *types.Func:
		return t.funcValueReason(obj)
	case *types.Var:
		if fn != nil && fn.Tracked(obj) {
			if v := fn.ValueAt(id); v != nil {
				return t.value(fn, v)
			}
			return ""
		}
		if fn != nil {
			if c := fn.Cell(obj); c != nil {
				if r := t.cellTaint(fn, c); r != "" {
					return r
				}
			}
		}
		return t.object(obj)
	}
	return ""
}

// cellTaint is the may-taint of an address-taken local: tainted if any
// recorded store — direct x = e or through a may-aliasing pointer
// *p = e — stores a tainted value. Escape does not matter for a
// may-claim, and stores the summary does not model (inc/dec, range,
// op-assign) read as clean, matching the engine's under-approximation.
// busyCell breaks self-referential stores (x = x + draw()).
func (t *taintEngine) cellTaint(fn *ir.Func, c *ir.Cell) string {
	if t.busyCell[c] {
		return ""
	}
	t.busyCell[c] = true
	defer delete(t.busyCell, c)
	for _, s := range c.Stores {
		if s.Rhs == nil {
			continue
		}
		if r := t.expr(fn, s.Rhs); r != "" {
			return r
		}
	}
	return ""
}

func (t *taintEngine) selector(fn *ir.Func, sel *ast.SelectorExpr) string {
	switch obj := t.pass.TypesInfo.Uses[sel.Sel].(type) {
	case *types.Func:
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			// Method value x.M: nondeterministic iff the receiver is.
			return t.expr(fn, sel.X)
		}
		return t.funcValueReason(obj)
	case *types.Var:
		return t.object(obj)
	}
	return ""
}

// object returns the taint of a stored location: a field or package-level
// variable recorded locally this run, or a TaintFact exported when a
// dependency was analyzed.
func (t *taintEngine) object(obj types.Object) string {
	if r, ok := t.objTaint[obj]; ok {
		return r
	}
	if obj.Pkg() != nil && obj.Pkg() != t.pass.Pkg {
		var fact TaintFact
		if t.pass.ImportObjectFact(obj, &fact) {
			return fact.Reason
		}
	}
	return ""
}

// funcValueReason is the taint of referencing fn as a value (not calling
// it): invoking the value later performs whatever fn performs.
func (t *taintEngine) funcValueReason(fn *types.Func) string {
	if r := directNondetReason(fn); r != "" {
		return "is " + strings.TrimPrefix(r, "calls ")
	}
	if r := t.funcReason(fn); r != "" {
		return fmt.Sprintf("is %s (which %s)", t.funcName(fn), r)
	}
	return ""
}

// funcName qualifies cross-package functions with their import path, the
// same spelling NondetFact reason chains use.
func (t *taintEngine) funcName(fn *types.Func) string {
	if fn.Pkg() != nil && fn.Pkg() != t.pass.Pkg {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// call returns the taint of a call expression's result.
func (t *taintEngine) call(fn *ir.Func, call *ast.CallExpr) string {
	if tv, ok := t.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: int64(splitmix64(seed)) keeps the operand's taint
		// (and a clean operand stays clean).
		if len(call.Args) == 1 {
			return t.expr(fn, call.Args[0])
		}
		return ""
	}
	callee := staticCallee(t.pass.TypesInfo, call)
	if callee == nil {
		// Calling a tainted function value yields a tainted result.
		return t.expr(fn, call.Fun)
	}
	if randConstructor(callee) {
		// rand.New / rand.NewSource / rand.NewPCG are deterministic
		// constructors: the generator is exactly as nondeterministic as
		// its seed. This is the sanitizer that keeps
		// rand.New(rand.NewSource(splitmix64(seed))) clean.
		for _, a := range call.Args {
			if r := t.expr(fn, a); r != "" {
				return r
			}
		}
		return ""
	}
	if r := directNondetReason(callee); r != "" {
		return "comes from " + strings.TrimPrefix(r, "calls ")
	}
	if r := t.funcReason(callee); r != "" {
		return fmt.Sprintf("comes from %s (which %s)", t.funcName(callee), r)
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		// A draw from a tainted generator is tainted; from a clean seeded
		// one, clean.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return t.expr(fn, sel.X)
		}
	}
	return ""
}

// randConstructor reports whether fn is one of the deterministic
// generator constructors whose output taint equals its input taint.
func randConstructor(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return true
		}
	}
	return false
}

// callEffect reports why *executing* call performs nondeterminism, or ""
// when it provably does not (under the engine's under-approximation).
func (t *taintEngine) callEffect(fn *ir.Func, call *ast.CallExpr) string {
	if tv, ok := t.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return "" // conversion, not a call
	}
	callee := staticCallee(t.pass.TypesInfo, call)
	if callee != nil {
		if r := directNondetReason(callee); r != "" {
			return r
		}
		if r := t.funcReason(callee); r != "" {
			return fmt.Sprintf("calls %s (which %s)", t.funcName(callee), r)
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if r := t.expr(fn, sel.X); r != "" {
					return fmt.Sprintf("calls %s on a value that %s", callee.Name(), r)
				}
			}
		}
		return ""
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if r := t.funcLit(lit); r != "" {
			return fmt.Sprintf("calls a func literal (which %s)", r)
		}
		return ""
	}
	if r := t.expr(fn, call.Fun); r != "" {
		return fmt.Sprintf("calls a function value that %s", r)
	}
	return ""
}

// funcLit is the taint of a function literal as a value: invoking it later
// performs whatever its body performs. Variables captured from the
// enclosing function are untracked by the IR and read as clean; literals
// reaching nondeterminism through their own calls are still caught.
func (t *taintEngine) funcLit(lit *ast.FuncLit) string {
	if r, ok := t.lits[lit]; ok {
		return r
	}
	if t.busyLit[lit] {
		return ""
	}
	t.busyLit[lit] = true
	r := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if r != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			r = t.callEffect(nil, call)
		}
		return r == ""
	})
	delete(t.busyLit, lit)
	t.lits[lit] = r
	return r
}

// value resolves the taint of one SSA value.
func (t *taintEngine) value(fn *ir.Func, v ir.Value) string {
	if r, ok := t.vals[v]; ok {
		return r
	}
	if t.busy[v] {
		t.sawCycle = true
		return ""
	}
	t.busy[v] = true
	saved := t.sawCycle
	t.sawCycle = false
	r := t.valueUncached(fn, v)
	delete(t.busy, v)
	if r != "" || !t.sawCycle {
		// A clean result computed through a cycle back-edge is provisional
		// (the cycle member was read optimistically) — don't memoize it.
		t.vals[v] = r
	}
	t.sawCycle = saved || t.sawCycle
	return r
}

func (t *taintEngine) valueUncached(fn *ir.Func, v ir.Value) string {
	switch v := v.(type) {
	case *ir.Phi:
		for _, e := range v.Edges {
			if e == nil {
				continue
			}
			if r := t.value(fn, e); r != "" {
				return r
			}
		}
		return ""
	case *ir.Def:
		// x++ / x-- and op-assigns keep the previous value's provenance
		// (the renamer recorded it as a use at the defining identifier).
		if v.Kind == ir.DefIncDec || (v.Kind == ir.DefAssign && v.Tok != token.ASSIGN && v.Tok != token.DEFINE) {
			if old := fn.ValueAt(v.Ident); old != nil && old != ir.Value(v) {
				if r := t.value(fn, old); r != "" {
					return r
				}
			}
		}
		if v.Rhs != nil {
			return t.expr(fn, v.Rhs)
		}
		// Tuple assignment x, y := f(): both sides carry the call's taint.
		if as, ok := v.Stmt.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			return t.expr(fn, as.Rhs[0])
		}
		if vs, ok := v.Stmt.(*ast.DeclStmt); ok {
			if gd, ok := vs.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if s, ok := spec.(*ast.ValueSpec); ok && len(s.Values) == 1 && len(s.Names) > 1 {
						for _, name := range s.Names {
							if name == v.Ident {
								return t.expr(fn, s.Values[0])
							}
						}
					}
				}
			}
		}
		return ""
	}
	return "" // Param, Unknown: clean by construction
}

// scanStores walks root for stores whose target outlives the expression —
// struct fields and package-level variables — and records the taint of
// every stored value. It reports whether any new location became tainted
// (the analyzer's package fixpoint re-runs until this settles).
func (t *taintEngine) scanStores(fn *ir.Func, root ast.Node) bool {
	changed := false
	record := func(obj types.Object, reason string) {
		if obj != nil && reason != "" && t.setObjTaint(obj, reason) {
			changed = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			paired := len(n.Lhs) == len(n.Rhs)
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if paired {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if obj := t.storeTarget(lhs); obj != nil {
					record(obj, t.expr(fn, rhs))
				}
			}
		case *ast.ValueSpec:
			// Package-level var declarations (local ones fail the
			// storeTarget scope test via Defs below).
			for i, name := range n.Names {
				var val ast.Expr
				switch {
				case len(n.Values) == len(n.Names):
					val = n.Values[i]
				case len(n.Values) == 1:
					val = n.Values[0]
				}
				if val == nil {
					continue
				}
				if v, ok := t.pass.TypesInfo.Defs[name].(*types.Var); ok && persistentVar(v, t.pass.Pkg) {
					record(v, t.expr(fn, val))
				}
			}
		case *ast.CompositeLit:
			tv := t.pass.TypesInfo.TypeOf(n)
			if tv == nil {
				return true
			}
			st, ok := tv.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				var field *types.Var
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						field, _ = t.pass.TypesInfo.Uses[key].(*types.Var)
					}
					val = kv.Value
				} else if i < st.NumFields() {
					field = st.Field(i)
				}
				if field != nil && field.Pkg() == t.pass.Pkg {
					record(field, t.expr(fn, val))
				}
			}
		}
		return true
	})
	return changed
}

// storeTarget resolves an assignment target to a location whose stored
// value outlives the function: a struct field (x.f = v) or a
// package-level variable of the package under analysis.
func (t *taintEngine) storeTarget(lhs ast.Expr) types.Object {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := t.pass.TypesInfo.Uses[l.Sel].(*types.Var); ok && v.Pkg() == t.pass.Pkg {
			if v.IsField() || persistentVar(v, t.pass.Pkg) {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[l].(*types.Var); ok && persistentVar(v, t.pass.Pkg) {
			return v
		}
	}
	return nil
}

// persistentVar reports whether v is a package-level variable of pkg.
func persistentVar(v *types.Var, pkg *types.Package) bool {
	return v != nil && !v.IsField() && v.Pkg() == pkg && v.Parent() == pkg.Scope()
}
