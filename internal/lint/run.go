package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/runner"
)

// Finding is a Diagnostic with its position resolved, ready to print or
// assert on.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every loaded package, filters the results
// through //lint:ignore and //lint:file-ignore directives, and returns the
// surviving findings sorted by position.
//
// Packages are visited in dependency order (Load topo-sorts them), so
// facts exported while analyzing a package are visible when its dependents
// are analyzed. This is the sequential reference driver; RunParallel
// produces identical output by scheduling the same per-package analysis
// over the dependency DAG.
//
// Two directive forms are honoured, mirroring staticcheck's:
//
//	//lint:ignore <checks> <reason>       suppress on this or the next line
//	//lint:file-ignore <checks> <reason>  suppress in the whole file
//
// <checks> is a comma-separated list of analyzer names, or "all". The
// reason is mandatory, and every name must belong to the registered suite
// — a directive without a reason, or naming an unknown analyzer, is
// itself reported as a finding (analyzer "lintdirective"), so
// suppressions stay auditable and typos cannot silently suppress nothing.
func (m *Module) Run(analyzers []*Analyzer) []Finding {
	registerFactTypes(analyzers)
	store := newFactStore()
	var out []Finding
	for _, pkg := range m.Packages {
		out = append(out, analyzePackage(m.Fset, pkg, analyzers, store)...)
	}
	sortFindings(out)
	return out
}

// RunParallel runs the same analysis as Run, scheduled over the package
// dependency DAG on the given worker pool (nil selects the default
// GOMAXPROCS-bounded pool): the packages are partitioned into Kahn waves
// — wave k holds packages all of whose in-module dependencies sit in
// waves < k — and each wave's packages are analyzed concurrently, so
// facts from every dependency are always complete before a dependent
// starts. Fan-out is bounded by the pool, cancellation is cooperative via
// ctx, and a panicking analyzer surfaces as a *runner.PanicError instead
// of crashing the driver.
//
// The returned findings are byte-identical to Run's at any worker count.
func (m *Module) RunParallel(ctx context.Context, pool *runner.Pool, analyzers []*Analyzer) ([]Finding, error) {
	registerFactTypes(analyzers)
	store := newFactStore()
	var out []Finding
	for _, wave := range m.waves() {
		wave := wave
		perPkg, err := runner.Map(ctx, pool, len(wave), func(ctx context.Context, i int) ([]Finding, error) {
			return analyzePackage(m.Fset, wave[i], analyzers, store), nil
		})
		if err != nil {
			return nil, err
		}
		for _, fs := range perPkg {
			out = append(out, fs...)
		}
	}
	sortFindings(out)
	return out, nil
}

// waves partitions the module's packages into dependency levels: wave 0
// holds packages with no in-module dependencies, wave k packages whose
// deepest dependency chain has length k. Packages preserve their
// topological (tie-broken lexicographic) order within a wave.
func (m *Module) waves() [][]*Package {
	level := make(map[string]int, len(m.Packages))
	var waves [][]*Package
	for _, pkg := range m.Packages {
		l := 0
		for _, dep := range pkg.Imports {
			if dl, ok := level[dep]; ok && dl+1 > l {
				l = dl + 1
			}
		}
		level[pkg.Path] = l
		for len(waves) <= l {
			waves = append(waves, nil)
		}
		waves[l] = append(waves[l], pkg)
	}
	return waves
}

// analyzePackage runs every analyzer over one package, applying
// suppression directives and the partial-findings policy: when an
// analyzer's Run returns an error, any diagnostics it emitted before
// failing are dropped — a crashing analyzer must not masquerade as either
// a clean pass or a complete one — and a single synthetic finding records
// the failure and the drop count.
func analyzePackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, store *factStore) []Finding {
	sup, out := collectDirectives(fset, pkg.Files, knownCheckNames(analyzers))
	irs := newIRCache() // one IR per function, shared by every analyzer below
	cg := &cgCache{}    // one call graph per package, likewise shared
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     store,
			irs:       irs,
			cg:        cg,
		}
		var got []Finding
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.suppressed(a.Name, pos) {
				return
			}
			got = append(got, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			msg := fmt.Sprintf("analyzer failed: %v", err)
			if n := len(got); n > 0 {
				msg = fmt.Sprintf("%s (dropped %d partial finding(s))", msg, n)
			}
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      token.Position{Filename: pkg.Path},
				Message:  msg,
			})
			continue
		}
		out = append(out, got...)
	}
	return out
}

// sortFindings orders findings by position, analyzer and message — a total
// order, so the result is independent of the order packages were analyzed
// in (sequential topo order vs parallel waves).
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RunForTypes runs analyzers over an already type-checked package — the
// entry point shared by the unitchecker (`go vet -vettool`) path, which
// gets its type information from vet's config file rather than Load.
func RunForTypes(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	registerFactTypes(analyzers)
	return runForTypes(fset, files, pkg, info, analyzers, newFactStore())
}

// runForTypes is RunForTypes with an externally owned fact store, so the
// vetx path can pre-load dependency facts and harvest the exports.
func runForTypes(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *factStore) []Finding {
	var goFiles []string
	for _, f := range files {
		goFiles = append(goFiles, fset.Position(f.Pos()).Filename)
	}
	p := &Package{
		Path:    pkg.Path(),
		Name:    pkg.Name(),
		GoFiles: goFiles,
		Files:   files,
		Types:   pkg,
		Info:    info,
	}
	out := analyzePackage(fset, p, analyzers, store)
	sortFindings(out)
	return out
}

// knownCheckNames is the set of names valid in a //lint: directive's
// <checks> list: the registered suite, any extra analyzers in the current
// run (fixture-only analyzers in tests), the wildcard "all", and
// "lintdirective" itself.
func knownCheckNames(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{"all": true, "lintdirective": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// suppressions records which analyzers are silenced where.
type suppressions struct {
	// file maps filename -> analyzer set silenced for the whole file.
	file map[string]map[string]bool
	// line maps filename -> line -> analyzer set. A line directive
	// covers its own line (trailing comment) and the one below it
	// (comment on the line above the offending statement); a trailing
	// directive on a multi-line statement covers the whole statement.
	line map[string]map[int]map[string]bool
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	if set := s.file[pos.Filename]; set["all"] || set[analyzer] {
		return true
	}
	lines := s.line[pos.Filename]
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[ln]; set["all"] || set[analyzer] {
			return true
		}
	}
	return false
}

// collectDirectives scans the comments of every file for //lint:
// directives, validating each against known (the registered analyzer
// names plus "all"). Malformed or unknown-name directives come back as
// findings so they fail the gate instead of silently suppressing nothing
// (or everything).
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressions, []Finding) {
	sup := suppressions{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) > 0 && (fields[0] == "hotpath" || fields[0] == "coldpath") {
					// Annotations consumed by allocflow, not suppressions.
					// They still demand a reason: an unexplained hot or
					// cold path is unreviewable.
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Analyzer: "lintdirective",
							Pos:      pos,
							Message:  fmt.Sprintf("malformed //lint:%s annotation: want \"//lint:%s <reason>\" with a non-empty reason", fields[0], fields[0]),
						})
					}
					continue
				}
				if len(fields) == 0 || (fields[0] != "ignore" && fields[0] != "file-ignore") {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown //lint: directive %q (want ignore, file-ignore, hotpath or coldpath)", text),
					})
					continue
				}
				if len(fields) < 3 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed //lint:%s directive: want \"//lint:%s <checks> <reason>\" with a non-empty reason", fields[0], fields[0]),
					})
					continue
				}
				names := strings.Split(fields[1], ",")
				badName := false
				for _, n := range names {
					if !known[n] {
						bad = append(bad, Finding{
							Analyzer: "lintdirective",
							Pos:      pos,
							Message:  fmt.Sprintf("unknown analyzer %q in //lint:%s directive; registered checks are %s (or \"all\")", n, fields[0], strings.Join(sortedNames(known), ", ")),
						})
						badName = true
					}
				}
				if badName {
					// A typoed name must not silently suppress nothing
					// while looking intentional; report it (above) and
					// skip the whole directive.
					continue
				}
				switch fields[0] {
				case "file-ignore":
					set := sup.file[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						sup.file[pos.Filename] = set
					}
					for _, n := range names {
						set[n] = true
					}
				case "ignore":
					byLine := sup.line[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						sup.line[pos.Filename] = byLine
					}
					// A trailing directive on a multi-line statement must
					// cover every line the statement spans, not just the
					// line the comment sits on.
					start, end := directiveSpan(fset, f, pos.Line)
					for ln := start; ln <= end; ln++ {
						set := byLine[ln]
						if set == nil {
							set = make(map[string]bool)
							byLine[ln] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	return sup, bad
}

// directiveSpan returns the line range a //lint:ignore directive on the
// given line should cover. A directive is trailing when some statement
// *ends* on its line; the span of the smallest such statement is covered
// in full, so a trailing comment on the last line of a multi-line
// statement reaches back to the first line (where the finding is
// positioned). Otherwise the directive sits on its own line above the
// code and covers only itself — suppressed() already looks one line up
// from each finding.
func directiveSpan(fset *token.FileSet, f *ast.File, line int) (start, end int) {
	start, end = line, line
	best := -1
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		sl := fset.Position(s.Pos()).Line
		el := fset.Position(s.End()).Line
		if el == line && sl <= line {
			if span := el - sl; best == -1 || span < best {
				best, start = span, sl
			}
		}
		return true
	})
	return start, end
}

// sortedNames flattens a name set for error messages, dropping the
// wildcard pseudo-names.
func sortedNames(known map[string]bool) []string {
	var out []string
	for n := range known {
		if n != "all" && n != "lintdirective" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
