package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is a Diagnostic with its position resolved, ready to print or
// assert on.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every loaded package, filters the results
// through //lint:ignore and //lint:file-ignore directives, and returns the
// surviving findings sorted by position.
//
// Two directive forms are honoured, mirroring staticcheck's:
//
//	//lint:ignore <checks> <reason>       suppress on this or the next line
//	//lint:file-ignore <checks> <reason>  suppress in the whole file
//
// <checks> is a comma-separated list of analyzer names, or "all". The
// reason is mandatory — a directive without one is itself reported as a
// finding (analyzer "lintdirective"), so suppressions stay auditable.
func (m *Module) Run(analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		sup, bad := collectDirectives(m.Fset, pkg.Files)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      m.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := m.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      token.Position{Filename: pkg.Path},
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// RunForTypes runs analyzers over an already type-checked package — the
// entry point shared by the unitchecker (`go vet -vettool`) path, which
// gets its type information from vet's config file rather than Load.
func RunForTypes(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	m := &Module{Fset: fset, Packages: []*Package{{
		Path:  pkg.Path(),
		Name:  pkg.Name(),
		Files: files,
		Types: pkg,
		Info:  info,
	}}}
	return m.Run(analyzers)
}

// suppressions records which analyzers are silenced where.
type suppressions struct {
	// file maps filename -> analyzer set silenced for the whole file.
	file map[string]map[string]bool
	// line maps filename -> line -> analyzer set. A line directive
	// covers its own line (trailing comment) and the one below it
	// (comment on the line above the offending statement).
	line map[string]map[int]map[string]bool
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	if set := s.file[pos.Filename]; set["all"] || set[analyzer] {
		return true
	}
	lines := s.line[pos.Filename]
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[ln]; set["all"] || set[analyzer] {
			return true
		}
	}
	return false
}

// collectDirectives scans the comments of every file for //lint:
// directives. Malformed directives come back as findings so they fail the
// gate instead of silently suppressing nothing (or everything).
func collectDirectives(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := suppressions{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 || (fields[0] != "ignore" && fields[0] != "file-ignore") {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown //lint: directive %q (want ignore or file-ignore)", text),
					})
					continue
				}
				if len(fields) < 3 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed //lint:%s directive: want \"//lint:%s <checks> <reason>\" with a non-empty reason", fields[0], fields[0]),
					})
					continue
				}
				names := strings.Split(fields[1], ",")
				switch fields[0] {
				case "file-ignore":
					set := sup.file[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						sup.file[pos.Filename] = set
					}
					for _, n := range names {
						set[n] = true
					}
				case "ignore":
					byLine := sup.line[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						sup.line[pos.Filename] = byLine
					}
					set := byLine[pos.Line]
					if set == nil {
						set = make(map[string]bool)
						byLine[pos.Line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return sup, bad
}
