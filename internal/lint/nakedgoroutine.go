package lint

import (
	"go/ast"
	"strings"
)

// NakedGoroutine forbids raw `go` statements outside internal/runner.
//
// PR 1 centralised all fan-out in the bounded worker pool
// (repro/internal/runner) precisely so that concurrency limits, panic
// isolation and cancellation live in one audited place. A `go` statement
// anywhere else reintroduces unbounded, unsupervised concurrency that the
// 1-vs-8-worker determinism sweep cannot see.
var NakedGoroutine = &Analyzer{
	Name: "nakedgoroutine",
	Doc: `forbid raw go statements outside repro/internal/runner

All concurrency must flow through the bounded worker pool in
internal/runner (Pool.Map / RunBatch), which owns panic recovery,
cancellation and worker accounting. Spawning a goroutine anywhere else
bypasses those guarantees; route the work through the pool or suppress
with //lint:ignore nakedgoroutine <reason>.`,
	Run: runNakedGoroutine,
}

func runNakedGoroutine(pass *Pass) error {
	if isRunnerPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go, "naked go statement outside internal/runner; use the bounded pool (runner.Pool / otem.RunBatch) so cancellation and panic isolation apply")
			}
			return true
		})
	}
	return nil
}

// isRunnerPackage matches the worker-pool package by path suffix so the
// analyzer also recognises the testdata fixture that stands in for it.
func isRunnerPackage(path string) bool {
	return path == "repro/internal/runner" || strings.HasSuffix(path, "/internal/runner")
}
