package lint

import (
	"context"
	"sync"
	"testing"

	"repro/internal/runner"
)

// The driver benchmarks behind `make lint-bench`: the same whole-module
// analysis on the sequential reference driver and on the parallel DAG
// scheduler. The module is loaded once and shared — loading shells out to
// `go list` and would otherwise dominate every iteration.

var (
	benchOnce sync.Once
	benchMod  *Module
	benchErr  error
)

func benchModule(b *testing.B) *Module {
	benchOnce.Do(func() {
		benchMod, benchErr = Load("../..", "./...")
	})
	if benchErr != nil {
		b.Fatalf("loading module: %v", benchErr)
	}
	return benchMod
}

func BenchmarkLintDriverSequential(b *testing.B) {
	mod := benchModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Run(All())
	}
}

func BenchmarkLintDriverParallel(b *testing.B) {
	mod := benchModule(b)
	pool := runner.New()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.RunParallel(ctx, pool, All()); err != nil {
			b.Fatal(err)
		}
	}
}
