package lint

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/runner"
)

// The analysistest-style fixture suites: each analyzer must fire on every
// want-annotated line of its fixture and stay silent everywhere else
// (clean files and exempted packages are part of the same fixtures).

func TestFloatCompareFixture(t *testing.T)   { RunFixture(t, FloatCompare, "floatcompare") }
func TestNakedGoroutineFixture(t *testing.T) { RunFixture(t, NakedGoroutine, "nakedgoroutine") }
func TestErrWrapCheckFixture(t *testing.T)   { RunFixture(t, ErrWrapCheck, "errwrapcheck") }
func TestNoPanicFixture(t *testing.T)        { RunFixture(t, NoPanic, "nopanic") }
func TestDetRandFixture(t *testing.T)        { RunFixture(t, DetRand, "detrand") }
func TestDetFlowFixture(t *testing.T)        { RunFixture(t, DetFlow, "detflow") }
func TestErrFlowFixture(t *testing.T)        { RunFixture(t, ErrFlow, "errflow") }
func TestUnitMixFixture(t *testing.T)        { RunFixture(t, UnitMix, "unitmix") }
func TestNilnessFixture(t *testing.T)        { RunFixture(t, Nilness, "nilness") }
func TestUnusedWriteFixture(t *testing.T)    { RunFixture(t, UnusedWrite, "unusedwrite") }
func TestAllocFlowFixture(t *testing.T)      { RunFixture(t, AllocFlow, "allocflow") }

// TestDirectives drives the suppression machinery (line, trailing, file
// and wildcard forms) plus the lintdirective findings for malformed
// directives, using floatcompare as the probe analyzer.
func TestDirectives(t *testing.T) { RunFixture(t, FloatCompare, "directives") }

// TestRepoClean is the gate in test form: the full module must produce
// zero findings, the same bar `make lint` enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	mod, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(mod.Packages))
	}
	for _, f := range mod.Run(All()) {
		t.Errorf("%s", f)
	}
}

// TestParallelMatchesSequential is the scheduler-equivalence gate: the
// parallel DAG driver must produce byte-identical findings to the
// sequential reference driver over the whole module, at several worker
// counts, facts included.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	mod, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	render := func(fs []Finding) string {
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	want := render(mod.Run(All()))
	for _, workers := range []int{1, 2, 8} {
		got, err := mod.RunParallel(context.Background(), runner.New(runner.Workers(workers)), All())
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if g := render(got); g != want {
			t.Errorf("RunParallel(workers=%d) diverged from sequential Run:\nsequential:\n%sparallel:\n%s", workers, want, g)
		}
	}
}

// typecheckSrc builds a one-file package for driver unit tests.
func typecheckSrc(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// TestPartialFindingsDropped pins the crash-containment contract: when an
// analyzer's Run returns an error after emitting diagnostics, the partial
// diagnostics are dropped and replaced by a single failure finding that
// records the drop, so a crashing analyzer can neither masquerade as a
// clean pass nor as a complete one.
func TestPartialFindingsDropped(t *testing.T) {
	fset, files, pkg, info := typecheckSrc(t, "crash", "package crash\n\nfunc F() {}\n")
	crashing := &Analyzer{
		Name: "crashy",
		Doc:  "crashy\n\nreports then fails",
		Run: func(p *Pass) error {
			p.Reportf(files[0].Pos(), "partial finding that must be dropped")
			p.Reportf(files[0].Pos(), "second partial finding")
			return errors.New("boom")
		},
	}
	got := RunForTypes(fset, files, pkg, info, []*Analyzer{crashing})
	if len(got) != 1 {
		t.Fatalf("got %d findings, want exactly 1 failure marker: %v", len(got), got)
	}
	f := got[0]
	if f.Analyzer != "crashy" {
		t.Errorf("failure finding attributed to %q, want crashy", f.Analyzer)
	}
	if !strings.Contains(f.Message, "analyzer failed: boom") || !strings.Contains(f.Message, "dropped 2 partial finding(s)") {
		t.Errorf("failure message %q does not record the failure and the drop count", f.Message)
	}

	// An error with no prior diagnostics keeps the plain failure message.
	failing := &Analyzer{
		Name: "faily",
		Doc:  "faily\n\nfails without reporting",
		Run:  func(p *Pass) error { return errors.New("bang") },
	}
	got = RunForTypes(fset, files, pkg, info, []*Analyzer{failing})
	if len(got) != 1 || strings.Contains(got[0].Message, "dropped") {
		t.Fatalf("failure without partials = %v, want a single marker without a drop note", got)
	}
}

// TestTrailingDirectiveMultiline drives suppressions.suppressed directly:
// a trailing //lint:ignore on the last line of a multi-line statement must
// cover the statement's first line, where the finding is positioned.
func TestTrailingDirectiveMultiline(t *testing.T) {
	src := `package p

func eq(a, b, c float64) bool {
	return a+c ==
		b //lint:ignore floatcompare reason: trailing on a multi-line statement
}

func other(a, b float64) bool {
	return a == b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectDirectives(fset, []*ast.File{f}, knownCheckNames(nil))
	if len(bad) != 0 {
		t.Fatalf("unexpected directive findings: %v", bad)
	}
	// The == sits on line 4; the directive trails on line 5.
	if !sup.suppressed("floatcompare", token.Position{Filename: "p.go", Line: 4, Column: 13}) {
		t.Error("finding on the first line of the multi-line statement not suppressed by the trailing directive")
	}
	if sup.suppressed("floatcompare", token.Position{Filename: "p.go", Line: 9}) {
		t.Error("directive leaked onto an unrelated statement")
	}
}

// TestUnknownDirectiveNames pins satellite behavior: a typoed analyzer
// name in a directive is reported and the directive suppresses nothing.
func TestUnknownDirectiveNames(t *testing.T) {
	src := `package p

//lint:file-ignore floatcmp reason: typo must not silently disable the file
func eq(a, b float64) bool {
	return a == b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectDirectives(fset, []*ast.File{f}, knownCheckNames(nil))
	if len(bad) != 1 || bad[0].Analyzer != "lintdirective" || !strings.Contains(bad[0].Message, `unknown analyzer "floatcmp"`) {
		t.Fatalf("bad = %v, want one lintdirective finding naming floatcmp", bad)
	}
	if sup.suppressed("floatcompare", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("typoed file-ignore still suppressed floatcompare")
	}
}

// TestFactStoreRoundTrip proves facts survive the vetx serialization the
// `go vet -vettool` path depends on.
func TestFactStoreRoundTrip(t *testing.T) {
	registerFactTypes(All())
	store := newFactStore()
	store.set(factKey{analyzer: "detflow", pkg: "repro/internal/x", obj: "Jitter"}, &NondetFact{Reason: "calls time.Now"})
	store.set(factKey{analyzer: "errflow", pkg: "repro/internal/x", obj: "NeverFails"}, &NilErrorFact{})
	store.set(factKey{analyzer: "unitmix", pkg: "repro/internal/units", obj: "CToK"}, &UnitFact{Unit: "K"})

	data, err := store.encodeFacts()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic bytes: encoding twice must be identical (the go
	// command caches on vetx content).
	data2, err := store.encodeFacts()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encodeFacts is not deterministic")
	}

	decoded := newFactStore()
	if err := decoded.decodeFacts(data); err != nil {
		t.Fatal(err)
	}
	var nd NondetFact
	if !decoded.get(factKey{analyzer: "detflow", pkg: "repro/internal/x", obj: "Jitter"}, &nd) || nd.Reason != "calls time.Now" {
		t.Errorf("NondetFact did not round-trip: %+v", nd)
	}
	var ne NilErrorFact
	if !decoded.get(factKey{analyzer: "errflow", pkg: "repro/internal/x", obj: "NeverFails"}, &ne) {
		t.Error("NilErrorFact did not round-trip")
	}
	var uf UnitFact
	if !decoded.get(factKey{analyzer: "unitmix", pkg: "repro/internal/units", obj: "CToK"}, &uf) || uf.Unit != "K" {
		t.Errorf("UnitFact did not round-trip: %+v", uf)
	}
	// The legacy fact-free format (an empty file) must decode cleanly.
	if err := newFactStore().decodeFacts(nil); err != nil {
		t.Errorf("empty vetx: %v", err)
	}
	// Type mismatches miss instead of corrupting.
	if decoded.get(factKey{analyzer: "detflow", pkg: "repro/internal/x", obj: "Jitter"}, &uf) {
		t.Error("get with mismatched fact type succeeded")
	}
}

// TestSARIFRoundTrip checks the -format=sarif output parses back as valid
// SARIF 2.1.0 with the findings intact.
func TestSARIFRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "floatcompare", Pos: token.Position{Filename: "internal/sim/sim.go", Line: 12, Column: 7}, Message: "floating-point comparison with =="},
		{Analyzer: "detflow", Pos: token.Position{Filename: "internal/mpc/mpc.go", Line: 3, Column: 1}, Message: "call to nondeterministic Jitter"},
		{Analyzer: "crashy", Pos: token.Position{Filename: "repro/internal/x"}, Message: "analyzer failed: boom"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, All()); err != nil {
		t.Fatal(err)
	}

	// Round trip through the typed model.
	var log SARIFLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q does not pin 2.1.0", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "otem-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(findings))
	}
	for i, r := range run.Results {
		if r.RuleID != findings[i].Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, findings[i].Analyzer)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) || run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d ruleIndex %d does not resolve to rule %q", i, r.RuleIndex, r.RuleID)
		}
		if r.Message.Text != findings[i].Message {
			t.Errorf("result %d message = %q", i, r.Message.Text)
		}
	}
	// Positioned findings carry a region; the package-level failure marker
	// must not emit a zero startLine (SARIF regions are 1-based).
	if reg := run.Results[0].Locations[0].PhysicalLocation.Region; reg == nil || reg.StartLine != 12 || reg.StartColumn != 7 {
		t.Errorf("result 0 region = %+v, want 12:7", reg)
	}
	if reg := run.Results[2].Locations[0].PhysicalLocation.Region; reg != nil {
		t.Errorf("package-scoped finding emitted a region: %+v", reg)
	}
	// Every registered analyzer appears in the rules table.
	ids := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, a := range All() {
		if !ids[a.Name] {
			t.Errorf("rules table missing analyzer %s", a.Name)
		}
	}

	// And a second decode through a generic map to prove required SARIF
	// properties are spelled exactly as the schema wants.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"$schema", "version", "runs"} {
		if _, ok := generic[key]; !ok {
			t.Errorf("top-level SARIF property %q missing", key)
		}
	}
}

// TestLoadContextParallel loads a multi-package fixture tree on a wide
// worker pool and checks the result matches the sequential loader:
// package set, order and import edges (the race detector rides along in
// `make race`).
func TestLoadContextParallel(t *testing.T) {
	patterns := []string{
		"./testdata/src/detflow/helpers", "./testdata/src/detflow/internal/sim",
		"./testdata/src/errflow", "./testdata/src/errflow/dep",
		"./testdata/src/unitmix", "./testdata/src/unitmix/uts",
	}
	seqMod, err := Load("", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	parMod, err := LoadContext(context.Background(), runner.New(runner.Workers(8)), "", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	paths := func(m *Module) []string {
		var out []string
		for _, p := range m.Packages {
			out = append(out, p.Path)
		}
		return out
	}
	if !reflect.DeepEqual(paths(seqMod), paths(parMod)) {
		t.Errorf("package order diverged: %v vs %v", paths(seqMod), paths(parMod))
	}
	for i, p := range parMod.Packages {
		if !reflect.DeepEqual(p.Imports, seqMod.Packages[i].Imports) {
			t.Errorf("%s imports diverged: %v vs %v", p.Path, p.Imports, seqMod.Packages[i].Imports)
		}
	}
	// Dependencies must precede dependents in the topo order.
	seen := make(map[string]bool)
	for _, p := range parMod.Packages {
		for _, dep := range p.Imports {
			if !seen[dep] {
				t.Errorf("package %s appears before its dependency %s", p.Path, dep)
			}
		}
		seen[p.Path] = true
	}
}

// TestModuleWaves checks the DAG partitioning the parallel driver
// schedules: dependencies always land in strictly earlier waves.
func TestModuleWaves(t *testing.T) {
	mk := func(path string, deps ...string) *Package { return &Package{Path: path, Imports: deps} }
	pkgs, err := topoSort([]*Package{
		mk("m/c", "m/a", "m/b"),
		mk("m/b", "m/a"),
		mk("m/a"),
		mk("m/d"),
		mk("m/e", "m/c", "m/d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Packages: pkgs}
	waves := mod.waves()
	level := make(map[string]int)
	for i, wave := range waves {
		for _, p := range wave {
			level[p.Path] = i
		}
	}
	wantLevels := map[string]int{"m/a": 0, "m/d": 0, "m/b": 1, "m/c": 2, "m/e": 3}
	if !reflect.DeepEqual(level, wantLevels) {
		t.Errorf("waves = %v, want %v", level, wantLevels)
	}
	for _, p := range pkgs {
		for _, dep := range p.Imports {
			if level[dep] >= level[p.Path] {
				t.Errorf("%s (wave %d) does not precede dependent %s (wave %d)", dep, level[dep], p.Path, level[p.Path])
			}
		}
	}
	if _, err := topoSort([]*Package{mk("m/x", "m/y"), mk("m/y", "m/x")}); err == nil {
		t.Error("topoSort accepted an import cycle")
	}
}

// TestVetToolProtocol builds cmd/otem-lint and runs it the way CI's
// `go vet -vettool` does, proving the unitchecker handshake (-V=full,
// -flags, pkg.cfg) against the real go command.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "otem-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/otem-lint")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building otem-lint: %v\n%s", err, out)
	}

	// A clean leaf package must vet clean through the tool.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/floats")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	// A package with a violation must fail and name the analyzer.
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(src, []byte("package bad\n\nfunc eq(a, b float64) bool { return a == b }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module bad\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vet = exec.Command("go", "vet", "-vettool="+bin, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on violating package succeeded, want failure\n%s", out)
	}
	if !bytes.Contains(out, []byte("floatcompare")) {
		t.Fatalf("vet output does not mention floatcompare:\n%s", out)
	}

	// Facts must flow between compilation units through vetx files: a
	// helper package reaches time.Now, and a deterministic-scope package
	// in the same module calls it. Only cross-unit fact propagation can
	// produce the detflow finding — the sim unit never sees the helper's
	// source.
	dir = t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module factmod\n\ngo 1.22\n")
	write("helper/helper.go", `package helper

import "time"

func Jitter() int64 { return time.Now().UnixNano() }
`)
	write("internal/sim/sim.go", `package sim

import "factmod/helper"

func Step() int64 { return helper.Jitter() }
`)
	vet = exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, err = vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool missed the cross-unit detflow case\n%s", out)
	}
	if !bytes.Contains(out, []byte("detflow")) || !bytes.Contains(out, []byte("Jitter")) {
		t.Fatalf("vet output does not carry the detflow fact finding:\n%s", out)
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbUse
	}{
		{"plain", nil},
		{"%d", []verbUse{{'d', 0}}},
		{"%v %w", []verbUse{{'v', 0}, {'w', 1}}},
		{"100%% done: %s", []verbUse{{'s', 0}}},
		{"%+v", []verbUse{{'v', 0}}},
		{"%.3f", []verbUse{{'f', 0}}},
		{"%*d %v", []verbUse{{'d', 1}, {'v', 2}}},
		{"%[2]s %[1]v", []verbUse{{'s', 1}, {'v', 0}}},
		{"%", nil},
		{"%[", nil},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}
