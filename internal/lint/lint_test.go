package lint

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

// The analysistest-style fixture suites: each analyzer must fire on every
// want-annotated line of its fixture and stay silent everywhere else
// (clean files and exempted packages are part of the same fixtures).

func TestFloatCompareFixture(t *testing.T)   { RunFixture(t, FloatCompare, "floatcompare") }
func TestNakedGoroutineFixture(t *testing.T) { RunFixture(t, NakedGoroutine, "nakedgoroutine") }
func TestErrWrapCheckFixture(t *testing.T)   { RunFixture(t, ErrWrapCheck, "errwrapcheck") }
func TestNoPanicFixture(t *testing.T)        { RunFixture(t, NoPanic, "nopanic") }
func TestDetRandFixture(t *testing.T)        { RunFixture(t, DetRand, "detrand") }

// TestDirectives drives the suppression machinery (line, trailing, file
// and wildcard forms) plus the lintdirective findings for malformed
// directives, using floatcompare as the probe analyzer.
func TestDirectives(t *testing.T) { RunFixture(t, FloatCompare, "directives") }

// TestRepoClean is the gate in test form: the full module must produce
// zero findings, the same bar `make lint` enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	mod, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(mod.Packages))
	}
	for _, f := range mod.Run(All()) {
		t.Errorf("%s", f)
	}
}

// TestVetToolProtocol builds cmd/otem-lint and runs it the way CI's
// `go vet -vettool` does, proving the unitchecker handshake (-V=full,
// -flags, pkg.cfg) against the real go command.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "otem-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/otem-lint")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building otem-lint: %v\n%s", err, out)
	}

	// A clean leaf package must vet clean through the tool.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/floats")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	// A package with a violation must fail and name the analyzer.
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(src, []byte("package bad\n\nfunc eq(a, b float64) bool { return a == b }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module bad\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vet = exec.Command("go", "vet", "-vettool="+bin, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on violating package succeeded, want failure\n%s", out)
	}
	if !bytes.Contains(out, []byte("floatcompare")) {
		t.Fatalf("vet output does not mention floatcompare:\n%s", out)
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbUse
	}{
		{"plain", nil},
		{"%d", []verbUse{{'d', 0}}},
		{"%v %w", []verbUse{{'v', 0}, {'w', 1}}},
		{"100%% done: %s", []verbUse{{'s', 0}}},
		{"%+v", []verbUse{{'v', 0}}},
		{"%.3f", []verbUse{{'f', 0}}},
		{"%*d %v", []verbUse{{'d', 1}, {'v', 2}}},
		{"%[2]s %[1]v", []verbUse{{'s', 1}, {'v', 0}}},
		{"%", nil},
		{"%[", nil},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}
