package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/ir"
)

// Nilness reports dereferences of values the value flow proves nil, and
// nil checks whose outcome is already decided.
//
// The analysis runs the forward dataflow driver over the shared SSA IR
// with branch refinement: an `if p == nil` splits the fact map, so the
// true edge knows p is nil and the false edge knows it is not. A
// dereference (field access through a pointer, *p, nil-slice indexing, a
// call of a nil function value) on a path where the value is provably nil
// is a guaranteed panic; a nil comparison whose operand is provably
// non-nil (or provably nil) is dead code waiting to mislead a reader.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc: `report guaranteed-nil dereferences and decided nil checks

A dereference of a value the branch-refined value flow proves nil panics
on every execution that reaches it — the classic shape is using p inside
the "p == nil" branch. A nil check on a value proven non-nil (freshly
&composite, or already checked on this path) always takes the same arm;
delete it or fix the condition it meant to express. Only facts the SSA
analysis can prove fire — possible-but-unproven nils stay silent.`,
	Run: runNilness,
}

// nilState is the per-value lattice: unknownNil ⊑ {isNil, nonNil}.
type nilState uint8

const (
	unknownNil nilState = iota
	isNil
	nonNil
)

func (s nilState) String() string {
	switch s {
	case isNil:
		return "nil"
	case nonNil:
		return "non-nil"
	}
	return "unknown"
}

// nilFacts maps SSA values to proven states at a program point. Absent
// means unknown (modulo the value's inherent state, see inherentNilState).
type nilFacts map[ir.Value]nilState

func cloneNilFacts(m nilFacts) nilFacts {
	out := make(nilFacts, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func equalNilFacts(a, b nilFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runNilness(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if irf := pass.FuncIR(fd); irf != nil {
				nilnessFunc(pass, irf)
			}
		}
	}
	return nil
}

// nilnessFunc runs the fixpoint for one function and reports findings.
func nilnessFunc(pass *Pass, fn *ir.Func) {
	a := &nilnessAnalysis{
		pass:       pass,
		fn:         fn,
		defsByStmt: make(map[ast.Node][]*ir.Def),
		busyCell:   make(map[*ir.Cell]bool),
	}
	for _, d := range fn.Defs() {
		a.defsByStmt[d.Stmt] = append(a.defsByStmt[d.Stmt], d)
	}

	facts := ir.Forward[nilFacts](fn, nilFacts{}, a.join, a.flow, equalNilFacts)

	for _, b := range fn.Blocks {
		if !fn.Reachable(b) {
			continue
		}
		in, ok := facts[b]
		if !ok {
			continue
		}
		a.reportBlock(b, cloneNilFacts(in))
	}
}

type nilnessAnalysis struct {
	pass       *Pass
	fn         *ir.Func
	defsByStmt map[ast.Node][]*ir.Def
	// busyCell breaks recursion through self-referential cell stores.
	busyCell map[*ir.Cell]bool
}

// cellNilState is the flow-insensitive nil state of an address-taken
// local: decidable only when the cell has not escaped (a leaked address
// admits unseen stores) and every recorded store — including the
// declaration's initial value — agrees on the same state. Stores the
// summary does not model (tuple positions, op-assigns, range variables)
// widen to unknown.
func (a *nilnessAnalysis) cellNilState(c *ir.Cell) nilState {
	if c.Escaped || len(c.Stores) == 0 || a.busyCell[c] {
		return unknownNil
	}
	a.busyCell[c] = true
	defer delete(a.busyCell, c)
	agreed := unknownNil
	for i, s := range c.Stores {
		st := unknownNil
		switch {
		case s.Zero:
			if nilZero(c.V.Type()) {
				st = isNil
			}
		case s.Tuple || s.Rhs == nil:
			st = unknownNil
		default:
			st = a.exprNilState(nil, s.Rhs)
		}
		if st == unknownNil {
			return unknownNil
		}
		if i > 0 && agreed != st {
			return unknownNil
		}
		agreed = st
	}
	return agreed
}

// state resolves a value's nil state at a program point: the flow fact if
// one is recorded, the value's inherent (syntax-determined) state
// otherwise.
func (a *nilnessAnalysis) state(st nilFacts, v ir.Value) nilState {
	if s, ok := st[v]; ok {
		return s
	}
	return a.inherentNilState(v)
}

// inherentNilState is what a value's definition alone proves, with no
// flow context: a named result starts at its (possibly nil) zero value, a
// zero-valued declaration is nil, an address-of or composite literal is
// not.
func (a *nilnessAnalysis) inherentNilState(v ir.Value) nilState {
	switch v := v.(type) {
	case *ir.Param:
		if v.Result && nilZero(v.V.Type()) {
			return isNil
		}
	case *ir.Def:
		switch v.Kind {
		case ir.DefDecl:
			if v.Rhs == nil {
				if nilZero(v.V.Type()) {
					return isNil
				}
				return unknownNil
			}
			return a.exprNilState(nil, v.Rhs)
		case ir.DefAssign:
			if v.Tok == token.ASSIGN || v.Tok == token.DEFINE {
				if v.Rhs != nil {
					return a.exprNilState(nil, v.Rhs)
				}
			}
		}
	}
	return unknownNil
}

// exprNilState evaluates an expression's nil state. st carries flow facts
// for identifier resolution; nil st restricts the answer to syntax.
func (a *nilnessAnalysis) exprNilState(st nilFacts, e ast.Expr) nilState {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if isNilExpr(a.pass.TypesInfo, e) {
			return isNil
		}
		if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
			if a.fn.Tracked(v) {
				if st == nil {
					return unknownNil
				}
				if val := a.fn.ValueAt(e); val != nil {
					return a.state(st, val)
				}
				return unknownNil
			}
			// Address-taken locals resolve through their cell summary,
			// which is flow-insensitive and therefore valid even on the
			// syntax-only (st == nil) path.
			if c := a.fn.Cell(v); c != nil {
				return a.cellNilState(c)
			}
		}
		return unknownNil
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nonNil // &x is never nil
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return nonNil
	case *ast.CallExpr:
		// new(T) and make(T, ...) never return nil.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := a.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				if b.Name() == "new" || b.Name() == "make" {
					return nonNil
				}
			}
		}
	}
	if isNilExpr(a.pass.TypesInfo, e) {
		return isNil
	}
	return unknownNil
}

// applyDefs transfers the definitions of one statement into st.
func (a *nilnessAnalysis) applyDefs(st nilFacts, n ast.Node) {
	for _, d := range a.defsByStmt[n] {
		s := a.inherentNilState(d)
		if s == unknownNil && d.Rhs != nil {
			// Identifier copies propagate the source's flow state.
			s = a.exprNilState(st, d.Rhs)
		}
		if s == unknownNil {
			delete(st, d)
		} else {
			st[d] = s
		}
	}
}

// nilCompare decomposes a block-ending condition of the shape
// `x == nil` / `x != nil` into the compared SSA value and the operator.
func (a *nilnessAnalysis) nilCompare(cond ast.Expr) (ir.Value, *ast.Ident, token.Token, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, nil, 0, false
	}
	var idExpr ast.Expr
	switch {
	case isNilExpr(a.pass.TypesInfo, be.Y):
		idExpr = be.X
	case isNilExpr(a.pass.TypesInfo, be.X):
		idExpr = be.Y
	default:
		return nil, nil, 0, false
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return nil, nil, 0, false
	}
	if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); !ok || !a.fn.Tracked(v) {
		return nil, nil, 0, false
	}
	val := a.fn.ValueAt(id)
	if val == nil {
		return nil, nil, 0, false
	}
	return val, id, be.Op, true
}

// condition returns the block-ending condition expression when b branches
// on one (two successors, last node an expression).
func (a *nilnessAnalysis) condition(b *ir.Block) ast.Expr {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil
	}
	e, _ := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	return e
}

// flow is the Forward transfer function: apply every definition in order,
// then refine per successor edge on a trailing nil comparison
// (Succs[0] is the true edge by the CFG's branch convention).
func (a *nilnessAnalysis) flow(b *ir.Block, in nilFacts) []nilFacts {
	st := cloneNilFacts(in)
	for _, n := range b.Nodes {
		a.applyDefs(st, n)
	}
	cond := a.condition(b)
	if cond == nil {
		return []nilFacts{st}
	}
	val, _, op, ok := a.nilCompare(cond)
	if !ok {
		return []nilFacts{st}
	}
	onTrue, onFalse := isNil, nonNil
	if op == token.NEQ {
		onTrue, onFalse = nonNil, isNil
	}
	tr, fa := cloneNilFacts(st), st
	tr[val] = onTrue
	fa[val] = onFalse
	return []nilFacts{tr, fa}
}

// join meets the facts arriving over the incoming edges: a plain value
// keeps a state only when every reachable predecessor agrees; a phi takes
// the meet of its edge values' states under each edge's own facts.
func (a *nilnessAnalysis) join(b *ir.Block, in []ir.Edge[nilFacts]) nilFacts {
	out := nilFacts{}
	if len(in) == 0 {
		return out
	}
	// Intersection of explicit facts.
	for v, s := range in[0].Out {
		agreed := s
		for _, e := range in[1:] {
			if e.Out[v] != s {
				agreed = unknownNil
				break
			}
		}
		if agreed != unknownNil {
			out[v] = agreed
		}
	}
	// Phi evaluation: edge i of a phi belongs to Preds[i]; each incoming
	// Edge is tagged with its predecessor.
	for _, phi := range b.Phis {
		meet := unknownNil
		first := true
		for i, p := range b.Preds {
			if !a.fn.Reachable(p) {
				continue
			}
			ev := phi.Edges[i]
			if ev == nil {
				continue
			}
			var s nilState
			found := false
			for _, e := range in {
				if e.Pred == p {
					s = a.state(e.Out, ev)
					found = true
					break
				}
			}
			if !found {
				// Predecessor not processed yet: optimistic skip, the
				// fixpoint revisits once it is.
				continue
			}
			if first {
				meet, first = s, false
			} else if meet != s {
				meet = unknownNil
			}
			if meet == unknownNil {
				break
			}
		}
		if meet != unknownNil {
			out[phi] = meet
		}
	}
	return out
}

// reportBlock replays the transfer over one block with the stabilized
// entry facts, reporting guaranteed-nil dereferences and decided checks.
func (a *nilnessAnalysis) reportBlock(b *ir.Block, st nilFacts) {
	cond := a.condition(b)
	for _, n := range b.Nodes {
		// The block-ending condition is checked for decidedness, not
		// dereferences of its own operand.
		if e, ok := n.(ast.Expr); ok && cond != nil && e == cond {
			if val, id, op, ok := a.nilCompare(cond); ok {
				switch a.state(st, val) {
				case nonNil:
					a.pass.Reportf(cond.Pos(), "redundant nil check: %s is never nil here", id.Name)
				case isNil:
					arm := "true"
					if op == token.NEQ {
						arm = "false"
					}
					a.pass.Reportf(cond.Pos(), "nil check is always %s: %s is always nil here", arm, id.Name)
				}
			}
		}
		a.checkDerefs(st, n)
		a.applyDefs(st, n)
	}
}

// checkDerefs walks one block node for dereference shapes whose base is a
// provably nil value.
func (a *nilnessAnalysis) checkDerefs(st nilFacts, n ast.Node) {
	report := func(id *ast.Ident, what string) {
		a.pass.Reportf(id.Pos(), "%s %s: it is always nil here", what, id.Name)
	}
	baseState := func(e ast.Expr) (*ast.Ident, nilState) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, unknownNil
		}
		v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return nil, unknownNil
		}
		if !a.fn.Tracked(v) {
			if c := a.fn.Cell(v); c != nil {
				return id, a.cellNilState(c)
			}
			return nil, unknownNil
		}
		val := a.fn.ValueAt(id)
		if val == nil {
			return nil, unknownNil
		}
		return id, a.state(st, val)
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		switch m := m.(type) {
		case *ast.StarExpr:
			if id, s := baseState(m.X); s == isNil && id != nil {
				report(id, "dereference of nil pointer")
			}
		case *ast.SelectorExpr:
			// Selecting a field through a nil pointer dereferences it;
			// method values on nil pointers are legal until called.
			if sel, ok := a.pass.TypesInfo.Selections[m]; ok && sel.Kind() == types.FieldVal {
				if _, ptr := sel.Recv().Underlying().(*types.Pointer); ptr {
					if id, s := baseState(m.X); s == isNil && id != nil {
						report(id, "field access through nil pointer")
					}
				}
			}
		case *ast.IndexExpr:
			if tv := a.pass.TypesInfo.TypeOf(m.X); tv != nil {
				if _, isSlice := tv.Underlying().(*types.Slice); isSlice {
					if id, s := baseState(m.X); s == isNil && id != nil {
						report(id, "index of nil slice")
					}
				}
			}
		case *ast.CallExpr:
			if tv, ok := a.pass.TypesInfo.Types[m.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, s := baseState(m.Fun); s == isNil && id != nil {
				if _, isFunc := a.pass.TypesInfo.TypeOf(id).Underlying().(*types.Signature); isFunc {
					report(id, "call of nil function")
				}
			}
		}
		return true
	})
}
