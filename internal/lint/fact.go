package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a serializable unit of information computed by one analyzer
// about one object or package, mirroring analysis.Fact. Analyzers export
// facts while analyzing a package; when a dependent package is analyzed
// later, the same analyzer can import them and reason across package
// boundaries (transitive nondeterminism, always-nil error returns, unit
// annotations) without ever re-reading the dependency's source.
//
// Fact types must be pointers to gob-encodable structs and must be listed
// in the owning Analyzer's FactTypes so the drivers can register them for
// (de)serialization through vetx files.
type Fact interface {
	// AFact is a marker method: it does nothing, but restricts the
	// interface to types that opt in deliberately.
	AFact()
}

// factKey identifies one stored fact: which analyzer produced it, about
// which object of which package. obj is "" for package-level facts.
type factKey struct {
	analyzer string
	pkg      string
	obj      string
}

// factStore holds every fact produced during one driver run. It is shared
// across packages (and across worker goroutines in the parallel driver),
// so all access is mutex-guarded. Lookup is by (analyzer, package path,
// object key) rather than object pointer identity, because the importing
// package sees its dependencies through export data — a different
// *types.Package instance than the one the facts were exported on.
type factStore struct {
	mu sync.RWMutex
	m  map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact)}
}

func (s *factStore) set(k factKey, f Fact) {
	s.mu.Lock()
	s.m[k] = f
	s.mu.Unlock()
}

// get copies the stored fact for k into dst (a pointer to a fact struct of
// the same concrete type) and reports whether one was found.
func (s *factStore) get(k factKey, dst Fact) bool {
	s.mu.RLock()
	src, ok := s.m[k]
	s.mu.RUnlock()
	if !ok || reflect.TypeOf(src) != reflect.TypeOf(dst) {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// objectKey names obj relative to its package: "Name" for package-level
// objects, "Type.Method" for methods, "Type.Field" for struct fields.
// The key survives the round trip through export data, which is what
// makes cross-package fact lookup work. Qualifying fields by their
// owning named type keeps same-named fields of different structs from
// sharing facts (a bare "Src" key would alias every struct's Src).
func objectKey(obj types.Object) string {
	switch obj := obj.(type) {
	case *types.Func:
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + obj.Name()
			}
		}
	case *types.Var:
		if obj.IsField() {
			if owner := owningTypeName(obj); owner != "" {
				return owner + "." + obj.Name()
			}
		}
	}
	return obj.Name()
}

// owningTypeName finds the package-level named type whose underlying
// struct declares exactly this field object. Fields of anonymous
// package-level struct variables (no owning TypeName) fall back to the
// bare name — they cannot collide with a qualified key.
func owningTypeName(field *types.Var) string {
	pkg := field.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if structDeclaresField(st, field, 0) {
			return tn.Name()
		}
	}
	return ""
}

// structDeclaresField reports whether st — or an inline anonymous struct
// nested inside it, up to a small depth — declares this exact field
// object. Named field types are not descended into: their fields belong
// to that type's own key space.
func structDeclaresField(st *types.Struct, field *types.Var, depth int) bool {
	if depth > 3 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f == field {
			return true
		}
		if inner, ok := f.Type().(*types.Struct); ok {
			if structDeclaresField(inner, field, depth+1) {
				return true
			}
		}
	}
	return false
}

// vetxFact is the on-disk form of one fact inside a vetx file (the go
// command's per-package analysis cache, threaded between compilation units
// by `go vet -vettool`). The whole store visible while analyzing a package
// is written out — own facts plus re-exported dependency facts — so
// transitive facts reach grand-dependents regardless of how the go command
// prunes the PackageVetx map.
type vetxFact struct {
	Analyzer string
	Pkg      string
	Obj      string
	Fact     Fact
}

var gobRegisterOnce sync.Once

// registerFactTypes makes every declared fact type known to gob. It must
// run before any vetx encode/decode; registration is process-global and
// idempotent, hence the Once.
func registerFactTypes(analyzers []*Analyzer) {
	gobRegisterOnce.Do(func() {
		for _, a := range All() {
			for _, f := range a.FactTypes {
				gob.Register(f)
			}
		}
		// Also cover analyzers outside the registered suite (tests).
		for _, a := range analyzers {
			for _, f := range a.FactTypes {
				gob.Register(f)
			}
		}
	})
}

// encodeFacts serializes the store deterministically (sorted by key) for a
// vetx output file.
func (s *factStore) encodeFacts() ([]byte, error) {
	s.mu.RLock()
	recs := make([]vetxFact, 0, len(s.m))
	for k, f := range s.m {
		recs = append(recs, vetxFact{Analyzer: k.analyzer, Pkg: k.pkg, Obj: k.obj, Fact: f})
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Obj < b.Obj
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("lint: encode facts: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeFacts merges one vetx file's records into the store. Empty input
// (the fact-free format older builds wrote) decodes to nothing.
func (s *factStore) decodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []vetxFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("lint: decode facts: %w", err)
	}
	for _, r := range recs {
		s.set(factKey{analyzer: r.Analyzer, pkg: r.Pkg, obj: r.Obj}, r.Fact)
	}
	return nil
}
