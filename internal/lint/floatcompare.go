package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare forbids == and != between floating-point operands.
//
// Every headline number OTEM reports — Eq. 19 cost, Arrhenius capacity
// loss, energy tallies — is an accumulated float, so exact equality is
// either vacuously true (fresh zero values) or silently false (after one
// Euler step). The sanctioned replacements are floats.Zero / floats.Eq
// from repro/internal/core/floats, or an explicit //lint:ignore with a
// reason when bit-exact comparison is the point (e.g. the epsilon helper
// itself, or IEEE special-value plumbing).
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc: `forbid == and != between floating-point operands

Comparing accumulated floats for exact equality is the classic silent
simulator bug. Use floats.Eq / floats.Zero (repro/internal/core/floats)
or suppress with //lint:ignore floatcompare <reason> where exactness is
intended. Comparisons between two compile-time constants and the x != x
NaN idiom are allowed. Struct and array equality is flagged too when the
element types contain floats.`,
	Run: runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.Types[be.X]
			ty := pass.TypesInfo.Types[be.Y]
			if !containsFloat(tx.Type) && !containsFloat(ty.Type) {
				return true
			}
			// Two compile-time constants compare exactly; the checker
			// already folded the answer.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			// x != x is the portable NaN test.
			if be.Op == token.NEQ && sameExpr(be.X, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point comparison with %s; use floats.Eq/floats.Zero (repro/internal/core/floats) or //lint:ignore floatcompare <reason>", be.Op)
			return true
		})
	}
	return nil
}

// containsFloat reports whether a value of type t compares (at some depth)
// by floating-point equality: floats and complex numbers themselves, and
// arrays/structs with such elements.
func containsFloat(t types.Type) bool {
	return containsFloatSeen(t, make(map[types.Type]bool))
}

func containsFloatSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return containsFloatSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloatSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// sameExpr conservatively reports whether two expressions are
// syntactically identical simple chains (identifiers and field selections
// without calls), enough to recognise the x != x NaN idiom.
func sameExpr(a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && ae.Name == be.Name
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameExpr(ae.X, be.X)
	case *ast.ParenExpr:
		be, ok := b.(*ast.ParenExpr)
		return ok && sameExpr(ae.X, be.X)
	}
	return false
}
