package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitFact records the physical unit a package-level object carries in its
// name suffix (e.g. MaxTempK → "K", CToK → "K" for the returned value).
// Exported on constants, variables and functions, it lets dependent
// packages check unit discipline against APIs whose declarations they
// never parse.
type UnitFact struct {
	// Unit is the canonical suffix token: K, C, W, KW, J, KJ, Wh, KWh,
	// A, Ah or V.
	Unit string
}

// AFact marks UnitFact as a Fact.
func (*UnitFact) AFact() {}

func (f *UnitFact) String() string { return "carries unit " + f.Unit }

// unitDim groups suffix tokens by physical dimension, for diagnostics: a
// K/C mix is a scale error inside one dimension, a K/W mix a dimension
// error. Both are wrong in a sum.
var unitDim = map[string]string{
	"K": "temperature", "C": "temperature",
	"W": "power", "KW": "power",
	"J": "energy", "KJ": "energy", "Wh": "energy", "KWh": "energy",
	"A": "current", "Ah": "charge", "V": "voltage",
}

// unitSuffixes is the token list in longest-first match order.
var unitSuffixes = []string{"KWh", "KW", "KJ", "Wh", "Ah", "K", "C", "W", "J", "A", "V"}

// UnitMix enforces unit discipline in arithmetic over the electro-thermal
// models' naming convention (package units: "everything is SI unless a
// name says otherwise" — tempK, powerW, energyWh).
//
// Additive operators and comparisons require both operands to carry the
// same unit suffix: tempK + coolerPowerW is dimensionally meaningless, and
// tempK - limitC is the Celsius/Kelvin offset bug the paper's Arrhenius
// model (Eq. 5) silently amplifies. Multiplication and division are
// exempt (W·s is legitimately J). Conversions must go through the
// dedicated helpers (units.CToK / units.KToC), whose name suffixes — and
// those of every cross-package constant and function — reach the analyzer
// as UnitFacts.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc: `forbid adding or comparing quantities with conflicting unit suffixes

Identifiers ending in a unit token (tempK, limitC, powerW, energyWh, ...)
declare their unit; a + - == < <= > >= != between two operands whose
declared units differ is a dimensional or scale error (K vs C, J vs Wh).
Convert explicitly (units.CToK, units.WhToJoule) so the suffixes agree,
or suppress with //lint:ignore unitmix <reason> where the mix is
intentional.`,
	Run:       runUnitMix,
	FactTypes: []Fact{(*UnitFact)(nil)},
}

func runUnitMix(pass *Pass) error {
	// Export unit facts for this package's named API surface, so
	// dependent packages can check mixes against it.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if u := unitSuffix(name); u != "" {
			switch obj := scope.Lookup(name).(type) {
			case *types.Const, *types.Var, *types.Func:
				pass.ExportObjectFact(obj, &UnitFact{Unit: u})
			}
		}
	}

	mixOps := map[token.Token]bool{
		token.ADD: true, token.SUB: true,
		token.EQL: true, token.NEQ: true,
		token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !mixOps[bin.Op] {
				return true
			}
			ux, nx := operandUnit(pass, bin.X)
			uy, ny := operandUnit(pass, bin.Y)
			if ux == "" || uy == "" || ux == uy {
				return true
			}
			kind := "dimension"
			if unitDim[ux] == unitDim[uy] {
				kind = "scale"
			}
			pass.Reportf(bin.OpPos, "unit mismatch in %q: %s is in %s but %s is in %s (%s conflict); convert via internal/units so the suffixes agree", bin.Op.String(), nx, ux, ny, uy, kind)
			return true
		})
	}
	return nil
}

// operandUnit determines the unit an operand expression carries, and a
// display name for it. Plain identifiers and selector fields declare
// units through their own names; calls declare the unit of their result
// through the callee's name — resolved via UnitFact for cross-package
// callees, so units.CToK(x) is a kelvin quantity two packages away.
func operandUnit(pass *Pass, e ast.Expr) (unit, name string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return unitSuffix(e.Name), e.Name
	case *ast.SelectorExpr:
		name := e.Sel.Name
		if obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok && obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
			var fact UnitFact
			if pass.ImportObjectFact(obj, &fact) {
				return fact.Unit, obj.Pkg().Name() + "." + name
			}
		}
		return unitSuffix(name), name
	case *ast.CallExpr:
		callee := staticCallee(pass.TypesInfo, e)
		if callee == nil {
			return "", ""
		}
		label := callee.Name() + "(...)"
		if callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
			var fact UnitFact
			if pass.ImportObjectFact(callee, &fact) {
				return fact.Unit, callee.Pkg().Name() + "." + label
			}
			return "", ""
		}
		return unitSuffix(callee.Name()), label
	}
	return "", ""
}

// unitSuffix extracts the unit token a camelCase identifier declares: the
// name must end with a known token preceded by a lowercase letter, so
// tempK and coolerPowerW match while HBC (an all-caps acronym) and K (a
// bare variable) do not.
func unitSuffix(name string) string {
	for _, suf := range unitSuffixes {
		if !strings.HasSuffix(name, suf) {
			continue
		}
		rest := name[:len(name)-len(suf)]
		if rest == "" {
			return ""
		}
		last := rest[len(rest)-1]
		if last >= 'a' && last <= 'z' {
			return suf
		}
		return ""
	}
	return ""
}
