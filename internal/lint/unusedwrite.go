package lint

import (
	"go/ast"

	"repro/internal/lint/ir"
)

// UnusedWrite reports stores to local variables that no execution path
// reads: the SSA value created by the assignment is overwritten or goes
// out of scope before any use.
//
// The analysis is a direct consumer of the IR's observedness fixpoint: a
// definition whose value no identifier use resolves to — directly or
// through a chain of phis — and that is not live at any return statement
// is a dead store. Plain declarations (var x T), range variables and
// error-typed values are excluded: the first two are declarations rather
// than meaningful writes, and dead error stores are errflow's finding
// (with its always-nil exemptions) so one defect never fires twice.
var UnusedWrite = &Analyzer{
	Name: "unusedwrite",
	Doc: `report stores whose value is never read

An assignment that no path observes — every successor either overwrites
the variable or lets it die — is at best wasted work and at worst a bug:
the computed value was meant to go somewhere. The SSA form makes the
check exact for tracked variables. Address-taken locals are checked
through their cell summaries: when the address provably never leaves the
function and no use reads the variable (directly or through any local
pointer), every store to it is dead too. Cells that escape — to a call,
a closure, a field — stay exempt, since writes to them may be read
elsewhere. Error-typed stores are left to errflow, which pairs the same
dead-store evidence with always-nil provenance.`,
	Run: runUnusedWrite,
}

func runUnusedWrite(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			irf := pass.FuncIR(fd)
			if irf == nil {
				continue
			}
			for _, d := range irf.Defs() {
				if irf.Observed(d) {
					continue
				}
				if !reportableDeadStore(d) {
					continue
				}
				if implementsError(d.V.Type()) {
					continue // errflow owns dead error stores
				}
				switch d.Kind {
				case ir.DefIncDec:
					pass.Reportf(d.Ident.Pos(), "result of %s%s is never read; the counter is dead", d.Ident.Name, tokSuffix(d))
				default:
					pass.Reportf(d.Ident.Pos(), "value assigned to %s is never read; every path overwrites it or returns first", d.Ident.Name)
				}
			}
			reportDeadCellStores(pass, irf)
		}
	}
	return nil
}

// reportDeadCellStores narrows the historical address-taken exemption:
// an address-taken local whose address provably never escapes and that no
// use reads — directly or through any may-aliasing local pointer — has
// only dead stores. Each recorded write (the zero-value declaration is a
// declaration, not a write) is reported individually, so the finding
// lands on the statement to delete. Celled variables have no SSA Defs, so
// these findings never overlap the loop above.
func reportDeadCellStores(pass *Pass, irf *ir.Func) {
	for _, c := range irf.Cells() {
		if c.Escaped || c.Reads > 0 {
			continue
		}
		if implementsError(c.V.Type()) {
			continue // errflow owns dead error stores
		}
		for _, s := range c.Stores {
			if s.Zero {
				continue
			}
			if s.Direct {
				pass.Reportf(s.Pos, "value assigned to %s is never read; no path reads it directly or through its pointer aliases", c.V.Name())
			} else {
				pass.Reportf(s.Pos, "value stored to %s through a pointer is never read; no path reads it directly or through its pointer aliases", c.V.Name())
			}
		}
	}
}

// reportableDeadStore filters definition sites down to the ones a dead
// store is worth reporting for.
func reportableDeadStore(d *ir.Def) bool {
	switch d.Kind {
	case ir.DefRange:
		// Range variables are redefined every iteration; an unread final
		// iteration value is the loop's normal shape, not a dead store.
		return false
	case ir.DefDecl:
		// `var x T` with no initializer declares, it does not compute a
		// value; only initialized declarations count as writes.
		return d.Rhs != nil
	}
	return true
}

func tokSuffix(d *ir.Def) string {
	if d.Tok.String() == "--" {
		return "--"
	}
	return "++"
}
