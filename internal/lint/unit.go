package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// UnitConfig is the JSON compilation-unit description `go vet -vettool`
// hands the tool (one file per package, name ending in .cfg). The field
// set mirrors x/tools' unitchecker.Config; fields this driver does not
// need are omitted from decoding but tolerated in the input.
type UnitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	ImportMap    map[string]string // import path -> canonical package path
	PackageFile  map[string]string // package path -> export data file
	Standard     map[string]bool
	VetxOnly     bool
	VetxOutput   string
	PackageVetx  map[string]string
	ModulePath   string
	IgnoredFiles []string
}

// RunUnit analyzes the single compilation unit described by cfgFile — the
// `go vet -vettool=$(otem-lint)` path. The go command has already
// compiled all dependencies, so types come from the export data listed in
// the config rather than from a `go list` walk.
//
// Facts flow between compilation units through vetx files: the facts the
// dependencies exported are decoded from cfg.PackageVetx before analysis,
// and everything visible afterwards (own exports plus re-exported
// dependency facts) is gob-encoded to cfg.VetxOutput, where the go
// command caches it and hands it to dependent units. When cfg.VetxOnly is
// set the unit is analyzed purely for its facts and diagnostics are
// discarded.
//
// Findings in _test.go files are dropped for parity with the standalone
// driver (the gate covers production code; vet feeds test units too).
func RunUnit(cfgFile string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("lint: cannot decode vet config %s: %w", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("lint: package has no files: %s", cfg.ImportPath)
	}

	// Standard-library units carry no facts this suite consumes (module
	// APIs and the deterministic scope are all in-module), so an empty
	// vetx satisfies the protocol without parsing half the stdlib.
	if cfg.Standard[cfg.ImportPath] {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, fmt.Errorf("lint: write vetx output: %w", err)
			}
		}
		return nil, nil
	}

	registerFactTypes(analyzers)
	store := newFactStore()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			return nil, fmt.Errorf("lint: read facts of %s: %w", path, err)
		}
		if err := store.decodeFacts(data); err != nil {
			return nil, fmt.Errorf("lint: facts of %s: %w", path, err)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	all := runForTypes(fset, files, pkg, info, analyzers, store)

	if cfg.VetxOutput != "" {
		facts, err := store.encodeFacts()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			return nil, fmt.Errorf("lint: write vetx output: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	var out []Finding
	for _, f := range all {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out, nil
}
