// Package lint is otem-lint: a domain-aware static-analysis suite that
// gates the whole simulator.
//
// It mirrors the golang.org/x/tools/go/analysis contract — Analyzer,
// Pass, Diagnostic, per-package Run — on top of the standard library
// alone, because this module builds offline with zero third-party
// dependencies. The driver loads packages with `go list -export -deps
// -json`, type-checks the targets from source against compiled export
// data (the same scheme `go vet` uses), runs every analyzer, and filters
// findings through //lint:ignore / //lint:file-ignore directives.
//
// The suite encodes the invariants this reproduction lives or dies by:
//
//   - floatcompare: no == / != on floating-point operands; use
//     repro/internal/core/floats (Eq. 19 cost terms and Arrhenius sums
//     never compare bit-equal).
//   - nakedgoroutine: no raw go statements outside internal/runner; all
//     fan-out goes through the bounded pool.
//   - errwrapcheck: fmt.Errorf must wrap embedded errors with %w, and
//     sentinel tests must use errors.Is, so otem.ErrUnknownCycle and
//     friends survive every layer.
//   - nopanic: library packages return errors; panic is for init and
//     Must* constructors (the linalg kernels opt out file-by-file with a
//     documented contract).
//   - detrand: no global math/rand or time.Now inside internal/sim,
//     internal/mpc, internal/policy — replay determinism is a tested
//     property.
//
// Entry points: Load + (*Module).Run for the standalone cmd/otem-lint
// multichecker (`make lint`), UnitMain for `go vet
// -vettool=$(otem-lint)`, and RunFixture for analysistest-style fixture
// tests under testdata/src.
package lint
