// Package lint is otem-lint: a domain-aware static-analysis suite that
// gates the whole simulator.
//
// It mirrors the golang.org/x/tools/go/analysis contract — Analyzer,
// Pass, Diagnostic, per-package Run, object/package Facts — on top of
// the standard library alone, because this module builds offline with
// zero third-party dependencies. The driver loads packages with `go list
// -export -deps -json`, type-checks the targets from source against
// compiled export data (the same scheme `go vet` uses), runs every
// analyzer over the package-import DAG, and filters findings through
// //lint:ignore / //lint:file-ignore directives (whose analyzer names
// are themselves validated against the registered suite).
//
// The suite encodes the invariants this reproduction lives or dies by:
//
//   - floatcompare: no == / != on floating-point operands; use
//     repro/internal/core/floats (Eq. 19 cost terms and Arrhenius sums
//     never compare bit-equal).
//   - nakedgoroutine: no raw go statements outside internal/runner; all
//     fan-out goes through the bounded pool.
//   - errwrapcheck: fmt.Errorf must wrap embedded errors with %w, and
//     sentinel tests must use errors.Is, so otem.ErrUnknownCycle and
//     friends survive every layer.
//   - nopanic: library packages return errors; panic is for init and
//     Must* constructors (the linalg kernels opt out file-by-file with a
//     documented contract).
//   - detrand: no global math/rand or time.Now inside internal/sim,
//     internal/mpc, internal/policy — replay determinism is a tested
//     property.
//   - detflow: the same determinism contract, transitively — a helper
//     anywhere in the module that reaches global rand or time.Now (at
//     any call depth) must not be called from the deterministic scope.
//   - errflow: errors returned by this module's own APIs must not be
//     discarded as bare call / defer / go statements; functions proven
//     to always return nil are exempt.
//   - unitmix: additive arithmetic and comparisons must not mix
//     identifiers whose names carry conflicting unit suffixes (tempK +
//     limitC, powerW > energyJ); convert through internal/units first.
//
// The last three are cross-package dataflow analyses built on Facts:
// serializable claims attached to objects or packages (NondetFact,
// NilErrorFact, UnitFact) that an analyzer exports while analyzing a
// dependency and imports while analyzing a dependent. In the standalone
// driver the facts live in an in-memory store keyed by (analyzer,
// package path, object); under `go vet -vettool` they are gob-encoded
// into .vetx files and flow between compilation units through the go
// command's build cache, exactly like vet's own unitchecker facts.
//
// Because facts make package order matter, the parallel driver
// (Module.RunParallel) schedules packages in topological waves over the
// import DAG on the bounded worker pool from repro/internal/runner —
// ctx-cancellable and panic-isolated — and sorts findings into a total
// order so its output is byte-identical to the sequential reference
// driver (Module.Run).
//
// Entry points: Load / LoadContext + (*Module).Run or RunParallel for
// the standalone cmd/otem-lint multichecker (`make lint`), RunUnit for
// `go vet -vettool=$(otem-lint)`, ToSARIF / WriteSARIF / WriteJSON /
// WriteText for rendering, and RunFixture for analysistest-style
// fixture tests under testdata/src.
package lint
