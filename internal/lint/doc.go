// Package lint is otem-lint: a domain-aware static-analysis suite that
// gates the whole simulator.
//
// It mirrors the golang.org/x/tools/go/analysis contract — Analyzer,
// Pass, Diagnostic, per-package Run, object/package Facts — on top of
// the standard library alone, because this module builds offline with
// zero third-party dependencies. The driver loads packages with `go list
// -export -deps -json`, type-checks the targets from source against
// compiled export data (the same scheme `go vet` uses), runs every
// analyzer over the package-import DAG, and filters findings through
// //lint:ignore / //lint:file-ignore directives (whose analyzer names
// are themselves validated against the registered suite).
//
// The suite encodes the invariants this reproduction lives or dies by:
//
//   - floatcompare: no == / != on floating-point operands; use
//     repro/internal/core/floats (Eq. 19 cost terms and Arrhenius sums
//     never compare bit-equal).
//   - nakedgoroutine: no raw go statements outside internal/runner; all
//     fan-out goes through the bounded pool.
//   - errwrapcheck: fmt.Errorf must wrap embedded errors with %w, and
//     sentinel tests must use errors.Is, so otem.ErrUnknownCycle and
//     friends survive every layer.
//   - nopanic: library packages return errors; panic is for init and
//     Must* constructors (the linalg kernels opt out file-by-file with a
//     documented contract).
//   - detrand: no global math/rand or time.Now inside internal/sim,
//     internal/mpc, internal/policy — replay determinism is a tested
//     property.
//   - detflow: the same determinism contract, transitively and as a
//     value property — a helper anywhere in the module that reaches
//     global rand or time.Now (at any call depth) must not be called
//     from the deterministic scope, and neither may a *rand.Rand or
//     func value derived from those sources, even laundered through a
//     struct field, closure or function value.
//   - errflow: errors returned by this module's own APIs must not be
//     discarded — as bare call / defer / go statements, or as dead
//     stores no path reads before overwrite; functions proven always-nil
//     through the value flow (assignments, phi joins, tuple forwarding,
//     naked returns of named results) are exempt.
//   - unitmix: additive arithmetic and comparisons must not mix
//     identifiers whose names carry conflicting unit suffixes (tempK +
//     limitC, powerW > energyJ); convert through internal/units first.
//   - nilness: no guaranteed-nil dereferences and no nil checks the
//     branch-refined value flow has already decided.
//   - unusedwrite: no stores whose value is overwritten or dies on
//     every path before a read (dead error stores stay with errflow).
//   - allocflow: functions reachable from a //lint:hotpath root must be
//     provably allocation-free, transitively — the compile-time form of
//     the allocs/step budget the simulator benchmarks enforce.
//
// detflow, errflow and unitmix are cross-package dataflow analyses
// built on Facts: serializable claims attached to objects or packages
// (NondetFact, TaintFact, NilErrorFact, UnitFact) that an analyzer
// exports while analyzing a dependency and imports while analyzing a
// dependent. In the standalone driver the facts live in an in-memory
// store keyed by (analyzer, package path, object); under `go vet
// -vettool` they are gob-encoded into .vetx files and flow between
// compilation units through the go command's build cache, exactly like
// vet's own unitchecker facts.
//
// # How value-flow analysis works
//
// detflow, errflow, nilness and unusedwrite share one intermediate
// representation, built by repro/internal/lint/ir and cached per
// function across analyzers by the driver (Pass.FuncIR):
//
//  1. CFG. Each function body is lowered to basic blocks of straight-line
//     statements; if/for/range/switch/select/goto lower to explicit
//     edges. A block ending in a condition expression with two successors
//     branches on it, Succs[0] true.
//  2. Dominators. The Cooper–Harvey–Kennedy iterative algorithm yields
//     immediate dominators and dominance frontiers for reachable blocks.
//  3. SSA. Local variables whose address never escapes (no explicit &x,
//     no closure capture, no implicit pointer-receiver indirection) are
//     "tracked": phi values are placed on dominance frontiers of their
//     definition sites and every use identifier is renamed to the one
//     definition (Param, Def, or Phi) reaching it. Untracked variables
//     resolve to Unknown, which every analyzer treats as "no claim".
//  4. Cells. Address-taken locals get a conservative flow-insensitive
//     summary (Func.Cell): every store that may reach the variable —
//     direct assignment or a write through a local may-alias chain —
//     plus a read count and an Escaped bit that trips the moment the
//     address leaves the function (call argument, return, field store,
//     closure capture). Non-escaped cells sustain must-claims (errflow's
//     always-nil proofs, unusedwrite's dead stores, nilness states);
//     escaped cells only may-claims (detflow taint).
//  5. Dataflow. A generic forward fixpoint driver (ir.Forward) visits
//     reachable blocks in reverse postorder; the per-block transfer
//     returns one fact per successor edge, which is how nilness refines
//     "p == nil" into different facts on the two arms. Joins see
//     per-predecessor edges so they can evaluate phis.
//
// # Interprocedural analysis
//
// repro/internal/lint/callgraph builds a per-package call graph over the
// same IR, cached per package by the driver (Pass.CallGraph): one node
// per declared function and per function literal, edges for static
// calls, function values chased through SSA def-use chains (including
// phi joins), and class-hierarchy candidates for interface dispatch
// computed from the package's own method sets — always paired with a
// residual dynamic edge, so clients never mistake CHA candidates for a
// proof of coverage. Tarjan's algorithm emits the SCC condensation in
// reverse topological order, and detflow, errflow and allocflow compute
// their per-function summaries bottom-up over it: callees settle before
// callers, mutually recursive components iterate to their own local
// fixpoint, and the resulting facts (NondetFact, NilErrorFact,
// AllocFact) carry the summaries across package boundaries. detflow
// alone keeps an outer loop, because taint stored into fields feeds back
// into function summaries. `make lint-bench` reports the graph and
// summary costs as callgraph_ns and summary_ns in BENCH_lint.json.
//
// # Hot-path annotations
//
// Two //lint: annotations (reasons mandatory, validated like ignore
// directives) drive allocflow:
//
//	//lint:hotpath <reason>   — this function and everything it reaches
//	                            through static calls must be provably
//	                            allocation-free; every allocating
//	                            construct in the region is a finding.
//	//lint:coldpath <reason>  — a reviewed amortized or setup path
//	                            (buffer growth in a reusable workspace);
//	                            enforcement stops here and no AllocFact
//	                            is exported for it.
//
// Allocations on failing returns (a return statement whose error result
// is non-nil) and in panic arguments are exempt without annotation —
// error paths are cold by definition. Dynamic dispatch is not followed;
// implementations that must stay allocation-free need their own hotpath
// roots.
//
// On top of the IR, detflow runs a taint engine (taint.go) that answers
// "is this value derived from a nondeterministic source?" with a
// package-level fixpoint across functions, fields and package variables;
// errflow proves "this expression is always nil" (a greatest-fixpoint
// dual: optimistic through phi cycles); nilness and unusedwrite consume
// the branch-refined facts and the IR's observedness relation directly.
// Every analysis under-approximates on the same side: a finding is
// proven, silence is not a proof.
//
// # Migrating from the syntactic detflow/errflow
//
// The value-flow rewrite keeps every old finding message, so existing
// //lint:ignore directives keep suppressing what they suppressed. New
// finding shapes (each suppressible the usual way, with the analyzer
// name unchanged):
//
//   - "call to <m> on a nondeterministically derived receiver ..."
//     (detflow: a rand handle reached the receiver through fields or
//     assignments),
//   - "call through nondeterministic function value ..." (detflow: a
//     stored time.Now or closure over one),
//   - "error assigned to <v> from <api> is never checked ..." (errflow:
//     dead error store),
//   - nilness and unusedwrite findings, new analyzers with their own
//     //lint:ignore names.
//
// Functions that previously needed ignores because only a literal
// `return nil` counted as infallible may shed them: always-nil is now
// proven through the value flow.
//
// Because facts make package order matter, the parallel driver
// (Module.RunParallel) schedules packages in topological waves over the
// import DAG on the bounded worker pool from repro/internal/runner —
// ctx-cancellable and panic-isolated — and sorts findings into a total
// order so its output is byte-identical to the sequential reference
// driver (Module.Run).
//
// Entry points: Load / LoadContext + (*Module).Run or RunParallel for
// the standalone cmd/otem-lint multichecker (`make lint`), RunUnit for
// `go vet -vettool=$(otem-lint)`, ToSARIF / WriteSARIF / WriteJSON /
// WriteText for rendering, and RunFixture for analysistest-style
// fixture tests under testdata/src.
package lint
