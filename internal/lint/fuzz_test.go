package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzCollectDirectives hammers the //lint: directive parser with
// arbitrary directive bodies and checks its invariants: it never panics,
// every rejected directive surfaces as a lintdirective finding, and —
// the property the suppression audit rests on — no unknown analyzer name
// ever makes it into the suppression tables.
func FuzzCollectDirectives(f *testing.F) {
	seeds := []string{
		"ignore floatcompare reason text",
		"file-ignore all whole file is exempt",
		"ignore floatcompare,detrand two checks one reason",
		"ignore floatcmp typoed name",
		"ignore",
		"ignore floatcompare",
		"frobnicate floatcompare nope",
		"",
		"  ",
		"ignore all",
		"file-ignore nopanic \t tabs and   runs of spaces",
		"ignore floatcompare,,errflow empty element",
		"ignore ,floatcompare leading comma",
		"ignore ALL case matters",
		"ignore floatcompare nbsp reason",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := knownCheckNames(nil)
	f.Fuzz(func(t *testing.T, body string) {
		// Keep the comment a single line so the fuzz input stays inside
		// the //lint: comment instead of becoming arbitrary source.
		body = strings.NewReplacer("\n", " ", "\r", " ").Replace(body)
		src := fmt.Sprintf("package p\n\n//lint:%s\nfunc F() {}\n", body)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // e.g. the body smuggled in a BOM or control char the scanner rejects
		}
		sup, bad := collectDirectives(fset, []*ast.File{file}, known)

		for _, f := range bad {
			if f.Analyzer != "lintdirective" {
				t.Errorf("directive finding attributed to %q, want lintdirective: %s", f.Analyzer, f)
			}
			if f.Pos.Filename != "fuzz.go" {
				t.Errorf("directive finding positioned in %q", f.Pos.Filename)
			}
		}
		for _, set := range sup.file {
			for name := range set {
				if !known[name] {
					t.Errorf("unknown name %q registered as file suppression", name)
				}
			}
		}
		for _, byLine := range sup.line {
			for _, set := range byLine {
				for name := range set {
					if !known[name] {
						t.Errorf("unknown name %q registered as line suppression", name)
					}
				}
			}
		}
		// A directive either registers suppressions or is reported —
		// well-formed ignores must not vanish silently.
		fields := strings.Fields(body)
		if len(fields) >= 3 && (fields[0] == "ignore" || fields[0] == "file-ignore") {
			allKnown := true
			for _, n := range strings.Split(fields[1], ",") {
				if !known[n] {
					allKnown = false
				}
			}
			if allKnown && len(bad) != 0 {
				t.Errorf("well-formed directive %q reported: %v", body, bad)
			}
			if allKnown && len(sup.file) == 0 && len(sup.line) == 0 {
				t.Errorf("well-formed directive %q registered no suppression", body)
			}
			if !allKnown && len(bad) == 0 {
				t.Errorf("directive %q with unknown names produced no finding", body)
			}
		}
	})
}
