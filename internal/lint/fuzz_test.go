package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/ir"
)

// FuzzCollectDirectives hammers the //lint: directive parser with
// arbitrary directive bodies and checks its invariants: it never panics,
// every rejected directive surfaces as a lintdirective finding, and —
// the property the suppression audit rests on — no unknown analyzer name
// ever makes it into the suppression tables.
func FuzzCollectDirectives(f *testing.F) {
	seeds := []string{
		"ignore floatcompare reason text",
		"file-ignore all whole file is exempt",
		"ignore floatcompare,detrand two checks one reason",
		"ignore floatcmp typoed name",
		"ignore",
		"ignore floatcompare",
		"frobnicate floatcompare nope",
		"",
		"  ",
		"ignore all",
		"file-ignore nopanic \t tabs and   runs of spaces",
		"ignore floatcompare,,errflow empty element",
		"ignore ,floatcompare leading comma",
		"ignore ALL case matters",
		"ignore floatcompare nbsp reason",
		"hotpath warm MPC solve",
		"coldpath amortized buffer growth",
		"hotpath",
		"coldpath",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := knownCheckNames(nil)
	f.Fuzz(func(t *testing.T, body string) {
		// Keep the comment a single line so the fuzz input stays inside
		// the //lint: comment instead of becoming arbitrary source.
		body = strings.NewReplacer("\n", " ", "\r", " ").Replace(body)
		src := fmt.Sprintf("package p\n\n//lint:%s\nfunc F() {}\n", body)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // e.g. the body smuggled in a BOM or control char the scanner rejects
		}
		sup, bad := collectDirectives(fset, []*ast.File{file}, known)

		for _, f := range bad {
			if f.Analyzer != "lintdirective" {
				t.Errorf("directive finding attributed to %q, want lintdirective: %s", f.Analyzer, f)
			}
			if f.Pos.Filename != "fuzz.go" {
				t.Errorf("directive finding positioned in %q", f.Pos.Filename)
			}
		}
		for _, set := range sup.file {
			for name := range set {
				if !known[name] {
					t.Errorf("unknown name %q registered as file suppression", name)
				}
			}
		}
		for _, byLine := range sup.line {
			for _, set := range byLine {
				for name := range set {
					if !known[name] {
						t.Errorf("unknown name %q registered as line suppression", name)
					}
				}
			}
		}
		// A directive either registers suppressions or is reported —
		// well-formed ignores must not vanish silently.
		fields := strings.Fields(body)
		if len(fields) >= 3 && (fields[0] == "ignore" || fields[0] == "file-ignore") {
			allKnown := true
			for _, n := range strings.Split(fields[1], ",") {
				if !known[n] {
					allKnown = false
				}
			}
			if allKnown && len(bad) != 0 {
				t.Errorf("well-formed directive %q reported: %v", body, bad)
			}
			if allKnown && len(sup.file) == 0 && len(sup.line) == 0 {
				t.Errorf("well-formed directive %q registered no suppression", body)
			}
			if !allKnown && len(bad) == 0 {
				t.Errorf("directive %q with unknown names produced no finding", body)
			}
		}
		// hotpath/coldpath annotations never suppress; a missing reason
		// is the only thing reported about them.
		if len(fields) >= 1 && (fields[0] == "hotpath" || fields[0] == "coldpath") {
			if len(sup.file) != 0 || len(sup.line) != 0 {
				t.Errorf("annotation %q registered a suppression", body)
			}
			if len(fields) >= 2 && len(bad) != 0 {
				t.Errorf("well-formed annotation %q reported: %v", body, bad)
			}
			if len(fields) < 2 && len(bad) == 0 {
				t.Errorf("reasonless annotation %q produced no finding", body)
			}
		}
	})
}

// FuzzCallGraph hammers the call-graph builder and its SCC condensation
// with arbitrary single-package programs and checks the structural
// invariants every client leans on: it never panics, each node is
// exactly one of declaration or literal, every edge resolves to a local
// callee, an external function or a declared-dynamic residue, and the
// SCC order is bottom-up (a static callee never lands in a later
// component than its caller).
func FuzzCallGraph(f *testing.F) {
	seeds := []string{
		`func a() { b() }
func b() {}`,
		`func a() { a() }`,
		`func a() { b() }
func b() { a() }`,
		`type T int
func (t T) m() int { return int(t) }
func use(t T) int { return t.m() }`,
		`func pick(fast bool) func() int {
	f := one
	if fast {
		f = two
	}
	return f
}
func one() int { return 1 }
func two() int { return 2 }`,
		`func run() int {
	f := func() int { return inner() }
	return f()
}
func inner() int { return 3 }`,
		`func iife() int {
	return func(x int) int { return x + 1 }(41)
}`,
		`type i interface{ m() }
type a struct{}
func (a) m() {}
func call(v i) { v.m() }`,
		`func convs(x int) float64 { return float64(x) }`,
		`func builtins(xs []int) int { return len(xs) + cap(xs) }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\n\n" + body
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		// No importer: programs that import anything skip, keeping the
		// corpus on call shapes rather than dependency resolution.
		conf := &types.Config{Error: func(error) {}}
		if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
			t.Skip()
		}
		irs := make(map[*ast.FuncDecl]*ir.Func)
		irFor := func(fd *ast.FuncDecl) *ir.Func {
			if fn, ok := irs[fd]; ok {
				return fn
			}
			fn := ir.Build(info, fd)
			irs[fd] = fn
			return fn
		}
		g := callgraph.Build(info, []*ast.File{file}, irFor)

		index := make(map[*callgraph.Node]int)
		count := 0
		for i, scc := range g.SCCs() {
			if len(scc) == 0 {
				t.Fatalf("empty SCC at position %d", i)
			}
			for _, n := range scc {
				if _, dup := index[n]; dup {
					t.Fatalf("node %s appears in two SCCs", n.Name())
				}
				index[n] = i
				count++
			}
		}
		if count != len(g.Nodes) {
			t.Fatalf("SCCs cover %d nodes, graph has %d", count, len(g.Nodes))
		}
		for _, n := range g.Nodes {
			if (n.Decl == nil) == (n.Lit == nil) {
				t.Fatalf("node %s: want exactly one of Decl/Lit", n.Name())
			}
			if n.Decl != nil && g.NodeOf(n.Fn) != n {
				t.Fatalf("NodeOf does not round-trip %s", n.Name())
			}
			for _, e := range n.Out {
				if e.Callee == nil && e.External == nil && !e.Dynamic {
					t.Fatalf("%s: edge with no callee, no external and not dynamic", n.Name())
				}
				if e.Callee != nil && index[e.Callee] > index[n] {
					t.Fatalf("%s: callee %s in a later SCC — order is not bottom-up", n.Name(), e.Callee.Name())
				}
			}
		}
	})
}
