// Package callgraph builds a conservative, stdlib-only call graph for one
// package and condenses it into strongly connected components, so
// analyzers can compute per-function summaries bottom-up (callees before
// callers) and propagate them across packages through exported facts.
//
// Resolution is layered, cheapest first:
//
//  1. Static calls — f(x) and recv.M(x) where the type checker resolves
//     the callee identifier to a concrete *types.Func. These are must
//     edges.
//  2. Function values — g() where g is an SSA-tracked local: the reaching
//     definitions are chased through ir values (defs and phis) to the
//     function literals or declared functions they bind. These are may
//     edges (a phi contributes every incoming binding).
//  3. Interface dispatch — i.M() where the static callee is an interface
//     method: class-hierarchy analysis over the package's own named types
//     adds a may edge to every package-local concrete method that
//     implements it. Implementations outside the package are invisible;
//     callers that need soundness across packages must treat interface
//     dispatch as unresolved (the Dynamic flag stays set on the edge).
//
// Anything else — calls through struct fields, map lookups, channel
// receives, reflection — yields an edge with no callee and Dynamic set,
// which summary computations must widen to their analysis' top value.
//
// The graph is deterministic: nodes appear in source order (declarations
// first, then function literals by position), edges in traversal order,
// and SCCs in Tarjan's emission order, which for the condensation is a
// reverse topological sort — exactly the bottom-up order summary
// computations want.
package callgraph

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/ir"
)

// A Node is one function in the graph: either a declared function or
// method (Decl, Fn set) or a function literal (Lit set, Fn nil).
type Node struct {
	// Decl is the declaration for named functions and methods; nil for
	// function literals.
	Decl *ast.FuncDecl
	// Lit is the literal for anonymous functions; nil for declarations.
	Lit *ast.FuncLit
	// Fn is the declared object; nil for function literals.
	Fn *types.Func
	// Out is the node's call edges in source order.
	Out []Edge

	index, lowlink int
	onStack        bool
}

// Name renders the node for diagnostics: the declared name, or
// "funcN literal" for anonymous functions.
func (n *Node) Name() string {
	if n.Fn != nil {
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
			return recvTypeName(recv.Type()) + "." + n.Fn.Name()
		}
		return n.Fn.Name()
	}
	return "function literal"
}

// recvTypeName names a receiver type without its package qualifier.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// An Edge is one call site (or potential call site) in a function.
type Edge struct {
	// Site is the call expression; nil for the implicit edge from a
	// function to the literals it creates without immediately invoking
	// (the literal may run later, so its effects are the creator's).
	Site *ast.CallExpr
	// Callee is the package-local target, when resolved.
	Callee *Node
	// External is the resolved callee when it lives outside the package
	// (summaries consult imported facts for it). Nil when Callee is set
	// or the call is dynamic.
	External *types.Func
	// Dynamic marks a call the graph could not resolve to a fixed callee
	// set: function values that escape the SSA chase, interface dispatch
	// (even when CHA found local candidates — external implementations
	// remain invisible), go/defer through non-static expressions.
	Dynamic bool
	// CHA marks a may edge contributed by class-hierarchy analysis.
	CHA bool
}

// A Graph is the call graph of one package.
type Graph struct {
	// Nodes in deterministic source order: declarations (file order,
	// then position), then function literals by position.
	Nodes []*Node

	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	sccs  [][]*Node
}

// NodeOf returns the node of a declared function or method, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// SCCs returns the strongly connected components in bottom-up order:
// every edge leaving a component points to an earlier component, so a
// summary computed in slice order sees its callees' summaries first
// (modulo cycles, which share a component and need a local fixpoint).
func (g *Graph) SCCs() [][]*Node {
	if g.sccs == nil {
		g.sccs = tarjan(g.Nodes)
	}
	return g.sccs
}

// Build constructs the call graph of one package from its type-checked
// files. irFor supplies the per-function SSA used to chase function
// values; it may be nil (or return nil) to skip that layer.
func Build(info *types.Info, files []*ast.File, irFor func(*ast.FuncDecl) *ir.Func) *Graph {
	g := &Graph{
		byFn:  make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	b := &gbuilder{g: g, info: info, irFor: irFor}

	// Pass 1: create nodes for every declaration with a body and every
	// function literal, and collect the concrete methods CHA matches
	// against.
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{Decl: fd, Fn: fn}
			g.Nodes = append(g.Nodes, n)
			g.byFn[fn] = n
			if fd.Recv != nil {
				b.methods = append(b.methods, n)
			}
		}
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				ln := &Node{Lit: lit}
				g.Nodes = append(g.Nodes, ln)
				g.byLit[lit] = ln
			}
			return true
		})
	}

	// Pass 2: edges. Each node owns the calls in its own body, stopping
	// at nested literal boundaries (the literal's calls are its own; the
	// creator gets one implicit edge unless it invokes the literal
	// immediately).
	for _, n := range g.Nodes {
		b.edges(n)
	}
	return g
}

// gbuilder holds the state of one Build run.
type gbuilder struct {
	g       *Graph
	info    *types.Info
	irFor   func(*ast.FuncDecl) *ir.Func
	methods []*Node // concrete methods, for CHA
	cur     *Node   // node whose edges are being collected
	curIR   *ir.Func
}

// body returns the AST subtree holding n's code.
func body(n *Node) *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// edges collects n's outgoing edges.
func (b *gbuilder) edges(n *Node) {
	b.cur = n
	b.curIR = nil
	if b.irFor != nil && n.Decl != nil {
		b.curIR = b.irFor(n.Decl)
	}
	b.walk(body(n))
}

// walk traverses one function body, descending into everything except
// nested function literals (which own their calls) — those contribute a
// creation edge instead, unless immediately invoked.
func (b *gbuilder) walk(root ast.Node) {
	ast.Inspect(root, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			b.addEdge(Edge{Callee: b.g.byLit[node]})
			return false
		case *ast.CallExpr:
			b.call(node)
			if _, ok := ast.Unparen(node.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: the call edge above covers
				// it, and the literal node owns its body — skip the Fun
				// subtree so the creation-edge case does not fire, but
				// still walk the arguments.
				for _, arg := range node.Args {
					b.walk(arg)
				}
				return false
			}
		}
		return true
	})
}

// call classifies one call expression into an edge.
func (b *gbuilder) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked function literal: a direct edge to the literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		b.addEdge(Edge{Site: call, Callee: b.g.byLit[lit]})
		return
	}

	// Conversions and builtins are not calls.
	if tv, ok := b.info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := b.info.Uses[id].(*types.Builtin); ok {
			return
		}
	}

	// Static resolution through the type checker.
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if id != nil {
		if fn, ok := b.info.Uses[id].(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
					b.interfaceCall(call, fn)
					return
				}
			}
			b.staticEdge(call, fn)
			return
		}
		// A plain identifier bound to a function value: chase its SSA
		// reaching definitions.
		if _, isSel := fun.(*ast.SelectorExpr); !isSel {
			if v, ok := b.info.Uses[id].(*types.Var); ok {
				if b.funcValueCall(call, id, v) {
					return
				}
			}
		}
	}
	b.addEdge(Edge{Site: call, Dynamic: true})
}

// staticEdge records a resolved concrete call: package-local when the
// callee has a node, external otherwise.
func (b *gbuilder) staticEdge(call *ast.CallExpr, fn *types.Func) {
	if n := b.g.byFn[fn]; n != nil {
		b.addEdge(Edge{Site: call, Callee: n})
		return
	}
	b.addEdge(Edge{Site: call, External: fn})
}

// interfaceCall handles i.M(): CHA over the package's concrete methods
// adds a may edge per local implementation, and the call additionally
// stays Dynamic because implementations in other packages are invisible.
func (b *gbuilder) interfaceCall(call *ast.CallExpr, ifaceMethod *types.Func) {
	name := ifaceMethod.Name()
	recv := ifaceMethod.Type().(*types.Signature).Recv()
	iface, _ := recv.Type().Underlying().(*types.Interface)
	for _, m := range b.methods {
		if m.Fn.Name() != name || iface == nil {
			continue
		}
		mrecv := m.Fn.Type().(*types.Signature).Recv().Type()
		if types.Implements(mrecv, iface) {
			b.addEdge(Edge{Site: call, Callee: m, CHA: true})
		}
	}
	b.addEdge(Edge{Site: call, Dynamic: true})
}

// funcValueCall chases a call through a local function-typed variable by
// following its SSA value (defs through phis, bounded by a visited set).
// Returns false when any reaching binding is unresolvable, in which case
// the caller records a dynamic edge instead.
func (b *gbuilder) funcValueCall(call *ast.CallExpr, id *ast.Ident, v *types.Var) bool {
	if b.curIR == nil || !b.curIR.Tracked(v) {
		return false
	}
	val := b.curIR.ValueAt(id)
	if val == nil {
		return false
	}
	var edges []Edge
	seen := make(map[ir.Value]bool)
	var chase func(val ir.Value) bool
	chase = func(val ir.Value) bool {
		if seen[val] {
			return true
		}
		seen[val] = true
		switch val := val.(type) {
		case *ir.Def:
			if val.Rhs == nil {
				return false
			}
			switch rhs := ast.Unparen(val.Rhs).(type) {
			case *ast.FuncLit:
				edges = append(edges, Edge{Site: call, Callee: b.g.byLit[rhs]})
				return true
			case *ast.Ident:
				if fn, ok := b.info.Uses[rhs].(*types.Func); ok {
					if n := b.g.byFn[fn]; n != nil {
						edges = append(edges, Edge{Site: call, Callee: n})
					} else {
						edges = append(edges, Edge{Site: call, External: fn})
					}
					return true
				}
			case *ast.SelectorExpr:
				if fn, ok := b.info.Uses[rhs.Sel].(*types.Func); ok {
					if sig := fn.Type().(*types.Signature); sig.Recv() == nil {
						edges = append(edges, Edge{Site: call, External: fn})
						return true
					}
				}
			}
			return false
		case *ir.Phi:
			for _, e := range val.Edges {
				if !chase(e) {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	if !chase(val) {
		return false
	}
	for _, e := range edges {
		b.addEdge(e)
	}
	return len(edges) > 0
}

func (b *gbuilder) addEdge(e Edge) { b.cur.Out = append(b.cur.Out, e) }

// tarjan computes SCCs; the emission order (component finished when its
// root pops) is a reverse topological sort of the condensation, i.e.
// callees before callers.
func tarjan(nodes []*Node) [][]*Node {
	for _, n := range nodes {
		n.index = 0
	}
	var (
		sccs  [][]*Node
		stack []*Node
		next  = 1
	)
	var strong func(n *Node)
	strong = func(n *Node) {
		n.index = next
		n.lowlink = next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, e := range n.Out {
			w := e.Callee
			if w == nil {
				continue
			}
			if w.index == 0 {
				strong(w)
				if w.lowlink < n.lowlink {
					n.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < n.lowlink {
				n.lowlink = w.index
			}
		}
		if n.lowlink == n.index {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if n.index == 0 {
			strong(n)
		}
	}
	return sccs
}
