package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/ir"
)

// build typechecks one file and builds its call graph with IR-backed
// function-value resolution.
func build(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	irs := make(map[*ast.FuncDecl]*ir.Func)
	g := Build(info, []*ast.File{file}, func(fd *ast.FuncDecl) *ir.Func {
		f, ok := irs[fd]
		if !ok {
			f = ir.Build(info, fd)
			irs[fd] = f
		}
		return f
	})
	return g, info
}

// node finds the graph node of the named declared function.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// calleeNames renders a node's resolved edges for assertions.
func calleeNames(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		switch {
		case e.Callee != nil && e.CHA:
			out = append(out, "cha:"+e.Callee.Name())
		case e.Callee != nil && e.Site == nil:
			out = append(out, "creates:"+e.Callee.Name())
		case e.Callee != nil:
			out = append(out, e.Callee.Name())
		case e.External != nil:
			out = append(out, "ext:"+e.External.Name())
		case e.Dynamic:
			out = append(out, "dynamic")
		}
	}
	return out
}

func TestStaticEdges(t *testing.T) {
	g, _ := build(t, `package p

func a() { b(); c() }
func b() { c() }
func c() {}
`)
	got := strings.Join(calleeNames(node(t, g, "a")), ",")
	if got != "b,c" {
		t.Errorf("a's edges = %q, want b,c", got)
	}
}

func TestMethodAndExternalEdges(t *testing.T) {
	g, _ := build(t, `package p

import "strconv"

type T int

func (t T) m() {}

func a(t T) string { t.m(); return strconv.Itoa(int(t)) }
`)
	got := strings.Join(calleeNames(node(t, g, "a")), ",")
	if got != "T.m,ext:Itoa" {
		t.Errorf("a's edges = %q, want T.m,ext:Itoa", got)
	}
}

func TestFuncValueThroughSSA(t *testing.T) {
	g, _ := build(t, `package p

func a() {}
func b() {}

func pick(cond bool) {
	f := a
	if cond {
		f = b
	}
	f()
}
`)
	got := strings.Join(calleeNames(node(t, g, "pick")), ",")
	// The phi at the join contributes both bindings.
	if got != "a,b" {
		t.Errorf("pick's edges = %q, want a,b", got)
	}
}

func TestFuncValueUnresolvedIsDynamic(t *testing.T) {
	g, _ := build(t, `package p

var hook func()

func a() { f := hook; f() }
`)
	got := strings.Join(calleeNames(node(t, g, "a")), ",")
	if got != "dynamic" {
		t.Errorf("a's edges = %q, want dynamic", got)
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g, _ := build(t, `package p

type runner interface{ run() }

type fast struct{}
type slow struct{}

func (fast) run() {}
func (slow) run() {}

func drive(r runner) { r.run() }
`)
	got := strings.Join(calleeNames(node(t, g, "drive")), ",")
	// Both local implementations, plus the residual dynamic edge for
	// implementations outside the package.
	if got != "cha:fast.run,cha:slow.run,dynamic" {
		t.Errorf("drive's edges = %q, want cha:fast.run,cha:slow.run,dynamic", got)
	}
}

func TestFuncLitNodes(t *testing.T) {
	g, _ := build(t, `package p

func a() {
	f := func() { b() }
	f()
	func() { b() }()
}

func b() {}
`)
	n := node(t, g, "a")
	var lits, calls int
	for _, e := range n.Out {
		if e.Callee != nil && e.Callee.Lit != nil {
			if e.Site == nil {
				lits++ // creation edge
			} else {
				calls++ // resolved invocation
			}
		}
	}
	if lits != 1 || calls != 2 {
		t.Errorf("lit creation/call edges = %d/%d, want 1/2 (stored lit created once, called once; IIFE called once)", lits, calls)
	}
	// Each literal's body owns its own call to b.
	litCalls := 0
	for _, n := range g.Nodes {
		if n.Lit == nil {
			continue
		}
		for _, e := range n.Out {
			if e.Callee != nil && e.Callee.Name() == "b" {
				litCalls++
			}
		}
	}
	if litCalls != 2 {
		t.Errorf("calls to b from literals = %d, want 2", litCalls)
	}
}

func TestConversionsAndBuiltinsAreNotCalls(t *testing.T) {
	g, _ := build(t, `package p

type mv float64

func a(x float64, s []int) int {
	_ = mv(x)
	return len(append(s, 1))
}
`)
	if got := calleeNames(node(t, g, "a")); len(got) != 0 {
		t.Errorf("a's edges = %v, want none (conversion, len, append)", got)
	}
}

func TestSCCsBottomUp(t *testing.T) {
	g, _ := build(t, `package p

func top() { mid() }
func mid() { leafA(); leafB() }
func leafA() { leafB() }
func leafB() {}

func pingA() { pingB() }
func pingB() { pingA() }
`)
	sccs := g.SCCs()
	pos := make(map[string]int)
	size := make(map[string]int)
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n.Name()] = i
			size[n.Name()] = len(scc)
		}
	}
	// Callees come before callers.
	if !(pos["leafB"] < pos["leafA"] && pos["leafA"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Errorf("SCC order not bottom-up: %v", pos)
	}
	// The mutual recursion shares one component.
	if pos["pingA"] != pos["pingB"] || size["pingA"] != 2 {
		t.Errorf("pingA/pingB SCC: pos %d/%d size %d, want shared size-2", pos["pingA"], pos["pingB"], size["pingA"])
	}
}

func TestDeterministicNodeOrder(t *testing.T) {
	src := `package p

func c() { b() }
func a() { c() }
func b() { f := func() {}; f() }
`
	g1, _ := build(t, src)
	g2, _ := build(t, src)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Name() != g2.Nodes[i].Name() {
			t.Errorf("node %d: %q vs %q", i, g1.Nodes[i].Name(), g2.Nodes[i].Name())
		}
		if len(g1.Nodes[i].Out) != len(g2.Nodes[i].Out) {
			t.Errorf("node %d edge counts differ", i)
		}
	}
	s1, s2 := g1.SCCs(), g2.SCCs()
	if len(s1) != len(s2) {
		t.Fatalf("SCC counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if len(s1[i]) != len(s2[i]) || s1[i][0].Name() != s2[i][0].Name() {
			t.Errorf("SCC %d differs: %s vs %s", i, s1[i][0].Name(), s2[i][0].Name())
		}
	}
}
