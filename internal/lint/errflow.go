package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"

	"repro/internal/lint/ir"
)

// NilErrorFact marks a function whose error result is provably always nil:
// every return statement supplies a value the SSA value flow proves nil —
// a literal nil, a variable that only ever held nil (through branches and
// zero-valued declarations), or the result of another always-nil function.
// Call sites in dependent packages may then discard the error without a
// finding — the fact carries the proof across the package boundary.
type NilErrorFact struct{}

// AFact marks NilErrorFact as a Fact.
func (*NilErrorFact) AFact() {}

func (*NilErrorFact) String() string { return "always returns a nil error" }

// ErrFlow is the errcheck of this module: an error returned by an
// otem/internal API and dropped on the floor is a silent failure — exactly
// the class of bug the facade's sentinel errors and the runner's
// first-error propagation exist to prevent.
//
// Two finding shapes, both over the shared SSA IR:
//
//   - A call whose result set includes an error may not appear as a bare
//     expression statement (or a bare defer/go call).
//   - An error assigned to a local variable — directly or through tuple
//     assignment — must be observed before it dies or is overwritten;
//     a never-read error definition is the same silent drop with an
//     extra step.
//
// Assigning the error to a struct field counts as handling it: the
// field's consumers own it from there. Explicit discards (`_ =`, blank
// tuple positions) are reviewed decisions and stay legal. Calls to
// functions carrying a NilErrorFact are exempt, so plumbing helpers that
// structurally cannot fail do not force busywork at every call site.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: `forbid discarding errors returned by module APIs

A bare call statement f(x) whose callee returns an error silently drops
failures the caller was meant to see (otem sentinel errors, solver
failures, I/O); so does err := f(x) when no path ever reads err again.
Assign and handle the error, discard it explicitly with "_ =" if the
context justifies it, or suppress with //lint:ignore errflow <reason>.
Functions proven always-nil through the value flow (every return's error
position only ever holds nil) are exported as facts and exempt.`,
	Run:       runErrFlow,
	FactTypes: []Fact{(*NilErrorFact)(nil)},
}

func runErrFlow(pass *Pass) error {
	// Pass 1: prove always-nil error returns for this package's functions
	// (fixpoint over same-package calls, facts for dependencies). The
	// proof follows values: `var err error` stays nil until something
	// can assign non-nil to it, across branches and joins.
	type retInfo struct {
		fd        *ast.FuncDecl
		errPos    []int // indices of error results
		returns   []*ast.ReturnStmt
		alwaysNil bool
	}
	infos := make(map[*types.Func]*retInfo)
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			ri := &retInfo{fd: fd}
			for i := 0; i < sig.Results().Len(); i++ {
				if implementsError(sig.Results().At(i).Type()) {
					ri.errPos = append(ri.errPos, i)
				}
			}
			if len(ri.errPos) == 0 {
				continue
			}
			collectReturns(fd.Body, &ri.returns)
			infos[obj] = ri
			order = append(order, obj)
		}
	}

	isAlwaysNil := func(fn *types.Func) bool {
		if ri, ok := infos[fn]; ok {
			return ri.alwaysNil
		}
		var fact NilErrorFact
		return fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &fact)
	}
	prover := &nilProver{
		pass:        pass,
		isAlwaysNil: isAlwaysNil,
		busy:        make(map[ir.Value]bool),
		busyCell:    make(map[*ir.Cell]bool),
	}

	// provablyNil reports whether every error-position expression of every
	// return statement is provably nil given the current fixpoint state.
	provablyNil := func(ri *retInfo) bool {
		if len(ri.returns) == 0 {
			return false // e.g. ends in panic or infinite loop: stay conservative
		}
		irf := pass.FuncIR(ri.fd)
		for _, r := range ri.returns {
			if len(r.Results) == 0 {
				// Naked return: the named error results must be provably
				// nil at this point; their reaching values are recorded by
				// the IR as observed-at-return, but position-precise
				// resolution needs the result objects.
				if !prover.namedResultsNil(irf, ri.fd, r) {
					return false
				}
				continue
			}
			if len(r.Results) == 1 && len(ri.errPos) >= 1 && ri.errPos[0] != 0 {
				// return f() forwarding a tuple: the single expression
				// stands for all results; require an always-nil callee.
				if !prover.expr(irf, r.Results[0]) {
					return false
				}
				continue
			}
			for _, i := range ri.errPos {
				if i >= len(r.Results) || !prover.expr(irf, r.Results[i]) {
					return false
				}
			}
		}
		return true
	}
	// Proofs run bottom-up over the call graph's SCC condensation: a
	// function's proof consults only its static callees (return f(),
	// tuple assignments), and those live in earlier components — already
	// settled — or in this one, which iterates to its own fixpoint. The
	// result is the same least fixpoint the old whole-package rounds
	// converged to, reached in one sweep.
	t0 := time.Now()
	for _, scc := range pass.CallGraph().SCCs() {
		for again := true; again; {
			again = false
			for _, node := range scc {
				if node.Decl == nil {
					continue
				}
				ri := infos[node.Fn]
				if ri == nil || ri.alwaysNil {
					continue
				}
				if provablyNil(ri) {
					ri.alwaysNil = true
					again = true
				}
			}
		}
	}
	addSummaryNanos(time.Since(t0))
	for _, fn := range order {
		if infos[fn].alwaysNil {
			pass.ExportObjectFact(fn, &NilErrorFact{})
		}
	}

	// Pass 2: flag bare call statements discarding a module-API error.
	report := func(call *ast.CallExpr, how string) {
		callee := staticCallee(pass.TypesInfo, call)
		if callee == nil || !moduleAPI(callee.Pkg()) {
			return
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || !returnsError(tv.Type) {
			return
		}
		if isAlwaysNil(callee) {
			return
		}
		pass.Reportf(call.Pos(), "error returned by %s.%s is discarded%s; assign and handle it (or discard explicitly with _ =)", callee.Pkg().Path(), callee.Name(), how)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "")
				}
			case *ast.DeferStmt:
				report(n.Call, " by defer")
			case *ast.GoStmt:
				report(n.Call, " by go")
			}
			return true
		})
	}

	// Pass 3: flag error definitions no path ever observes — the value
	// dies or is overwritten unread. The observed set already closes over
	// phi chains and treats named results as read at every return, so
	// `if err != nil`, `return err`, `_ = err` and naked returns all count
	// as handling.
	for _, fn := range order {
		reportDeadErrorStores(pass, infos[fn].fd, isAlwaysNil)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if _, done := infos[obj]; done {
					continue // already scanned above
				}
			}
			reportDeadErrorStores(pass, fd, isAlwaysNil)
		}
	}
	return nil
}

// reportDeadErrorStores files a finding for every unobserved definition of
// an error-typed local whose value came from a fallible module-API call.
func reportDeadErrorStores(pass *Pass, fd *ast.FuncDecl, isAlwaysNil func(*types.Func) bool) {
	irf := pass.FuncIR(fd)
	if irf == nil {
		return
	}
	for _, d := range irf.Defs() {
		if irf.Observed(d) || !implementsError(d.V.Type()) {
			continue
		}
		var call *ast.CallExpr
		if d.Rhs != nil {
			call, _ = ast.Unparen(d.Rhs).(*ast.CallExpr)
		} else if as, ok := d.Stmt.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			// Tuple assignment v, err := f().
			call, _ = ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		}
		if call == nil {
			continue
		}
		callee := staticCallee(pass.TypesInfo, call)
		if callee == nil || !moduleAPI(callee.Pkg()) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || !returnsError(tv.Type) || isAlwaysNil(callee) {
			continue
		}
		pass.Reportf(d.Ident.Pos(), "error assigned to %s from %s.%s is never checked; handle it or discard explicitly with _ =", d.Ident.Name, callee.Pkg().Path(), callee.Name())
	}
}

// nilProver decides "this expression is provably nil here" over the SSA
// value flow, falling back to cell summaries for address-taken locals.
type nilProver struct {
	pass        *Pass
	isAlwaysNil func(*types.Func) bool
	busy        map[ir.Value]bool
	busyCell    map[*ir.Cell]bool
}

func (p *nilProver) expr(fn *ir.Func, e ast.Expr) bool {
	e = ast.Unparen(e)
	if isNilExpr(p.pass.TypesInfo, e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if fn != nil {
			if v, ok := p.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if fn.Tracked(v) {
					if val := fn.ValueAt(id); val != nil {
						return p.value(fn, val)
					}
					return false
				}
				if c := fn.Cell(v); c != nil {
					return p.cellNil(fn, c)
				}
			}
		}
		return false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if callee := staticCallee(p.pass.TypesInfo, call); callee != nil {
			return p.isAlwaysNil(callee)
		}
	}
	return false
}

// value reports whether SSA value v can only ever be nil.
func (p *nilProver) value(fn *ir.Func, v ir.Value) bool {
	if p.busy[v] {
		// Phi cycle: if every entry into the cycle proves nil, the values
		// circulating inside it can only be nil too, so the back edge does
		// not break the proof (greatest-fixpoint reading).
		return true
	}
	p.busy[v] = true
	defer delete(p.busy, v)
	switch v := v.(type) {
	case *ir.Param:
		// A named result starts at its zero value; a parameter is
		// whatever the caller passed.
		return v.Result && nilZero(v.V.Type())
	case *ir.Phi:
		for _, e := range v.Edges {
			if e == nil {
				continue // unreachable predecessor
			}
			if !p.value(fn, e) {
				return false
			}
		}
		return true
	case *ir.Def:
		switch v.Kind {
		case ir.DefDecl:
			if v.Rhs == nil {
				return nilZero(v.V.Type()) // var err error
			}
			return p.expr(fn, v.Rhs)
		case ir.DefAssign:
			if v.Tok != token.ASSIGN && v.Tok != token.DEFINE {
				return false // op-assign cannot produce nil interfaces
			}
			if v.Rhs != nil {
				return p.expr(fn, v.Rhs)
			}
			// Tuple assignment: nil iff the callee's error results are.
			if as, ok := v.Stmt.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if callee := staticCallee(p.pass.TypesInfo, call); callee != nil {
						return implementsError(v.V.Type()) && p.isAlwaysNil(callee)
					}
				}
			}
		}
		return false
	}
	return false // Unknown
}

// cellNil proves an address-taken local always-nil: this is a must-claim,
// so the cell may not have escaped (unseen code could store anything
// through the leaked address) and every recorded store — direct or
// through a may-aliasing pointer — must itself prove nil. Stores the
// summary does not model (tuple positions, op-assigns, range variables)
// defeat the proof. Cycles through self-referential stores read
// optimistically nil, the same greatest-fixpoint treatment phi cycles
// get: if every acyclic store proves nil, the circulating value is nil.
func (p *nilProver) cellNil(fn *ir.Func, c *ir.Cell) bool {
	if c.Escaped {
		return false
	}
	if p.busyCell[c] {
		return true
	}
	p.busyCell[c] = true
	defer delete(p.busyCell, c)
	for _, s := range c.Stores {
		switch {
		case s.Zero:
			if !nilZero(c.V.Type()) {
				return false
			}
		case s.Tuple, s.Rhs == nil:
			return false
		default:
			if !p.expr(fn, s.Rhs) {
				return false
			}
		}
	}
	return len(c.Stores) > 0
}

// namedResultsNil reports whether, at a naked return, every error-typed
// named result provably holds nil.
func (p *nilProver) namedResultsNil(fn *ir.Func, fd *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	if fn == nil {
		return false
	}
	obj, ok := p.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		rv := sig.Results().At(i)
		if !implementsError(rv.Type()) {
			continue
		}
		if rv.Name() == "" || !fn.Tracked(rv) {
			return false
		}
		val, ok := fn.ReachingAt(ret, rv)
		if !ok || !p.value(fn, val) {
			return false
		}
	}
	return true
}

// collectReturns gathers the return statements of a function body without
// descending into nested function literals (whose returns belong to the
// literal, not the declaration).
func collectReturns(body *ast.BlockStmt, out *[]*ast.ReturnStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			*out = append(*out, n)
		}
		return true
	})
}

// returnsError reports whether a call-expression type (single value or
// tuple) includes an error.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if implementsError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return implementsError(t)
}

// nilZero reports whether t's zero value is nil.
func nilZero(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// moduleAPI reports whether pkg is part of this module (the otem facade,
// the internal packages, the commands) as opposed to the standard library:
// the errflow contract covers the module's own APIs, where dropped errors
// are silent simulation failures.
func moduleAPI(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "repro" || strings.HasPrefix(path, "repro/")
}
