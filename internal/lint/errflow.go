package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NilErrorFact marks a function whose error result is provably always nil:
// every return statement supplies a literal nil (or the result of another
// always-nil function) in the error position. Call sites in dependent
// packages may then discard the error without a finding — the fact carries
// the proof across the package boundary.
type NilErrorFact struct{}

// AFact marks NilErrorFact as a Fact.
func (*NilErrorFact) AFact() {}

func (*NilErrorFact) String() string { return "always returns a nil error" }

// ErrFlow is the errcheck of this module: an error returned by an
// otem/internal API and dropped on the floor is a silent failure — exactly
// the class of bug the facade's sentinel errors and the runner's
// first-error propagation exist to prevent.
//
// A call whose result set includes an error may not appear as a bare
// expression statement (or a bare defer/go call): the error must be
// assigned and handled, or explicitly discarded with `_ =` where that is a
// reviewed decision. Calls to functions carrying a NilErrorFact are
// exempt, so plumbing helpers that structurally cannot fail do not force
// busywork at every call site.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: `forbid discarding errors returned by module APIs

A bare call statement f(x) whose callee returns an error silently drops
failures the caller was meant to see (otem sentinel errors, solver
failures, I/O). Assign and handle the error, discard it explicitly with
"_ =" if the context justifies it, or suppress with //lint:ignore errflow
<reason>. Functions proven to always return nil errors are exported as
facts and exempt.`,
	Run:       runErrFlow,
	FactTypes: []Fact{(*NilErrorFact)(nil)},
}

func runErrFlow(pass *Pass) error {
	// Pass 1: prove always-nil error returns for this package's functions
	// (fixpoint over same-package tail calls, facts for dependencies).
	type retInfo struct {
		errPos    []int // indices of error results
		returns   []*ast.ReturnStmt
		alwaysNil bool
	}
	infos := make(map[*types.Func]*retInfo)
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			ri := &retInfo{}
			for i := 0; i < sig.Results().Len(); i++ {
				if implementsError(sig.Results().At(i).Type()) {
					ri.errPos = append(ri.errPos, i)
				}
			}
			if len(ri.errPos) == 0 {
				continue
			}
			collectReturns(fd.Body, &ri.returns)
			infos[obj] = ri
			order = append(order, obj)
		}
	}

	// nilReturn reports whether every error-position expression of every
	// return statement is provably nil given the current fixpoint state.
	isAlwaysNil := func(fn *types.Func) bool {
		if ri, ok := infos[fn]; ok {
			return ri.alwaysNil
		}
		var fact NilErrorFact
		return fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &fact)
	}
	nilExprOrNilCall := func(e ast.Expr) bool {
		if isNilExpr(pass.TypesInfo, e) {
			return true
		}
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if callee := staticCallee(pass.TypesInfo, call); callee != nil {
				return isAlwaysNil(callee)
			}
		}
		return false
	}
	provablyNil := func(ri *retInfo) bool {
		if len(ri.returns) == 0 {
			return false // e.g. ends in panic or infinite loop: stay conservative
		}
		for _, r := range ri.returns {
			if len(r.Results) == 0 {
				return false // naked return through named results
			}
			if len(r.Results) == 1 && len(ri.errPos) >= 1 && ri.errPos[0] != 0 {
				// return f() forwarding a tuple: the single expression
				// stands for all results; require an always-nil callee.
				if !nilExprOrNilCall(r.Results[0]) {
					return false
				}
				continue
			}
			for _, i := range ri.errPos {
				if i >= len(r.Results) || !nilExprOrNilCall(r.Results[i]) {
					return false
				}
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			ri := infos[fn]
			if !ri.alwaysNil && provablyNil(ri) {
				ri.alwaysNil = true
				changed = true
			}
		}
	}
	for _, fn := range order {
		if infos[fn].alwaysNil {
			pass.ExportObjectFact(fn, &NilErrorFact{})
		}
	}

	// Pass 2: flag bare call statements discarding a module-API error.
	report := func(call *ast.CallExpr, how string) {
		callee := staticCallee(pass.TypesInfo, call)
		if callee == nil || !moduleAPI(callee.Pkg()) {
			return
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || !returnsError(tv.Type) {
			return
		}
		if isAlwaysNil(callee) {
			return
		}
		pass.Reportf(call.Pos(), "error returned by %s.%s is discarded%s; assign and handle it (or discard explicitly with _ =)", callee.Pkg().Path(), callee.Name(), how)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "")
				}
			case *ast.DeferStmt:
				report(n.Call, " by defer")
			case *ast.GoStmt:
				report(n.Call, " by go")
			}
			return true
		})
	}
	return nil
}

// collectReturns gathers the return statements of a function body without
// descending into nested function literals (whose returns belong to the
// literal, not the declaration).
func collectReturns(body *ast.BlockStmt, out *[]*ast.ReturnStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			*out = append(*out, n)
		}
		return true
	})
}

// returnsError reports whether a call-expression type (single value or
// tuple) includes an error.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if implementsError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return implementsError(t)
}

// moduleAPI reports whether pkg is part of this module (the otem facade,
// the internal packages, the commands) as opposed to the standard library:
// the errflow contract covers the module's own APIs, where dropped errors
// are silent simulation failures.
func moduleAPI(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "repro" || strings.HasPrefix(path, "repro/")
}
