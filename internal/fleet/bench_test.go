package fleet

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/runner"
)

const (
	// fleetBenchVehicles is the `make fleet-bench` fleet size; the smoke
	// mode (plain `go test`) shrinks it so the suite stays fast.
	fleetBenchVehicles = 10000
	// fleetBenchAllocBudget is the committed ceiling on heap allocations
	// per vehicle-step. Unlike the core hot path, a fleet vehicle pays
	// per-vehicle setup (route synthesis, plant, one controller per day)
	// that amortizes over its route; the budget covers that amortized cost
	// plus the steady-state stepping, which allocates nothing.
	fleetBenchAllocBudget = 0.5
	// fleetBenchMinVehiclesPerSec is the committed throughput floor at
	// GOMAXPROCS workers under the Parallel baseline. Deliberately ~10×
	// below the measured rate so the gate catches order-of-magnitude
	// regressions (an accidental O(fleet) buffer, a controller rebuilt per
	// step) without flaking on slow CI machines.
	fleetBenchMinVehiclesPerSec = 150
)

// fleetBenchReport is the BENCH_fleet.json schema produced by
// `make fleet-bench`.
type fleetBenchReport struct {
	Benchmark     string  `json:"benchmark"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Vehicles      int     `json:"vehicles"`
	Days          int     `json:"days"`
	RouteSeconds  float64 `json:"route_seconds"`
	Method        string  `json:"method"`
	StepsPerRun   uint64  `json:"steps_per_run"`
	Digest        string  `json:"digest"`
	SerialSec     float64 `json:"serial_seconds"`
	SerialRate    float64 `json:"serial_vehicles_per_sec"`
	ParallelSec   float64 `json:"parallel_seconds"`
	ParallelRate  float64 `json:"parallel_vehicles_per_sec"`
	Workers       int     `json:"parallel_workers"`
	Speedup       float64 `json:"speedup"`
	AllocsPerStep float64 `json:"allocs_per_vehicle_step"`
	AllocBudget   float64 `json:"alloc_budget_allocs_per_vehicle_step"`
	RateBudget    float64 `json:"min_vehicles_per_sec"`
}

// TestFleetBenchJSON is the `make fleet-bench` harness: a Monte Carlo
// fleet under the Parallel baseline, rolled once sequentially and once at
// GOMAXPROCS workers, vehicles/sec and allocs per vehicle-step written to
// the path in FLEET_BENCH_JSON. Without the environment variable the test
// runs a small smoke fleet (nothing written) so plain `go test ./...`
// stays fast. In both modes it fails when the per-vehicle-step allocation
// count exceeds the committed budget, and it re-checks the determinism
// contract: both runs must produce the same digest.
func TestFleetBenchJSON(t *testing.T) {
	out := os.Getenv("FLEET_BENCH_JSON")
	spec := Spec{
		Vehicles:     fleetBenchVehicles,
		Days:         1,
		Seed:         1,
		Method:       policy.MethodologyParallel,
		RouteSeconds: 600,
	}
	name := "FleetParallelBaseline"
	if out == "" {
		spec.Vehicles = 300
		spec.RouteSeconds = 120
		name = "FleetParallelBaseline/smoke"
	}
	ctx := context.Background()

	run := func(workers int) (*Result, time.Duration, uint64) {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := Run(ctx, spec, runner.New(runner.Workers(workers)), nil)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			t.Fatal(err)
		}
		return res, elapsed, m1.Mallocs - m0.Mallocs
	}

	serialRes, serialDur, serialAllocs := run(1)
	parRes, parDur, _ := run(runtime.GOMAXPROCS(0))
	steps := serialRes.Steps

	if s, p := serialRes.Digest(), parRes.Digest(); s != p {
		t.Fatalf("determinism violated: serial digest %s, parallel digest %s", s, p)
	}
	if steps == 0 {
		t.Fatal("fleet simulated zero steps")
	}

	allocsPerStep := float64(serialAllocs) / float64(steps)
	report := fleetBenchReport{
		Benchmark:     name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Vehicles:      spec.Vehicles,
		Days:          1,
		RouteSeconds:  spec.RouteSeconds,
		Method:        string(spec.Method),
		StepsPerRun:   steps,
		Digest:        serialRes.Digest(),
		SerialSec:     serialDur.Seconds(),
		SerialRate:    float64(spec.Vehicles) / serialDur.Seconds(),
		ParallelSec:   parDur.Seconds(),
		ParallelRate:  float64(spec.Vehicles) / parDur.Seconds(),
		Workers:       runtime.GOMAXPROCS(0),
		Speedup:       serialDur.Seconds() / parDur.Seconds(),
		AllocsPerStep: allocsPerStep,
		AllocBudget:   fleetBenchAllocBudget,
		RateBudget:    fleetBenchMinVehiclesPerSec,
	}
	t.Logf("%s: %d vehicles, %d steps, serial %.1f veh/s, %d-worker %.1f veh/s (×%.1f), %.3f allocs/vehicle-step",
		name, spec.Vehicles, steps, report.SerialRate, report.Workers, report.ParallelRate, report.Speedup, allocsPerStep)

	if allocsPerStep > fleetBenchAllocBudget {
		t.Errorf("allocation regression: %.3f allocs/vehicle-step, budget %.2f", allocsPerStep, fleetBenchAllocBudget)
	}
	if out == "" {
		return
	}
	if report.ParallelRate < fleetBenchMinVehiclesPerSec {
		t.Errorf("throughput regression: %.1f vehicles/sec at %d workers, committed floor %d",
			report.ParallelRate, report.Workers, fleetBenchMinVehiclesPerSec)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
