package fleet

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/runner"
)

const (
	// fleetBenchVehicles is the `make fleet-bench` fleet size; the smoke
	// mode (plain `go test`) shrinks it so the suite stays fast.
	fleetBenchVehicles = 10000
	// fleetBenchTrials is how many alternating (per-vehicle, batched)
	// timing pairs the full bench runs; each path's committed time is the
	// minimum across trials, so a frequency dip during one trial cannot
	// fake a regression or a speedup.
	fleetBenchTrials = 3
	// fleetBenchAllocBudget is the committed ceiling on heap allocations
	// per vehicle-step. Unlike the core hot path, a fleet vehicle pays
	// per-vehicle setup (route synthesis, plant, one controller per day)
	// that amortizes over its route; the budget covers that amortized cost
	// plus the steady-state stepping, which allocates nothing.
	fleetBenchAllocBudget = 0.5
	// fleetBenchMinVehiclesPerSec is the committed throughput floor for
	// the batched serial rollout. Deliberately ~10× below the measured
	// rate so the gate catches order-of-magnitude regressions (an
	// accidental O(fleet) buffer, a controller rebuilt per step) without
	// flaking on slow CI machines.
	fleetBenchMinVehiclesPerSec = 300
	// fleetBenchMinBatchSpeedup is the committed floor on the batched
	// rollout's serial advantage over the per-vehicle reference path. The
	// structure-of-arrays rollout (shared forecast windows, lockstep AVX
	// bus solves) measures ≥1.7× here; the gate is set at 1.5× to catch a
	// batched path that quietly degrades to per-vehicle speed.
	fleetBenchMinBatchSpeedup = 1.5
)

// fleetBenchWorkerRun is one worker-count scaling measurement of the
// batched rollout, run on a fresh pool.
type fleetBenchWorkerRun struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Rate    float64 `json:"vehicles_per_sec"`
	Speedup float64 `json:"speedup_vs_serial_batched"`
}

// fleetBenchReport is the BENCH_fleet.json schema produced by
// `make fleet-bench`.
type fleetBenchReport struct {
	Benchmark       string                `json:"benchmark"`
	GOMAXPROCS      int                   `json:"gomaxprocs"`
	NumCPU          int                   `json:"num_cpu"`
	Vehicles        int                   `json:"vehicles"`
	Days            int                   `json:"days"`
	RouteSeconds    float64               `json:"route_seconds"`
	Method          string                `json:"method"`
	StepsPerRun     uint64                `json:"steps_per_run"`
	Digest          string                `json:"digest"`
	Trials          int                   `json:"trials_per_path"`
	PerVehicleSec   float64               `json:"per_vehicle_seconds"`
	PerVehicleRate  float64               `json:"per_vehicle_vehicles_per_sec"`
	BatchedSec      float64               `json:"batched_seconds"`
	BatchedRate     float64               `json:"batched_vehicles_per_sec"`
	BatchSpeedup    float64               `json:"batch_speedup"`
	MinBatchSpeedup float64               `json:"min_batch_speedup"`
	WorkerRuns      []fleetBenchWorkerRun `json:"worker_runs"`
	ScalingNote     string                `json:"scaling_note,omitempty"`
	AllocsPerStep   float64               `json:"allocs_per_vehicle_step"`
	AllocBudget     float64               `json:"alloc_budget_allocs_per_vehicle_step"`
	RateBudget      float64               `json:"min_vehicles_per_sec"`
}

// TestFleetBenchJSON is the `make fleet-bench` harness: a Monte Carlo
// fleet under the Parallel baseline, timed over alternating per-vehicle
// and batched serial rollouts (min across trials for each path), plus
// batched scaling runs at 1 and NumCPU workers on a fresh pool per
// setting. Vehicles/sec, the batched speedup and allocs per vehicle-step
// are written to the path in FLEET_BENCH_JSON. Without the environment
// variable the test runs a small smoke fleet (nothing written, no timing
// gates) so plain `go test ./...` stays fast. In both modes it fails when
// the per-vehicle-step allocation count exceeds the committed budget, and
// it re-checks the determinism contract: every run, at any batch width
// and worker count, must produce the same digest.
func TestFleetBenchJSON(t *testing.T) {
	out := os.Getenv("FLEET_BENCH_JSON")
	spec := Spec{
		Vehicles:     fleetBenchVehicles,
		Days:         1,
		Seed:         1,
		Method:       policy.MethodologyParallel,
		RouteSeconds: 600,
	}
	name := "FleetParallelBaseline"
	trials := fleetBenchTrials
	if out == "" {
		spec.Vehicles = 300
		spec.RouteSeconds = 120
		name = "FleetParallelBaseline/smoke"
		trials = 1
	}
	ctx := context.Background()

	// run rolls the fleet once on a fresh pool and reports elapsed time
	// and heap allocations. batch < 0 selects the per-vehicle reference
	// path, 0 the auto-sized batched rollout.
	run := func(workers, batch int) (*Result, time.Duration, uint64) {
		pool := runner.New(runner.Workers(workers))
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := RunWith(ctx, spec, Options{Pool: pool, Batch: batch})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			t.Fatal(err)
		}
		return res, elapsed, m1.Mallocs - m0.Mallocs
	}

	// Serial timing, per-vehicle vs batched, alternating so a machine
	// frequency shift hits both paths alike.
	var refRes, batRes *Result
	var batAllocs uint64
	minRef, minBat := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < trials; i++ {
		res, d, _ := run(1, -1)
		if d < minRef {
			minRef = d
		}
		refRes = res
		res, d, allocs := run(1, 0)
		if d < minBat {
			minBat = d
		}
		batRes, batAllocs = res, allocs
	}
	steps := refRes.Steps
	if steps == 0 {
		t.Fatal("fleet simulated zero steps")
	}
	if r, b := refRes.Digest(), batRes.Digest(); r != b {
		t.Fatalf("determinism violated: per-vehicle digest %s, batched digest %s", r, b)
	}

	// Batched scaling runs at distinct worker counts, fresh pool each. On
	// a single-CPU host GOMAXPROCS == 1 and the "parallel" run is a
	// second serial run — worker fan-out only helps with real cores, so
	// the report carries the core count alongside the rates.
	workerCounts := []int{1, runtime.NumCPU()}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1]
	}
	runs := make([]fleetBenchWorkerRun, 0, len(workerCounts))
	for _, w := range workerCounts {
		res, d, _ := run(w, 0)
		if g := res.Digest(); g != refRes.Digest() {
			t.Fatalf("determinism violated at %d workers: digest %s, want %s", w, g, refRes.Digest())
		}
		runs = append(runs, fleetBenchWorkerRun{
			Workers: w,
			Seconds: d.Seconds(),
			Rate:    float64(spec.Vehicles) / d.Seconds(),
			Speedup: minBat.Seconds() / d.Seconds(),
		})
	}

	allocsPerStep := float64(batAllocs) / float64(steps)
	report := fleetBenchReport{
		Benchmark:       name,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Vehicles:        spec.Vehicles,
		Days:            1,
		RouteSeconds:    spec.RouteSeconds,
		Method:          string(spec.Method),
		StepsPerRun:     steps,
		Digest:          refRes.Digest(),
		Trials:          trials,
		PerVehicleSec:   minRef.Seconds(),
		PerVehicleRate:  float64(spec.Vehicles) / minRef.Seconds(),
		BatchedSec:      minBat.Seconds(),
		BatchedRate:     float64(spec.Vehicles) / minBat.Seconds(),
		BatchSpeedup:    minRef.Seconds() / minBat.Seconds(),
		MinBatchSpeedup: fleetBenchMinBatchSpeedup,
		WorkerRuns:      runs,
		AllocsPerStep:   allocsPerStep,
		AllocBudget:     fleetBenchAllocBudget,
		RateBudget:      fleetBenchMinVehiclesPerSec,
	}
	if runtime.NumCPU() == 1 {
		report.ScalingNote = "single-CPU host: worker fan-out cannot exceed serial throughput"
	}
	t.Logf("%s: %d vehicles, %d steps, per-vehicle %.1f veh/s, batched %.1f veh/s (×%.2f), %.3f allocs/vehicle-step",
		name, spec.Vehicles, steps, report.PerVehicleRate, report.BatchedRate, report.BatchSpeedup, allocsPerStep)
	for _, r := range runs {
		t.Logf("  batched @ %d workers: %.1f veh/s", r.Workers, r.Rate)
	}

	if allocsPerStep > fleetBenchAllocBudget {
		t.Errorf("allocation regression: %.3f allocs/vehicle-step, budget %.2f", allocsPerStep, fleetBenchAllocBudget)
	}
	if out == "" {
		return
	}
	if report.BatchedRate < fleetBenchMinVehiclesPerSec {
		t.Errorf("throughput regression: batched %.1f vehicles/sec, committed floor %d",
			report.BatchedRate, fleetBenchMinVehiclesPerSec)
	}
	if report.BatchSpeedup < fleetBenchMinBatchSpeedup {
		t.Errorf("batched rollout regression: ×%.2f vs per-vehicle, committed floor ×%.1f",
			report.BatchSpeedup, fleetBenchMinBatchSpeedup)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
