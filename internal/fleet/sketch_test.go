package fleet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankRange returns how many elements of sorted are strictly below q and
// how many are ≤ q: the interval of ranks at which q sits in the exact
// distribution.
func rankRange(sorted []float64, q float64) (lo, hi float64) {
	lo = float64(sort.SearchFloat64s(sorted, q))
	hi = float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > q }))
	return lo, hi
}

// checkQuantiles asserts the sketch's provable contract against the exact
// sorted data: for every probed φ the returned value's rank interval is
// within ErrorBound (+1 for the discretisation of φ·n) of the target rank.
func checkQuantiles(t *testing.T, s *Sketch, data []float64) {
	t.Helper()
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := float64(len(sorted))

	if s.Count() != uint64(len(data)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(data))
	}
	if got := s.Min(); got != sorted[0] {
		t.Fatalf("Min = %g, want %g", got, sorted[0])
	}
	if got := s.Max(); got != sorted[len(sorted)-1] {
		t.Fatalf("Max = %g, want %g", got, sorted[len(sorted)-1])
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	if got := s.Mean(); math.Abs(got-sum/n) > 1e-9*math.Max(1, math.Abs(sum/n)) {
		t.Fatalf("Mean = %g, want %g", got, sum/n)
	}

	slack := float64(s.ErrorBound()) + 1
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		q := s.Quantile(phi)
		lo, hi := rankRange(sorted, q)
		target := phi * n
		if hi < target-slack || lo > target+slack {
			t.Fatalf("Quantile(%g) = %g: rank interval [%g, %g] misses target %g by more than bound %g (n=%d)",
				phi, q, lo, hi, target, slack, len(data))
		}
	}
}

// distributions the property tests stream through the sketch.
func testDistributions(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	uniform := make([]float64, n)
	normal := make([]float64, n)
	heavy := make([]float64, n)
	ascending := make([]float64, n)
	ties := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64()
		normal[i] = rng.NormFloat64()
		heavy[i] = math.Exp(3 * rng.NormFloat64())
		ascending[i] = float64(i)
		ties[i] = float64(i % 7)
	}
	descending := make([]float64, n)
	for i := range descending {
		descending[i] = float64(n - i)
	}
	return map[string][]float64{
		"uniform":    uniform,
		"normal":     normal,
		"heavy-tail": heavy,
		"ascending":  ascending,
		"descending": descending,
		"ties":       ties,
	}
}

func TestSketchQuantileBound(t *testing.T) {
	for _, n := range []int{1, 7, 100, 1000, 20000} {
		for name, data := range testDistributions(n, int64(n)) {
			for _, k := range []int{8, 64, 256} {
				s := NewSketch(k)
				for _, v := range data {
					s.Add(v)
				}
				t.Logf("n=%d dist=%s k=%d: size=%d bound=%d", n, name, k, s.Size(), s.ErrorBound())
				checkQuantiles(t, s, data)
			}
		}
	}
}

func TestSketchMergeBound(t *testing.T) {
	const n, parts = 9000, 13
	for name, data := range testDistributions(n, 99) {
		merged := NewSketch(64)
		for p := 0; p < parts; p++ {
			part := NewSketch(64)
			lo, hi := p*n/parts, (p+1)*n/parts
			for _, v := range data[lo:hi] {
				part.Add(v)
			}
			merged.Merge(part)
		}
		t.Logf("dist=%s merged: size=%d bound=%d", name, merged.Size(), merged.ErrorBound())
		checkQuantiles(t, merged, data)
	}
}

// TestSketchMemoryBound pins the O(k·log(n/k)) footprint: a million values
// through a k=256 sketch must retain only a few thousand.
func TestSketchMemoryBound(t *testing.T) {
	s := NewSketch(256)
	rng := rand.New(rand.NewSource(5))
	const n = 1_000_000
	for i := 0; i < n; i++ {
		s.Add(rng.Float64())
	}
	levels := math.Ceil(math.Log2(float64(n)/256)) + 2
	limit := int(levels) * 256
	if s.Size() > limit {
		t.Fatalf("Size = %d after %d values, want <= %d (k·levels)", s.Size(), n, limit)
	}
	// The worst-case certificate must also stay useful: the Munro–Paterson
	// bound is Θ(n·log(n/k)/k) ranks, ≈ 4.4 % here (the realised error is
	// far smaller — checkQuantiles asserts the certificate elsewhere).
	if frac := float64(s.ErrorBound()) / float64(n); frac > 0.05 {
		t.Fatalf("ErrorBound = %d (%.2f%% of ranks), want < 5%%", s.ErrorBound(), 100*frac)
	}
}

// TestSketchDeterminism: identical insert order ⇒ bit-identical state, and
// merge order is part of the contract (same order ⇒ same digest).
func TestSketchDeterminism(t *testing.T) {
	build := func() *Sketch {
		s := NewSketch(32)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 5000; i++ {
			s.Add(rng.NormFloat64())
		}
		return s
	}
	d1, d2 := NewDigest(), NewDigest()
	build().AppendDigest(d1)
	build().AppendDigest(d2)
	if d1.Sum() != d2.Sum() {
		t.Fatalf("same insert order produced different digests: %s vs %s", d1.Sum(), d2.Sum())
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(0) // also exercises the k floor
	if s.Count() != 0 || s.Size() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty sketch not inert: count=%d size=%d mean=%g q50=%g",
			s.Count(), s.Size(), s.Mean(), s.Quantile(0.5))
	}
	s.Merge(nil)
	s.Merge(NewSketch(8))
	if s.Count() != 0 {
		t.Fatalf("merging empties changed count to %d", s.Count())
	}
}

// TestSketchWeightInvariant: the flattened total weight always equals the
// count, including after merges of odd-sized buffers — the invariant the
// even-prefix compaction preserves.
func TestSketchWeightInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch(8)
	for round := 0; round < 50; round++ {
		other := NewSketch(8)
		for i := 0; i < rng.Intn(40)+1; i++ {
			other.Add(rng.Float64())
		}
		s.Merge(other)
		for i := 0; i < rng.Intn(15); i++ {
			s.Add(rng.Float64())
		}
		var w uint64
		for _, it := range s.flatten() {
			w += it.w
		}
		if w != s.Count() {
			t.Fatalf("round %d: total weight %d != count %d", round, w, s.Count())
		}
	}
}
