package fleet

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"
)

// Sketch is a deterministic streaming quantile summary in the
// Munro–Paterson compactor family: values land in a level-0 buffer of
// capacity k; a full buffer is sorted and every other element is promoted
// to the next level with doubled weight. Memory is O(k·log(n/k)) no matter
// how many values stream through, each compaction of weight-w items
// perturbs any rank by at most w, and the running ErrorBound accumulates
// exactly those perturbations — so Quantile is provably within
// ErrorBound() ranks of the exact answer, a bound the property tests
// assert directly.
//
// Everything about the sketch is deterministic: identical insertion order
// gives bit-identical state (the compactors alternate which half they
// keep instead of flipping coins), and Merge folds another sketch in a
// caller-chosen order — the fleet engine merges per-chunk sketches in
// chunk index order, which is what makes the 1-worker and N-worker runs
// byte-identical.
//
// A Sketch is single-goroutine state, like an optimize Workspace: give
// each worker its own and merge afterwards.
type Sketch struct {
	k      int
	levels [][]float64 // levels[l] holds items of weight 1<<l
	// keepOdd[l] alternates the compaction phase at level l so the
	// systematic rank bias of always keeping one parity cancels out.
	keepOdd []bool

	count    uint64
	sum      float64
	min, max float64
	// errBound accumulates the worst-case rank perturbation: one
	// weight-(1<<l) term per compaction at level l.
	errBound uint64
}

// defaultSketchK is the buffer size used by the fleet aggregator: with
// 10k vehicles the worst-case bound is ≈ n·log₂(n/k)/k ≈ 2 % of ranks,
// far tighter in practice, for ~10 KiB per metric.
const defaultSketchK = 256

// NewSketch returns an empty sketch with level capacity k (minimum 8;
// rounded up to even so compactions always halve exactly).
func NewSketch(k int) *Sketch {
	if k < 8 {
		k = 8
	}
	if k%2 == 1 {
		k++
	}
	return &Sketch{k: k, min: math.Inf(1), max: math.Inf(-1)}
}

// Count returns how many values were added (merges included).
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the running sum, for means.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the exact minimum of the added values (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the exact maximum of the added values (−Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Mean returns Sum/Count (0 for an empty sketch).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// ErrorBound is the worst-case rank error of Quantile, in ranks.
func (s *Sketch) ErrorBound() uint64 { return s.errBound }

// Size reports the number of retained values across all levels — the
// memory footprint the O(workers)-not-O(fleet) test gates.
func (s *Sketch) Size() int {
	n := 0
	for _, lv := range s.levels {
		n += len(lv)
	}
	return n
}

// Add inserts one value.
func (s *Sketch) Add(v float64) {
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.levels) == 0 {
		s.grow(0)
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) >= s.k {
		s.compact(0)
	}
}

// grow ensures level l exists.
func (s *Sketch) grow(l int) {
	for len(s.levels) <= l {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.keepOdd = append(s.keepOdd, false)
	}
}

// compact sorts level l and promotes half of its even-length prefix,
// weight-doubled, to level l+1 (an odd leftover stays at level l, so the
// total weight always equals the count exactly). Cascades upward while
// buffers remain full. Each compaction of weight-w items perturbs any
// rank by at most w, whatever the buffer length.
func (s *Sketch) compact(l int) {
	for ; l < len(s.levels) && len(s.levels[l]) >= s.k; l++ {
		buf := s.levels[l]
		sort.Float64s(buf)
		m := len(buf) &^ 1 // largest even prefix
		s.grow(l + 1)
		start := 0
		if s.keepOdd[l] {
			start = 1
		}
		s.keepOdd[l] = !s.keepOdd[l]
		for i := start; i < m; i += 2 {
			s.levels[l+1] = append(s.levels[l+1], buf[i])
		}
		if m < len(buf) {
			// Keep the one leftover at its own weight.
			s.levels[l] = append(buf[:0], buf[m])
		} else {
			s.levels[l] = buf[:0]
		}
		s.errBound += 1 << uint(l)
	}
}

// Merge folds other into s level by level, compacting where the combined
// buffers overflow. Counts, sums and extrema combine exactly; the error
// bounds add, plus any compactions the merge itself triggers. other is
// left unchanged.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.count == 0 {
		return
	}
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.errBound += other.errBound
	for l, lv := range other.levels {
		if len(lv) == 0 {
			continue
		}
		s.grow(l)
		s.levels[l] = append(s.levels[l], lv...)
		if len(s.levels[l]) >= s.k {
			s.compact(l)
		}
	}
}

// weighted is the flattened (value, weight) view used by queries.
type weighted struct {
	v float64
	w uint64
}

// flatten gathers all retained items, sorted by value (ties keep the
// deterministic level-then-position order, so the result is replayable).
func (s *Sketch) flatten() []weighted {
	items := make([]weighted, 0, s.Size())
	for l, lv := range s.levels {
		w := uint64(1) << uint(l)
		for _, v := range lv {
			items = append(items, weighted{v: v, w: w})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].v < items[j].v })
	return items
}

// Quantile returns the value whose cumulative weight first reaches
// phi·Count, clamping phi into [0, 1]. Exact for phi 0 and 1 (the tracked
// extrema); otherwise within ErrorBound ranks of the exact quantile.
func (s *Sketch) Quantile(phi float64) float64 {
	if s.count == 0 {
		return 0
	}
	if phi <= 0 {
		return s.min
	}
	if phi >= 1 {
		return s.max
	}
	target := phi * float64(s.count)
	var cum float64
	for _, it := range s.flatten() {
		cum += float64(it.w)
		if cum >= target {
			return it.v
		}
	}
	return s.max
}

// AppendDigest folds the sketch's complete state into the digest: counts,
// sums, extrema and every retained (value, weight) pair in deterministic
// order. Two sketches digest equal exactly when a deterministic replay
// would produce them identically — the serve smoke test and the
// parallelism-identity gate compare these.
func (s *Sketch) AppendDigest(d *Digest) {
	d.Uint64(s.count)
	d.Float(s.sum)
	d.Float(s.min)
	d.Float(s.max)
	d.Uint64(s.errBound)
	for l, lv := range s.levels {
		d.Uint64(uint64(l))
		d.Uint64(uint64(len(lv)))
		for _, v := range lv {
			d.Float(v)
		}
	}
}

// Digest accumulates a 64-bit FNV-1a digest over primitive fields; it is
// the stable fingerprint the fleet results expose on the wire.
type Digest struct{ h hash.Hash64 }

// NewDigest returns an empty digest accumulator.
func NewDigest() *Digest { return &Digest{h: fnv.New64a()} }

// Uint64 folds one unsigned value into the digest, little-endian.
func (d *Digest) Uint64(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * uint(i)))
	}
	d.h.Write(b[:]) // hash.Hash documents Write never returns an error
}

// Float folds one float's IEEE-754 bit pattern into the digest.
func (d *Digest) Float(v float64) { d.Uint64(math.Float64bits(v)) }

// Text folds a string into the digest, length-prefixed.
func (d *Digest) Text(s string) {
	d.Uint64(uint64(len(s)))
	d.h.Write([]byte(s)) // never errors, see Uint64
}

// Sum renders the digest as a fixed-width hex string.
func (d *Digest) Sum() string { return fmt.Sprintf("%016x", d.h.Sum64()) }
