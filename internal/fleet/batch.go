package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/battery"
	"repro/internal/charger"
	"repro/internal/cooling"
	"repro/internal/drivecycle"
	"repro/internal/hees"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ultracap"
	"repro/internal/vehicle"
)

// DefaultBatch is the auto-tuned lockstep lane width: large enough that the
// batched bus bisection hides divide latency across lanes and the per-step
// bookkeeping amortises, small enough that a batch's hot state (a few
// hundred bytes per lane) stays cache-resident on one worker.
const DefaultBatch = 64

// Options configures a fleet run beyond the Spec. The zero value runs the
// batched rollout at DefaultBatch width on a private pool.
type Options struct {
	// Pool supplies the workers; nil uses a fresh default pool.
	Pool *runner.Pool
	// Progress, when non-nil, is called after each finished chunk with the
	// cumulative number of completed vehicles; calls are serialized.
	Progress func(vehiclesDone, vehiclesTotal int)
	// Batch selects the rollout: 0 means the batched path at DefaultBatch
	// width, a positive value the batched path at that lane width, and a
	// negative value the per-vehicle reference path. Outcomes are
	// bit-identical across every setting; only throughput differs.
	Batch int
}

// Run executes the fleet on the pool and returns the merged result, using
// the batched rollout at the default lane width. progress, when non-nil,
// is called after each finished chunk with the cumulative number of
// completed vehicles; calls are serialized.
func Run(ctx context.Context, spec Spec, pool *runner.Pool, progress func(vehiclesDone, vehiclesTotal int)) (*Result, error) {
	return RunWith(ctx, spec, Options{Pool: pool, Progress: progress})
}

// RunWith is Run with explicit rollout options.
func RunWith(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pool := opts.Pool
	if pool == nil {
		pool = runner.New()
	}
	width := opts.Batch
	if width == 0 {
		width = DefaultBatch
	}

	chunks := numChunks(spec.Vehicles)
	var mu sync.Mutex
	done := 0
	report := func(n int) {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		done += n
		opts.Progress(done, spec.Vehicles)
		mu.Unlock()
	}

	parts, err := runner.Map(ctx, pool, chunks, func(ctx context.Context, c int) (*Result, error) {
		lo, hi := chunkBounds(spec.Vehicles, chunks, c)
		acc := newAccumulator(spec)
		if width < 0 {
			var ws workspace
			for i := lo; i < hi; i++ {
				o, err := rollVehicle(ctx, spec, i, &ws)
				if err != nil {
					return nil, err
				}
				acc.add(o)
			}
		} else {
			var ws batchWorkspace
			for b := lo; b < hi; b += width {
				end := b + width
				if end > hi {
					end = hi
				}
				if err := rollBatch(ctx, spec, b, end, &ws, acc); err != nil {
					return nil, err
				}
			}
		}
		report(hi - lo)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}

	final := newAccumulator(spec)
	final.Days = spec.Days
	for _, p := range parts {
		final.merge(p)
	}
	return final, nil
}

// batchWorkspace is one worker's reusable structure-of-arrays storage for
// batched rollouts: the plant components of all lanes live in contiguous
// per-type slices (battery packs together, banks together, thermal loops
// together), so a lockstep pass over the batch walks arrays instead of
// pointer-chasing per-vehicle heap islands. Everything here is
// result-neutral; vehicle outcomes remain pure functions of (spec, index).
type batchWorkspace struct {
	scratch sim.BatchScratch

	packs   []battery.Pack
	banks   []ultracap.Bank
	loops   []cooling.Loop
	systems []hees.System
	plants  []sim.Plant

	scens    []scenario
	requests [][]float64
	outs     []vehicleOutcome
	startSoC []float64
	order    []int // lane order, grouped by scenario family
	lanes    []sim.BatchVehicle
	laneIdx  []int // workspace index per lane

	template     *sim.Plant
	haveTemplate bool
}

// ensure sizes the workspace for n vehicles.
func (ws *batchWorkspace) ensure(n int) {
	if cap(ws.packs) < n {
		ws.packs = make([]battery.Pack, n)
		ws.banks = make([]ultracap.Bank, n)
		ws.loops = make([]cooling.Loop, n)
		ws.systems = make([]hees.System, n)
		ws.plants = make([]sim.Plant, n)
		ws.scens = make([]scenario, n)
		ws.requests = make([][]float64, n)
		ws.outs = make([]vehicleOutcome, n)
		ws.startSoC = make([]float64, n)
		ws.order = make([]int, n)
		ws.lanes = make([]sim.BatchVehicle, n)
		ws.laneIdx = make([]int, n)
	}
}

// rollBatch simulates vehicles [lo, hi) in lockstep and folds their
// outcomes into acc in vehicle-index order — the same order the
// per-vehicle path uses, so the sketches fill identically.
func rollBatch(ctx context.Context, spec Spec, lo, hi int, ws *batchWorkspace, acc *Result) error {
	n := hi - lo
	ws.ensure(n)

	// The fleet shares one parameter set: every plant differs from the
	// template only by its ambient, which NewPlant stores verbatim. Build
	// the template once and stamp per-lane copies into the contiguous
	// component arrays.
	if !ws.haveTemplate {
		tpl, err := sim.NewPlant(sim.PlantConfig{UltracapF: spec.UltracapF})
		if err != nil {
			return fmt.Errorf("fleet: plant template: %w", err)
		}
		ws.template = tpl
		ws.haveTemplate = true
	}

	// Per-vehicle setup: scenario, route, plant. The draws and the route
	// synthesis are exactly the per-vehicle path's, per vehicle index.
	ev := vehicle.MidSizeEV()
	for k := 0; k < n; k++ {
		i := lo + k
		ws.scens[k] = drawScenario(spec, i)
		sc := &ws.scens[k]
		cycle, err := drivecycle.Synthesize(sc.synth)
		if err != nil {
			return fmt.Errorf("fleet: vehicle %d synth: %w", i, err)
		}
		ws.requests[k] = ev.PowerSeriesAt(cycle, sc.ambientK)

		ws.packs[k] = *ws.template.HEES.Battery
		ws.banks[k] = *ws.template.HEES.Cap
		ws.loops[k] = *ws.template.Loop
		ws.systems[k] = hees.System{
			Battery:  &ws.packs[k],
			Cap:      &ws.banks[k],
			BattConv: ws.template.HEES.BattConv,
			CapConv:  ws.template.HEES.CapConv,
		}
		ws.plants[k] = sim.Plant{
			HEES:    &ws.systems[k],
			Loop:    &ws.loops[k],
			Ambient: sc.ambientK,
			DT:      ws.template.DT,
		}
		ws.outs[k] = vehicleOutcome{family: familyIndex(sc), peakTempK: ws.loops[k].BatteryTemp}
		ws.order[k] = k
	}

	// Group lanes by scenario family: vehicles of one usage class draw
	// routes of similar length, so family-sorted lanes retire from the
	// lockstep batch together and late steps keep full lanes. Pure
	// reordering of independent lanes — outcomes cannot change.
	scens := ws.scens
	sort.SliceStable(ws.order[:n], func(a, b int) bool {
		return familyIndex(&scens[ws.order[a]]) < familyIndex(&scens[ws.order[b]])
	})

	chg := charger.Default()
	for d := 0; d < spec.Days; d++ {
		// Assemble the day's lanes in grouped order, skipping vacationers.
		nl := 0
		for _, k := range ws.order[:n] {
			if ws.scens[k].days[d] == dayVacation {
				continue
			}
			ctrl, err := newController(spec.Method, spec.Horizon)
			if err != nil {
				return fmt.Errorf("fleet: vehicle %d controller: %w", lo+k, err)
			}
			ws.lanes[nl] = sim.BatchVehicle{Plant: &ws.plants[k], Ctrl: ctrl, Requests: ws.requests[k]}
			ws.laneIdx[nl] = k
			ws.startSoC[k] = ws.packs[k].SoC
			nl++
		}
		if nl == 0 {
			continue
		}
		results, err := sim.RunBatch(ctx, ws.lanes[:nl], sim.Config{Horizon: spec.Horizon}, &ws.scratch)
		if err != nil {
			return fmt.Errorf("fleet: batch [%d,%d) day %d: %w", lo, hi, d, err)
		}
		for l := 0; l < nl; l++ {
			k := ws.laneIdx[l]
			res := &results[l]
			out := &ws.outs[k]
			out.steps += res.Steps
			out.fallbackSteps += res.FallbackSteps
			out.thermalViolationSec += res.ThermalViolationSec
			out.qlossPct += res.QlossPct
			out.energyJ += res.HEESEnergyJ
			if res.MaxBatteryTemp > out.peakTempK {
				out.peakTempK = res.MaxBatteryTemp
			}

			// Overnight charging per the plug state, exactly the
			// per-vehicle path's rules.
			target := 0.0
			switch ws.scens[k].days[d] {
			case dayPlugged:
				target = ws.startSoC[k]
			case dayPreVacation:
				target = 1.0
			case dayUnplugged:
				if ws.packs[k].SoC < lowSoCGuard {
					target = ws.startSoC[k]
				}
			}
			if target > ws.packs[k].SoC {
				cr, err := charger.Charge(&ws.packs[k], &ws.loops[k], chg, target, ws.scens[k].ambientK)
				if err != nil {
					return fmt.Errorf("fleet: vehicle %d charge: %w", lo+k, err)
				}
				out.qlossPct += cr.AgingPct
				out.energyJ += cr.WallEnergyJ
				if cr.PeakTempK > out.peakTempK {
					out.peakTempK = cr.PeakTempK
				}
			}
		}
	}

	// Fold in vehicle-index order, independent of lane grouping.
	for k := 0; k < n; k++ {
		acc.add(ws.outs[k])
	}
	return nil
}
